# Empty compiler generated dependencies file for random_query_property_test.
# This may be replaced when dependencies are built.
