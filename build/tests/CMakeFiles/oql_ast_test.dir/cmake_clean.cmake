file(REMOVE_RECURSE
  "CMakeFiles/oql_ast_test.dir/oql/ast_test.cc.o"
  "CMakeFiles/oql_ast_test.dir/oql/ast_test.cc.o.d"
  "oql_ast_test"
  "oql_ast_test.pdb"
  "oql_ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oql_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
