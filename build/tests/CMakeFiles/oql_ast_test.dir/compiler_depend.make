# Empty compiler generated dependencies file for oql_ast_test.
# This may be replaced when dependencies are built.
