# Empty compiler generated dependencies file for change_mapper_test.
# This may be replaced when dependencies are built.
