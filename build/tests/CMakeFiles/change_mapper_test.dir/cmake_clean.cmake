file(REMOVE_RECURSE
  "CMakeFiles/change_mapper_test.dir/translate/change_mapper_test.cc.o"
  "CMakeFiles/change_mapper_test.dir/translate/change_mapper_test.cc.o.d"
  "change_mapper_test"
  "change_mapper_test.pdb"
  "change_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
