# Empty compiler generated dependencies file for schema_translator_test.
# This may be replaced when dependencies are built.
