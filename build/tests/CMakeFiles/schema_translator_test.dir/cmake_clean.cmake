file(REMOVE_RECURSE
  "CMakeFiles/schema_translator_test.dir/translate/schema_translator_test.cc.o"
  "CMakeFiles/schema_translator_test.dir/translate/schema_translator_test.cc.o.d"
  "schema_translator_test"
  "schema_translator_test.pdb"
  "schema_translator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
