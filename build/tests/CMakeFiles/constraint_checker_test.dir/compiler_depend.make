# Empty compiler generated dependencies file for constraint_checker_test.
# This may be replaced when dependencies are built.
