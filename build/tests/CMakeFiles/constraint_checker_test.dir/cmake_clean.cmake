file(REMOVE_RECURSE
  "CMakeFiles/constraint_checker_test.dir/engine/constraint_checker_test.cc.o"
  "CMakeFiles/constraint_checker_test.dir/engine/constraint_checker_test.cc.o.d"
  "constraint_checker_test"
  "constraint_checker_test.pdb"
  "constraint_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
