file(REMOVE_RECURSE
  "CMakeFiles/oql_parser_test.dir/oql/parser_test.cc.o"
  "CMakeFiles/oql_parser_test.dir/oql/parser_test.cc.o.d"
  "oql_parser_test"
  "oql_parser_test.pdb"
  "oql_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
