# Empty dependencies file for oql_parser_test.
# This may be replaced when dependencies are built.
