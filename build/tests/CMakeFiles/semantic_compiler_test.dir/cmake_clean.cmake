file(REMOVE_RECURSE
  "CMakeFiles/semantic_compiler_test.dir/sqo/semantic_compiler_test.cc.o"
  "CMakeFiles/semantic_compiler_test.dir/sqo/semantic_compiler_test.cc.o.d"
  "semantic_compiler_test"
  "semantic_compiler_test.pdb"
  "semantic_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
