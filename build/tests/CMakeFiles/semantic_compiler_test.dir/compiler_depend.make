# Empty compiler generated dependencies file for semantic_compiler_test.
# This may be replaced when dependencies are built.
