file(REMOVE_RECURSE
  "CMakeFiles/asr_test.dir/sqo/asr_test.cc.o"
  "CMakeFiles/asr_test.dir/sqo/asr_test.cc.o.d"
  "asr_test"
  "asr_test.pdb"
  "asr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
