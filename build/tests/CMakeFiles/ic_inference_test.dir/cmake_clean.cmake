file(REMOVE_RECURSE
  "CMakeFiles/ic_inference_test.dir/sqo/ic_inference_test.cc.o"
  "CMakeFiles/ic_inference_test.dir/sqo/ic_inference_test.cc.o.d"
  "ic_inference_test"
  "ic_inference_test.pdb"
  "ic_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ic_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
