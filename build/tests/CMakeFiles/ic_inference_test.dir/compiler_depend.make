# Empty compiler generated dependencies file for ic_inference_test.
# This may be replaced when dependencies are built.
