file(REMOVE_RECURSE
  "CMakeFiles/odl_parser_test.dir/odl/parser_test.cc.o"
  "CMakeFiles/odl_parser_test.dir/odl/parser_test.cc.o.d"
  "odl_parser_test"
  "odl_parser_test.pdb"
  "odl_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
