# Empty dependencies file for odl_parser_test.
# This may be replaced when dependencies are built.
