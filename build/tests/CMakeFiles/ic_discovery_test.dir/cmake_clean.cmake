file(REMOVE_RECURSE
  "CMakeFiles/ic_discovery_test.dir/engine/ic_discovery_test.cc.o"
  "CMakeFiles/ic_discovery_test.dir/engine/ic_discovery_test.cc.o.d"
  "ic_discovery_test"
  "ic_discovery_test.pdb"
  "ic_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ic_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
