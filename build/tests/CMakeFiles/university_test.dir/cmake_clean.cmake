file(REMOVE_RECURSE
  "CMakeFiles/university_test.dir/workload/university_test.cc.o"
  "CMakeFiles/university_test.dir/workload/university_test.cc.o.d"
  "university_test"
  "university_test.pdb"
  "university_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
