file(REMOVE_RECURSE
  "CMakeFiles/consequence_soundness_test.dir/integration/consequence_soundness_test.cc.o"
  "CMakeFiles/consequence_soundness_test.dir/integration/consequence_soundness_test.cc.o.d"
  "consequence_soundness_test"
  "consequence_soundness_test.pdb"
  "consequence_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consequence_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
