# Empty compiler generated dependencies file for consequence_soundness_test.
# This may be replaced when dependencies are built.
