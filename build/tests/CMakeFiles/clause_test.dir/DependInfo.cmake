
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/datalog/clause_test.cc" "tests/CMakeFiles/clause_test.dir/datalog/clause_test.cc.o" "gcc" "tests/CMakeFiles/clause_test.dir/datalog/clause_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/sqo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sqo_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sqo/CMakeFiles/sqo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/sqo_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/oql/CMakeFiles/sqo_oql.dir/DependInfo.cmake"
  "/root/repo/build/src/odl/CMakeFiles/sqo_odl.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sqo_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/sqo_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
