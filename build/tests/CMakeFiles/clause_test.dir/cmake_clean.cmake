file(REMOVE_RECURSE
  "CMakeFiles/clause_test.dir/datalog/clause_test.cc.o"
  "CMakeFiles/clause_test.dir/datalog/clause_test.cc.o.d"
  "clause_test"
  "clause_test.pdb"
  "clause_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clause_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
