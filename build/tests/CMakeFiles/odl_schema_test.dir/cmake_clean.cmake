file(REMOVE_RECURSE
  "CMakeFiles/odl_schema_test.dir/odl/schema_test.cc.o"
  "CMakeFiles/odl_schema_test.dir/odl/schema_test.cc.o.d"
  "odl_schema_test"
  "odl_schema_test.pdb"
  "odl_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odl_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
