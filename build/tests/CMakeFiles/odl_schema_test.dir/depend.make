# Empty dependencies file for odl_schema_test.
# This may be replaced when dependencies are built.
