file(REMOVE_RECURSE
  "CMakeFiles/constraint_set_test.dir/solver/constraint_set_test.cc.o"
  "CMakeFiles/constraint_set_test.dir/solver/constraint_set_test.cc.o.d"
  "constraint_set_test"
  "constraint_set_test.pdb"
  "constraint_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
