# Empty dependencies file for constraint_set_test.
# This may be replaced when dependencies are built.
