file(REMOVE_RECURSE
  "CMakeFiles/query_translator_test.dir/translate/query_translator_test.cc.o"
  "CMakeFiles/query_translator_test.dir/translate/query_translator_test.cc.o.d"
  "query_translator_test"
  "query_translator_test.pdb"
  "query_translator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
