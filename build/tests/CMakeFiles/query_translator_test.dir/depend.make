# Empty dependencies file for query_translator_test.
# This may be replaced when dependencies are built.
