file(REMOVE_RECURSE
  "CMakeFiles/bench_contradiction.dir/bench_contradiction.cc.o"
  "CMakeFiles/bench_contradiction.dir/bench_contradiction.cc.o.d"
  "bench_contradiction"
  "bench_contradiction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contradiction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
