# Empty compiler generated dependencies file for bench_contradiction.
# This may be replaced when dependencies are built.
