file(REMOVE_RECURSE
  "CMakeFiles/bench_scope_reduction.dir/bench_scope_reduction.cc.o"
  "CMakeFiles/bench_scope_reduction.dir/bench_scope_reduction.cc.o.d"
  "bench_scope_reduction"
  "bench_scope_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scope_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
