# Empty dependencies file for bench_scope_reduction.
# This may be replaced when dependencies are built.
