# Empty dependencies file for bench_asr.
# This may be replaced when dependencies are built.
