file(REMOVE_RECURSE
  "CMakeFiles/bench_asr.dir/bench_asr.cc.o"
  "CMakeFiles/bench_asr.dir/bench_asr.cc.o.d"
  "bench_asr"
  "bench_asr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
