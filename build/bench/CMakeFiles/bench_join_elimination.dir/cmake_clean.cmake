file(REMOVE_RECURSE
  "CMakeFiles/bench_join_elimination.dir/bench_join_elimination.cc.o"
  "CMakeFiles/bench_join_elimination.dir/bench_join_elimination.cc.o.d"
  "bench_join_elimination"
  "bench_join_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
