# Empty compiler generated dependencies file for bench_join_elimination.
# This may be replaced when dependencies are built.
