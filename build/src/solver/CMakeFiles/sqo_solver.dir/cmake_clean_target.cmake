file(REMOVE_RECURSE
  "libsqo_solver.a"
)
