
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/constraint_set.cc" "src/solver/CMakeFiles/sqo_solver.dir/constraint_set.cc.o" "gcc" "src/solver/CMakeFiles/sqo_solver.dir/constraint_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/sqo_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
