# Empty compiler generated dependencies file for sqo_solver.
# This may be replaced when dependencies are built.
