file(REMOVE_RECURSE
  "CMakeFiles/sqo_solver.dir/constraint_set.cc.o"
  "CMakeFiles/sqo_solver.dir/constraint_set.cc.o.d"
  "libsqo_solver.a"
  "libsqo_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
