# Empty dependencies file for sqo_engine.
# This may be replaced when dependencies are built.
