file(REMOVE_RECURSE
  "libsqo_engine.a"
)
