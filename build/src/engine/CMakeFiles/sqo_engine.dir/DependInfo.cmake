
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/constraint_checker.cc" "src/engine/CMakeFiles/sqo_engine.dir/constraint_checker.cc.o" "gcc" "src/engine/CMakeFiles/sqo_engine.dir/constraint_checker.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "src/engine/CMakeFiles/sqo_engine.dir/cost_model.cc.o" "gcc" "src/engine/CMakeFiles/sqo_engine.dir/cost_model.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/sqo_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/sqo_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/evaluator.cc" "src/engine/CMakeFiles/sqo_engine.dir/evaluator.cc.o" "gcc" "src/engine/CMakeFiles/sqo_engine.dir/evaluator.cc.o.d"
  "/root/repo/src/engine/ic_discovery.cc" "src/engine/CMakeFiles/sqo_engine.dir/ic_discovery.cc.o" "gcc" "src/engine/CMakeFiles/sqo_engine.dir/ic_discovery.cc.o.d"
  "/root/repo/src/engine/object_store.cc" "src/engine/CMakeFiles/sqo_engine.dir/object_store.cc.o" "gcc" "src/engine/CMakeFiles/sqo_engine.dir/object_store.cc.o.d"
  "/root/repo/src/engine/planner.cc" "src/engine/CMakeFiles/sqo_engine.dir/planner.cc.o" "gcc" "src/engine/CMakeFiles/sqo_engine.dir/planner.cc.o.d"
  "/root/repo/src/engine/statistics.cc" "src/engine/CMakeFiles/sqo_engine.dir/statistics.cc.o" "gcc" "src/engine/CMakeFiles/sqo_engine.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/sqo_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/odl/CMakeFiles/sqo_odl.dir/DependInfo.cmake"
  "/root/repo/build/src/sqo/CMakeFiles/sqo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sqo_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/sqo_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/oql/CMakeFiles/sqo_oql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
