file(REMOVE_RECURSE
  "CMakeFiles/sqo_engine.dir/constraint_checker.cc.o"
  "CMakeFiles/sqo_engine.dir/constraint_checker.cc.o.d"
  "CMakeFiles/sqo_engine.dir/cost_model.cc.o"
  "CMakeFiles/sqo_engine.dir/cost_model.cc.o.d"
  "CMakeFiles/sqo_engine.dir/database.cc.o"
  "CMakeFiles/sqo_engine.dir/database.cc.o.d"
  "CMakeFiles/sqo_engine.dir/evaluator.cc.o"
  "CMakeFiles/sqo_engine.dir/evaluator.cc.o.d"
  "CMakeFiles/sqo_engine.dir/ic_discovery.cc.o"
  "CMakeFiles/sqo_engine.dir/ic_discovery.cc.o.d"
  "CMakeFiles/sqo_engine.dir/object_store.cc.o"
  "CMakeFiles/sqo_engine.dir/object_store.cc.o.d"
  "CMakeFiles/sqo_engine.dir/planner.cc.o"
  "CMakeFiles/sqo_engine.dir/planner.cc.o.d"
  "CMakeFiles/sqo_engine.dir/statistics.cc.o"
  "CMakeFiles/sqo_engine.dir/statistics.cc.o.d"
  "libsqo_engine.a"
  "libsqo_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
