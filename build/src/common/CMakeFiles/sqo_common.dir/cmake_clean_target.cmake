file(REMOVE_RECURSE
  "libsqo_common.a"
)
