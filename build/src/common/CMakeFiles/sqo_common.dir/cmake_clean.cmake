file(REMOVE_RECURSE
  "CMakeFiles/sqo_common.dir/cmp.cc.o"
  "CMakeFiles/sqo_common.dir/cmp.cc.o.d"
  "CMakeFiles/sqo_common.dir/status.cc.o"
  "CMakeFiles/sqo_common.dir/status.cc.o.d"
  "CMakeFiles/sqo_common.dir/strings.cc.o"
  "CMakeFiles/sqo_common.dir/strings.cc.o.d"
  "CMakeFiles/sqo_common.dir/value.cc.o"
  "CMakeFiles/sqo_common.dir/value.cc.o.d"
  "libsqo_common.a"
  "libsqo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
