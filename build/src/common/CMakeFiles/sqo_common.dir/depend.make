# Empty dependencies file for sqo_common.
# This may be replaced when dependencies are built.
