
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/atom.cc" "src/datalog/CMakeFiles/sqo_datalog.dir/atom.cc.o" "gcc" "src/datalog/CMakeFiles/sqo_datalog.dir/atom.cc.o.d"
  "/root/repo/src/datalog/clause.cc" "src/datalog/CMakeFiles/sqo_datalog.dir/clause.cc.o" "gcc" "src/datalog/CMakeFiles/sqo_datalog.dir/clause.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/datalog/CMakeFiles/sqo_datalog.dir/parser.cc.o" "gcc" "src/datalog/CMakeFiles/sqo_datalog.dir/parser.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/datalog/CMakeFiles/sqo_datalog.dir/program.cc.o" "gcc" "src/datalog/CMakeFiles/sqo_datalog.dir/program.cc.o.d"
  "/root/repo/src/datalog/signature.cc" "src/datalog/CMakeFiles/sqo_datalog.dir/signature.cc.o" "gcc" "src/datalog/CMakeFiles/sqo_datalog.dir/signature.cc.o.d"
  "/root/repo/src/datalog/substitution.cc" "src/datalog/CMakeFiles/sqo_datalog.dir/substitution.cc.o" "gcc" "src/datalog/CMakeFiles/sqo_datalog.dir/substitution.cc.o.d"
  "/root/repo/src/datalog/term.cc" "src/datalog/CMakeFiles/sqo_datalog.dir/term.cc.o" "gcc" "src/datalog/CMakeFiles/sqo_datalog.dir/term.cc.o.d"
  "/root/repo/src/datalog/unify.cc" "src/datalog/CMakeFiles/sqo_datalog.dir/unify.cc.o" "gcc" "src/datalog/CMakeFiles/sqo_datalog.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
