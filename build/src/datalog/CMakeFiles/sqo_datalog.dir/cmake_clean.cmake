file(REMOVE_RECURSE
  "CMakeFiles/sqo_datalog.dir/atom.cc.o"
  "CMakeFiles/sqo_datalog.dir/atom.cc.o.d"
  "CMakeFiles/sqo_datalog.dir/clause.cc.o"
  "CMakeFiles/sqo_datalog.dir/clause.cc.o.d"
  "CMakeFiles/sqo_datalog.dir/parser.cc.o"
  "CMakeFiles/sqo_datalog.dir/parser.cc.o.d"
  "CMakeFiles/sqo_datalog.dir/program.cc.o"
  "CMakeFiles/sqo_datalog.dir/program.cc.o.d"
  "CMakeFiles/sqo_datalog.dir/signature.cc.o"
  "CMakeFiles/sqo_datalog.dir/signature.cc.o.d"
  "CMakeFiles/sqo_datalog.dir/substitution.cc.o"
  "CMakeFiles/sqo_datalog.dir/substitution.cc.o.d"
  "CMakeFiles/sqo_datalog.dir/term.cc.o"
  "CMakeFiles/sqo_datalog.dir/term.cc.o.d"
  "CMakeFiles/sqo_datalog.dir/unify.cc.o"
  "CMakeFiles/sqo_datalog.dir/unify.cc.o.d"
  "libsqo_datalog.a"
  "libsqo_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
