file(REMOVE_RECURSE
  "libsqo_datalog.a"
)
