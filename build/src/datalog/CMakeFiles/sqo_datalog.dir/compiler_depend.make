# Empty compiler generated dependencies file for sqo_datalog.
# This may be replaced when dependencies are built.
