file(REMOVE_RECURSE
  "libsqo_workload.a"
)
