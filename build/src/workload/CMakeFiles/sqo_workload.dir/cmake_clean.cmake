file(REMOVE_RECURSE
  "CMakeFiles/sqo_workload.dir/company.cc.o"
  "CMakeFiles/sqo_workload.dir/company.cc.o.d"
  "CMakeFiles/sqo_workload.dir/university.cc.o"
  "CMakeFiles/sqo_workload.dir/university.cc.o.d"
  "libsqo_workload.a"
  "libsqo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
