# Empty dependencies file for sqo_workload.
# This may be replaced when dependencies are built.
