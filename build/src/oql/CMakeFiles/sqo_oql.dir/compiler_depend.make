# Empty compiler generated dependencies file for sqo_oql.
# This may be replaced when dependencies are built.
