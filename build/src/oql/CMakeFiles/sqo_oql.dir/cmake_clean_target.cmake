file(REMOVE_RECURSE
  "libsqo_oql.a"
)
