file(REMOVE_RECURSE
  "CMakeFiles/sqo_oql.dir/ast.cc.o"
  "CMakeFiles/sqo_oql.dir/ast.cc.o.d"
  "CMakeFiles/sqo_oql.dir/parser.cc.o"
  "CMakeFiles/sqo_oql.dir/parser.cc.o.d"
  "libsqo_oql.a"
  "libsqo_oql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_oql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
