# Empty compiler generated dependencies file for sqo_odl.
# This may be replaced when dependencies are built.
