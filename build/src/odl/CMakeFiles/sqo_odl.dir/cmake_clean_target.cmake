file(REMOVE_RECURSE
  "libsqo_odl.a"
)
