file(REMOVE_RECURSE
  "CMakeFiles/sqo_odl.dir/parser.cc.o"
  "CMakeFiles/sqo_odl.dir/parser.cc.o.d"
  "CMakeFiles/sqo_odl.dir/schema.cc.o"
  "CMakeFiles/sqo_odl.dir/schema.cc.o.d"
  "libsqo_odl.a"
  "libsqo_odl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_odl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
