
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translate/change_mapper.cc" "src/translate/CMakeFiles/sqo_translate.dir/change_mapper.cc.o" "gcc" "src/translate/CMakeFiles/sqo_translate.dir/change_mapper.cc.o.d"
  "/root/repo/src/translate/query_translator.cc" "src/translate/CMakeFiles/sqo_translate.dir/query_translator.cc.o" "gcc" "src/translate/CMakeFiles/sqo_translate.dir/query_translator.cc.o.d"
  "/root/repo/src/translate/schema_translator.cc" "src/translate/CMakeFiles/sqo_translate.dir/schema_translator.cc.o" "gcc" "src/translate/CMakeFiles/sqo_translate.dir/schema_translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/sqo_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/odl/CMakeFiles/sqo_odl.dir/DependInfo.cmake"
  "/root/repo/build/src/oql/CMakeFiles/sqo_oql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
