file(REMOVE_RECURSE
  "CMakeFiles/sqo_translate.dir/change_mapper.cc.o"
  "CMakeFiles/sqo_translate.dir/change_mapper.cc.o.d"
  "CMakeFiles/sqo_translate.dir/query_translator.cc.o"
  "CMakeFiles/sqo_translate.dir/query_translator.cc.o.d"
  "CMakeFiles/sqo_translate.dir/schema_translator.cc.o"
  "CMakeFiles/sqo_translate.dir/schema_translator.cc.o.d"
  "libsqo_translate.a"
  "libsqo_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
