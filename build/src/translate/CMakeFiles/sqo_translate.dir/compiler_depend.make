# Empty compiler generated dependencies file for sqo_translate.
# This may be replaced when dependencies are built.
