file(REMOVE_RECURSE
  "libsqo_translate.a"
)
