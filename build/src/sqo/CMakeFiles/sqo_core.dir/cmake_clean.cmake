file(REMOVE_RECURSE
  "CMakeFiles/sqo_core.dir/asr.cc.o"
  "CMakeFiles/sqo_core.dir/asr.cc.o.d"
  "CMakeFiles/sqo_core.dir/ic_inference.cc.o"
  "CMakeFiles/sqo_core.dir/ic_inference.cc.o.d"
  "CMakeFiles/sqo_core.dir/optimizer.cc.o"
  "CMakeFiles/sqo_core.dir/optimizer.cc.o.d"
  "CMakeFiles/sqo_core.dir/pipeline.cc.o"
  "CMakeFiles/sqo_core.dir/pipeline.cc.o.d"
  "CMakeFiles/sqo_core.dir/residue.cc.o"
  "CMakeFiles/sqo_core.dir/residue.cc.o.d"
  "CMakeFiles/sqo_core.dir/semantic_compiler.cc.o"
  "CMakeFiles/sqo_core.dir/semantic_compiler.cc.o.d"
  "libsqo_core.a"
  "libsqo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
