file(REMOVE_RECURSE
  "libsqo_core.a"
)
