# Empty compiler generated dependencies file for sqo_core.
# This may be replaced when dependencies are built.
