
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqo/asr.cc" "src/sqo/CMakeFiles/sqo_core.dir/asr.cc.o" "gcc" "src/sqo/CMakeFiles/sqo_core.dir/asr.cc.o.d"
  "/root/repo/src/sqo/ic_inference.cc" "src/sqo/CMakeFiles/sqo_core.dir/ic_inference.cc.o" "gcc" "src/sqo/CMakeFiles/sqo_core.dir/ic_inference.cc.o.d"
  "/root/repo/src/sqo/optimizer.cc" "src/sqo/CMakeFiles/sqo_core.dir/optimizer.cc.o" "gcc" "src/sqo/CMakeFiles/sqo_core.dir/optimizer.cc.o.d"
  "/root/repo/src/sqo/pipeline.cc" "src/sqo/CMakeFiles/sqo_core.dir/pipeline.cc.o" "gcc" "src/sqo/CMakeFiles/sqo_core.dir/pipeline.cc.o.d"
  "/root/repo/src/sqo/residue.cc" "src/sqo/CMakeFiles/sqo_core.dir/residue.cc.o" "gcc" "src/sqo/CMakeFiles/sqo_core.dir/residue.cc.o.d"
  "/root/repo/src/sqo/semantic_compiler.cc" "src/sqo/CMakeFiles/sqo_core.dir/semantic_compiler.cc.o" "gcc" "src/sqo/CMakeFiles/sqo_core.dir/semantic_compiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/sqo_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sqo_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/sqo_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/odl/CMakeFiles/sqo_odl.dir/DependInfo.cmake"
  "/root/repo/build/src/oql/CMakeFiles/sqo_oql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
