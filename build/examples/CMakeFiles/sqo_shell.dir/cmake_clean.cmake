file(REMOVE_RECURSE
  "CMakeFiles/sqo_shell.dir/sqo_shell.cpp.o"
  "CMakeFiles/sqo_shell.dir/sqo_shell.cpp.o.d"
  "sqo_shell"
  "sqo_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
