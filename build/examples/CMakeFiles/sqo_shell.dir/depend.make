# Empty dependencies file for sqo_shell.
# This may be replaced when dependencies are built.
