file(REMOVE_RECURSE
  "CMakeFiles/access_support.dir/access_support.cpp.o"
  "CMakeFiles/access_support.dir/access_support.cpp.o.d"
  "access_support"
  "access_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
