# Empty dependencies file for access_support.
# This may be replaced when dependencies are built.
