# Empty dependencies file for company_tour.
# This may be replaced when dependencies are built.
