file(REMOVE_RECURSE
  "CMakeFiles/company_tour.dir/company_tour.cpp.o"
  "CMakeFiles/company_tour.dir/company_tour.cpp.o.d"
  "company_tour"
  "company_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
