file(REMOVE_RECURSE
  "CMakeFiles/contradiction.dir/contradiction.cpp.o"
  "CMakeFiles/contradiction.dir/contradiction.cpp.o.d"
  "contradiction"
  "contradiction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contradiction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
