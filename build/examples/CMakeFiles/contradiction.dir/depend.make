# Empty dependencies file for contradiction.
# This may be replaced when dependencies are built.
