file(REMOVE_RECURSE
  "CMakeFiles/scope_reduction.dir/scope_reduction.cpp.o"
  "CMakeFiles/scope_reduction.dir/scope_reduction.cpp.o.d"
  "scope_reduction"
  "scope_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scope_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
