# Empty dependencies file for scope_reduction.
# This may be replaced when dependencies are built.
