# Empty dependencies file for join_elimination.
# This may be replaced when dependencies are built.
