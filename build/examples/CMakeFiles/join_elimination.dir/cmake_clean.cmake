file(REMOVE_RECURSE
  "CMakeFiles/join_elimination.dir/join_elimination.cpp.o"
  "CMakeFiles/join_elimination.dir/join_elimination.cpp.o.d"
  "join_elimination"
  "join_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
