# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_contradiction "/root/repo/build/examples/contradiction")
set_tests_properties(example_contradiction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scope_reduction "/root/repo/build/examples/scope_reduction")
set_tests_properties(example_scope_reduction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_join_elimination "/root/repo/build/examples/join_elimination")
set_tests_properties(example_join_elimination PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_access_support "/root/repo/build/examples/access_support")
set_tests_properties(example_access_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_company_tour "/root/repo/build/examples/company_tour")
set_tests_properties(example_company_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sqo_shell "sh" "-c" "/root/repo/build/examples/sqo_shell < /dev/null")
set_tests_properties(example_sqo_shell PROPERTIES  TIMEOUT "30" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
