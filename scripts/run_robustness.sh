#!/usr/bin/env bash
# Robustness driver: build the ASan+UBSan preset and run every test with
# the `robustness` ctest label under the sanitizers — governance/context
# units, failpoint units, pipeline degradation end-to-end, adversarial
# parser input, the crash-recovery tests (which carry both the
# `recovery` and `robustness` labels; scripts/run_recovery.sh runs just
# those, with a tunable crash loop), and the serving tests (compound
# `serving-robustness` label). Failpoint-driven error paths are exactly
# the code that rarely runs in CI, so they get sanitizer coverage here.
# The serving suite then runs again under ThreadSanitizer (serving-tsan
# preset): the epoch store, session queues and admission control are the
# most lock-heavy code in the repo, and TSan sees orderings ASan cannot.
#
# Usage: scripts/run_robustness.sh [--no-build]
set -euo pipefail
cd "$(dirname "$0")/.."

build=1
case "${1:-}" in
  --no-build) build=0 ;;
  "") ;;
  *) echo "usage: $0 [--no-build]" >&2; exit 2 ;;
esac

if [[ "$build" -eq 1 ]]; then
  echo "== configuring + building asan preset =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" >/dev/null
fi

echo "== robustness tests under ASan/UBSan =="
if ! ctest --preset robustness-asan; then
  echo "robustness suite FAILED"
  exit 1
fi

tsan_supported() {
  local probe ok=0
  probe="$(mktemp -d)"
  printf 'int main() { return 0; }\n' > "$probe/t.cc"
  if ! c++ -fsanitize=thread "$probe/t.cc" -o "$probe/t" >/dev/null 2>&1; then
    ok=1
  fi
  rm -rf "$probe"
  return "$ok"
}

if tsan_supported; then
  if [[ "$build" -eq 1 ]]; then
    echo "== configuring + building tsan preset =="
    cmake --preset tsan >/dev/null
    cmake --build --preset tsan -j "$(nproc)" >/dev/null
  fi
  echo "== serving tests under TSan =="
  if ! ctest --preset serving-tsan; then
    echo "serving TSan suite FAILED"
    exit 1
  fi
else
  echo "== toolchain cannot link -fsanitize=thread; skipping serving TSan pass =="
fi
echo "robustness OK"
