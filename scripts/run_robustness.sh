#!/usr/bin/env bash
# Robustness driver: build the ASan+UBSan preset and run every test with
# the `robustness` ctest label under the sanitizers — governance/context
# units, failpoint units, pipeline degradation end-to-end, adversarial
# parser input, and the crash-recovery tests (which carry both the
# `recovery` and `robustness` labels; scripts/run_recovery.sh runs just
# those, with a tunable crash loop). Failpoint-driven error paths are
# exactly the code that rarely runs in CI, so they get sanitizer
# coverage here.
#
# Usage: scripts/run_robustness.sh [--no-build]
set -euo pipefail
cd "$(dirname "$0")/.."

build=1
case "${1:-}" in
  --no-build) build=0 ;;
  "") ;;
  *) echo "usage: $0 [--no-build]" >&2; exit 2 ;;
esac

if [[ "$build" -eq 1 ]]; then
  echo "== configuring + building asan preset =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" >/dev/null
fi

echo "== robustness tests under ASan/UBSan =="
if ! ctest --preset robustness-asan; then
  echo "robustness suite FAILED"
  exit 1
fi
echo "robustness OK"
