#!/usr/bin/env bash
# Crash-recovery driver: build the ASan+UBSan preset and run every test
# with the `recovery` ctest label under the sanitizers — the per-failpoint
# kill-and-reopen differential tests, the randomized crash loop, and the
# crash-under-traffic chaos harness — then sweep the chaos loop across a
# seed matrix so each run covers several independent crash schedules. The
# iteration count and base seed are env-tunable, so this script can run a
# short deterministic pass in CI and a long randomized soak locally.
#
# Usage: scripts/run_recovery.sh [--no-build] [iters [seed [matrix]]]
#   iters  — crash/chaos-loop iterations per seed (default 6; 50+ to soak)
#   seed   — base seed (default: current time, printed for repro)
#   matrix — extra chaos seeds swept after the main pass (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

build=1
case "${1:-}" in
  --no-build) build=0; shift ;;
esac
iters="${1:-6}"
seed="${2:-$(date +%s)}"
matrix="${3:-3}"

if [[ "$build" -eq 1 ]]; then
  echo "== configuring + building asan preset =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" >/dev/null
fi

echo "== recovery tests under ASan/UBSan (iters=$iters seed=$seed) =="
if ! SQO_CRASH_LOOP_ITERS="$iters" SQO_CRASH_LOOP_SEED="$seed" \
    ctest --preset recovery-asan; then
  echo "recovery suite FAILED (repro: scripts/run_recovery.sh --no-build $iters $seed)"
  exit 1
fi

# Chaos seed matrix: the harness derives its whole crash schedule (mode,
# crash coordinate, group-commit arm) from the seed, so distinct seeds are
# distinct fault universes — cheap coverage the single pass above misses.
for ((offset = 1; offset <= matrix; ++offset)); do
  chaos_seed=$((seed + offset * 1000003))
  echo "== chaos matrix $offset/$matrix (iters=$iters seed=$chaos_seed) =="
  if ! SQO_CRASH_LOOP_ITERS="$iters" SQO_CRASH_LOOP_SEED="$chaos_seed" \
      ctest --preset chaos-asan; then
    echo "chaos matrix FAILED (repro: SQO_CRASH_LOOP_ITERS=$iters SQO_CRASH_LOOP_SEED=$chaos_seed ctest --preset chaos-asan)"
    exit 1
  fi
done
echo "recovery OK"
