#!/usr/bin/env bash
# Crash-recovery driver: build the ASan+UBSan preset and run every test
# with the `recovery` ctest label under the sanitizers — the per-failpoint
# kill-and-reopen differential tests plus the randomized crash loop. The
# loop's iteration count and seed are env-tunable, so this script can run
# a short deterministic pass in CI and a long randomized soak locally.
#
# Usage: scripts/run_recovery.sh [--no-build] [iters [seed]]
#   iters — crash-loop iterations (default 6; try 50+ for a soak)
#   seed  — crash-loop base seed (default: current time, printed for repro)
set -euo pipefail
cd "$(dirname "$0")/.."

build=1
case "${1:-}" in
  --no-build) build=0; shift ;;
esac
iters="${1:-6}"
seed="${2:-$(date +%s)}"

if [[ "$build" -eq 1 ]]; then
  echo "== configuring + building asan preset =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" >/dev/null
fi

echo "== recovery tests under ASan/UBSan (iters=$iters seed=$seed) =="
if ! SQO_CRASH_LOOP_ITERS="$iters" SQO_CRASH_LOOP_SEED="$seed" \
    ctest --preset recovery-asan; then
  echo "recovery suite FAILED (repro: scripts/run_recovery.sh --no-build $iters $seed)"
  exit 1
fi
echo "recovery OK"
