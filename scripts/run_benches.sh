#!/usr/bin/env bash
# Builds the Release preset, runs every bench driver, and merges their
# per-driver JSON exports into one BENCH_pipeline.json at the repo root.
#
#   scripts/run_benches.sh [--quick] [extra benchmark args...]
#
#   --quick    pass a small --benchmark_min_time so the sweep finishes in
#              seconds (sanity runs, CI); omit for publication-grade numbers.
#
# Each driver writes BENCH_<name>.json (see bench/bench_main.h); this script
# only orchestrates and aggregates.
set -euo pipefail

cd "$(dirname "$0")/.."

EXTRA_ARGS=()
for arg in "$@"; do
  if [[ "$arg" == "--quick" ]]; then
    EXTRA_ARGS+=("--benchmark_min_time=0.01")
  else
    EXTRA_ARGS+=("$arg")
  fi
done

cmake --preset release
cmake --build --preset release -j "$(nproc)"

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

# Keep the committed baseline around so the fresh numbers can be checked
# against it after the sweep (set SQO_BENCH_SKIP_REGRESSION=1 to skip).
BASELINE=""
if [[ -f BENCH_pipeline.json ]]; then
  BASELINE="$OUT_DIR/baseline_BENCH_pipeline.json"
  cp BENCH_pipeline.json "$BASELINE"
fi

DRIVERS=(contradiction scope_reduction join_elimination asr
         pipeline_overhead ablation wal_append batch_eval serving)
for driver in "${DRIVERS[@]}"; do
  echo "=== bench_${driver} ==="
  SQO_BENCH_OUT_DIR="$OUT_DIR" \
    "build-release/bench/bench_${driver}" "${EXTRA_ARGS[@]}"
done

# Merge the per-driver records into one top-level document.
if command -v jq >/dev/null 2>&1; then
  jq -s '{benches: .}' "$OUT_DIR"/BENCH_*.json > BENCH_pipeline.json
else
  python3 - "$OUT_DIR" <<'EOF'
import json, glob, sys
docs = [json.load(open(p)) for p in sorted(glob.glob(sys.argv[1] + "/BENCH_*.json"))]
with open("BENCH_pipeline.json", "w") as f:
    json.dump({"benches": docs}, f, indent=1)
    f.write("\n")
EOF
fi

echo "wrote $(pwd)/BENCH_pipeline.json ($(jq '.benches | length' BENCH_pipeline.json 2>/dev/null || echo "${#DRIVERS[@]}") drivers)"

# Fail the run when any named counter or (non-noise) time regressed more
# than 25% against the committed baseline.
if [[ -n "$BASELINE" && -z "${SQO_BENCH_SKIP_REGRESSION:-}" ]]; then
  python3 scripts/check_bench_regression.py "$BASELINE" BENCH_pipeline.json
fi
