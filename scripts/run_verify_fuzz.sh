#!/usr/bin/env bash
# Rewrite-verifier driver: build the ASan+UBSan preset and run every test
# with the `verify` ctest label under the sanitizers — the per-obligation
# unit tests (SQO-A015..A017), the sqo_verify CLI smokes, the corruption
# probes (an unsound catalog must be caught by BOTH the static verifier
# and the differential evaluation oracle) and the seeded differential
# fuzz loop. Iteration count and seed are env-tunable, so this script can
# run a short deterministic pass in CI and a long randomized soak locally.
#
# Usage: scripts/run_verify_fuzz.sh [--no-build] [iters [seed]]
#   iters — fuzz iterations (default 3; try 25+ for a soak)
#   seed  — fuzz base seed (default: current time, printed for repro)
set -euo pipefail
cd "$(dirname "$0")/.."

build=1
case "${1:-}" in
  --no-build) build=0; shift ;;
esac
iters="${1:-3}"
seed="${2:-$(date +%s)}"

if [[ "$build" -eq 1 ]]; then
  echo "== configuring + building asan preset =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" >/dev/null
fi

echo "== verifier tests under ASan/UBSan (iters=$iters seed=$seed) =="
if ! SQO_VERIFY_FUZZ_ITERS="$iters" SQO_VERIFY_FUZZ_SEED="$seed" \
    ctest --preset verify-asan; then
  echo "verify suite FAILED (repro: scripts/run_verify_fuzz.sh --no-build $iters $seed)"
  exit 1
fi
echo "verify OK"
