#!/usr/bin/env python3
"""Compare a fresh BENCH_pipeline.json against a committed baseline.

Usage:
    check_bench_regression.py BASELINE CURRENT [--threshold 0.25]
                              [--min-time-ns 200000]

Both files use the run_benches.sh layout:

    {"benches": [{"bench": "<driver>", "runs": [
        {"name": "...", "real_time_ns": ..., "counters": {...}}, ...]}]}

A run is matched across files by (driver, run name). The check fails when:
  * a baseline run is missing from the current file (coverage loss);
  * a run's real_time_ns grew by more than --threshold (only for runs
    whose baseline time is at least --min-time-ns — sub-threshold runs
    are too noisy for a ratio test);
  * a latency-quantile counter (name matching `_p<digits>_ns`, e.g.
    `latency_p50_ns` / `latency_p99_ns` from a histogram summary) grew by
    more than --threshold — one-sided, like the time check, and under the
    same --min-time-ns noise floor: a faster distribution is never a
    regression;
  * any other named counter drifted by more than --threshold in either
    direction (counters are semantic outputs — alternative counts, costs —
    so any large drift signals a behavior change, not an optimization).
    Rate counters named `qps` are informational and never gated (they are
    the reciprocal of the already-gated latency).

Exit status: 0 clean, 1 regressions found, 2 usage/IO error.
"""

import argparse
import json
import re
import sys

# Counters carrying histogram quantiles of a duration distribution.
QUANTILE_COUNTER = re.compile(r"_p\d+_ns$")


def load_runs(path):
    """Returns {(driver, run name): run dict}."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    runs = {}
    for bench in doc.get("benches", []):
        driver = bench.get("bench", "?")
        for run in bench.get("runs", []):
            runs[(driver, run.get("name", "?"))] = run
    return runs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum allowed relative drift (default 0.25)")
    parser.add_argument("--min-time-ns", type=float, default=200_000.0,
                        help="skip the time check for baseline runs faster "
                             "than this (ratio tests on microsecond runs "
                             "are noise)")
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    current = load_runs(args.current)
    if not baseline:
        print(f"check_bench_regression: no runs in baseline {args.baseline}",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    for key, base_run in sorted(baseline.items()):
        driver, name = key
        cur_run = current.get(key)
        if cur_run is None:
            failures.append(f"{driver}/{name}: missing from current results")
            continue

        base_time = base_run.get("real_time_ns")
        cur_time = cur_run.get("real_time_ns")
        if (isinstance(base_time, (int, float)) and base_time >= args.min_time_ns
                and isinstance(cur_time, (int, float))):
            if cur_time > base_time * (1.0 + args.threshold):
                failures.append(
                    f"{driver}/{name}: real_time_ns {base_time:.0f} -> "
                    f"{cur_time:.0f} (+{100 * (cur_time / base_time - 1):.1f}%)")

        base_counters = base_run.get("counters", {}) or {}
        cur_counters = cur_run.get("counters", {}) or {}
        for counter, base_value in sorted(base_counters.items()):
            if not isinstance(base_value, (int, float)):
                continue
            cur_value = cur_counters.get(counter)
            if not isinstance(cur_value, (int, float)):
                failures.append(f"{driver}/{name}: counter '{counter}' missing")
                continue
            if counter == "qps":
                continue
            if QUANTILE_COUNTER.search(counter):
                # Latency quantile: one-sided, with the time-check noise
                # floor (a p50 of a few microseconds is all jitter).
                if (base_value >= args.min_time_ns
                        and cur_value > base_value * (1.0 + args.threshold)):
                    failures.append(
                        f"{driver}/{name}: quantile '{counter}' "
                        f"{base_value:.0f} -> {cur_value:.0f} "
                        f"(+{100 * (cur_value / base_value - 1):.1f}%)")
                continue
            limit = abs(base_value) * args.threshold
            if abs(cur_value - base_value) > limit:
                failures.append(
                    f"{driver}/{name}: counter '{counter}' {base_value} -> "
                    f"{cur_value} (drift > {100 * args.threshold:.0f}%)")

    if failures:
        print(f"check_bench_regression: {len(failures)} regression(s) vs "
              f"{args.baseline}:")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print(f"check_bench_regression: OK — {len(baseline)} runs within "
          f"{100 * args.threshold:.0f}% of {args.baseline}")


if __name__ == "__main__":
    main()
