#!/usr/bin/env bash
# Static-analysis driver:
#   1. configure the `lint` preset (compile_commands.json export),
#   2. clang-tidy over src/ with the checked-in .clang-tidy profile
#      (skipped with a notice when clang-tidy is not installed),
#   3. build the `asan` preset and run its smoke-labeled tests so the
#      sanitizers cover the analyzer, pipeline and tools end to end, then
#      the obs-labeled profiler/journal/exporter tests (the exporter's
#      background thread and the journal's flush path are exactly where
#      ASan pays off), then the recovery-labeled crash tests (short
#      deterministic loop; scripts/run_recovery.sh drives longer
#      randomized soaks), then the verify-labeled rewrite-verifier tests
#      (short deterministic fuzz pass; scripts/run_verify_fuzz.sh drives
#      longer soaks),
#   4. build the `tsan` preset and run the perf-labeled tests (thread
#      pool, lazy indexes, parallel profiling) and the serving-labeled
#      tests (epoch store, session queues, admission control, concurrent
#      chaos) under ThreadSanitizer — skipped with a notice when the
#      toolchain can't link -fsanitize=thread.
#
# Usage: scripts/run_static_analysis.sh [--tidy-only|--sanitize-only]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="all"
case "${1:-}" in
  --tidy-only) mode="tidy" ;;
  --sanitize-only) mode="sanitize" ;;
  "") ;;
  *) echo "usage: $0 [--tidy-only|--sanitize-only]" >&2; exit 2 ;;
esac

failures=0

run_tidy() {
  cmake --preset lint >/dev/null
  local tidy=""
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17; do
    if command -v "$candidate" >/dev/null 2>&1; then tidy="$candidate"; break; fi
  done
  if [[ -z "$tidy" ]]; then
    echo "== clang-tidy not installed; skipping tidy pass (sanitizers still run) =="
    return 0
  fi
  echo "== $tidy over src/ =="
  # xargs -P: clang-tidy is single-threaded per TU.
  if ! find src -name '*.cc' -print0 |
      xargs -0 -P "$(nproc)" -n 4 "$tidy" -p build-lint --quiet; then
    failures=1
  fi
}

run_sanitizers() {
  echo "== ASan/UBSan smoke tests =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" >/dev/null
  if ! ctest --preset smoke-asan; then
    failures=1
  fi
  echo "== ASan/UBSan observability tests =="
  if ! ctest --preset obs-asan; then
    failures=1
  fi
  echo "== ASan/UBSan crash-recovery tests =="
  # Short deterministic crash loop + chaos harness (the `recovery` label
  # includes the `chaos`-labeled tests); scripts/run_recovery.sh soaks
  # longer and sweeps a chaos seed matrix.
  if ! SQO_CRASH_LOOP_ITERS=4 SQO_CRASH_LOOP_SEED=20260807 \
      ctest --preset recovery-asan; then
    failures=1
  fi
  echo "== ASan/UBSan rewrite-verifier tests =="
  # Short deterministic fuzz pass; scripts/run_verify_fuzz.sh soaks longer.
  if ! SQO_VERIFY_FUZZ_ITERS=2 SQO_VERIFY_FUZZ_SEED=13 \
      ctest --preset verify-asan; then
    failures=1
  fi
}

tsan_supported() {
  local probe
  probe="$(mktemp -d)"
  printf 'int main() { return 0; }\n' > "$probe/t.cc"
  local ok=0
  if ! c++ -fsanitize=thread "$probe/t.cc" -o "$probe/t" >/dev/null 2>&1; then
    ok=1
  fi
  rm -rf "$probe"
  return "$ok"
}

run_tsan() {
  if ! tsan_supported; then
    echo "== toolchain cannot link -fsanitize=thread; skipping TSan pass =="
    return 0
  fi
  echo "== TSan perf-path tests =="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$(nproc)" >/dev/null
  if ! ctest --preset perf-tsan; then
    failures=1
  fi
  echo "== TSan serving tests =="
  # Short chaos loop here; scripts/run_robustness.sh and the env knobs
  # (SQO_SERVING_CHAOS_ITERS/_CLIENTS/_SEED) drive longer soaks.
  if ! SQO_SERVING_CHAOS_ITERS=4 ctest --preset serving-tsan; then
    failures=1
  fi
}

[[ "$mode" != "sanitize" ]] && run_tidy
[[ "$mode" != "tidy" ]] && run_sanitizers
[[ "$mode" != "tidy" ]] && run_tsan

if [[ "$failures" -ne 0 ]]; then
  echo "static analysis FAILED"
  exit 1
fi
echo "static analysis OK"
