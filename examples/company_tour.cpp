// The same optimizer on a different schema: a short tour of the company
// workload, demonstrating schema independence plus the beyond-the-paper
// features — constraint discovery, data-side validation, and disjunctive
// queries with disjunct elimination.
//
// Run: build/examples/company_tour

#include <cstdio>

#include "engine/constraint_checker.h"
#include "engine/cost_model.h"
#include "engine/database.h"
#include "engine/ic_discovery.h"
#include "workload/company.h"

int main() {
  using namespace sqo;  // NOLINT: example brevity

  auto pipeline_or = workload::MakeCompanyPipeline();
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "%s\n", pipeline_or.status().ToString().c_str());
    return 1;
  }
  const core::Pipeline& pipeline = *pipeline_or;
  engine::Database db(&pipeline.schema());
  if (auto s = workload::PopulateCompany({}, pipeline, &db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  engine::EngineCostModel cost_model(&db.store());

  // 1. Data-side validation: the generated company database satisfies
  //    every compiled constraint.
  auto report =
      engine::CheckConstraints(db, pipeline.compiled().all_ics, 4);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("== Consistency check ==\nviolations: %zu, skipped (computed "
              "methods): %zu\n\n",
              report->violations.size(), report->skipped.size());

  // 2. Contradiction detection with a different method (bonus) and class
  //    hierarchy (Manager ⊂ Staff).
  auto contradiction = pipeline.OptimizeText(
      "select m.name from m in Manager where m.bonus(2.0) < 10");
  std::printf("== Manager bonus < 10 ==\n%s\n\n",
              contradiction.ok() && contradiction->contradiction
                  ? contradiction->contradiction_reason.c_str()
                  : "no contradiction?!");

  // 3. Disjunct elimination.
  auto disjunctive = pipeline.OptimizeDisjunctiveText(
      "select m.name from m in Manager "
      "where m.bonus(2.0) < 10 or m.budget > 300K",
      &cost_model);
  if (disjunctive.ok()) {
    std::printf("== Disjunctive query ==\n%zu disjuncts, %zu live\n\n",
                disjunctive->disjuncts.size(), disjunctive->live.size());
  }

  // 4. Constraint discovery: mine soft ICs from the data and show one.
  auto discovered = engine::DiscoverConstraints(db);
  std::printf("== Discovered constraints (%zu) — first five ==\n",
              discovered.size());
  for (size_t i = 0; i < discovered.size() && i < 5; ++i) {
    std::printf("  [%s] %s\n", discovered[i].label.c_str(),
                discovered[i].ToString().c_str());
  }

  // 5. The §5.4 pattern on the two-hop company ASR.
  auto asr = pipeline.OptimizeText(
      "select d from s in Staff, p in s.assigned, d in p.owned_by "
      "where s.badge = \"S1\"",
      &cost_model);
  if (asr.ok()) {
    const core::Alternative& best = asr->alternatives[asr->best_index];
    std::printf("\n== ASR query, chosen rewriting ==\n%s\n",
                best.datalog.ToString().c_str());
    for (const std::string& step : best.derivation) {
      std::printf("  . %s\n", step.c_str());
    }
  }
  return 0;
}
