// §5.3 — Join reduction using key constraints.
//
// The query pairs students with TAs taking a section taught by a professor
// *of the same name*, projecting a `list` constructor. `name` is a key on
// Person, so the two Faculty retrievals joined on name denote the same
// object: SQO replaces the attribute join with an OID comparison (the
// paper's Q') and, in the fully reduced variant, collapses the two faculty
// atoms into one. The `list` constructor survives Step 4 untouched.
//
// Run: build/examples/join_elimination

#include <cstdio>

#include "engine/cost_model.h"
#include "engine/database.h"
#include "workload/university.h"

int main() {
  using namespace sqo;  // NOLINT: example brevity

  auto pipeline_or = workload::MakeUniversityPipeline();
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "%s\n", pipeline_or.status().ToString().c_str());
    return 1;
  }
  const core::Pipeline& pipeline = *pipeline_or;

  engine::Database db(&pipeline.schema());
  workload::GeneratorConfig config;
  config.n_students = 300;
  if (auto s = workload::PopulateUniversity(config, pipeline, &db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  engine::EngineCostModel cost_model(&db.store());

  const std::string oql = workload::QueryJoinElimination();
  std::printf("== Input OQL ==\n%s\n", oql.c_str());

  auto result_or = pipeline.OptimizeText(oql, &cost_model);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const core::PipelineResult& result = *result_or;

  std::printf("\n== DATALOG (Step 2) ==\n%s\n",
              result.original_datalog.ToString().c_str());
  std::printf("\n%zu equivalent queries produced; chosen [%d]:\n",
              result.alternatives.size(), result.best_index);
  const core::Alternative& best = result.alternatives[result.best_index];
  std::printf("%s\n", best.datalog.ToString().c_str());
  for (const std::string& step : best.derivation) {
    std::printf("  . %s\n", step.c_str());
  }
  if (best.oql_ok) {
    std::printf("\n== Optimized OQL (Step 4, constructor preserved) ==\n%s\n",
                best.oql.ToString().c_str());
  }

  engine::EvalStats before, after;
  auto rows_before = db.Run(result.original_datalog, &before);
  auto rows_after = db.Run(best.datalog, &after);
  if (!rows_before.ok() || !rows_after.ok()) return 1;
  std::printf("\n== Measured ==\n");
  std::printf("original : %s\n", before.ToString().c_str());
  std::printf("optimized: %s\n", after.ToString().c_str());
  std::printf("answers  : %zu vs %zu\n", rows_before->size(), rows_after->size());
  return rows_before->size() == rows_after->size() ? 0 : 1;
}
