// Interactive SQO shell over the university schema: type OQL queries and
// see Steps 2–4 plus the evaluated answers of the chosen rewriting.
//
//   $ build/examples/sqo_shell
//   oql> select x.name from x in Person where x.age < 30
//   ...
//   oql> \residues faculty      -- dump residues attached to a relation
//   oql> \ics                   -- list all compiled integrity constraints
//   oql> \plan select ...       -- show the evaluator's plan for a query
//   oql> \timing                -- toggle per-query span tree + metrics
//   oql> \explain select ...    -- derivations + per-alternative counters
//   oql> \check                 -- static-analysis report for the IC set
//   oql> \check select ...      -- lint a query without running it
//   oql> \deadline 50           -- bound Step 3 to 50ms (0 clears); expiry
//                                  degrades to the original query
//   oql> \save db_dir           -- attach crash-safe storage: current state
//                                  becomes the persisted baseline, every
//                                  later mutation is WAL-logged
//   oql> \open db_dir           -- recover a persisted database (replaces
//                                  the in-memory one)
//   oql> \checkpoint            -- snapshot now + truncate the WAL
//   oql> \quit

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "analysis/analyzer.h"
#include "common/context.h"
#include "engine/cost_model.h"
#include "engine/database.h"
#include "engine/planner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oql/parser.h"
#include "storage/manager.h"
#include "workload/university.h"

namespace {

void PrintObservability(const sqo::obs::Tracer& tracer,
                        const sqo::obs::MetricsRegistry& metrics) {
  std::printf("-- spans --\n%s", tracer.ToText().c_str());
  const std::string text = metrics.ToText();
  if (!text.empty()) std::printf("-- metrics --\n%s", text.c_str());
}

/// Runs `fn` under a fresh ExecutionContext bounded by `deadline_ms`
/// (0 = ungoverned). The scope covers optimization only: a degraded
/// result must still be evaluable, and a latched (expired) context would
/// fail the evaluator too.
template <typename Fn>
auto WithDeadline(uint64_t deadline_ms, Fn&& fn) {
  sqo::ExecutionContext context;
  std::optional<sqo::ScopedContext> governance;
  if (deadline_ms > 0) {
    context.SetDeadlineAfter(std::chrono::milliseconds(deadline_ms));
    governance.emplace(&context);
  }
  return fn();
}

void RunQuery(const sqo::core::Pipeline& pipeline, const sqo::engine::Database& db,
              const sqo::engine::EngineCostModel& cost_model,
              const std::string& oql, bool plan_only, uint64_t deadline_ms) {
  // Disjunctive conditions go through the union pipeline with per-disjunct
  // contradiction elimination.
  auto parsed = sqo::oql::ParseOqlDisjunctive(oql);
  if (parsed.ok() && parsed->size() > 1) {
    auto dres = WithDeadline(deadline_ms, [&] {
      return pipeline.OptimizeDisjunctiveText(oql, &cost_model);
    });
    if (!dres.ok()) {
      std::printf("error: %s\n", dres.status().ToString().c_str());
      return;
    }
    std::printf("%zu disjuncts, %zu live after elimination\n",
                dres->disjuncts.size(), dres->live.size());
    size_t total = 0;
    for (size_t i = 0; i < dres->disjuncts.size(); ++i) {
      const auto& d = dres->disjuncts[i];
      if (d.degraded) {
        std::printf("  [%zu] DEGRADED: %s\n", i, d.degradation_reason.c_str());
      }
      if (d.contradiction) {
        std::printf("  [%zu] ELIMINATED: %s\n", i,
                    d.contradiction_reason.c_str());
        continue;
      }
      if (d.alternatives.empty()) {
        std::printf("  [%zu] (no alternatives)\n", i);
        continue;
      }
      const auto& best = d.alternatives[d.best_index];
      auto rows = db.Run(best.datalog);
      std::printf("  [%zu] %s -> %zu rows\n", i,
                  best.datalog.ToString().c_str(),
                  rows.ok() ? rows->size() : 0);
      if (rows.ok()) total += rows->size();
    }
    std::printf("[union <= %zu rows before dedup]\n", total);
    return;
  }
  auto result = WithDeadline(deadline_ms, [&] {
    return pipeline.OptimizeText(oql, &cost_model);
  });
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("datalog: %s\n", result->original_datalog.ToString().c_str());
  if (result->degraded) {
    std::printf("DEGRADED — falling back to the original query:\n  %s\n",
                result->degradation_reason.c_str());
  }
  if (result->contradiction) {
    std::printf("CONTRADICTION — the query is provably empty:\n  %s\n",
                result->contradiction_reason.c_str());
    return;
  }
  if (result->alternatives.empty()) {
    std::printf("error: optimizer produced no alternatives\n");
    return;
  }
  const sqo::core::Alternative& best = result->alternatives[result->best_index];
  std::printf("%zu equivalent queries; chosen (est. cost %.1f):\n  %s\n",
              result->alternatives.size(), best.cost,
              best.datalog.ToString().c_str());
  for (const std::string& step : best.derivation) {
    std::printf("    . %s\n", step.c_str());
  }
  if (best.oql_ok && !best.derivation.empty()) {
    std::printf("optimized OQL:\n%s\n", best.oql.ToString().c_str());
  }
  if (plan_only) {
    std::printf("%s", sqo::engine::PlanQuery(best.datalog, db.store())
                          .ToString()
                          .c_str());
    return;
  }
  sqo::engine::EvalStats stats;
  auto rows = db.Run(best.datalog, &stats);
  if (!rows.ok()) {
    std::printf("evaluation error: %s\n", rows.status().ToString().c_str());
    return;
  }
  const size_t shown = std::min<size_t>(rows->size(), 10);
  for (size_t i = 0; i < shown; ++i) {
    std::string line;
    for (const sqo::Value& v : (*rows)[i]) line += v.ToString() + "  ";
    std::printf("  %s\n", line.c_str());
  }
  if (rows->size() > shown) {
    std::printf("  ... (%zu rows total)\n", rows->size());
  }
  std::printf("[%zu rows; %s]\n", rows->size(), stats.ToString().c_str());
}

/// \explain: Steps 2–4 with full derivations, per-alternative evaluator
/// counters, and the span tree with per-phase durations — no result rows.
void ExplainQuery(const sqo::core::Pipeline& pipeline,
                  sqo::engine::Database& db,
                  const sqo::engine::EngineCostModel& cost_model,
                  const std::string& oql, uint64_t deadline_ms) {
  sqo::obs::Tracer tracer;
  sqo::obs::MetricsRegistry metrics;
  sqo::obs::ScopedTracer install_tracer(&tracer);
  sqo::obs::ScopedMetrics install_metrics(&metrics);

  auto result = WithDeadline(deadline_ms, [&] {
    return pipeline.OptimizeText(oql, &cost_model);
  });
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("datalog: %s\n", result->original_datalog.ToString().c_str());
  if (result->degraded) {
    std::printf("DEGRADED — falling back to the original query:\n  %s\n",
                result->degradation_reason.c_str());
  }
  if (result->contradiction) {
    std::printf("CONTRADICTION — the query is provably empty:\n  %s\n",
                result->contradiction_reason.c_str());
    PrintObservability(tracer, metrics);
    return;
  }
  if (auto s = db.ProfileAlternatives(&*result); !s.ok()) {
    std::printf("note: some alternatives failed to evaluate: %s\n",
                s.ToString().c_str());
  }
  for (size_t i = 0; i < result->alternatives.size(); ++i) {
    const sqo::core::Alternative& alt = result->alternatives[i];
    std::printf("[%zu]%s est. cost %.1f\n  %s\n",
                i, static_cast<int>(i) == result->best_index ? " *chosen*" : "",
                alt.cost, alt.datalog.ToString().c_str());
    for (const std::string& step : alt.derivation) {
      std::printf("    . %s\n", step.c_str());
    }
    if (alt.evaluated) {
      std::printf("    eval: %s\n", alt.eval_stats.ToString().c_str());
    } else {
      std::printf("    eval: (failed)\n");
    }
  }
  PrintObservability(tracer, metrics);
}

/// \check: print the pipeline's stored IC/residue analysis report, or lint
/// a single query (translated but never optimized or evaluated).
void CheckCommand(const sqo::core::Pipeline& pipeline, const std::string& arg) {
  if (arg.empty()) {
    const sqo::analysis::AnalysisReport& report = pipeline.ic_report();
    std::fputs(report.ToString().c_str(), stdout);
    std::printf("IC set + compiled residues: %s\n", report.Summary().c_str());
    return;
  }
  auto parsed = sqo::oql::ParseOql(arg);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  auto translated = sqo::translate::TranslateQuery(pipeline.schema(), *parsed);
  if (!translated.ok()) {
    std::printf("translation error: %s\n",
                translated.status().ToString().c_str());
    return;
  }
  std::printf("datalog: %s\n", translated->query.ToString().c_str());
  sqo::analysis::AnalysisReport report = sqo::analysis::AnalyzeQuery(
      pipeline.schema(), translated->query, pipeline.options().analyzer);
  std::fputs(report.ToString().c_str(), stdout);
  std::printf("%s\n", report.Summary().c_str());
}

void PrintRecovery(const sqo::storage::RecoveryInfo& info) {
  if (info.created) {
    std::printf("initialized storage (baseline checkpoint written)\n");
  } else {
    std::printf("recovered %s: snapshot LSN %llu, %llu WAL records replayed",
                info.snapshot_path.c_str(),
                static_cast<unsigned long long>(info.snapshot_lsn),
                static_cast<unsigned long long>(info.replayed_records));
    if (info.truncated_bytes > 0) {
      std::printf(", %llu bytes truncated off the log tail",
                  static_cast<unsigned long long>(info.truncated_bytes));
    }
    std::printf("\n");
  }
  if (info.degraded) {
    std::printf("DEGRADED: %s\n", info.degradation_reason.c_str());
  }
  if (info.catalog_loaded) {
    std::printf("stored catalog: %llu ICs, %llu residues (schema %s)\n",
                static_cast<unsigned long long>(info.catalog.ic_count),
                static_cast<unsigned long long>(info.catalog.total_residues),
                info.catalog.schema_hash.ToString().c_str());
  }
  if (!info.lint.diagnostics.empty()) {
    std::fputs(info.lint.ToString().c_str(), stdout);
  }
}

}  // namespace

int main() {
  auto pipeline_or = sqo::workload::MakeUniversityPipeline();
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "%s\n", pipeline_or.status().ToString().c_str());
    return 1;
  }
  const sqo::core::Pipeline& pipeline = *pipeline_or;
  auto db = std::make_unique<sqo::engine::Database>(&pipeline.schema());
  sqo::workload::GeneratorConfig config;
  if (auto s = sqo::workload::PopulateUniversity(config, pipeline, db.get());
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto cost_model =
      std::make_unique<sqo::engine::EngineCostModel>(&db->store());

  std::printf(
      "sqo shell — university schema loaded (%zu objects, %zu residues)\n"
      "commands: \\ics  \\residues <relation>  \\plan <oql>  \\explain <oql>  "
      "\\check [oql]  \\deadline <ms>  \\timing  \\save <dir>  \\open <dir>  "
      "\\checkpoint  \\quit\n",
      db->store().object_count(), pipeline.compiled().total_residues());

  bool timing = false;
  uint64_t deadline_ms = 0;
  std::string line;
  while (true) {
    std::printf("oql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\timing") {
      timing = !timing;
      std::printf("timing %s\n", timing ? "on" : "off");
      continue;
    }
    if (line == "\\ics") {
      for (const sqo::datalog::Clause& ic : pipeline.compiled().all_ics) {
        std::printf("[%s] %s\n", ic.label.c_str(), ic.ToString().c_str());
      }
      continue;
    }
    if (line.rfind("\\residues ", 0) == 0) {
      const std::string relation = line.substr(10);
      const auto* residues = pipeline.compiled().ResiduesFor(relation);
      if (residues == nullptr) {
        std::printf("no residues attached to '%s'\n", relation.c_str());
        continue;
      }
      for (const sqo::core::Residue& r : *residues) {
        std::printf("%s   [%s]\n", r.ToString().c_str(), r.source.c_str());
      }
      continue;
    }
    if (line.rfind("\\deadline", 0) == 0) {
      const std::string arg = line.size() > 9 ? line.substr(10) : "";
      char* end = nullptr;
      const unsigned long long ms =
          arg.empty() ? 0 : std::strtoull(arg.c_str(), &end, 10);
      if (!arg.empty() && (end == nullptr || *end != '\0')) {
        std::printf("usage: \\deadline <ms>   (0 clears the deadline)\n");
        continue;
      }
      deadline_ms = static_cast<uint64_t>(ms);
      if (deadline_ms == 0) {
        std::printf("deadline cleared\n");
      } else {
        std::printf("optimization deadline set to %llu ms per query\n", ms);
      }
      continue;
    }
    if (line == "\\check") {
      CheckCommand(pipeline, "");
      continue;
    }
    if (line.rfind("\\check ", 0) == 0) {
      CheckCommand(pipeline, line.substr(7));
      continue;
    }
    if (line.rfind("\\save ", 0) == 0) {
      const std::string dir = line.substr(6);
      if (db->storage_attached()) {
        std::printf("storage already attached; \\checkpoint to flush\n");
        continue;
      }
      sqo::storage::OpenOptions options;
      options.compiled = &pipeline.compiled();
      if (auto s = db->Open(dir, options); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      PrintRecovery(*db->recovery_info());
      std::printf("storage attached at %s\n", dir.c_str());
      continue;
    }
    if (line.rfind("\\open ", 0) == 0) {
      const std::string dir = line.substr(6);
      auto fresh = std::make_unique<sqo::engine::Database>(&pipeline.schema());
      // Methods and index definitions are code, not data: re-register them
      // before recovery so replayed objects index correctly.
      if (auto s = sqo::workload::SetupUniversityRuntime(fresh.get());
          !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      sqo::storage::OpenOptions options;
      options.compiled = &pipeline.compiled();
      if (auto s = fresh->Open(dir, options); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      PrintRecovery(*fresh->recovery_info());
      if (db->storage_attached()) {
        if (auto s = db->CloseStorage(); !s.ok()) {
          std::printf("note: closing previous storage: %s\n",
                      s.ToString().c_str());
        }
      }
      db = std::move(fresh);
      cost_model =
          std::make_unique<sqo::engine::EngineCostModel>(&db->store());
      std::printf("database switched to %s (%zu objects)\n", dir.c_str(),
                  db->store().object_count());
      continue;
    }
    if (line == "\\checkpoint") {
      if (auto s = db->Checkpoint(); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("checkpoint written\n");
      }
      continue;
    }
    if (line.rfind("\\plan ", 0) == 0) {
      RunQuery(pipeline, *db, *cost_model, line.substr(6), /*plan_only=*/true,
               deadline_ms);
      continue;
    }
    if (line.rfind("\\explain ", 0) == 0) {
      ExplainQuery(pipeline, *db, *cost_model, line.substr(9), deadline_ms);
      continue;
    }
    if (timing) {
      sqo::obs::Tracer tracer;
      sqo::obs::MetricsRegistry metrics;
      sqo::obs::ScopedTracer install_tracer(&tracer);
      sqo::obs::ScopedMetrics install_metrics(&metrics);
      RunQuery(pipeline, *db, *cost_model, line, /*plan_only=*/false,
               deadline_ms);
      PrintObservability(tracer, metrics);
    } else {
      RunQuery(pipeline, *db, *cost_model, line, /*plan_only=*/false,
               deadline_ms);
    }
  }
  return 0;
}
