// Interactive SQO shell over the university schema: type OQL queries and
// see Steps 2–4 plus the evaluated answers of the chosen rewriting.
//
//   $ build/examples/sqo_shell
//   oql> select x.name from x in Person where x.age < 30
//   ...
//   oql> \residues faculty      -- dump residues attached to a relation
//   oql> \ics                   -- list all compiled integrity constraints
//   oql> \plan select ...       -- show the evaluator's plan for a query
//   oql> \timing                -- toggle per-query span tree + metrics
//   oql> \explain select ...    -- derivations + per-alternative counters
//   oql> \profile select ...    -- EXPLAIN ANALYZE: execute the chosen
//                                  rewriting with operator-level profiling
//                                  (rows in/out, timings, IC attribution)
//   oql> \profile json select.. -- same, machine-readable JSON
//   oql> \slow 5                -- journal queries >= 5ms as slow (capture
//                                  their full profile; 0 disables)
//   oql> \journal [n]           -- last n journaled query events
//   oql> \journal flush f.jsonl -- append unflushed events to a JSONL file
//   oql> \metrics [json|prom]   -- session metrics (+ Prometheus format)
//   oql> \export <dir>          -- write metrics.json/.prom into dir once
//   oql> \export start <dir> [ms] / \export stop -- periodic exporter
//   oql> \check                 -- static-analysis report for the IC set
//   oql> \check select ...      -- lint a query without running it
//   oql> \verify                -- prove every alternative of the five seed
//                                  queries equivalent to its original
//                                  (SQO-A015/A016/A017)
//   oql> \verify select ...     -- same, for one query
//   oql> \deadline 50           -- bound Step 3 to 50ms (0 clears); expiry
//                                  degrades to the original query
//   oql> \serve [clients]       -- in-process serving demo: start a server
//                                  over this database, run N concurrent
//                                  client sessions beside a writer, and
//                                  report snapshot epochs, latency and the
//                                  admission-control counters
//   oql> \save db_dir           -- attach crash-safe storage: current state
//                                  becomes the persisted baseline, every
//                                  later mutation is WAL-logged
//   oql> \open db_dir           -- recover a persisted database (replaces
//                                  the in-memory one)
//   oql> \checkpoint            -- snapshot now + truncate the WAL
//   oql> \quit

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/verifier.h"
#include "common/context.h"
#include "common/fileio.h"
#include "common/fingerprint.h"
#include "engine/cost_model.h"
#include "engine/database.h"
#include "engine/planner.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oql/parser.h"
#include "server/server.h"
#include "sqo/profile_attribution.h"
#include "storage/manager.h"
#include "workload/university.h"

namespace {

/// Session-wide observability: every query merges its counters here, the
/// journal rings completion events, and the QPS meter tracks the latency
/// distribution. The mutex exists for the periodic exporter, which
/// snapshots `metrics` from its background thread.
struct SessionObs {
  std::mutex mu;
  sqo::obs::MetricsRegistry metrics;
  sqo::obs::QueryJournal journal;
  sqo::obs::QpsMeter qps;

  void Merge(const sqo::obs::MetricsRegistry& local) {
    std::lock_guard<std::mutex> lock(mu);
    metrics.MergeFrom(local);
  }
  sqo::obs::MetricsRegistry SnapshotMetrics() {
    std::lock_guard<std::mutex> lock(mu);
    return metrics;
  }
};

std::string QueryFingerprint(const std::string& text) {
  sqo::FingerprintBuilder builder;
  for (char c : text) builder.Append(static_cast<unsigned char>(c));
  return builder.fingerprint().ToString();
}

bool IsGovernanceStatus(const sqo::Status& status) {
  return status.code() == sqo::StatusCode::kResourceExhausted ||
         status.code() == sqo::StatusCode::kCancelled;
}

void PrintObservability(const sqo::obs::Tracer& tracer,
                        const sqo::obs::MetricsRegistry& metrics) {
  std::printf("-- spans --\n%s", tracer.ToText().c_str());
  const std::string text = metrics.ToText();
  if (!text.empty()) std::printf("-- metrics --\n%s", text.c_str());
}

/// Runs `fn` under a fresh ExecutionContext bounded by `deadline_ms`
/// (0 = ungoverned). The scope covers optimization only: a degraded
/// result must still be evaluable, and a latched (expired) context would
/// fail the evaluator too.
template <typename Fn>
auto WithDeadline(uint64_t deadline_ms, Fn&& fn) {
  sqo::ExecutionContext context;
  std::optional<sqo::ScopedContext> governance;
  if (deadline_ms > 0) {
    context.SetDeadlineAfter(std::chrono::milliseconds(deadline_ms));
    governance.emplace(&context);
  }
  return fn();
}

void RunQuery(const sqo::core::Pipeline& pipeline, const sqo::engine::Database& db,
              const sqo::engine::EngineCostModel& cost_model,
              const std::string& oql, bool plan_only, uint64_t deadline_ms,
              SessionObs* session) {
  const auto query_start = std::chrono::steady_clock::now();
  // Per-query local registry: merged into the session registry (and any
  // outer \timing registry) on every exit path.
  sqo::obs::MetricsRegistry* outer = sqo::obs::CurrentMetrics();
  sqo::obs::MetricsRegistry local;
  struct Merger {
    sqo::obs::MetricsRegistry* outer;
    SessionObs* session;
    sqo::obs::MetricsRegistry* local;
    ~Merger() {
      if (session != nullptr) session->Merge(*local);
      if (outer != nullptr) outer->MergeFrom(*local);
    }
  } merger{outer, session, &local};
  sqo::obs::ScopedMetrics install_local(&local);

  auto record = [&](std::string status, bool degraded, bool cancelled,
                    bool contradiction, int chosen, size_t n_alternatives,
                    const sqo::engine::EvalStats* stats,
                    const sqo::obs::QueryProfile* profile) {
    if (session == nullptr) return;
    const int64_t duration_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - query_start)
            .count();
    sqo::obs::QueryEvent event;
    event.fingerprint = QueryFingerprint(oql);
    event.query = oql;
    event.duration_ns = duration_ns;
    event.status = std::move(status);
    event.degraded = degraded;
    event.cancelled = cancelled;
    event.contradiction = contradiction;
    event.chosen_alternative = chosen;
    event.n_alternatives = n_alternatives;
    if (stats != nullptr) event.stats = *stats;
    if (profile != nullptr) event.profile_json = profile->ToJson();
    session->journal.Record(std::move(event));
    session->qps.Record(duration_ns);
    local.Record("shell.query", duration_ns);
  };

  // Disjunctive conditions go through the union pipeline with per-disjunct
  // contradiction elimination.
  auto parsed = sqo::oql::ParseOqlDisjunctive(oql);
  if (parsed.ok() && parsed->size() > 1) {
    auto dres = WithDeadline(deadline_ms, [&] {
      return pipeline.OptimizeDisjunctiveText(oql, &cost_model);
    });
    if (!dres.ok()) {
      std::printf("error: %s\n", dres.status().ToString().c_str());
      record("error: " + dres.status().ToString(), false,
             IsGovernanceStatus(dres.status()), false, 0, 0, nullptr, nullptr);
      return;
    }
    std::printf("%zu disjuncts, %zu live after elimination\n",
                dres->disjuncts.size(), dres->live.size());
    size_t total = 0;
    for (size_t i = 0; i < dres->disjuncts.size(); ++i) {
      const auto& d = dres->disjuncts[i];
      if (d.degraded) {
        std::printf("  [%zu] DEGRADED: %s\n", i, d.degradation_reason.c_str());
      }
      if (d.contradiction) {
        std::printf("  [%zu] ELIMINATED: %s\n", i,
                    d.contradiction_reason.c_str());
        continue;
      }
      if (d.alternatives.empty()) {
        std::printf("  [%zu] (no alternatives)\n", i);
        continue;
      }
      const auto& best = d.alternatives[d.best_index];
      auto rows = db.Run(best.datalog);
      std::printf("  [%zu] %s -> %zu rows\n", i,
                  best.datalog.ToString().c_str(),
                  rows.ok() ? rows->size() : 0);
      if (rows.ok()) total += rows->size();
    }
    std::printf("[union <= %zu rows before dedup]\n", total);
    record("ok", dres->degraded, false, dres->all_eliminated(), 0,
           dres->disjuncts.size(), nullptr, nullptr);
    return;
  }
  auto result = WithDeadline(deadline_ms, [&] {
    return pipeline.OptimizeText(oql, &cost_model);
  });
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    record("error: " + result.status().ToString(), false,
           IsGovernanceStatus(result.status()), false, 0, 0, nullptr, nullptr);
    return;
  }
  std::printf("datalog: %s\n", result->original_datalog.ToString().c_str());
  if (result->degraded) {
    std::printf("DEGRADED — falling back to the original query:\n  %s\n",
                result->degradation_reason.c_str());
  }
  if (result->contradiction) {
    std::printf("CONTRADICTION — the query is provably empty:\n  %s\n",
                result->contradiction_reason.c_str());
    record("ok", result->degraded, false, /*contradiction=*/true, 0, 0,
           nullptr, nullptr);
    return;
  }
  if (result->alternatives.empty()) {
    std::printf("error: optimizer produced no alternatives\n");
    return;
  }
  const sqo::core::Alternative& best = result->alternatives[result->best_index];
  std::printf("%zu equivalent queries; chosen (est. cost %.1f):\n  %s\n",
              result->alternatives.size(), best.cost,
              best.datalog.ToString().c_str());
  for (const std::string& step : best.derivation) {
    std::printf("    . %s\n", step.c_str());
  }
  if (best.oql_ok && !best.derivation.empty()) {
    std::printf("optimized OQL:\n%s\n", best.oql.ToString().c_str());
  }
  if (plan_only) {
    std::printf("%s", sqo::engine::PlanQuery(best.datalog, db.store())
                          .ToString()
                          .c_str());
    return;
  }
  // Evaluate with profiling on: the journal keeps the operator tree for
  // slow queries, and the cost is two clock reads per join step.
  auto run = db.ProfileQuery(best.datalog);
  if (!run.ok()) {
    std::printf("evaluation error: %s\n", run.status().ToString().c_str());
    record("error: " + run.status().ToString(), result->degraded,
           IsGovernanceStatus(run.status()), false, result->best_index,
           result->alternatives.size(), nullptr, nullptr);
    return;
  }
  sqo::core::AnnotateProfile(*result,
                             static_cast<size_t>(result->best_index),
                             &run->profile);
  const std::vector<std::vector<sqo::Value>>& rows = run->rows;
  const size_t shown = std::min<size_t>(rows.size(), 10);
  for (size_t i = 0; i < shown; ++i) {
    std::string line;
    for (const sqo::Value& v : rows[i]) line += v.ToString() + "  ";
    std::printf("  %s\n", line.c_str());
  }
  if (rows.size() > shown) {
    std::printf("  ... (%zu rows total)\n", rows.size());
  }
  std::printf("[%zu rows; %s]\n", rows.size(), run->stats.ToString().c_str());
  record("ok", result->degraded, false, false, result->best_index,
         result->alternatives.size(), &run->stats, &run->profile);
}

/// \explain: Steps 2–4 with full derivations, per-alternative evaluator
/// counters, and the span tree with per-phase durations — no result rows.
void ExplainQuery(const sqo::core::Pipeline& pipeline,
                  sqo::engine::Database& db,
                  const sqo::engine::EngineCostModel& cost_model,
                  const std::string& oql, uint64_t deadline_ms) {
  sqo::obs::Tracer tracer;
  sqo::obs::MetricsRegistry metrics;
  sqo::obs::ScopedTracer install_tracer(&tracer);
  sqo::obs::ScopedMetrics install_metrics(&metrics);

  auto result = WithDeadline(deadline_ms, [&] {
    return pipeline.OptimizeText(oql, &cost_model);
  });
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("datalog: %s\n", result->original_datalog.ToString().c_str());
  if (result->degraded) {
    std::printf("DEGRADED — falling back to the original query:\n  %s\n",
                result->degradation_reason.c_str());
  }
  if (result->contradiction) {
    std::printf("CONTRADICTION — the query is provably empty:\n  %s\n",
                result->contradiction_reason.c_str());
    PrintObservability(tracer, metrics);
    return;
  }
  if (auto s = db.ProfileAlternatives(&*result); !s.ok()) {
    std::printf("note: some alternatives failed to evaluate: %s\n",
                s.ToString().c_str());
  }
  for (size_t i = 0; i < result->alternatives.size(); ++i) {
    const sqo::core::Alternative& alt = result->alternatives[i];
    std::printf("[%zu]%s est. cost %.1f\n  %s\n",
                i, static_cast<int>(i) == result->best_index ? " *chosen*" : "",
                alt.cost, alt.datalog.ToString().c_str());
    for (const std::string& step : alt.derivation) {
      std::printf("    . %s\n", step.c_str());
    }
    if (alt.evaluated) {
      std::printf("    eval: %s\n", alt.eval_stats.ToString().c_str());
    } else {
      std::printf("    eval: (failed)\n");
    }
  }
  PrintObservability(tracer, metrics);
}

/// \profile [json] <oql>: EXPLAIN ANALYZE. Optimizes the query, executes
/// the chosen rewriting with operator-level profiling, annotates every
/// operator with the residue/IC that introduced its literal, and prints
/// the tree (or its JSON form). Extent scans over keyed classes are
/// linted (SQO-A014).
void ProfileCommand(const sqo::core::Pipeline& pipeline,
                    const sqo::engine::Database& db,
                    const sqo::engine::EngineCostModel& cost_model,
                    std::string arg, uint64_t deadline_ms) {
  bool as_json = false;
  if (arg.rfind("json ", 0) == 0) {
    as_json = true;
    arg = arg.substr(5);
  }
  auto result = WithDeadline(deadline_ms, [&] {
    return pipeline.OptimizeText(arg, &cost_model);
  });
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->contradiction) {
    std::printf("CONTRADICTION — the query is provably empty:\n  %s\n",
                result->contradiction_reason.c_str());
    return;
  }
  if (result->alternatives.empty()) {
    std::printf("error: optimizer produced no alternatives\n");
    return;
  }
  const sqo::core::Alternative& best = result->alternatives[result->best_index];
  auto run = db.ProfileQuery(best.datalog);
  if (!run.ok()) {
    std::printf("evaluation error: %s\n", run.status().ToString().c_str());
    return;
  }
  sqo::core::AnnotateProfile(*result,
                             static_cast<size_t>(result->best_index),
                             &run->profile);
  if (as_json) {
    std::printf("%s\n", run->profile.ToJson().c_str());
    return;
  }
  std::printf("chosen alternative [%d] of %zu:\n  %s\n", result->best_index,
              result->alternatives.size(), best.datalog.ToString().c_str());
  std::fputs(run->profile.ToText().c_str(), stdout);
  sqo::analysis::AnalysisReport lint =
      sqo::analysis::AnalyzeProfile(pipeline.schema(), run->profile);
  if (!lint.diagnostics.empty()) std::fputs(lint.ToString().c_str(), stdout);
}

/// \journal [n]: one line per retained event, newest last.
void PrintJournal(SessionObs* session, size_t limit) {
  const std::vector<sqo::obs::QueryEvent> events = session->journal.Snapshot();
  const size_t start = events.size() > limit ? events.size() - limit : 0;
  for (size_t i = start; i < events.size(); ++i) {
    const sqo::obs::QueryEvent& e = events[i];
    std::string flags;
    if (e.slow) flags += " SLOW";
    if (e.degraded) flags += " degraded";
    if (e.cancelled) flags += " cancelled";
    if (e.contradiction) flags += " contradiction";
    std::printf("#%llu %.3fms %s%s alt %d/%llu fp=%.12s  %s\n",
                static_cast<unsigned long long>(e.sequence),
                static_cast<double>(e.duration_ns) / 1e6, e.status.c_str(),
                flags.c_str(), e.chosen_alternative,
                static_cast<unsigned long long>(e.n_alternatives),
                e.fingerprint.c_str(), e.query.c_str());
  }
  const sqo::obs::QueryJournal::Counters c = session->journal.counters();
  std::printf("[%llu recorded, %llu slow, %llu overwritten, %llu flushed, "
              "%llu flush failures]\n",
              static_cast<unsigned long long>(c.recorded),
              static_cast<unsigned long long>(c.slow),
              static_cast<unsigned long long>(c.overwritten),
              static_cast<unsigned long long>(c.flushed),
              static_cast<unsigned long long>(c.flush_failures));
}

/// \check: print the pipeline's stored IC/residue analysis report, or lint
/// a single query (translated but never optimized or evaluated).
void CheckCommand(const sqo::core::Pipeline& pipeline, const std::string& arg) {
  if (arg.empty()) {
    std::fputs(
        sqo::analysis::RenderReport(pipeline.ic_report(), /*json=*/false)
            .c_str(),
        stdout);
    return;
  }
  auto parsed = sqo::oql::ParseOql(arg);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  auto translated = sqo::translate::TranslateQuery(pipeline.schema(), *parsed);
  if (!translated.ok()) {
    std::printf("translation error: %s\n",
                translated.status().ToString().c_str());
    return;
  }
  std::printf("datalog: %s\n", translated->query.ToString().c_str());
  sqo::analysis::AnalysisReport report = sqo::analysis::AnalyzeQuery(
      pipeline.schema(), translated->query, pipeline.options().analyzer);
  std::fputs(sqo::analysis::RenderReport(report, /*json=*/false).c_str(),
             stdout);
}

/// \verify [oql]: replay every alternative's derivation and prove each step
/// from "original ∧ IC catalog" (SQO-A015/A016/A017). With no argument,
/// certifies the five seed queries — the same corpus `sqo_verify` checks.
void VerifyCommand(const sqo::core::Pipeline& pipeline, const std::string& arg,
                   uint64_t deadline_ms) {
  std::vector<std::string> queries;
  if (arg.empty()) {
    queries = {sqo::workload::QueryExample2(),
               sqo::workload::QueryScopeReduction(),
               sqo::workload::QueryJoinElimination(),
               sqo::workload::QueryAsrDirect(),
               sqo::workload::QueryAsrIndirect()};
  } else {
    queries.push_back(arg);
  }
  sqo::analysis::AnalysisReport report;
  size_t alternatives = 0;
  bool all_sound = true;
  for (const std::string& oql : queries) {
    auto result = WithDeadline(deadline_ms,
                               [&] { return pipeline.OptimizeText(oql); });
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    auto verification = pipeline.Verify(*result);
    if (!verification.ok()) {
      std::printf("verification error: %s\n",
                  verification.status().ToString().c_str());
      return;
    }
    alternatives += verification->verdicts.size();
    all_sound = all_sound && verification->all_sound();
    report.Append(std::move(verification->report));
  }
  std::fputs(sqo::analysis::RenderReport(report, /*json=*/false).c_str(),
             stdout);
  std::printf("%zu alternatives over %zu queries: %s\n", alternatives,
              queries.size(),
              all_sound ? "all sound" : "UNSOUND REWRITES FOUND");
}

void PrintRecovery(const sqo::storage::RecoveryInfo& info) {
  if (info.created) {
    std::printf("initialized storage (baseline checkpoint written)\n");
  } else {
    std::printf("recovered %s: snapshot LSN %llu, %llu WAL records replayed",
                info.snapshot_path.c_str(),
                static_cast<unsigned long long>(info.snapshot_lsn),
                static_cast<unsigned long long>(info.replayed_records));
    if (info.truncated_bytes > 0) {
      std::printf(", %llu bytes truncated off the log tail",
                  static_cast<unsigned long long>(info.truncated_bytes));
    }
    std::printf("\n");
  }
  if (info.degraded) {
    std::printf("DEGRADED: %s\n", info.degradation_reason.c_str());
  }
  if (info.catalog_loaded) {
    std::printf("stored catalog: %llu ICs, %llu residues (schema %s)\n",
                static_cast<unsigned long long>(info.catalog.ic_count),
                static_cast<unsigned long long>(info.catalog.total_residues),
                info.catalog.schema_hash.ToString().c_str());
  }
  if (!info.lint.diagnostics.empty()) {
    std::fputs(info.lint.ToString().c_str(), stdout);
  }
}

void StatusCommand(const sqo::engine::Database& db) {
  const sqo::storage::StorageManager* storage = db.storage();
  if (storage == nullptr) {
    std::printf("storage: not attached (\\save <dir> or \\open <dir>)\n");
    return;
  }
  std::printf("storage: attached at %s — %s\n", storage->dir().c_str(),
              storage->healthy()
                  ? "healthy"
                  : "UNHEALTHY (appends refused; \\checkpoint to re-base)");
  std::printf("last recovery:\n  ");
  PrintRecovery(storage->recovery_info());
  const auto wal = storage->wal_stats();
  std::printf("wal: %llu segment(s), %llu bytes, appending to seq %llu, "
              "%llu rotation(s) this session, last LSN %llu\n",
              static_cast<unsigned long long>(wal.segments),
              static_cast<unsigned long long>(wal.bytes),
              static_cast<unsigned long long>(wal.current_seq),
              static_cast<unsigned long long>(wal.rotations),
              static_cast<unsigned long long>(storage->last_lsn()));
  const auto gc = storage->group_commit_stats();
  if (gc.batches == 0) {
    std::printf("group commit: no batches committed yet\n");
    return;
  }
  std::printf("group commit: %llu op(s) in %llu batch(es) (%.2f ops/fsync, "
              "max batch %llu, %llu failed batch(es))\n",
              static_cast<unsigned long long>(gc.ops),
              static_cast<unsigned long long>(gc.batches),
              static_cast<double>(gc.ops) / static_cast<double>(gc.batches),
              static_cast<unsigned long long>(gc.max_batch_ops),
              static_cast<unsigned long long>(gc.failed_batches));
}

/// \serve [clients]: in-process serving demo. Starts a Server over the
/// shell's database, runs `clients` concurrent sessions each issuing a
/// burst of snapshot reads while one writer session publishes mutations,
/// then prints what the serving layer saw: epochs, latency quantiles and
/// the admission-control counters. The writer's objects stay in the
/// database afterwards (they went through the primary like any mutation).
void ServeCommand(const sqo::core::Pipeline& pipeline,
                  sqo::engine::Database* db, const std::string& arg) {
  char* end = nullptr;
  const unsigned long long parsed =
      arg.empty() ? 4 : std::strtoull(arg.c_str(), &end, 10);
  if ((!arg.empty() && (end == nullptr || *end != '\0')) || parsed == 0 ||
      parsed > 64) {
    std::printf("usage: \\serve [clients]   (1-64, default 4)\n");
    return;
  }
  const size_t n_clients = static_cast<size_t>(parsed);
  constexpr size_t kReadsPerClient = 25;
  constexpr size_t kWrites = 10;

  sqo::server::ServerConfig config;
  config.workers = 4;
  config.replicas = 2;
  config.replica_setup = sqo::workload::SetupUniversityRuntime;
  sqo::server::Server server(&pipeline, db, std::move(config));
  if (auto s = server.Start(); !s.ok()) {
    std::printf("serve error: %s\n", s.ToString().c_str());
    return;
  }
  if (!server.lint().diagnostics.empty()) {
    std::fputs(server.lint().ToString().c_str(), stdout);
  }
  std::printf("server started: %zu client sessions x %zu reads + 1 writer "
              "session x %zu mutations\n",
              n_clients, kReadsPerClient, kWrites);

  const std::string read_query =
      "select x.name from x in Person where x.age < 30";
  std::atomic<size_t> read_failures{0};
  std::atomic<size_t> degraded_reads{0};
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  for (size_t c = 0; c < n_clients; ++c) {
    auto session = server.OpenSession("shell-" + std::to_string(c));
    clients.emplace_back([session, &read_query, &read_failures,
                          &degraded_reads] {
      for (size_t i = 0; i < kReadsPerClient; ++i) {
        const sqo::server::QueryResponse response = session->Query(read_query);
        if (!response.status.ok()) {
          read_failures.fetch_add(1, std::memory_order_relaxed);
        } else if (response.degraded) {
          degraded_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  auto writer = server.OpenSession("shell-writer");
  size_t write_failures = 0;
  uint64_t last_epoch = 0;
  for (size_t i = 0; i < kWrites; ++i) {
    const sqo::server::QueryResponse response =
        writer->SubmitMutation([i](sqo::engine::Database* primary) {
          return primary->store()
              .CreateObject(
                  "Person",
                  {{"name", sqo::Value::String("served_" + std::to_string(i))},
                   {"age", sqo::Value::Int(21 + static_cast<int>(i))}})
              .status();
        })->Wait();
    if (!response.status.ok()) {
      ++write_failures;
    } else {
      last_epoch = response.epoch;
    }
  }
  for (std::thread& t : clients) t.join();

  const sqo::obs::QpsMeter::Snapshot seen = server.Latency();
  std::printf("served %llu queries: p50 %.3fms p99 %.3fms (%.1f qps)\n",
              static_cast<unsigned long long>(seen.count),
              static_cast<double>(seen.p50_ns) / 1e6,
              static_cast<double>(seen.p99_ns) / 1e6, seen.qps);
  std::printf("writes: %zu published (last epoch %llu), %zu failed; "
              "degraded reads: %zu; read failures: %zu\n",
              kWrites - write_failures,
              static_cast<unsigned long long>(last_epoch), write_failures,
              degraded_reads.load(), read_failures.load());
  const std::string counters = server.MetricsSnapshot().ToText();
  if (!counters.empty()) std::fputs(counters.c_str(), stdout);
  server.Stop();
  std::printf("server stopped (database now has %zu objects)\n",
              db->store().object_count());
}

}  // namespace

int main() {
  auto pipeline_or = sqo::workload::MakeUniversityPipeline();
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "%s\n", pipeline_or.status().ToString().c_str());
    return 1;
  }
  const sqo::core::Pipeline& pipeline = *pipeline_or;
  auto db = std::make_unique<sqo::engine::Database>(&pipeline.schema());
  sqo::workload::GeneratorConfig config;
  if (auto s = sqo::workload::PopulateUniversity(config, pipeline, db.get());
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto cost_model =
      std::make_unique<sqo::engine::EngineCostModel>(&db->store());

  std::printf(
      "sqo shell — university schema loaded (%zu objects, %zu residues)\n"
      "commands: \\ics  \\residues <relation>  \\plan <oql>  \\explain <oql>  "
      "\\profile [json] <oql>  \\check [oql]  \\verify [oql]  "
      "\\deadline <ms>  \\timing  "
      "\\slow <ms>  \\journal [n | flush <path>]  \\metrics [json|prom]  "
      "\\export [start|stop] <dir>  \\serve [clients]  \\save <dir>  "
      "\\open <dir>  \\checkpoint  \\status  \\quit\n",
      db->store().object_count(), pipeline.compiled().total_residues());

  SessionObs session;
  std::unique_ptr<sqo::obs::PeriodicExporter> exporter;
  bool timing = false;
  uint64_t deadline_ms = 0;
  std::string line;
  while (true) {
    std::printf("oql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\timing") {
      timing = !timing;
      std::printf("timing %s\n", timing ? "on" : "off");
      continue;
    }
    if (line == "\\ics") {
      for (const sqo::datalog::Clause& ic : pipeline.compiled().all_ics) {
        std::printf("[%s] %s\n", ic.label.c_str(), ic.ToString().c_str());
      }
      continue;
    }
    if (line.rfind("\\residues ", 0) == 0) {
      const std::string relation = line.substr(10);
      const auto* residues = pipeline.compiled().ResiduesFor(relation);
      if (residues == nullptr) {
        std::printf("no residues attached to '%s'\n", relation.c_str());
        continue;
      }
      for (const sqo::core::Residue& r : *residues) {
        std::printf("%s   [%s]\n", r.ToString().c_str(), r.source.c_str());
      }
      continue;
    }
    if (line.rfind("\\deadline", 0) == 0) {
      const std::string arg = line.size() > 9 ? line.substr(10) : "";
      char* end = nullptr;
      const unsigned long long ms =
          arg.empty() ? 0 : std::strtoull(arg.c_str(), &end, 10);
      if (!arg.empty() && (end == nullptr || *end != '\0')) {
        std::printf("usage: \\deadline <ms>   (0 clears the deadline)\n");
        continue;
      }
      deadline_ms = static_cast<uint64_t>(ms);
      if (deadline_ms == 0) {
        std::printf("deadline cleared\n");
      } else {
        std::printf("optimization deadline set to %llu ms per query\n", ms);
      }
      continue;
    }
    if (line == "\\check") {
      CheckCommand(pipeline, "");
      continue;
    }
    if (line.rfind("\\check ", 0) == 0) {
      CheckCommand(pipeline, line.substr(7));
      continue;
    }
    if (line == "\\verify") {
      VerifyCommand(pipeline, "", deadline_ms);
      continue;
    }
    if (line.rfind("\\verify ", 0) == 0) {
      VerifyCommand(pipeline, line.substr(8), deadline_ms);
      continue;
    }
    if (line.rfind("\\save ", 0) == 0) {
      const std::string dir = line.substr(6);
      if (db->storage_attached()) {
        std::printf("storage already attached; \\checkpoint to flush\n");
        continue;
      }
      sqo::storage::OpenOptions options;
      options.compiled = &pipeline.compiled();
      if (auto s = db->Open(dir, options); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      PrintRecovery(*db->recovery_info());
      std::printf("storage attached at %s\n", dir.c_str());
      continue;
    }
    if (line.rfind("\\open ", 0) == 0) {
      const std::string dir = line.substr(6);
      auto fresh = std::make_unique<sqo::engine::Database>(&pipeline.schema());
      // Methods and index definitions are code, not data: re-register them
      // before recovery so replayed objects index correctly.
      if (auto s = sqo::workload::SetupUniversityRuntime(fresh.get());
          !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      sqo::storage::OpenOptions options;
      options.compiled = &pipeline.compiled();
      if (auto s = fresh->Open(dir, options); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      PrintRecovery(*fresh->recovery_info());
      if (db->storage_attached()) {
        if (auto s = db->CloseStorage(); !s.ok()) {
          std::printf("note: closing previous storage: %s\n",
                      s.ToString().c_str());
        }
      }
      db = std::move(fresh);
      cost_model =
          std::make_unique<sqo::engine::EngineCostModel>(&db->store());
      std::printf("database switched to %s (%zu objects)\n", dir.c_str(),
                  db->store().object_count());
      continue;
    }
    if (line == "\\status") {
      StatusCommand(*db);
      continue;
    }
    if (line == "\\serve" || line.rfind("\\serve ", 0) == 0) {
      ServeCommand(pipeline, db.get(), line.size() > 6 ? line.substr(7) : "");
      continue;
    }
    if (line == "\\checkpoint") {
      if (auto s = db->Checkpoint(); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("checkpoint written\n");
      }
      continue;
    }
    if (line.rfind("\\plan ", 0) == 0) {
      RunQuery(pipeline, *db, *cost_model, line.substr(6), /*plan_only=*/true,
               deadline_ms, &session);
      continue;
    }
    if (line.rfind("\\explain ", 0) == 0) {
      ExplainQuery(pipeline, *db, *cost_model, line.substr(9), deadline_ms);
      continue;
    }
    if (line.rfind("\\profile ", 0) == 0) {
      ProfileCommand(pipeline, *db, *cost_model, line.substr(9), deadline_ms);
      continue;
    }
    if (line.rfind("\\slow", 0) == 0) {
      const std::string arg = line.size() > 5 ? line.substr(6) : "";
      char* end = nullptr;
      const unsigned long long ms =
          arg.empty() ? 0 : std::strtoull(arg.c_str(), &end, 10);
      if (!arg.empty() && (end == nullptr || *end != '\0')) {
        std::printf("usage: \\slow <ms>   (0 disables slow-query capture)\n");
        continue;
      }
      session.journal.set_slow_threshold_ns(static_cast<int64_t>(ms) *
                                            1000000);
      if (ms == 0) {
        std::printf("slow-query capture disabled\n");
      } else {
        std::printf("journaling queries >= %llu ms with full profiles\n", ms);
      }
      continue;
    }
    if (line.rfind("\\journal flush ", 0) == 0) {
      const std::string path = line.substr(15);
      if (auto s = session.journal.Flush(path); !s.ok()) {
        std::printf("flush error (events retained): %s\n",
                    s.ToString().c_str());
      } else {
        std::printf("flushed to %s (%llu events written so far)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(
                        session.journal.counters().flushed));
      }
      continue;
    }
    if (line.rfind("\\journal", 0) == 0) {
      const std::string arg = line.size() > 8 ? line.substr(9) : "";
      char* end = nullptr;
      const unsigned long long n =
          arg.empty() ? 10 : std::strtoull(arg.c_str(), &end, 10);
      if (!arg.empty() && (end == nullptr || *end != '\0')) {
        std::printf("usage: \\journal [n]  or  \\journal flush <path>\n");
        continue;
      }
      PrintJournal(&session, static_cast<size_t>(n));
      continue;
    }
    if (line.rfind("\\metrics", 0) == 0) {
      const std::string arg = line.size() > 8 ? line.substr(9) : "";
      const sqo::obs::MetricsRegistry snapshot = session.SnapshotMetrics();
      if (arg == "json") {
        std::printf("%s\n", snapshot.ToJson().c_str());
      } else if (arg == "prom") {
        std::fputs(sqo::obs::ToPrometheusText(snapshot).c_str(), stdout);
      } else {
        std::fputs(snapshot.ToText().c_str(), stdout);
        const sqo::obs::QpsMeter::Snapshot qps = session.qps.Summarize();
        std::printf("qps: %.1f over %llu queries (p50 %.3fms p90 %.3fms "
                    "p99 %.3fms max %.3fms)\n",
                    qps.qps, static_cast<unsigned long long>(qps.count),
                    static_cast<double>(qps.p50_ns) / 1e6,
                    static_cast<double>(qps.p90_ns) / 1e6,
                    static_cast<double>(qps.p99_ns) / 1e6,
                    static_cast<double>(qps.max_ns) / 1e6);
      }
      continue;
    }
    if (line == "\\export stop") {
      if (exporter == nullptr || !exporter->running()) {
        std::printf("no periodic exporter running\n");
      } else {
        exporter->Stop();
        std::printf("exporter stopped (%llu exports, %llu failures)\n",
                    static_cast<unsigned long long>(exporter->exports()),
                    static_cast<unsigned long long>(exporter->failures()));
      }
      continue;
    }
    if (line.rfind("\\export start ", 0) == 0) {
      std::string rest = line.substr(14);
      uint64_t period_ms = 1000;
      if (const size_t space = rest.find(' '); space != std::string::npos) {
        period_ms = std::strtoull(rest.substr(space + 1).c_str(), nullptr, 10);
        if (period_ms == 0) period_ms = 1000;
        rest = rest.substr(0, space);
      }
      if (auto s = sqo::fs::EnsureDir(rest); !s.ok()) {
        std::printf("export error: %s\n", s.ToString().c_str());
        continue;
      }
      sqo::obs::ExporterOptions options;
      options.json_path = rest + "/metrics.json";
      options.prometheus_path = rest + "/metrics.prom";
      options.period = std::chrono::milliseconds(period_ms);
      exporter = std::make_unique<sqo::obs::PeriodicExporter>(
          options, [&session] { return session.SnapshotMetrics(); });
      exporter->Start();
      std::printf("exporting to %s/metrics.{json,prom} every %llu ms\n",
                  rest.c_str(), static_cast<unsigned long long>(period_ms));
      continue;
    }
    if (line.rfind("\\export ", 0) == 0) {
      const std::string dir = line.substr(8);
      if (auto s = sqo::fs::EnsureDir(dir); !s.ok()) {
        std::printf("export error: %s\n", s.ToString().c_str());
        continue;
      }
      sqo::obs::ExporterOptions options;
      options.json_path = dir + "/metrics.json";
      options.prometheus_path = dir + "/metrics.prom";
      sqo::obs::PeriodicExporter once(
          options, [&session] { return session.SnapshotMetrics(); });
      if (auto s = once.ExportOnce(); !s.ok()) {
        std::printf("export error: %s\n", s.ToString().c_str());
      } else {
        std::printf("wrote %s/metrics.json and %s/metrics.prom\n",
                    dir.c_str(), dir.c_str());
      }
      continue;
    }
    if (timing) {
      sqo::obs::Tracer tracer;
      sqo::obs::MetricsRegistry metrics;
      sqo::obs::ScopedTracer install_tracer(&tracer);
      sqo::obs::ScopedMetrics install_metrics(&metrics);
      RunQuery(pipeline, *db, *cost_model, line, /*plan_only=*/false,
               deadline_ms, &session);
      PrintObservability(tracer, metrics);
    } else {
      RunQuery(pipeline, *db, *cost_model, line, /*plan_only=*/false,
               deadline_ms, &session);
    }
  }
  return 0;
}
