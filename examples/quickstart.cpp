// Quickstart: build the university pipeline (Figure 2 Steps 1 + semantic
// compilation), translate an OQL query to DATALOG (Step 2), optimize it
// (Step 3), map the changes back to OQL (Step 4), and evaluate the best
// alternative on a synthetic database.
//
// Run: build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "engine/cost_model.h"
#include "engine/database.h"
#include "workload/university.h"

namespace {

void Check(const sqo::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace sqo;  // NOLINT: example brevity

  // --- Schema + integrity constraints + ASR, compiled once. ---
  auto pipeline_or = workload::MakeUniversityPipeline();
  Check(pipeline_or.status(), "pipeline construction");
  const core::Pipeline& pipeline = *pipeline_or;

  std::printf("== DATALOG schema (Step 1) ==\n");
  for (const auto& [name, sig] : pipeline.schema().catalog.relations()) {
    std::printf("  %s\n", sig.ToString().c_str());
  }
  std::printf("\n%zu integrity constraints, %zu residues attached\n\n",
              pipeline.compiled().all_ics.size(),
              pipeline.compiled().total_residues());

  // --- A synthetic database. ---
  engine::Database db(&pipeline.schema());
  workload::GeneratorConfig config;
  Check(workload::PopulateUniversity(config, pipeline, &db), "data generation");
  engine::EngineCostModel cost_model(&db.store());

  // --- Optimize the paper's scope-reduction query (§5.2). ---
  const std::string oql = workload::QueryScopeReduction();
  std::printf("== Input OQL ==\n%s\n\n", oql.c_str());

  auto result_or = pipeline.OptimizeText(oql, &cost_model);
  Check(result_or.status(), "optimization");
  const core::PipelineResult& result = *result_or;

  std::printf("== DATALOG (Step 2) ==\n%s\n\n",
              result.original_datalog.ToString().c_str());

  std::printf("== Equivalent queries (Step 3) ==\n");
  for (size_t i = 0; i < result.alternatives.size(); ++i) {
    const core::Alternative& alt = result.alternatives[i];
    std::printf("[%zu] cost=%.1f %s\n", i, alt.cost,
                i == static_cast<size_t>(result.best_index) ? "<== chosen" : "");
    std::printf("    %s\n", alt.datalog.ToString().c_str());
    for (const std::string& step : alt.derivation) {
      std::printf("      . %s\n", step.c_str());
    }
  }

  const core::Alternative& best = result.alternatives[result.best_index];
  if (best.oql_ok) {
    std::printf("\n== Optimized OQL (Step 4) ==\n%s\n\n",
                best.oql.ToString().c_str());
  }

  // --- Evaluate original vs chosen, with instrumentation. ---
  engine::EvalStats before, after;
  auto rows_before = db.Run(result.original_datalog, &before);
  Check(rows_before.status(), "evaluating original");
  auto rows_after = db.Run(best.datalog, &after);
  Check(rows_after.status(), "evaluating optimized");

  std::printf("original : %s\n", before.ToString().c_str());
  std::printf("optimized: %s\n", after.ToString().c_str());
  std::printf("rows: %zu vs %zu %s\n", rows_before->size(), rows_after->size(),
              rows_before->size() == rows_after->size() ? "(equal — equivalence holds)"
                                                        : "(MISMATCH!)");
  return rows_before->size() == rows_after->size() ? 0 : 1;
}
