// §5.2 — Access scope reduction.
//
// "select x.name from x in Person where x.age < 30": IC4 (faculty are ≥ 30)
// composed with the subclass hierarchy yields IC6'; its residue adds
// `x not in Faculty`, and the engine evaluates Person − Faculty by extent
// difference, fetching fewer objects. This example prints the optimized
// OQL (which matches the paper's output exactly) and the measured
// object-fetch counts.
//
// Run: build/examples/scope_reduction

#include <cstdio>

#include "engine/cost_model.h"
#include "engine/database.h"
#include "workload/university.h"

int main() {
  using namespace sqo;  // NOLINT: example brevity

  auto pipeline_or = workload::MakeUniversityPipeline();
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "%s\n", pipeline_or.status().ToString().c_str());
    return 1;
  }
  const core::Pipeline& pipeline = *pipeline_or;

  engine::Database db(&pipeline.schema());
  workload::GeneratorConfig config;
  config.n_faculty = 400;  // a large faculty share makes the effect visible
  config.n_students = 400;
  config.n_plain_persons = 200;
  if (auto s = workload::PopulateUniversity(config, pipeline, &db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  engine::EngineCostModel cost_model(&db.store());

  const std::string oql = workload::QueryScopeReduction();
  std::printf("== Input OQL ==\n%s\n", oql.c_str());

  auto result_or = pipeline.OptimizeText(oql, &cost_model);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const core::PipelineResult& result = *result_or;
  const core::Alternative& best = result.alternatives[result.best_index];

  std::printf("\n== Chosen rewriting (Step 3) ==\n%s\n",
              best.datalog.ToString().c_str());
  for (const std::string& step : best.derivation) {
    std::printf("  . %s\n", step.c_str());
  }
  if (best.oql_ok) {
    std::printf("\n== Optimized OQL (Step 4) ==\n%s\n",
                best.oql.ToString().c_str());
  }

  engine::EvalStats before, after;
  auto rows_before = db.Run(result.original_datalog, &before);
  auto rows_after = db.Run(best.datalog, &after);
  if (!rows_before.ok() || !rows_after.ok()) return 1;
  std::printf("\n== Measured ==\n");
  std::printf("original : %s\n", before.ToString().c_str());
  std::printf("optimized: %s\n", after.ToString().c_str());
  std::printf("answers  : %zu vs %zu\n", rows_before->size(), rows_after->size());
  std::printf("object fetches saved: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(before.objects_fetched -
                                              after.objects_fetched),
              100.0 *
                  static_cast<double>(before.objects_fetched -
                                      after.objects_fetched) /
                  static_cast<double>(before.objects_fetched));
  return rows_before->size() == rows_after->size() ? 0 : 1;
}
