// §5.4 — Join elimination and introduction via access support relations.
//
// An ASR materializes the 4-hop path student→section→course→section→TA.
//  Q : the full-path query folds into `asr(X, W)` — join elimination.
//  Q1: the 3-hop prefix query first gains `has_ta(V, W)` from IC9 (every
//      section of a taken course has a TA) — join introduction — and the
//      prefix then folds into the ASR, giving the paper's Q1'.
//
// Run: build/examples/access_support

#include <cstdio>

#include "engine/cost_model.h"
#include "engine/database.h"
#include "workload/university.h"

namespace {

void Show(const sqo::core::Pipeline& pipeline, const sqo::engine::Database& db,
          const sqo::engine::EngineCostModel& cost_model, const char* label,
          const std::string& oql) {
  std::printf("==============  %s  ==============\n%s\n", label, oql.c_str());
  auto result_or = pipeline.OptimizeText(oql, &cost_model);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return;
  }
  const sqo::core::PipelineResult& result = *result_or;
  std::printf("\ndatalog: %s\n", result.original_datalog.ToString().c_str());
  for (size_t i = 0; i < result.alternatives.size(); ++i) {
    const sqo::core::Alternative& alt = result.alternatives[i];
    bool uses_asr = false;
    for (const sqo::datalog::Literal& lit : alt.datalog.body) {
      if (lit.atom.is_predicate() &&
          lit.atom.predicate() == "asr_student_ta") {
        uses_asr = true;
      }
    }
    if (i == 0 || uses_asr) {
      std::printf("[%zu]%s %s\n", i,
                  static_cast<int>(i) == result.best_index ? " *" : "  ",
                  alt.datalog.ToString().c_str());
      for (const std::string& step : alt.derivation) {
        std::printf("      . %s\n", step.c_str());
      }
    }
  }
  const sqo::core::Alternative& best = result.alternatives[result.best_index];
  sqo::engine::EvalStats before, after;
  auto rows_before = db.Run(result.original_datalog, &before);
  auto rows_after = db.Run(best.datalog, &after);
  if (rows_before.ok() && rows_after.ok()) {
    std::printf("\noriginal : %s\n", before.ToString().c_str());
    std::printf("best     : %s\n", after.ToString().c_str());
    std::printf("answers  : %zu vs %zu\n\n", rows_before->size(),
                rows_after->size());
  }
}

}  // namespace

int main() {
  using namespace sqo;  // NOLINT: example brevity

  auto pipeline_or = workload::MakeUniversityPipeline();
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "%s\n", pipeline_or.status().ToString().c_str());
    return 1;
  }
  const core::Pipeline& pipeline = *pipeline_or;

  std::printf("== ASR definition ==\n%s\n\n",
              pipeline.compiled().asrs.front().view.ToString().c_str());

  engine::Database db(&pipeline.schema());
  workload::GeneratorConfig config;
  config.n_students = 400;
  config.takes_per_student = 5;
  if (auto s = workload::PopulateUniversity(config, pipeline, &db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  engine::EngineCostModel cost_model(&db.store());

  // The paper's queries (with the selective name constants).
  Show(pipeline, db, cost_model, "Q: join elimination",
       workload::QueryAsrDirect());
  Show(pipeline, db, cost_model, "Q1: join introduction",
       workload::QueryAsrIndirect());

  // Bulk variants so the traversal savings are visible in the counters.
  Show(pipeline, db, cost_model, "Q (bulk, no name filter)",
       "select w from x in Student, y in x.takes, z in y.is_section_of, "
       "v in z.has_sections, w in v.has_ta");
  return 0;
}
