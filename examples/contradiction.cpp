// §5.1 — Contradiction detection (paper Example 2 + IC3 derivation).
//
// The query asks for professors of john's sections whose withheld taxes at
// a 10% rate are under 1000. The knowledge base contains:
//   IC1: faculty salaries exceed 40K
//   monotone(taxes_withheld, salary, increasing)   — the paper's IC2
//   point(taxes_withheld, 30K, 10%, 3000)          — the paper's fact
// Inference derives IC3 (faculty taxes at 10% exceed 3000); the residue of
// IC3 attaches to taxes_withheld; applying it to the query adds V > 3000,
// which contradicts V < 1000 — the query need not be evaluated at all.
//
// Run: build/examples/contradiction

#include <cstdio>
#include <cstdlib>

#include "engine/database.h"
#include "workload/university.h"

int main() {
  using namespace sqo;  // NOLINT: example brevity

  auto pipeline_or = workload::MakeUniversityPipeline();
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "%s\n", pipeline_or.status().ToString().c_str());
    return 1;
  }
  const core::Pipeline& pipeline = *pipeline_or;

  // Show the derived constraint the optimization hinges on.
  std::printf("== Derived integrity constraints ==\n");
  for (const datalog::Clause& ic : pipeline.compiled().all_ics) {
    if (ic.label.rfind("derived:method_bound", 0) == 0) {
      std::printf("  [%s]\n  %s\n", ic.label.c_str(), ic.ToString().c_str());
    }
  }

  const std::string oql = workload::QueryExample2();
  std::printf("\n== Input OQL (paper Example 2) ==\n%s\n", oql.c_str());

  auto result_or = pipeline.OptimizeText(oql);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const core::PipelineResult& result = *result_or;

  std::printf("\n== DATALOG (Step 2) ==\n%s\n",
              result.original_datalog.ToString().c_str());

  if (!result.contradiction) {
    std::printf("\nexpected a contradiction but none was found\n");
    return 1;
  }
  std::printf("\n== Step 3 verdict ==\nCONTRADICTION: %s\n",
              result.contradiction_reason.c_str());
  std::printf("witness query (with the implied restriction):\n%s\n",
              result.contradiction_witness.ToString().c_str());

  // Cross-check against a real database: the answer set is indeed empty,
  // and computing that the hard way does real work.
  engine::Database db(&pipeline.schema());
  workload::GeneratorConfig config;
  if (auto s = workload::PopulateUniversity(config, pipeline, &db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  engine::EvalStats stats;
  auto rows = db.Run(result.original_datalog, &stats);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\n== Brute-force cross-check ==\nrows=%zu (empty as predicted); "
      "work done without SQO: %s\n",
      rows->size(), stats.ToString().c_str());
  return 0;
}
