// sqo_lint — static analyzer front end for SQO semantic knowledge.
//
// Runs the analysis passes (safety, signature checking, IC contradiction,
// IC redundancy, dead residues, query lints) over an ODL schema + IC file
// or one of the built-in workloads, without compiling residues into a
// running pipeline first. Exit status: 0 when no error-severity diagnostics
// were found (warnings alone exit 0), 1 on error diagnostics, 2 when the
// input could not be parsed at all.
//
//   sqo_lint <schema.odl> <ics.dl> [options]
//   sqo_lint --workload university|company [options]
//
// Options:
//   --json             emit the diagnostics as JSON (obs/json.h format)
//   --query  "<text>"  also lint a DATALOG query (repeatable)
//   --oql    "<text>"  also lint an OQL query after translation (repeatable)
//   --no-residues      skip residue compilation / dead-residue detection
//   --profile "<oql>"  execute the query on a populated workload store and
//                      lint its profile (SQO-A014; workload mode only,
//                      repeatable)
//   --deadline-ms N    lint this governance configuration (with
//   --fail-closed      --fail-closed, SQO-A011 fires; see GovernanceOptions)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "datalog/parser.h"
#include "engine/database.h"
#include "odl/parser.h"
#include "oql/parser.h"
#include "sqo/pipeline.h"
#include "sqo/semantic_compiler.h"
#include "translate/query_translator.h"
#include "translate/schema_translator.h"
#include "workload/company.h"
#include "workload/university.h"

namespace {

struct Options {
  std::string workload;  // "university" / "company" / "" (file mode)
  std::string odl_path;
  std::string ic_path;
  std::vector<std::string> datalog_queries;
  std::vector<std::string> oql_queries;
  std::vector<std::string> profile_queries;
  uint64_t deadline_ms = 0;
  bool fail_closed = false;
  bool json = false;
  bool residues = true;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (<schema.odl> <ics.dl> | --workload university|company)\n"
               "          [--json] [--no-residues] [--query <datalog>]... "
               "[--oql <oql>]...\n"
               "          [--profile <oql>]... [--deadline-ms N] "
               "[--fail-closed]\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Fail(const sqo::Status& status, const char* what) {
  std::fprintf(stderr, "sqo_lint: %s: %s\n", what, status.ToString().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sqo_lint: %s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--no-residues") {
      opts.residues = false;
    } else if (arg == "--workload") {
      const char* v = next("--workload");
      if (v == nullptr) return 2;
      opts.workload = v;
    } else if (arg == "--query") {
      const char* v = next("--query");
      if (v == nullptr) return 2;
      opts.datalog_queries.push_back(v);
    } else if (arg == "--oql") {
      const char* v = next("--oql");
      if (v == nullptr) return 2;
      opts.oql_queries.push_back(v);
    } else if (arg == "--profile") {
      const char* v = next("--profile");
      if (v == nullptr) return 2;
      opts.profile_queries.push_back(v);
    } else if (arg == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (v == nullptr) return 2;
      opts.deadline_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fail-closed") {
      opts.fail_closed = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "sqo_lint: unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }

  // Resolve the schema + IC text and optional ASR, from a workload or files.
  std::string odl_text;
  std::string ic_text;
  std::vector<sqo::core::AsrDefinition> asrs;
  if (opts.workload == "university") {
    odl_text = sqo::workload::UniversityOdl();
    ic_text = sqo::workload::UniversityIcs();
    asrs.push_back(sqo::workload::UniversityAsr());
  } else if (opts.workload == "company") {
    odl_text = sqo::workload::CompanyOdl();
    ic_text = sqo::workload::CompanyIcs();
    asrs.push_back(sqo::workload::CompanyAsr());
  } else if (!opts.workload.empty()) {
    std::fprintf(stderr, "sqo_lint: unknown workload '%s'\n",
                 opts.workload.c_str());
    return 2;
  } else {
    if (positional.size() != 2) return Usage(argv[0]);
    opts.odl_path = positional[0];
    opts.ic_path = positional[1];
    if (!ReadFile(opts.odl_path, &odl_text)) {
      std::fprintf(stderr, "sqo_lint: cannot read '%s'\n", opts.odl_path.c_str());
      return 2;
    }
    if (!ReadFile(opts.ic_path, &ic_text)) {
      std::fprintf(stderr, "sqo_lint: cannot read '%s'\n", opts.ic_path.c_str());
      return 2;
    }
  }

  // Step 1 equivalent: ODL → resolved schema → DATALOG schema + catalog.
  auto ast = sqo::odl::ParseOdl(odl_text);
  if (!ast.ok()) return Fail(ast.status(), "ODL parse failed");
  auto schema = sqo::odl::Schema::Resolve(*ast);
  if (!schema.ok()) return Fail(schema.status(), "schema resolution failed");
  auto translated = sqo::translate::TranslateSchema(*schema);
  if (!translated.ok()) {
    return Fail(translated.status(), "schema translation failed");
  }
  std::vector<sqo::core::AsrDefinition> registry;
  for (sqo::core::AsrDefinition& def : asrs) {
    if (auto s = sqo::core::RegisterAsr(std::move(def), &*translated, &registry);
        !s.ok()) {
      return Fail(s, "ASR registration failed");
    }
  }
  auto user_ics =
      sqo::datalog::ParseProgram(ic_text, &translated->catalog);
  if (!user_ics.ok()) return Fail(user_ics.status(), "IC parse failed");

  // Passes 1–4 over the user IC set.
  sqo::analysis::AnalysisReport report =
      sqo::analysis::AnalyzeIcs(*translated, *user_ics);

  // Pass 5: compile residues (unless the IC set already has errors — the
  // compiler's preconditions do not hold then) and flag dead guards.
  if (opts.residues && !report.has_errors()) {
    std::vector<sqo::datalog::Clause> compile_ics = *user_ics;
    for (const sqo::core::AsrDefinition& def : registry) {
      compile_ics.push_back(def.view);
    }
    auto compiled = sqo::core::CompileSemantics(
        &*translated, std::move(compile_ics), registry);
    if (!compiled.ok()) {
      return Fail(compiled.status(), "semantic compilation failed");
    }
    report.Append(sqo::analysis::AnalyzeResidues(compiled->residues));
  }

  // Pass 6: explicit query lints.
  for (const std::string& text : opts.datalog_queries) {
    auto query = sqo::datalog::ParseQueryText(text, &translated->catalog);
    if (!query.ok()) return Fail(query.status(), "DATALOG query parse failed");
    report.Append(sqo::analysis::AnalyzeQuery(*translated, *query));
  }
  for (const std::string& text : opts.oql_queries) {
    auto parsed = sqo::oql::ParseOql(text);
    if (!parsed.ok()) return Fail(parsed.status(), "OQL parse failed");
    auto tq = sqo::translate::TranslateQuery(*translated, *parsed);
    if (!tq.ok()) return Fail(tq.status(), "OQL translation failed");
    report.Append(sqo::analysis::AnalyzeQuery(*translated, tq->query));
  }

  // Pass 7: governance-configuration lint (SQO-A011), when configured.
  if (opts.deadline_ms > 0 || opts.fail_closed) {
    report.Append(sqo::analysis::AnalyzeGovernance(opts.deadline_ms > 0,
                                                   !opts.fail_closed));
  }

  // Passes 10 and 12: executed-profile lints (SQO-A014, SQO-A019). Need a
  // populated store, so they are available in workload mode only.
  if (!opts.profile_queries.empty()) {
    if (opts.workload.empty()) {
      std::fprintf(stderr, "sqo_lint: --profile requires --workload\n");
      return 2;
    }
    auto pipeline = opts.workload == "university"
                        ? sqo::workload::MakeUniversityPipeline()
                        : sqo::workload::MakeCompanyPipeline();
    if (!pipeline.ok()) return Fail(pipeline.status(), "pipeline build failed");
    sqo::engine::Database db(&pipeline->schema());
    sqo::Status populated =
        opts.workload == "university"
            ? sqo::workload::PopulateUniversity({}, *pipeline, &db)
            : sqo::workload::PopulateCompany({}, *pipeline, &db);
    if (!populated.ok()) return Fail(populated, "store population failed");
    for (const std::string& text : opts.profile_queries) {
      auto result = pipeline->OptimizeText(text);
      if (!result.ok()) return Fail(result.status(), "optimization failed");
      auto run = db.ProfileQuery(result->original_datalog);
      if (!run.ok()) return Fail(run.status(), "profiled evaluation failed");
      report.Append(
          sqo::analysis::AnalyzeProfile(pipeline->schema(), run->profile));
      std::vector<sqo::analysis::AsrFreshness> freshness;
      for (const auto& state : db.store().AsrStates()) {
        freshness.push_back({state.name, state.path, state.stale});
      }
      report.Append(
          sqo::analysis::AnalyzeAsrStaleness(run->profile, freshness));
    }
  }

  std::fputs(sqo::analysis::RenderReport(report, opts.json).c_str(), stdout);
  if (opts.json) std::fputs("\n", stdout);
  // Warnings alone exit 0; only error-severity findings fail the run.
  return report.has_errors() ? 1 : 0;
}
