// sqo_verify — rewrite-soundness checker front end.
//
// Certifies every alternative the optimizer produces against the original
// query: each recorded derivation step is replayed and proven from
// "original ∧ integrity constraints" with a bounded chase (SQO-A015/A016/
// A017 diagnostics; see src/analysis/verifier.h), and the verdicts can be
// cross-checked against a differential evaluation oracle. Exit status: 0
// when every alternative verifies sound (and, in --fuzz/--corrupt modes,
// the oracles agree), 1 on soundness findings or oracle mismatches, 2 when
// the input could not be processed at all.
//
//   sqo_verify [--workload university|company] [--oql "<text>"]... [--json]
//   sqo_verify --fuzz <iterations> [--seed N]
//   sqo_verify --corrupt mutate_guard|drop_remainder_literal [--seed N]
//
// Options:
//   --workload W       built-in workload (default university)
//   --oql "<text>"     verify this OQL query (repeatable; default: the
//                      five university seed queries)
//   --json             emit diagnostics as JSON (obs/json.h format)
//   --seed N           seed for --fuzz / --corrupt (default 20260808)
//   --chase-rounds N   verifier chase round bound (default 4)
//   --chase-literals N verifier chase fact cap (default 256)
//   --fuzz N           run the differential fuzz oracle for N iterations
//   --corrupt KIND     corrupt one compiled residue and require BOTH the
//                      verifier and the evaluation oracle to catch it

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/verifier.h"
#include "sqo/pipeline.h"
#include "workload/company.h"
#include "workload/fuzz.h"
#include "workload/university.h"

namespace {

int Fail(const sqo::Status& status, const char* what) {
  std::fprintf(stderr, "sqo_verify: %s: %s\n", what, status.ToString().c_str());
  return 2;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload university|company] [--oql <text>]...\n"
               "          [--json] [--seed N] [--chase-rounds N] "
               "[--chase-literals N]\n"
               "          [--fuzz <iterations>] "
               "[--corrupt mutate_guard|drop_remainder_literal]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "university";
  std::vector<std::string> oql_queries;
  bool json = false;
  uint64_t seed = 20260808;
  size_t fuzz_iterations = 0;
  std::string corrupt_kind;
  sqo::analysis::VerifierOptions verifier_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sqo_verify: %s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--workload") {
      const char* v = next("--workload");
      if (v == nullptr) return 2;
      workload = v;
    } else if (arg == "--oql") {
      const char* v = next("--oql");
      if (v == nullptr) return 2;
      oql_queries.push_back(v);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return 2;
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--chase-rounds") {
      const char* v = next("--chase-rounds");
      if (v == nullptr) return 2;
      verifier_options.max_chase_rounds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--chase-literals") {
      const char* v = next("--chase-literals");
      if (v == nullptr) return 2;
      verifier_options.max_chase_literals = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fuzz") {
      const char* v = next("--fuzz");
      if (v == nullptr) return 2;
      fuzz_iterations = std::strtoull(v, nullptr, 10);
    } else if (arg == "--corrupt") {
      const char* v = next("--corrupt");
      if (v == nullptr) return 2;
      corrupt_kind = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "sqo_verify: unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  // --- Corruption probe mode: both oracles must detect the mutation. ---
  if (!corrupt_kind.empty()) {
    sqo::workload::ResidueCorruption kind;
    if (corrupt_kind == "mutate_guard") {
      kind = sqo::workload::ResidueCorruption::kMutateGuard;
    } else if (corrupt_kind == "drop_remainder_literal") {
      kind = sqo::workload::ResidueCorruption::kDropRemainderLiteral;
    } else {
      std::fprintf(stderr, "sqo_verify: unknown corruption '%s'\n",
                   corrupt_kind.c_str());
      return 2;
    }
    auto probe = sqo::workload::ProbeCorruptedResidue(seed, kind);
    if (!probe.ok()) return Fail(probe.status(), "corruption probe failed");
    std::printf("corrupted: %s\n", probe->description.c_str());
    std::printf("alternatives examined: %zu\n", probe->alternatives);
    std::printf("verifier flagged (SQO-A015): %s\n",
                probe->verifier_flagged ? "yes" : "NO");
    std::printf("answers diverged:            %s\n",
                probe->answers_differ ? "yes" : "NO");
    const bool caught = probe->verifier_flagged && probe->answers_differ;
    std::printf("%s\n", caught ? "corruption caught by both oracles"
                               : "CORRUPTION MISSED");
    return caught ? 0 : 1;
  }

  // --- Differential fuzz mode. ---
  if (fuzz_iterations > 0) {
    sqo::workload::FuzzConfig config;
    config.seed = seed;
    config.iterations = fuzz_iterations;
    config.verifier = verifier_options;
    auto report = sqo::workload::RunDifferentialFuzz(config);
    if (!report.ok()) return Fail(report.status(), "fuzz run failed");
    std::printf("%s\n", report->Summary().c_str());
    for (const sqo::workload::FuzzMismatch& m : report->mismatch_details) {
      std::printf("MISMATCH seed=%llu alt=%zu query=%s\n  %s\n",
                  static_cast<unsigned long long>(m.iteration_seed),
                  m.alternative, m.oql.c_str(), m.detail.c_str());
    }
    return report->ok() ? 0 : 1;
  }

  // --- Static verification mode. ---
  sqo::Result<sqo::core::Pipeline> pipeline =
      workload == "university" ? sqo::workload::MakeUniversityPipeline()
      : workload == "company"  ? sqo::workload::MakeCompanyPipeline()
                               : sqo::Result<sqo::core::Pipeline>(
                                     sqo::InvalidArgumentError(
                                         "unknown workload '" + workload +
                                         "'"));
  if (!pipeline.ok()) return Fail(pipeline.status(), "pipeline build failed");

  if (oql_queries.empty()) {
    if (workload != "university") {
      std::fprintf(stderr,
                   "sqo_verify: --workload %s has no seed queries; pass "
                   "--oql\n",
                   workload.c_str());
      return 2;
    }
    oql_queries = {sqo::workload::QueryExample2(),
                   sqo::workload::QueryScopeReduction(),
                   sqo::workload::QueryJoinElimination(),
                   sqo::workload::QueryAsrDirect(),
                   sqo::workload::QueryAsrIndirect()};
  }

  sqo::analysis::AnalysisReport report;
  size_t alternatives = 0;
  bool all_sound = true;
  for (const std::string& oql : oql_queries) {
    auto result = pipeline->OptimizeText(oql);
    if (!result.ok()) return Fail(result.status(), "optimization failed");
    auto verification = pipeline->Verify(*result, verifier_options);
    if (!verification.ok()) {
      return Fail(verification.status(), "verification failed");
    }
    alternatives += verification->verdicts.size();
    all_sound = all_sound && verification->all_sound();
    report.Append(std::move(verification->report));
  }

  std::fputs(sqo::analysis::RenderReport(report, json).c_str(), stdout);
  if (json) std::fputs("\n", stdout);
  if (!json) {
    std::printf("%zu alternatives over %zu queries: %s\n", alternatives,
                oql_queries.size(),
                all_sound ? "all sound" : "UNSOUND REWRITES FOUND");
  }
  return all_sound ? 0 : 1;
}
