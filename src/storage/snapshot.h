#ifndef SQO_STORAGE_SNAPSHOT_H_
#define SQO_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/fingerprint.h"
#include "common/status.h"
#include "engine/object_store.h"

/// Versioned, checksummed snapshot of an ObjectStore extent plus the
/// serialized semantic catalog and the store's adaptive access structures
/// (persisted secondary indexes and ASR freshness states).
///
/// File layout (all integers little-endian):
///
///   header (72 bytes):
///     u32 magic "SQOS" | u32 version | u64 schema_lo | u64 schema_hi
///     | u64 last_lsn | u64 store_len | u64 catalog_len | u64 index_len
///     | u32 masked-CRC32C(store section) | u32 masked-CRC32C(catalog section)
///     | u32 masked-CRC32C(index section)
///     | u32 masked-CRC32C(preceding 68 header bytes)
///   store section (store_len bytes):
///     u64 next_oid | u64 object_count
///     | per object: u64 oid | str exact_relation | u32 row_len | values
///     | u64 relation_count
///     | per relation: str name | u64 pair_count | (u64 src, u64 dst)*
///   catalog section (catalog_len bytes): catalog JSON (see catalog.h)
///   index section (index_len bytes):
///     u64 index_count
///     | per index: str relation | u64 attribute_pos | u64 entry_count
///       | per entry: value key | u32 oid_count | u64 oids
///     u64 asr_count
///     | per asr: str name | u8 stale | u32 hop_count | str hop relations
///
/// Snapshots are immutable once published: the writer builds the whole file
/// in memory and installs it with WriteFileAtomic (temp + fsync + rename +
/// dir fsync), so a reader either sees a complete checksummed file or the
/// previous one. Any validation failure yields kDataCorruption and the
/// recovery layer fails open to an older snapshot.
namespace sqo::storage {

inline constexpr size_t kSnapshotHeaderSize =
    4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 4 + 4;

/// A fully decoded and checksum-verified snapshot. The store contents are
/// returned as replayable mutations (creates then pair inserts) so loading
/// shares one code path with WAL replay.
struct SnapshotContents {
  sqo::Fingerprint128 schema_hash;

  /// LSN covered by this snapshot; WAL replay applies only records beyond it.
  uint64_t last_lsn = 0;

  uint64_t next_oid = 1;
  std::vector<engine::Mutation> objects;  // kCreate, one per object
  std::vector<engine::Mutation> pairs;    // kInsertPair, one per stored pair
  std::string catalog_json;

  /// Adaptive access structures captured at checkpoint time: secondary
  /// index contents (restored verbatim, then delta-maintained through WAL
  /// replay) and ASR registrations with their freshness flags.
  std::vector<engine::ObjectStore::SecondaryIndexDump> indexes;
  std::vector<engine::ObjectStore::AsrState> asrs;
};

/// Serializes `store` + `catalog_json` and atomically publishes the file at
/// `path`. Failpoint site `storage.snapshot_write` fires before any I/O;
/// the underlying atomic write carries `storage.fsync` / `storage.rename`.
/// The Env overload routes the publication through `env` (fault injection).
sqo::Status WriteSnapshot(const std::string& path,
                          const engine::ObjectStore& store,
                          const sqo::Fingerprint128& schema_hash,
                          uint64_t last_lsn, std::string_view catalog_json);
sqo::Status WriteSnapshot(fs::Env& env, const std::string& path,
                          const engine::ObjectStore& store,
                          const sqo::Fingerprint128& schema_hash,
                          uint64_t last_lsn, std::string_view catalog_json);

/// Reads and fully validates the snapshot at `path`: magic, version, header
/// CRC, section lengths and section CRCs, then decodes the store section.
/// kNotFound when missing, kDataCorruption on any validation failure.
sqo::Result<SnapshotContents> ReadSnapshot(const std::string& path);

}  // namespace sqo::storage

#endif  // SQO_STORAGE_SNAPSHOT_H_
