#include "storage/wal.h"

#include <utility>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "storage/format.h"

namespace sqo::storage {
namespace {

std::string EncodeRecord(uint64_t lsn, std::string_view payload) {
  BinaryWriter body;
  body.PutU64(lsn);
  body.PutBytes(payload);
  BinaryWriter record;
  record.PutU32(MaskCrc32c(Crc32c(body.str())));
  record.PutU32(static_cast<uint32_t>(payload.size()));
  record.PutBytes(body.str());
  return record.TakeString();
}

}  // namespace

std::string EncodeWalHeader(const WalHeader& header) {
  BinaryWriter writer;
  writer.PutU32(kWalMagic);
  writer.PutU32(kWalVersion);
  writer.PutU64(header.schema_hash.lo);
  writer.PutU64(header.schema_hash.hi);
  writer.PutU64(header.base_lsn);
  writer.PutU32(MaskCrc32c(Crc32c(writer.str())));
  return writer.TakeString();
}

sqo::Result<WalWriter> WalWriter::Create(const std::string& path,
                                         const WalHeader& header) {
  SQO_RETURN_IF_ERROR(fs::WriteFileAtomic(path, EncodeWalHeader(header)));
  SQO_ASSIGN_OR_RETURN(fs::AppendFile file, fs::AppendFile::Open(path));
  return WalWriter(std::move(file));
}

sqo::Result<WalWriter> WalWriter::OpenExisting(const std::string& path) {
  SQO_ASSIGN_OR_RETURN(fs::AppendFile file, fs::AppendFile::Open(path));
  return WalWriter(std::move(file));
}

sqo::Status WalWriter::Append(uint64_t lsn,
                              const std::vector<engine::Mutation>& batch,
                              bool sync) {
  SQO_FAILPOINT("storage.wal_append");
  if (!file_.open()) {
    return sqo::InternalError("WAL file is not open");
  }
  SQO_RETURN_IF_ERROR(file_.Append(EncodeRecord(lsn, EncodeMutationBatch(batch))));
  if (sync) {
    SQO_RETURN_IF_ERROR(file_.Sync());
  }
  return sqo::Status::Ok();
}

sqo::Result<WalReadResult> ReadWal(const std::string& path) {
  SQO_ASSIGN_OR_RETURN(std::string data, fs::ReadFile(path));

  if (data.size() < kWalHeaderSize) {
    return sqo::DataCorruptionError("WAL header truncated: " +
                                    std::to_string(data.size()) + " bytes");
  }
  {
    BinaryReader header_reader(std::string_view(data).substr(0, kWalHeaderSize));
    SQO_ASSIGN_OR_RETURN(uint32_t magic, header_reader.GetU32());
    if (magic != kWalMagic) {
      return sqo::DataCorruptionError("bad WAL magic");
    }
    SQO_ASSIGN_OR_RETURN(uint32_t version, header_reader.GetU32());
    if (version != kWalVersion) {
      return sqo::DataCorruptionError("unsupported WAL version " +
                                      std::to_string(version));
    }
  }
  const uint32_t stored_header_crc = [&] {
    BinaryReader crc_reader(
        std::string_view(data).substr(kWalHeaderSize - 4, 4));
    return *crc_reader.GetU32();
  }();
  if (UnmaskCrc32c(stored_header_crc) !=
      Crc32c(data.data(), kWalHeaderSize - 4)) {
    return sqo::DataCorruptionError("WAL header checksum mismatch");
  }

  WalReadResult result;
  {
    BinaryReader header_reader(std::string_view(data).substr(8));
    SQO_ASSIGN_OR_RETURN(result.header.schema_hash.lo, header_reader.GetU64());
    SQO_ASSIGN_OR_RETURN(result.header.schema_hash.hi, header_reader.GetU64());
    SQO_ASSIGN_OR_RETURN(result.header.base_lsn, header_reader.GetU64());
  }
  result.last_lsn = result.header.base_lsn;
  result.valid_bytes = kWalHeaderSize;
  result.file_bytes = data.size();

  std::string_view rest(data);
  size_t pos = kWalHeaderSize;
  uint64_t prev_lsn = result.header.base_lsn;
  while (pos < data.size()) {
    if (data.size() - pos < kWalRecordHeaderSize) {
      result.stopped_early = true;
      result.stop_reason = "torn record header at offset " + std::to_string(pos);
      break;
    }
    BinaryReader frame(rest.substr(pos, kWalRecordHeaderSize));
    const uint32_t stored_crc = *frame.GetU32();
    const uint32_t payload_len = *frame.GetU32();
    // Guard the length before using it: a corrupt length field must not
    // index past the buffer or drive a huge allocation.
    if (payload_len > data.size() - pos - kWalRecordHeaderSize) {
      result.stopped_early = true;
      // Distinguish a plausible torn tail (record extends past EOF but the
      // checksum region is simply missing) from an absurd length.
      result.stop_reason = "record at offset " + std::to_string(pos) +
                           " extends past end of file";
      break;
    }
    const std::string_view body =
        rest.substr(pos + 8, 8 + payload_len);  // lsn + payload
    if (UnmaskCrc32c(stored_crc) != Crc32c(body)) {
      result.stopped_early = true;
      result.corrupt = true;
      result.stop_reason =
          "record checksum mismatch at offset " + std::to_string(pos);
      break;
    }
    BinaryReader body_reader(body);
    const uint64_t lsn = *body_reader.GetU64();
    if (lsn <= prev_lsn) {
      result.stopped_early = true;
      result.corrupt = true;
      result.stop_reason = "stale LSN " + std::to_string(lsn) +
                           " after LSN " + std::to_string(prev_lsn) +
                           " at offset " + std::to_string(pos);
      break;
    }
    sqo::Result<std::vector<engine::Mutation>> batch =
        DecodeMutationBatch(body.substr(8));
    if (!batch.ok()) {
      result.stopped_early = true;
      result.corrupt = true;
      result.stop_reason = "undecodable record at offset " +
                           std::to_string(pos) + ": " +
                           batch.status().message();
      break;
    }
    WalRecord record;
    record.lsn = lsn;
    record.batch = std::move(batch).value();
    record.offset = pos;
    result.records.push_back(std::move(record));
    prev_lsn = lsn;
    result.last_lsn = lsn;
    pos += kWalRecordHeaderSize + payload_len;
    result.valid_bytes = pos;
  }
  return result;
}

}  // namespace sqo::storage
