#include "storage/wal.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "storage/format.h"

namespace sqo::storage {

std::string EncodeWalRecord(uint64_t lsn, std::string_view payload) {
  BinaryWriter body;
  body.PutU64(lsn);
  body.PutBytes(payload);
  BinaryWriter record;
  record.PutU32(MaskCrc32c(Crc32c(body.str())));
  record.PutU32(static_cast<uint32_t>(payload.size()));
  record.PutBytes(body.str());
  return record.TakeString();
}

std::string EncodeWalHeader(const WalHeader& header) {
  BinaryWriter writer;
  writer.PutU32(kWalMagic);
  writer.PutU32(kWalVersion);
  writer.PutU64(header.schema_hash.lo);
  writer.PutU64(header.schema_hash.hi);
  writer.PutU64(header.base_lsn);
  writer.PutU32(MaskCrc32c(Crc32c(writer.str())));
  return writer.TakeString();
}

std::string WalSegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::optional<uint64_t> ParseWalSegmentSeq(std::string_view name) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return std::nullopt;
  const std::string_view digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

sqo::Result<std::vector<WalSegmentFile>> ListWalSegments(
    fs::Env& env, const std::string& dir) {
  SQO_ASSIGN_OR_RETURN(std::vector<std::string> names, env.ListDir(dir));
  std::vector<WalSegmentFile> segments;
  for (const std::string& name : names) {
    if (const std::optional<uint64_t> seq = ParseWalSegmentSeq(name)) {
      segments.push_back({*seq, dir + "/" + name});
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentFile& a, const WalSegmentFile& b) {
              return a.seq < b.seq;
            });
  return segments;
}

sqo::Result<WalWriter> WalWriter::Create(fs::Env& env, const std::string& path,
                                         const WalHeader& header) {
  SQO_RETURN_IF_ERROR(fs::WriteFileAtomic(env, path, EncodeWalHeader(header)));
  SQO_ASSIGN_OR_RETURN(std::unique_ptr<fs::WritableFile> file,
                       env.OpenAppend(path));
  return WalWriter(std::move(file));
}

sqo::Result<WalWriter> WalWriter::Create(const std::string& path,
                                         const WalHeader& header) {
  return Create(*fs::Env::Default(), path, header);
}

sqo::Result<WalWriter> WalWriter::OpenExisting(fs::Env& env,
                                               const std::string& path) {
  SQO_ASSIGN_OR_RETURN(std::unique_ptr<fs::WritableFile> file,
                       env.OpenAppend(path));
  return WalWriter(std::move(file));
}

sqo::Result<WalWriter> WalWriter::OpenExisting(const std::string& path) {
  return OpenExisting(*fs::Env::Default(), path);
}

sqo::Status WalWriter::Append(uint64_t lsn,
                              const std::vector<engine::Mutation>& batch,
                              bool sync) {
  SQO_RETURN_IF_ERROR(AppendFrame(EncodeWalRecord(lsn, EncodeMutationBatch(batch))));
  if (sync) {
    SQO_RETURN_IF_ERROR(Sync());
  }
  return sqo::Status::Ok();
}

sqo::Status WalWriter::AppendFrame(std::string_view frame) {
  SQO_FAILPOINT("storage.wal_append");
  if (!file_) {
    return sqo::InternalError("WAL file is not open");
  }
  return file_->Append(frame);
}

sqo::Status WalWriter::Sync() {
  if (!file_) {
    return sqo::InternalError("WAL file is not open");
  }
  return file_->Sync();
}

sqo::Result<WalReadResult> ReadWal(fs::Env& env, const std::string& path) {
  SQO_ASSIGN_OR_RETURN(std::string data, env.ReadFile(path));

  if (data.size() < kWalHeaderSize) {
    return sqo::DataCorruptionError("WAL header truncated: " +
                                    std::to_string(data.size()) + " bytes");
  }
  {
    BinaryReader header_reader(std::string_view(data).substr(0, kWalHeaderSize));
    SQO_ASSIGN_OR_RETURN(uint32_t magic, header_reader.GetU32());
    if (magic != kWalMagic) {
      return sqo::DataCorruptionError("bad WAL magic");
    }
    SQO_ASSIGN_OR_RETURN(uint32_t version, header_reader.GetU32());
    if (version != kWalVersion) {
      return sqo::DataCorruptionError("unsupported WAL version " +
                                      std::to_string(version));
    }
  }
  const uint32_t stored_header_crc = [&] {
    BinaryReader crc_reader(
        std::string_view(data).substr(kWalHeaderSize - 4, 4));
    return *crc_reader.GetU32();
  }();
  if (UnmaskCrc32c(stored_header_crc) !=
      Crc32c(data.data(), kWalHeaderSize - 4)) {
    return sqo::DataCorruptionError("WAL header checksum mismatch");
  }

  WalReadResult result;
  {
    BinaryReader header_reader(std::string_view(data).substr(8));
    SQO_ASSIGN_OR_RETURN(result.header.schema_hash.lo, header_reader.GetU64());
    SQO_ASSIGN_OR_RETURN(result.header.schema_hash.hi, header_reader.GetU64());
    SQO_ASSIGN_OR_RETURN(result.header.base_lsn, header_reader.GetU64());
  }
  result.last_lsn = result.header.base_lsn;
  result.valid_bytes = kWalHeaderSize;
  result.file_bytes = data.size();

  std::string_view rest(data);
  size_t pos = kWalHeaderSize;
  uint64_t prev_lsn = result.header.base_lsn;
  while (pos < data.size()) {
    if (data.size() - pos < kWalRecordHeaderSize) {
      result.stopped_early = true;
      result.stop_reason = "torn record header at offset " + std::to_string(pos);
      break;
    }
    BinaryReader frame(rest.substr(pos, kWalRecordHeaderSize));
    const uint32_t stored_crc = *frame.GetU32();
    const uint32_t payload_len = *frame.GetU32();
    // Guard the length before using it: a corrupt length field must not
    // index past the buffer or drive a huge allocation.
    if (payload_len > data.size() - pos - kWalRecordHeaderSize) {
      result.stopped_early = true;
      // Distinguish a plausible torn tail (record extends past EOF but the
      // checksum region is simply missing) from an absurd length.
      result.stop_reason = "record at offset " + std::to_string(pos) +
                           " extends past end of file";
      break;
    }
    const std::string_view body =
        rest.substr(pos + 8, 8 + payload_len);  // lsn + payload
    if (UnmaskCrc32c(stored_crc) != Crc32c(body)) {
      result.stopped_early = true;
      result.corrupt = true;
      result.stop_reason =
          "record checksum mismatch at offset " + std::to_string(pos);
      break;
    }
    BinaryReader body_reader(body);
    const uint64_t lsn = *body_reader.GetU64();
    if (lsn <= prev_lsn) {
      result.stopped_early = true;
      result.corrupt = true;
      result.stop_reason = "stale LSN " + std::to_string(lsn) +
                           " after LSN " + std::to_string(prev_lsn) +
                           " at offset " + std::to_string(pos);
      break;
    }
    sqo::Result<std::vector<engine::Mutation>> batch =
        DecodeMutationBatch(body.substr(8));
    if (!batch.ok()) {
      result.stopped_early = true;
      result.corrupt = true;
      result.stop_reason = "undecodable record at offset " +
                           std::to_string(pos) + ": " +
                           batch.status().message();
      break;
    }
    WalRecord record;
    record.lsn = lsn;
    record.batch = std::move(batch).value();
    record.offset = pos;
    result.records.push_back(std::move(record));
    prev_lsn = lsn;
    result.last_lsn = lsn;
    pos += kWalRecordHeaderSize + payload_len;
    result.valid_bytes = pos;
  }
  return result;
}

sqo::Result<WalReadResult> ReadWal(const std::string& path) {
  return ReadWal(*fs::Env::Default(), path);
}

sqo::Result<WalChainResult> ReadWalChain(fs::Env& env, const std::string& dir) {
  SQO_ASSIGN_OR_RETURN(std::vector<WalSegmentFile> files,
                       ListWalSegments(env, dir));
  if (files.empty()) {
    return sqo::NotFoundError("no WAL segments in '" + dir + "'");
  }

  WalChainResult chain;
  chain.max_seq = files.back().seq;
  size_t trusted = 0;  // files[0..trusted) are in the chain
  for (size_t i = 0; i < files.size(); ++i) {
    sqo::Result<WalReadResult> read = ReadWal(env, files[i].path);
    if (!read.ok()) {
      if (i == 0) {
        // Nothing of the chain is trusted: same contract as a bad header on
        // a single-file log.
        return read.status();
      }
      chain.stopped_early = true;
      chain.corrupt = true;
      chain.stop_reason = "segment " + files[i].path +
                          " header unreadable: " + read.status().message();
      break;
    }
    if (i > 0 && read->header.base_lsn != chain.last_lsn) {
      chain.stopped_early = true;
      chain.corrupt = true;
      chain.stop_reason =
          "segment " + files[i].path + " base LSN " +
          std::to_string(read->header.base_lsn) +
          " breaks chain continuity (expected " +
          std::to_string(chain.last_lsn) + ")";
      break;
    }
    WalChainSegment segment;
    segment.seq = files[i].seq;
    segment.path = files[i].path;
    segment.read = std::move(read).value();
    if (i == 0) chain.last_lsn = segment.read.header.base_lsn;
    for (WalRecord& record : segment.read.records) {
      chain.records.push_back(record);
    }
    if (!segment.read.records.empty()) {
      chain.last_lsn = segment.read.last_lsn;
    }
    chain.file_bytes += segment.read.file_bytes;
    const bool short_segment = segment.read.stopped_early;
    if (short_segment) {
      chain.stopped_early = true;
      chain.corrupt = chain.corrupt || segment.read.corrupt;
      chain.stop_reason = segment.read.stop_reason + " in " + segment.path;
    }
    chain.segments.push_back(std::move(segment));
    trusted = i + 1;
    if (short_segment) {
      // Later segments would leave a hole in history: even a clean torn
      // tail here becomes corruption if anything follows it.
      if (i + 1 < files.size()) chain.corrupt = true;
      break;
    }
  }
  for (size_t i = trusted; i < files.size(); ++i) {
    chain.rejected_paths.push_back(files[i].path);
  }
  return chain;
}

}  // namespace sqo::storage
