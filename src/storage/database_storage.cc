// Database's durability methods. Defined here rather than in
// src/engine/database.cc so the engine library does not depend on the
// storage library (sqo_storage links sqo_engine, not the other way round);
// programs that never persist pay nothing.

#include "engine/database.h"
#include "storage/manager.h"

namespace sqo::engine {

sqo::Status Database::Open(const std::string& dir,
                           const storage::OpenOptions& options) {
  if (storage_ != nullptr) {
    return sqo::InvalidArgumentError(
        "storage is already attached (rooted at " + storage_->dir() +
        "); CloseStorage() first");
  }
  SQO_ASSIGN_OR_RETURN(std::unique_ptr<storage::StorageManager> manager,
                       storage::StorageManager::Open(dir, &store_, options));
  storage_ = std::move(manager);
  return sqo::Status::Ok();
}

sqo::Status Database::Open(const std::string& dir) {
  return Open(dir, storage::OpenOptions{});
}

sqo::Status Database::Checkpoint() {
  if (storage_ == nullptr) {
    return sqo::InvalidArgumentError("no storage attached; Open() first");
  }
  return storage_->Checkpoint();
}

sqo::Status Database::CloseStorage() {
  if (storage_ == nullptr) {
    return sqo::InvalidArgumentError("no storage attached; Open() first");
  }
  const sqo::Status status = storage_->Close();
  storage_.reset();
  return status;
}

const storage::RecoveryInfo* Database::recovery_info() const {
  return storage_ == nullptr ? nullptr : &storage_->recovery_info();
}

}  // namespace sqo::engine
