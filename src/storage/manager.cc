#include "storage/manager.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "common/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/format.h"
#include "storage/snapshot.h"

namespace sqo::storage {
namespace {

constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".sqo";

/// snapshot-NNNNNN.sqo → NNNNNN; nullopt for anything else.
std::optional<uint64_t> ParseSnapshotSeq(std::string_view name) {
  if (name.size() <= kSnapshotPrefix.size() + kSnapshotSuffix.size() ||
      name.substr(0, kSnapshotPrefix.size()) != kSnapshotPrefix ||
      name.substr(name.size() - kSnapshotSuffix.size()) != kSnapshotSuffix) {
    return std::nullopt;
  }
  const std::string_view digits = name.substr(
      kSnapshotPrefix.size(),
      name.size() - kSnapshotPrefix.size() - kSnapshotSuffix.size());
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

sqo::Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const std::string& dir, engine::ObjectStore* store,
    const OpenOptions& options) {
  obs::Span span("storage.open");
  std::unique_ptr<StorageManager> manager(
      new StorageManager(dir, store, options));
  sqo::Status status = manager->Recover();
  if (!status.ok()) {
    // Never leave a half-attached listener behind a failed open.
    store->SetMutationListener(nullptr);
    return status;
  }
  return manager;
}

StorageManager::~StorageManager() { Close(); }

std::string StorageManager::SnapshotPath(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + std::string(kSnapshotPrefix) + buf +
         std::string(kSnapshotSuffix);
}

std::string StorageManager::SegmentPath(uint64_t seq) const {
  return dir_ + "/" + WalSegmentFileName(seq);
}

std::string StorageManager::CatalogJson() const {
  return options_.compiled != nullptr ? SerializeCatalog(*options_.compiled)
                                      : std::string();
}

void StorageManager::Degrade(std::string reason, bool corruption) {
  info_.degraded = true;
  if (corruption) {
    info_.corruption_detected = true;
    obs::Count("storage.corruption_detected");
  }
  if (info_.degradation_reason.empty()) {
    info_.degradation_reason = std::move(reason);
  } else {
    info_.degradation_reason += "; " + reason;
  }
}

uint64_t StorageManager::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_lsn_;
}

StorageManager::WalStats StorageManager::wal_stats() const {
  WalStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.current_seq = wal_seq_;
    stats.rotations = wal_rotations_;
  }
  if (sqo::Result<std::vector<WalSegmentFile>> segments =
          ListWalSegments(*env_, dir_);
      segments.ok()) {
    stats.segments = segments->size();
    for (const WalSegmentFile& segment : *segments) {
      if (sqo::Result<uint64_t> size = env_->FileSize(segment.path); size.ok()) {
        stats.bytes += *size;
      }
    }
  }
  return stats;
}

GroupCommitter::Stats StorageManager::group_commit_stats() const {
  return committer_ != nullptr ? committer_->stats() : GroupCommitter::Stats{};
}

void StorageManager::LintOpenOptions() {
  // The deadline budget is whatever the calling session has left right now;
  // that is the bound a group-commit wait must fit under.
  int64_t deadline_budget_ms = 0;
  if (ExecutionContext* ctx = CurrentContext();
      ctx != nullptr && ctx->has_deadline()) {
    deadline_budget_ms = std::max<int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(
               ctx->deadline() - std::chrono::steady_clock::now())
               .count());
  }
  info_.lint.Append(analysis::AnalyzeStorageOptions(
      options_.sync_each_append,
      static_cast<int64_t>(options_.group_commit_flush_interval.count()),
      deadline_budget_ms, options_.keep_snapshots));
}

sqo::Status StorageManager::Recover() {
  obs::Span span("storage.recovery");
  SQO_RETURN_IF_ERROR(env_->EnsureDir(dir_));
  const sqo::Fingerprint128 live = SchemaFingerprint(store_->schema());
  uint64_t max_seq = 0;
  SQO_RETURN_IF_ERROR(LoadSnapshots(live, &max_seq));
  next_snapshot_seq_ = max_seq + 1;
  SQO_RETURN_IF_ERROR(RecoverWal(live));
  assigned_lsn_ = last_lsn_;
  LintOpenOptions();
  if (options_.group_commit) {
    GroupCommitter::Options committer_options;
    committer_options.max_batch_ops = std::max<size_t>(
        1, options_.group_commit_max_batch);
    committer_options.flush_interval = options_.group_commit_flush_interval;
    committer_ = std::make_unique<GroupCommitter>(
        committer_options, [this](const std::vector<std::string>& frames) {
          return WriteBatch(frames);
        });
  }
  store_->SetMutationListener(
      [this](const std::vector<engine::Mutation>& batch) {
        return AppendBatch(batch);
      });
  if (info_.created) {
    // First open (or total loss): the in-memory contents are the baseline.
    // Persist them immediately so "opened OK" implies "durable".
    SQO_RETURN_IF_ERROR(Checkpoint());
  }
  obs::Gauge("storage.healthy", healthy() ? 1 : 0);
  obs::Gauge("wal.segments", wal_stats().segments);
  return sqo::Status::Ok();
}

sqo::Status StorageManager::LoadSnapshots(const sqo::Fingerprint128& live_hash,
                                          uint64_t* max_seq) {
  SQO_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
  std::vector<std::pair<uint64_t, std::string>> candidates;
  for (const std::string& name : names) {
    if (std::optional<uint64_t> seq = ParseSnapshotSeq(name)) {
      candidates.emplace_back(*seq, name);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  *max_seq = candidates.empty() ? 0 : candidates.front().first;

  bool loaded = false;
  for (size_t i = 0; i < candidates.size() && !loaded; ++i) {
    const std::string& name = candidates[i].second;
    const std::string path = dir_ + "/" + name;
    sqo::Result<SnapshotContents> contents = ReadSnapshot(path);
    if (!contents.ok()) {
      if (!options_.fail_open) return contents.status();
      Degrade("snapshot " + name + " unusable: " + contents.status().message(),
              /*corruption=*/true);
      continue;
    }
    if (contents->schema_hash != live_hash) {
      // Version skew, not bit rot: the file is intact but describes a
      // different schema. Refuse it (fail-closed) or skip it (fail-open).
      if (!options_.fail_open) {
        return sqo::DataCorruptionError(
            "snapshot " + name + " was written for schema " +
            contents->schema_hash.ToString() + " but the live schema is " +
            live_hash.ToString());
      }
      Degrade("snapshot " + name + " skipped: schema mismatch (" +
                  contents->schema_hash.ToString() + " vs live " +
                  live_hash.ToString() + ")",
              /*corruption=*/false);
      continue;
    }
    store_->Clear();
    sqo::Status status = store_->ApplyMutations(contents->objects);
    if (status.ok()) status = store_->ApplyMutations(contents->pairs);
    if (!status.ok()) {
      store_->Clear();
      if (!options_.fail_open) return status;
      Degrade("snapshot " + name + " failed to apply: " + status.message(),
              /*corruption=*/true);
      continue;
    }
    store_->RestoreNextOid(contents->next_oid);
    // Reinstall the persisted adaptive access structures before WAL
    // replay, so replayed mutations delta-maintain them instead of the
    // first post-recovery query rebuilding from scratch.
    for (auto& dump : contents->indexes) {
      store_->RestoreSecondaryIndex(std::move(dump));
    }
    for (auto& asr : contents->asrs) {
      store_->RestoreAsrState(std::move(asr));
    }
    info_.snapshot_path = path;
    info_.snapshot_lsn = contents->last_lsn;
    last_lsn_ = contents->last_lsn;
    if (!contents->catalog_json.empty()) {
      sqo::Result<CatalogInfo> catalog =
          ParseCatalogInfo(contents->catalog_json);
      if (catalog.ok()) {
        info_.catalog_loaded = true;
        info_.catalog = std::move(catalog).value();
        if (options_.compiled != nullptr) {
          info_.lint = analysis::AnalyzeCatalogFreshness(
              info_.catalog.schema_hash.ToString(), live_hash.ToString(),
              info_.catalog.total_residues,
              options_.compiled->total_residues());
        }
      } else {
        // The section passed its CRC but the document is malformed. The
        // store itself recovered fine; flag the catalog and move on.
        Degrade("stored catalog unreadable: " + catalog.status().message(),
                /*corruption=*/true);
      }
    }
    loaded = true;
  }
  if (loaded) {
    obs::Count("storage.recovery.snapshot_loaded");
  } else {
    // Nothing usable on disk: bootstrap from the store's current contents.
    info_.created = true;
    last_lsn_ = 0;
    obs::Count("storage.recovery.fresh");
  }
  return sqo::Status::Ok();
}

sqo::Status StorageManager::RecoverWal(const sqo::Fingerprint128& live_hash) {
  sqo::Result<WalChainResult> chain = ReadWalChain(*env_, dir_);
  if (!chain.ok()) {
    if (chain.status().code() != sqo::StatusCode::kNotFound) {
      // The first segment's header is untrusted — the whole chain is
      // discarded, same contract as a bad header on a single-file log.
      if (!options_.fail_open) return chain.status();
      Degrade("WAL discarded: " + chain.status().message(),
              /*corruption=*/true);
      if (sqo::Result<std::vector<WalSegmentFile>> files =
              ListWalSegments(*env_, dir_);
          files.ok()) {
        for (const WalSegmentFile& file : *files) {
          (void)env_->RemoveFile(file.path);
        }
      }
    }
    wal_seq_ = 0;
    return RotateLocked();
  }

  WalChainResult& wal = *chain;
  wal_seq_ = wal.max_seq;

  // Cross-check every trusted segment against the live SchemaFingerprint:
  // a segment written for another schema would replay mutations that mean
  // something different under the current catalog (the residue-soundness
  // hazard the catalog artifact exists to prevent).
  size_t trusted = wal.segments.size();
  for (size_t i = 0; i < wal.segments.size(); ++i) {
    if (wal.segments[i].read.header.schema_hash != live_hash) {
      if (!options_.fail_open) {
        return sqo::DataCorruptionError(
            "WAL segment " + wal.segments[i].path + " was written for schema " +
            wal.segments[i].read.header.schema_hash.ToString() +
            " but the live schema is " + live_hash.ToString());
      }
      Degrade("WAL discarded from " + wal.segments[i].path +
                  ": schema mismatch",
              /*corruption=*/false);
      trusted = i;
      break;
    }
  }
  if (trusted > 0 && wal.segments.front().read.header.base_lsn > last_lsn_) {
    // The chain extends a snapshot newer than the one recovery could load
    // (we failed open to an older one): the intermediate history is gone,
    // so replaying would apply operations against the wrong base state.
    if (!options_.fail_open) {
      return sqo::DataCorruptionError(
          "WAL base LSN " +
          std::to_string(wal.segments.front().read.header.base_lsn) +
          " is beyond the recovered snapshot LSN " + std::to_string(last_lsn_));
    }
    Degrade("WAL discarded: base LSN " +
                std::to_string(wal.segments.front().read.header.base_lsn) +
                " beyond recovered snapshot LSN " + std::to_string(last_lsn_),
            /*corruption=*/false);
    trusted = 0;
  }

  // Replay the trusted chain; an apply failure cuts the log at that record.
  size_t stop_segment = trusted;   // first segment to delete entirely
  uint64_t stop_offset = 0;        // truncation point inside stop_segment-1
  bool apply_failed = false;
  for (size_t i = 0; i < trusted && !apply_failed; ++i) {
    const WalReadResult& read = wal.segments[i].read;
    for (const WalRecord& record : read.records) {
      if (record.lsn <= last_lsn_) continue;  // covered by the snapshot
      sqo::Status status = store_->ApplyMutations(record.batch);
      if (!status.ok()) {
        // Checksummed but semantically inconsistent (e.g. pairs a deleted
        // object): cut the log here, keep what applied.
        if (!options_.fail_open) return status;
        Degrade("WAL record LSN " + std::to_string(record.lsn) +
                    " failed to apply: " + status.message() + "; log truncated",
                /*corruption=*/true);
        apply_failed = true;
        stop_segment = i + 1;
        stop_offset = record.offset;
        break;
      }
      last_lsn_ = record.lsn;
      ++info_.replayed_records;
    }
  }
  if (!apply_failed && trusted > 0) {
    stop_offset = wal.segments[trusted - 1].read.valid_bytes;
  }
  if (wal.corrupt && trusted == wal.segments.size()) {
    if (!options_.fail_open) {
      return sqo::DataCorruptionError("WAL: " + wal.stop_reason);
    }
    Degrade("WAL truncated: " + wal.stop_reason, /*corruption=*/true);
  }
  info_.wal_segments = stop_segment;

  // Physical cleanup, newest first so a crash mid-cleanup cannot leave a
  // trusted-looking segment beyond a hole: delete rejected files and
  // segments past the stop point, truncate the stop segment's bad tail.
  for (auto it = wal.rejected_paths.rbegin(); it != wal.rejected_paths.rend();
       ++it) {
    (void)env_->RemoveFile(*it);
  }
  for (size_t i = wal.segments.size(); i > stop_segment; --i) {
    const WalReadResult& read = wal.segments[i - 1].read;
    info_.truncated_bytes += read.valid_bytes;  // whole segment discarded
    (void)env_->RemoveFile(wal.segments[i - 1].path);
  }
  if (stop_segment > 0) {
    const WalChainSegment& tail = wal.segments[stop_segment - 1];
    if (stop_offset < tail.read.file_bytes) {
      info_.truncated_bytes += tail.read.file_bytes - stop_offset;
      SQO_RETURN_IF_ERROR(env_->TruncateFile(tail.path, stop_offset));
    }
  }
  // A clean torn tail (stopped_early without corrupt) is the expected
  // artifact of a crash mid-append: truncated silently, no degradation.
  obs::Count("storage.recovery.wal_records_replayed", info_.replayed_records);

  // Always append into a fresh segment based at the recovered LSN — the
  // truncated tail segment stays read-only until a checkpoint prunes it.
  return RotateLocked();
}

sqo::Status StorageManager::RotateLocked() {
  const sqo::Fingerprint128 live = SchemaFingerprint(store_->schema());
  const uint64_t seq = wal_seq_ + 1;
  sqo::Result<WalWriter> writer =
      WalWriter::Create(*env_, SegmentPath(seq), WalHeader{live, last_lsn_});
  if (!writer.ok()) {
    return writer.status();
  }
  wal_ = std::make_unique<WalWriter>(std::move(writer).value());
  wal_seq_ = seq;
  return sqo::Status::Ok();
}

void StorageManager::MaybeRotateLocked() {
  if (wal_ == nullptr || wal_->size() < options_.wal_segment_bytes) return;
  const uint64_t before = wal_seq_;
  // Best-effort: a failed rotation (e.g. no space for the new header) keeps
  // the current oversized segment as the writer — nothing durable is lost,
  // and the next batch retries.
  if (RotateLocked().ok() && wal_seq_ != before) {
    ++wal_rotations_;
    obs::Count("storage.wal.rotations");
  }
}

sqo::Status StorageManager::WriteBatch(const std::vector<std::string>& frames) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) {
    return sqo::InternalError("storage manager has no open WAL segment");
  }
  if (!healthy_.load(std::memory_order_relaxed)) {
    return sqo::DataCorruptionError(
        "storage is unhealthy after an earlier append failure; mutation not "
        "durable (checkpoint to re-base the log)");
  }
  for (const std::string& frame : frames) {
    sqo::Status status = wal_->AppendFrame(frame);
    if (!status.ok()) {
      // Latch: once one record fails, later appends must not succeed or the
      // durable log would have a hole — acknowledged ops must be a prefix.
      healthy_.store(false, std::memory_order_relaxed);
      return status;
    }
  }
  if (options_.sync_each_append) {
    sqo::Status status = wal_->Sync();
    if (!status.ok()) {
      // The bytes may or may not be on disk; nobody in this batch gets
      // acknowledged, and the latch keeps the acknowledged set a durable
      // prefix.
      healthy_.store(false, std::memory_order_relaxed);
      return status;
    }
  }
  // Frames are enqueued in LSN order and batches are FIFO, so the batch
  // covers exactly the next `frames.size()` LSNs.
  last_lsn_ += frames.size();
  MaybeRotateLocked();
  return sqo::Status::Ok();
}

sqo::Status StorageManager::AppendBatch(
    const std::vector<engine::Mutation>& batch) {
  if (batch.empty()) return sqo::Status::Ok();
  std::shared_ptr<GroupCommitter::Ticket> ticket;
  {
    std::lock_guard<std::mutex> gate(checkpoint_mu_);
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || wal_ == nullptr) {
      return sqo::InternalError("storage manager is closed");
    }
    if (!healthy_.load(std::memory_order_relaxed)) {
      return sqo::DataCorruptionError(
          "storage is unhealthy after an earlier append failure; mutation not "
          "durable (checkpoint to re-base the log)");
    }
    const uint64_t lsn = assigned_lsn_ + 1;
    std::string frame = EncodeWalRecord(lsn, EncodeMutationBatch(batch));
    if (committer_ != nullptr) {
      // LSN assignment and enqueue happen under one lock so queue order is
      // LSN order; the wait happens outside every lock.
      ticket = committer_->Enqueue(std::move(frame));
      assigned_lsn_ = lsn;
    } else {
      sqo::Status status = wal_->AppendFrame(frame);
      if (status.ok() && options_.sync_each_append) status = wal_->Sync();
      if (!status.ok()) {
        healthy_.store(false, std::memory_order_relaxed);
        obs::Count("storage.wal.append_failed");
        obs::Gauge("storage.healthy", 0);
        return status;
      }
      assigned_lsn_ = lsn;
      last_lsn_ = lsn;
      obs::Count("storage.wal.records");
      MaybeRotateLocked();
      return sqo::Status::Ok();
    }
  }
  sqo::Status status = committer_->Wait(ticket);
  if (!status.ok()) {
    obs::Count("storage.wal.append_failed");
    obs::Gauge("storage.healthy", healthy() ? 1 : 0);
    return status;
  }
  obs::Count("storage.wal.records");
  return sqo::Status::Ok();
}

sqo::Status StorageManager::Checkpoint() {
  obs::Span span("storage.checkpoint");
  std::lock_guard<std::mutex> gate(checkpoint_mu_);
  if (committer_ != nullptr) {
    // Drain: every frame enqueued before the gate closed gets its batch
    // outcome (and its waiter is acknowledged) before we snapshot — so no
    // acknowledged record can sit only in a segment we are about to prune,
    // and the snapshot LSN covers everything the log acknowledged.
    committer_->Flush();
  }
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

sqo::Status StorageManager::CheckpointLocked() {
  const sqo::Fingerprint128 live = SchemaFingerprint(store_->schema());
  // Memory is the truth: the snapshot contains every applied mutation,
  // including any that failed acknowledgment after the unhealthy latch, so
  // it is stamped with the highest *assigned* LSN.
  const uint64_t snapshot_lsn = assigned_lsn_;
  const uint64_t seq = next_snapshot_seq_;
  sqo::Status status = WriteSnapshot(*env_, SnapshotPath(seq), *store_, live,
                                     snapshot_lsn, CatalogJson());
  if (!status.ok()) {
    // The previous snapshot + segments remain authoritative; nothing lost.
    obs::Count("storage.checkpoint.failed");
    return status;
  }
  next_snapshot_seq_ = seq + 1;
  last_lsn_ = snapshot_lsn;
  const uint64_t covered_seq = wal_seq_;
  sqo::Status rotated = RotateLocked();
  if (!rotated.ok()) {
    // The new snapshot already covers every logged operation, but with no
    // working log further mutations cannot be acknowledged.
    healthy_.store(false, std::memory_order_relaxed);
    wal_.reset();
    obs::Count("storage.checkpoint.failed");
    obs::Gauge("storage.healthy", 0);
    return rotated;
  }
  healthy_.store(true, std::memory_order_relaxed);
  obs::Count("storage.checkpoint.count");

  // The snapshot covers every record in segments up to covered_seq: prune
  // them (best-effort, oldest first so a crash mid-prune leaves a
  // contiguous chain suffix).
  if (sqo::Result<std::vector<WalSegmentFile>> segments =
          ListWalSegments(*env_, dir_);
      segments.ok()) {
    for (const WalSegmentFile& segment : *segments) {
      if (segment.seq <= covered_seq) {
        (void)env_->RemoveFile(segment.path);
      }
    }
  }

  // Prune checkpoints beyond the newest keep_snapshots (best-effort).
  const size_t keep = std::max<size_t>(1, options_.keep_snapshots);
  if (sqo::Result<std::vector<std::string>> names = env_->ListDir(dir_);
      names.ok()) {
    std::vector<uint64_t> seqs;
    for (const std::string& name : *names) {
      if (std::optional<uint64_t> s = ParseSnapshotSeq(name)) {
        seqs.push_back(*s);
      }
    }
    std::sort(seqs.begin(), seqs.end(), std::greater<uint64_t>());
    for (size_t i = keep; i < seqs.size(); ++i) {
      const sqo::Status removed = env_->RemoveFile(SnapshotPath(seqs[i]));
      (void)removed;  // best-effort: a stale extra snapshot is harmless
    }
  }
  obs::Gauge("storage.healthy", 1);
  obs::Gauge("wal.segments", 1);
  return sqo::Status::Ok();
}

sqo::Status StorageManager::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return sqo::Status::Ok();
  }
  sqo::Status status = sqo::Status::Ok();
  if (options_.checkpoint_on_close && wal_ != nullptr) {
    // Memory is the truth: a final checkpoint repairs durability even if
    // the log went unhealthy mid-session.
    status = Checkpoint();
  }
  if (committer_ != nullptr) committer_->Stop();
  {
    std::lock_guard<std::mutex> gate(checkpoint_mu_);
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    wal_.reset();
  }
  store_->SetMutationListener(nullptr);
  return status;
}

}  // namespace sqo::storage
