#include "storage/manager.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "common/fileio.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot.h"

namespace sqo::storage {
namespace {

constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".sqo";
constexpr std::string_view kWalName = "wal.log";

/// snapshot-NNNNNN.sqo → NNNNNN; nullopt for anything else.
std::optional<uint64_t> ParseSnapshotSeq(std::string_view name) {
  if (name.size() <= kSnapshotPrefix.size() + kSnapshotSuffix.size() ||
      name.substr(0, kSnapshotPrefix.size()) != kSnapshotPrefix ||
      name.substr(name.size() - kSnapshotSuffix.size()) != kSnapshotSuffix) {
    return std::nullopt;
  }
  const std::string_view digits = name.substr(
      kSnapshotPrefix.size(),
      name.size() - kSnapshotPrefix.size() - kSnapshotSuffix.size());
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

sqo::Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const std::string& dir, engine::ObjectStore* store,
    const OpenOptions& options) {
  obs::Span span("storage.open");
  std::unique_ptr<StorageManager> manager(
      new StorageManager(dir, store, options));
  sqo::Status status = manager->Recover();
  if (!status.ok()) {
    // Never leave a half-attached listener behind a failed open.
    store->SetMutationListener(nullptr);
    return status;
  }
  return manager;
}

StorageManager::~StorageManager() { Close(); }

std::string StorageManager::SnapshotPath(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + std::string(kSnapshotPrefix) + buf +
         std::string(kSnapshotSuffix);
}

std::string StorageManager::WalPath() const {
  return dir_ + "/" + std::string(kWalName);
}

std::string StorageManager::CatalogJson() const {
  return options_.compiled != nullptr ? SerializeCatalog(*options_.compiled)
                                      : std::string();
}

void StorageManager::Degrade(std::string reason, bool corruption) {
  info_.degraded = true;
  if (corruption) {
    info_.corruption_detected = true;
    obs::Count("storage.corruption_detected");
  }
  if (info_.degradation_reason.empty()) {
    info_.degradation_reason = std::move(reason);
  } else {
    info_.degradation_reason += "; " + reason;
  }
}

sqo::Status StorageManager::Recover() {
  obs::Span span("storage.recovery");
  SQO_RETURN_IF_ERROR(fs::EnsureDir(dir_));
  const sqo::Fingerprint128 live = SchemaFingerprint(store_->schema());
  uint64_t max_seq = 0;
  SQO_RETURN_IF_ERROR(LoadSnapshots(live, &max_seq));
  next_snapshot_seq_ = max_seq + 1;
  SQO_RETURN_IF_ERROR(RecoverWal(live));
  store_->SetMutationListener(
      [this](const std::vector<engine::Mutation>& batch) {
        return AppendBatch(batch);
      });
  if (info_.created) {
    // First open (or total loss): the in-memory contents are the baseline.
    // Persist them immediately so "opened OK" implies "durable".
    SQO_RETURN_IF_ERROR(Checkpoint());
  }
  return sqo::Status::Ok();
}

sqo::Status StorageManager::LoadSnapshots(const sqo::Fingerprint128& live_hash,
                                          uint64_t* max_seq) {
  SQO_ASSIGN_OR_RETURN(std::vector<std::string> names, fs::ListDir(dir_));
  std::vector<std::pair<uint64_t, std::string>> candidates;
  for (const std::string& name : names) {
    if (std::optional<uint64_t> seq = ParseSnapshotSeq(name)) {
      candidates.emplace_back(*seq, name);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  *max_seq = candidates.empty() ? 0 : candidates.front().first;

  bool loaded = false;
  for (size_t i = 0; i < candidates.size() && !loaded; ++i) {
    const std::string& name = candidates[i].second;
    const std::string path = dir_ + "/" + name;
    sqo::Result<SnapshotContents> contents = ReadSnapshot(path);
    if (!contents.ok()) {
      if (!options_.fail_open) return contents.status();
      Degrade("snapshot " + name + " unusable: " + contents.status().message(),
              /*corruption=*/true);
      continue;
    }
    if (contents->schema_hash != live_hash) {
      // Version skew, not bit rot: the file is intact but describes a
      // different schema. Refuse it (fail-closed) or skip it (fail-open).
      if (!options_.fail_open) {
        return sqo::DataCorruptionError(
            "snapshot " + name + " was written for schema " +
            contents->schema_hash.ToString() + " but the live schema is " +
            live_hash.ToString());
      }
      Degrade("snapshot " + name + " skipped: schema mismatch (" +
                  contents->schema_hash.ToString() + " vs live " +
                  live_hash.ToString() + ")",
              /*corruption=*/false);
      continue;
    }
    store_->Clear();
    sqo::Status status = store_->ApplyMutations(contents->objects);
    if (status.ok()) status = store_->ApplyMutations(contents->pairs);
    if (!status.ok()) {
      store_->Clear();
      if (!options_.fail_open) return status;
      Degrade("snapshot " + name + " failed to apply: " + status.message(),
              /*corruption=*/true);
      continue;
    }
    store_->RestoreNextOid(contents->next_oid);
    info_.snapshot_path = path;
    info_.snapshot_lsn = contents->last_lsn;
    last_lsn_ = contents->last_lsn;
    if (!contents->catalog_json.empty()) {
      sqo::Result<CatalogInfo> catalog =
          ParseCatalogInfo(contents->catalog_json);
      if (catalog.ok()) {
        info_.catalog_loaded = true;
        info_.catalog = std::move(catalog).value();
        if (options_.compiled != nullptr) {
          info_.lint = analysis::AnalyzeCatalogFreshness(
              info_.catalog.schema_hash.ToString(), live_hash.ToString(),
              info_.catalog.total_residues,
              options_.compiled->total_residues());
        }
      } else {
        // The section passed its CRC but the document is malformed. The
        // store itself recovered fine; flag the catalog and move on.
        Degrade("stored catalog unreadable: " + catalog.status().message(),
                /*corruption=*/true);
      }
    }
    loaded = true;
  }
  if (loaded) {
    obs::Count("storage.recovery.snapshot_loaded");
  } else {
    // Nothing usable on disk: bootstrap from the store's current contents.
    info_.created = true;
    last_lsn_ = 0;
    obs::Count("storage.recovery.fresh");
  }
  return sqo::Status::Ok();
}

sqo::Status StorageManager::RecoverWal(const sqo::Fingerprint128& live_hash) {
  const std::string path = WalPath();
  const WalHeader fresh_header{live_hash, last_lsn_};
  sqo::Result<WalReadResult> read = ReadWal(path);
  if (!read.ok()) {
    if (read.status().code() != sqo::StatusCode::kNotFound) {
      // The header itself is untrusted — the whole log is discarded.
      if (!options_.fail_open) return read.status();
      Degrade("WAL discarded: " + read.status().message(),
              /*corruption=*/true);
    }
    SQO_ASSIGN_OR_RETURN(WalWriter writer,
                         WalWriter::Create(path, fresh_header));
    wal_ = std::make_unique<WalWriter>(std::move(writer));
    return sqo::Status::Ok();
  }

  WalReadResult& wal = *read;
  if (wal.header.schema_hash != live_hash) {
    if (!options_.fail_open) {
      return sqo::DataCorruptionError(
          "WAL was written for schema " + wal.header.schema_hash.ToString() +
          " but the live schema is " + live_hash.ToString());
    }
    Degrade("WAL discarded: schema mismatch", /*corruption=*/false);
    SQO_ASSIGN_OR_RETURN(WalWriter writer,
                         WalWriter::Create(path, fresh_header));
    wal_ = std::make_unique<WalWriter>(std::move(writer));
    return sqo::Status::Ok();
  }
  if (wal.header.base_lsn > last_lsn_) {
    // The log extends a snapshot newer than the one recovery could load
    // (we failed open to an older one): the intermediate history is gone,
    // so replaying would apply operations against the wrong base state.
    if (!options_.fail_open) {
      return sqo::DataCorruptionError(
          "WAL base LSN " + std::to_string(wal.header.base_lsn) +
          " is beyond the recovered snapshot LSN " + std::to_string(last_lsn_));
    }
    Degrade("WAL discarded: base LSN " + std::to_string(wal.header.base_lsn) +
                " beyond recovered snapshot LSN " + std::to_string(last_lsn_),
            /*corruption=*/false);
    SQO_ASSIGN_OR_RETURN(WalWriter writer,
                         WalWriter::Create(path, fresh_header));
    wal_ = std::make_unique<WalWriter>(std::move(writer));
    return sqo::Status::Ok();
  }

  uint64_t truncate_to = wal.valid_bytes;
  for (const WalRecord& record : wal.records) {
    if (record.lsn <= last_lsn_) continue;  // already covered by the snapshot
    sqo::Status status = store_->ApplyMutations(record.batch);
    if (!status.ok()) {
      // Checksummed but semantically inconsistent (e.g. pairs a deleted
      // object): cut the log here, keep what applied.
      if (!options_.fail_open) return status;
      Degrade("WAL record LSN " + std::to_string(record.lsn) +
                  " failed to apply: " + status.message() + "; log truncated",
              /*corruption=*/true);
      truncate_to = record.offset;
      break;
    }
    last_lsn_ = record.lsn;
    ++info_.replayed_records;
  }
  if (wal.corrupt) {
    if (!options_.fail_open) {
      return sqo::DataCorruptionError("WAL: " + wal.stop_reason);
    }
    Degrade("WAL truncated: " + wal.stop_reason, /*corruption=*/true);
  }
  // A clean torn tail (stopped_early without corrupt) is the expected
  // artifact of a crash mid-append: truncate silently, no degradation.
  if (truncate_to < wal.file_bytes) {
    info_.truncated_bytes += wal.file_bytes - truncate_to;
    SQO_RETURN_IF_ERROR(fs::TruncateFile(path, truncate_to));
  }
  obs::Count("storage.recovery.wal_records_replayed", info_.replayed_records);
  SQO_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::OpenExisting(path));
  wal_ = std::make_unique<WalWriter>(std::move(writer));
  return sqo::Status::Ok();
}

sqo::Status StorageManager::AppendBatch(
    const std::vector<engine::Mutation>& batch) {
  if (batch.empty()) return sqo::Status::Ok();
  if (closed_ || wal_ == nullptr) {
    return sqo::InternalError("storage manager is closed");
  }
  if (!healthy_) {
    return sqo::DataCorruptionError(
        "storage is unhealthy after an earlier append failure; mutation not "
        "durable (checkpoint to re-base the log)");
  }
  const uint64_t lsn = last_lsn_ + 1;
  sqo::Status status = wal_->Append(lsn, batch, options_.sync_each_append);
  if (!status.ok()) {
    // Latch: once one record fails, later appends must not succeed or the
    // durable log would have a hole — acknowledged ops must be a prefix.
    healthy_ = false;
    obs::Count("storage.wal.append_failed");
    return status;
  }
  last_lsn_ = lsn;
  obs::Count("storage.wal.records");
  return sqo::Status::Ok();
}

sqo::Status StorageManager::Checkpoint() {
  obs::Span span("storage.checkpoint");
  const sqo::Fingerprint128 live = SchemaFingerprint(store_->schema());
  const uint64_t seq = next_snapshot_seq_;
  sqo::Status status =
      WriteSnapshot(SnapshotPath(seq), *store_, live, last_lsn_,
                    CatalogJson());
  if (!status.ok()) {
    // The previous snapshot + log remain authoritative; nothing was lost.
    obs::Count("storage.checkpoint.failed");
    return status;
  }
  next_snapshot_seq_ = seq + 1;
  sqo::Result<WalWriter> writer =
      WalWriter::Create(WalPath(), WalHeader{live, last_lsn_});
  if (!writer.ok()) {
    // The new snapshot already covers every logged operation, but with no
    // working log further mutations cannot be acknowledged.
    healthy_ = false;
    wal_.reset();
    obs::Count("storage.checkpoint.failed");
    return writer.status();
  }
  wal_ = std::make_unique<WalWriter>(std::move(writer).value());
  healthy_ = true;  // the snapshot re-based durability; the latch clears
  obs::Count("storage.checkpoint.count");

  // Prune checkpoints beyond the newest keep_snapshots (best-effort).
  const size_t keep = std::max<size_t>(1, options_.keep_snapshots);
  if (sqo::Result<std::vector<std::string>> names = fs::ListDir(dir_);
      names.ok()) {
    std::vector<uint64_t> seqs;
    for (const std::string& name : *names) {
      if (std::optional<uint64_t> s = ParseSnapshotSeq(name)) {
        seqs.push_back(*s);
      }
    }
    std::sort(seqs.begin(), seqs.end(), std::greater<uint64_t>());
    for (size_t i = keep; i < seqs.size(); ++i) {
      const sqo::Status removed = fs::RemoveFile(SnapshotPath(seqs[i]));
      (void)removed;  // best-effort: a stale extra snapshot is harmless
    }
  }
  return sqo::Status::Ok();
}

sqo::Status StorageManager::Close() {
  if (closed_) return sqo::Status::Ok();
  sqo::Status status = sqo::Status::Ok();
  if (options_.checkpoint_on_close && wal_ != nullptr) {
    // Memory is the truth: a final checkpoint repairs durability even if
    // the log went unhealthy mid-session.
    status = Checkpoint();
  }
  closed_ = true;
  store_->SetMutationListener(nullptr);
  wal_.reset();
  return status;
}

}  // namespace sqo::storage
