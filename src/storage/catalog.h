#ifndef SQO_STORAGE_CATALOG_H_
#define SQO_STORAGE_CATALOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/fingerprint.h"
#include "common/status.h"
#include "sqo/semantic_compiler.h"
#include "translate/schema_translator.h"

/// Serialization of the semantic catalog — the translated DATALOG schema's
/// identity plus the compiled residues and integrity constraints — into the
/// snapshot's catalog section.
///
/// The catalog is persisted as JSON rather than binary: it is a verifiable
/// *artifact* (what was compiled, from which schema), not the source the
/// engine reconstructs residues from. On open, the engine recompiles from
/// the live schema and compares the stored schema fingerprint; a mismatch
/// is surfaced as analyzer diagnostic SQO-A013 (stale catalog), not an
/// error — the live compilation always wins.
namespace sqo::storage {

/// Summary parsed back out of a stored catalog section.
struct CatalogInfo {
  /// Fingerprint of the translated schema the catalog was compiled from,
  /// stored as a 32-hex-digit string (JSON numbers are doubles and cannot
  /// carry 64-bit hashes exactly).
  sqo::Fingerprint128 schema_hash;
  uint64_t ic_count = 0;
  uint64_t total_residues = 0;
  std::vector<std::string> ic_labels;
};

/// Stable fingerprint of a translated schema: an ordered fold over every
/// relation signature (name, kind, attributes, ownership, functionality).
sqo::Fingerprint128 SchemaFingerprint(const translate::TranslatedSchema& schema);

/// Renders `compiled` as the catalog JSON document embedded in snapshots.
std::string SerializeCatalog(const core::CompiledSchema& compiled);

/// Parses the summary fields back out of a catalog JSON document.
/// kDataCorruption on malformed JSON or missing/ill-typed fields.
sqo::Result<CatalogInfo> ParseCatalogInfo(std::string_view json);

}  // namespace sqo::storage

#endif  // SQO_STORAGE_CATALOG_H_
