#include "storage/snapshot.h"

#include <utility>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/fileio.h"
#include "storage/format.h"

namespace sqo::storage {
namespace {

std::string EncodeStoreSection(const engine::ObjectStore& store) {
  BinaryWriter writer;
  writer.PutU64(store.next_oid());
  writer.PutU64(store.objects().size());
  for (const auto& [oid, record] : store.objects()) {
    writer.PutU64(oid);
    writer.PutString(record.exact_relation);
    writer.PutU32(static_cast<uint32_t>(record.row.size()));
    for (const sqo::Value& v : record.row) writer.PutValue(v);
  }
  const std::vector<std::string> rels = store.RelationNames();
  writer.PutU64(rels.size());
  for (const std::string& rel : rels) {
    writer.PutString(rel);
    const auto& pairs = store.PairsRaw(rel);
    writer.PutU64(pairs.size());
    for (const auto& [src, dst] : pairs) {
      writer.PutU64(src.raw());
      writer.PutU64(dst.raw());
    }
  }
  return writer.TakeString();
}

sqo::Status DecodeStoreSection(std::string_view section,
                               SnapshotContents* out) {
  BinaryReader reader(section);
  SQO_ASSIGN_OR_RETURN(out->next_oid, reader.GetU64());
  SQO_ASSIGN_OR_RETURN(uint64_t object_count, reader.GetU64());
  if (object_count > reader.remaining()) {
    return sqo::DataCorruptionError("object count " +
                                    std::to_string(object_count) +
                                    " exceeds store section");
  }
  out->objects.reserve(object_count);
  for (uint64_t i = 0; i < object_count; ++i) {
    engine::Mutation m;
    m.kind = engine::Mutation::Kind::kCreate;
    SQO_ASSIGN_OR_RETURN(uint64_t oid, reader.GetU64());
    m.oid = sqo::Oid(oid);
    SQO_ASSIGN_OR_RETURN(m.relation, reader.GetString());
    SQO_ASSIGN_OR_RETURN(uint32_t row_len, reader.GetU32());
    if (row_len > reader.remaining()) {
      return sqo::DataCorruptionError("row length " + std::to_string(row_len) +
                                      " exceeds store section");
    }
    m.row.reserve(row_len);
    for (uint32_t j = 0; j < row_len; ++j) {
      SQO_ASSIGN_OR_RETURN(sqo::Value v, reader.GetValue());
      m.row.push_back(std::move(v));
    }
    out->objects.push_back(std::move(m));
  }
  SQO_ASSIGN_OR_RETURN(uint64_t rel_count, reader.GetU64());
  if (rel_count > reader.remaining()) {
    return sqo::DataCorruptionError("relation count " +
                                    std::to_string(rel_count) +
                                    " exceeds store section");
  }
  for (uint64_t i = 0; i < rel_count; ++i) {
    SQO_ASSIGN_OR_RETURN(std::string rel, reader.GetString());
    SQO_ASSIGN_OR_RETURN(uint64_t pair_count, reader.GetU64());
    if (pair_count > reader.remaining()) {
      return sqo::DataCorruptionError("pair count " +
                                      std::to_string(pair_count) +
                                      " exceeds store section");
    }
    for (uint64_t j = 0; j < pair_count; ++j) {
      engine::Mutation m;
      m.kind = engine::Mutation::Kind::kInsertPair;
      m.relation = rel;
      SQO_ASSIGN_OR_RETURN(uint64_t src, reader.GetU64());
      SQO_ASSIGN_OR_RETURN(uint64_t dst, reader.GetU64());
      m.src = sqo::Oid(src);
      m.dst = sqo::Oid(dst);
      out->pairs.push_back(std::move(m));
    }
  }
  if (!reader.exhausted()) {
    return sqo::DataCorruptionError("trailing bytes in store section");
  }
  return sqo::Status::Ok();
}

std::string EncodeIndexSection(const engine::ObjectStore& store) {
  BinaryWriter writer;
  const auto indexes = store.DumpSecondaryIndexes();
  writer.PutU64(indexes.size());
  for (const auto& index : indexes) {
    writer.PutString(index.relation);
    writer.PutU64(index.pos);
    writer.PutU64(index.entries.size());
    for (const auto& [key, oids] : index.entries) {
      writer.PutValue(key);
      writer.PutU32(static_cast<uint32_t>(oids.size()));
      for (sqo::Oid oid : oids) writer.PutU64(oid.raw());
    }
  }
  const auto asrs = store.AsrStates();
  writer.PutU64(asrs.size());
  for (const auto& asr : asrs) {
    writer.PutString(asr.name);
    writer.PutU8(asr.stale ? 1 : 0);
    writer.PutU32(static_cast<uint32_t>(asr.path.size()));
    for (const std::string& hop : asr.path) writer.PutString(hop);
  }
  return writer.TakeString();
}

sqo::Status DecodeIndexSection(std::string_view section,
                               SnapshotContents* out) {
  BinaryReader reader(section);
  SQO_ASSIGN_OR_RETURN(uint64_t index_count, reader.GetU64());
  if (index_count > reader.remaining()) {
    return sqo::DataCorruptionError("index count " +
                                    std::to_string(index_count) +
                                    " exceeds index section");
  }
  out->indexes.reserve(index_count);
  for (uint64_t i = 0; i < index_count; ++i) {
    engine::ObjectStore::SecondaryIndexDump dump;
    SQO_ASSIGN_OR_RETURN(dump.relation, reader.GetString());
    SQO_ASSIGN_OR_RETURN(uint64_t pos, reader.GetU64());
    dump.pos = static_cast<size_t>(pos);
    SQO_ASSIGN_OR_RETURN(uint64_t entry_count, reader.GetU64());
    if (entry_count > reader.remaining()) {
      return sqo::DataCorruptionError("index entry count " +
                                      std::to_string(entry_count) +
                                      " exceeds index section");
    }
    dump.entries.reserve(entry_count);
    for (uint64_t j = 0; j < entry_count; ++j) {
      SQO_ASSIGN_OR_RETURN(sqo::Value key, reader.GetValue());
      SQO_ASSIGN_OR_RETURN(uint32_t oid_count, reader.GetU32());
      if (oid_count > reader.remaining()) {
        return sqo::DataCorruptionError("index bucket size " +
                                        std::to_string(oid_count) +
                                        " exceeds index section");
      }
      std::vector<sqo::Oid> oids;
      oids.reserve(oid_count);
      for (uint32_t n = 0; n < oid_count; ++n) {
        SQO_ASSIGN_OR_RETURN(uint64_t oid, reader.GetU64());
        oids.push_back(sqo::Oid(oid));
      }
      dump.entries.emplace_back(std::move(key), std::move(oids));
    }
    out->indexes.push_back(std::move(dump));
  }
  SQO_ASSIGN_OR_RETURN(uint64_t asr_count, reader.GetU64());
  if (asr_count > reader.remaining()) {
    return sqo::DataCorruptionError("ASR count " + std::to_string(asr_count) +
                                    " exceeds index section");
  }
  out->asrs.reserve(asr_count);
  for (uint64_t i = 0; i < asr_count; ++i) {
    engine::ObjectStore::AsrState state;
    SQO_ASSIGN_OR_RETURN(state.name, reader.GetString());
    SQO_ASSIGN_OR_RETURN(uint8_t stale, reader.GetU8());
    state.stale = stale != 0;
    SQO_ASSIGN_OR_RETURN(uint32_t hop_count, reader.GetU32());
    if (hop_count > reader.remaining()) {
      return sqo::DataCorruptionError("ASR hop count " +
                                      std::to_string(hop_count) +
                                      " exceeds index section");
    }
    state.path.reserve(hop_count);
    for (uint32_t j = 0; j < hop_count; ++j) {
      SQO_ASSIGN_OR_RETURN(std::string hop, reader.GetString());
      state.path.push_back(std::move(hop));
    }
    out->asrs.push_back(std::move(state));
  }
  if (!reader.exhausted()) {
    return sqo::DataCorruptionError("trailing bytes in index section");
  }
  return sqo::Status::Ok();
}

}  // namespace

sqo::Status WriteSnapshot(const std::string& path,
                          const engine::ObjectStore& store,
                          const sqo::Fingerprint128& schema_hash,
                          uint64_t last_lsn, std::string_view catalog_json) {
  return WriteSnapshot(*fs::Env::Default(), path, store, schema_hash, last_lsn,
                       catalog_json);
}

sqo::Status WriteSnapshot(fs::Env& env, const std::string& path,
                          const engine::ObjectStore& store,
                          const sqo::Fingerprint128& schema_hash,
                          uint64_t last_lsn, std::string_view catalog_json) {
  SQO_FAILPOINT("storage.snapshot_write");
  const std::string store_section = EncodeStoreSection(store);
  const std::string index_section = EncodeIndexSection(store);

  BinaryWriter file;
  file.PutU32(kSnapshotMagic);
  file.PutU32(kSnapshotVersion);
  file.PutU64(schema_hash.lo);
  file.PutU64(schema_hash.hi);
  file.PutU64(last_lsn);
  file.PutU64(store_section.size());
  file.PutU64(catalog_json.size());
  file.PutU64(index_section.size());
  file.PutU32(MaskCrc32c(Crc32c(store_section)));
  file.PutU32(MaskCrc32c(Crc32c(catalog_json)));
  file.PutU32(MaskCrc32c(Crc32c(index_section)));
  file.PutU32(MaskCrc32c(Crc32c(file.str())));
  file.PutBytes(store_section);
  file.PutBytes(catalog_json);
  file.PutBytes(index_section);
  return fs::WriteFileAtomic(env, path, file.str());
}

sqo::Result<SnapshotContents> ReadSnapshot(const std::string& path) {
  SQO_ASSIGN_OR_RETURN(std::string data, fs::ReadFile(path));
  if (data.size() < kSnapshotHeaderSize) {
    return sqo::DataCorruptionError("snapshot header truncated: " +
                                    std::to_string(data.size()) + " bytes");
  }
  BinaryReader header(std::string_view(data).substr(0, kSnapshotHeaderSize));
  SQO_ASSIGN_OR_RETURN(uint32_t magic, header.GetU32());
  if (magic != kSnapshotMagic) {
    return sqo::DataCorruptionError("bad snapshot magic");
  }
  SQO_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kSnapshotVersion) {
    return sqo::DataCorruptionError("unsupported snapshot version " +
                                    std::to_string(version));
  }
  SnapshotContents contents;
  SQO_ASSIGN_OR_RETURN(contents.schema_hash.lo, header.GetU64());
  SQO_ASSIGN_OR_RETURN(contents.schema_hash.hi, header.GetU64());
  SQO_ASSIGN_OR_RETURN(contents.last_lsn, header.GetU64());
  SQO_ASSIGN_OR_RETURN(uint64_t store_len, header.GetU64());
  SQO_ASSIGN_OR_RETURN(uint64_t catalog_len, header.GetU64());
  SQO_ASSIGN_OR_RETURN(uint64_t index_len, header.GetU64());
  SQO_ASSIGN_OR_RETURN(uint32_t store_crc, header.GetU32());
  SQO_ASSIGN_OR_RETURN(uint32_t catalog_crc, header.GetU32());
  SQO_ASSIGN_OR_RETURN(uint32_t index_crc, header.GetU32());
  SQO_ASSIGN_OR_RETURN(uint32_t header_crc, header.GetU32());
  if (UnmaskCrc32c(header_crc) != Crc32c(data.data(), kSnapshotHeaderSize - 4)) {
    return sqo::DataCorruptionError("snapshot header checksum mismatch");
  }
  // Lengths are CRC-protected by the header checksum, but still bound them
  // against the actual file size before slicing.
  const uint64_t body = data.size() - kSnapshotHeaderSize;
  if (store_len > body || catalog_len > body - store_len ||
      index_len > body - store_len - catalog_len) {
    return sqo::DataCorruptionError("snapshot sections exceed file size");
  }
  if (kSnapshotHeaderSize + store_len + catalog_len + index_len !=
      data.size()) {
    return sqo::DataCorruptionError("snapshot has trailing bytes");
  }
  const std::string_view store_section =
      std::string_view(data).substr(kSnapshotHeaderSize, store_len);
  const std::string_view catalog_section =
      std::string_view(data).substr(kSnapshotHeaderSize + store_len,
                                    catalog_len);
  const std::string_view index_section = std::string_view(data).substr(
      kSnapshotHeaderSize + store_len + catalog_len, index_len);
  if (UnmaskCrc32c(store_crc) != Crc32c(store_section)) {
    return sqo::DataCorruptionError("snapshot store section checksum mismatch");
  }
  if (UnmaskCrc32c(catalog_crc) != Crc32c(catalog_section)) {
    return sqo::DataCorruptionError(
        "snapshot catalog section checksum mismatch");
  }
  if (UnmaskCrc32c(index_crc) != Crc32c(index_section)) {
    return sqo::DataCorruptionError("snapshot index section checksum mismatch");
  }
  SQO_RETURN_IF_ERROR(DecodeStoreSection(store_section, &contents));
  SQO_RETURN_IF_ERROR(DecodeIndexSection(index_section, &contents));
  contents.catalog_json = std::string(catalog_section);
  return contents;
}

}  // namespace sqo::storage
