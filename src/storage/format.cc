#include "storage/format.h"

#include <cstring>

namespace sqo::storage {

void BinaryWriter::PutU32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(buf, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(buf, 8);
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

void BinaryWriter::PutValue(const sqo::Value& v) {
  PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case sqo::ValueKind::kNull:
      break;
    case sqo::ValueKind::kInt:
      PutI64(v.AsInt());
      break;
    case sqo::ValueKind::kDouble:
      PutDouble(v.AsDoubleExact());
      break;
    case sqo::ValueKind::kString:
      PutString(v.AsString());
      break;
    case sqo::ValueKind::kBool:
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case sqo::ValueKind::kOid:
      PutU64(v.AsOid().raw());
      break;
  }
}

sqo::Status BinaryReader::Need(size_t n) {
  if (remaining() < n) {
    return sqo::DataCorruptionError(
        "truncated record: need " + std::to_string(n) + " bytes at offset " +
        std::to_string(pos_) + ", have " + std::to_string(remaining()));
  }
  return sqo::Status::Ok();
}

sqo::Result<uint8_t> BinaryReader::GetU8() {
  SQO_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

sqo::Result<uint32_t> BinaryReader::GetU32() {
  SQO_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

sqo::Result<uint64_t> BinaryReader::GetU64() {
  SQO_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

sqo::Result<int64_t> BinaryReader::GetI64() {
  SQO_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

sqo::Result<double> BinaryReader::GetDouble() {
  SQO_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

sqo::Result<std::string> BinaryReader::GetString() {
  SQO_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  SQO_RETURN_IF_ERROR(Need(len));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

sqo::Result<sqo::Value> BinaryReader::GetValue() {
  SQO_ASSIGN_OR_RETURN(uint8_t kind, GetU8());
  switch (static_cast<sqo::ValueKind>(kind)) {
    case sqo::ValueKind::kNull:
      return sqo::Value();
    case sqo::ValueKind::kInt: {
      SQO_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return sqo::Value::Int(v);
    }
    case sqo::ValueKind::kDouble: {
      SQO_ASSIGN_OR_RETURN(double v, GetDouble());
      return sqo::Value::Double(v);
    }
    case sqo::ValueKind::kString: {
      SQO_ASSIGN_OR_RETURN(std::string v, GetString());
      return sqo::Value::String(std::move(v));
    }
    case sqo::ValueKind::kBool: {
      SQO_ASSIGN_OR_RETURN(uint8_t v, GetU8());
      return sqo::Value::Bool(v != 0);
    }
    case sqo::ValueKind::kOid: {
      SQO_ASSIGN_OR_RETURN(uint64_t v, GetU64());
      return sqo::Value::FromOid(sqo::Oid(v));
    }
  }
  return sqo::DataCorruptionError("unknown value kind " + std::to_string(kind));
}

void EncodeMutation(const engine::Mutation& mutation, BinaryWriter* writer) {
  using Kind = engine::Mutation::Kind;
  writer->PutU8(static_cast<uint8_t>(mutation.kind));
  switch (mutation.kind) {
    case Kind::kCreate:
      writer->PutU64(mutation.oid.raw());
      writer->PutString(mutation.relation);
      writer->PutU32(static_cast<uint32_t>(mutation.row.size()));
      for (const sqo::Value& v : mutation.row) writer->PutValue(v);
      break;
    case Kind::kUpdate:
      writer->PutU64(mutation.oid.raw());
      writer->PutString(mutation.relation);
      writer->PutU32(static_cast<uint32_t>(mutation.pos));
      writer->PutValue(mutation.value);
      break;
    case Kind::kDelete:
      writer->PutU64(mutation.oid.raw());
      writer->PutString(mutation.relation);
      break;
    case Kind::kInsertPair:
    case Kind::kErasePair:
      writer->PutString(mutation.relation);
      writer->PutU64(mutation.src.raw());
      writer->PutU64(mutation.dst.raw());
      break;
    case Kind::kClearRel:
      writer->PutString(mutation.relation);
      break;
  }
}

sqo::Result<engine::Mutation> DecodeMutation(BinaryReader* reader) {
  using Kind = engine::Mutation::Kind;
  engine::Mutation m;
  SQO_ASSIGN_OR_RETURN(uint8_t kind, reader->GetU8());
  if (kind < static_cast<uint8_t>(Kind::kCreate) ||
      kind > static_cast<uint8_t>(Kind::kClearRel)) {
    return sqo::DataCorruptionError("unknown mutation kind " +
                                    std::to_string(kind));
  }
  m.kind = static_cast<Kind>(kind);
  switch (m.kind) {
    case Kind::kCreate: {
      SQO_ASSIGN_OR_RETURN(uint64_t oid, reader->GetU64());
      m.oid = sqo::Oid(oid);
      SQO_ASSIGN_OR_RETURN(m.relation, reader->GetString());
      SQO_ASSIGN_OR_RETURN(uint32_t n, reader->GetU32());
      // Arity is validated against the schema on apply; here only guard the
      // buffer (each value is at least one kind byte).
      if (n > reader->remaining()) {
        return sqo::DataCorruptionError("row length " + std::to_string(n) +
                                        " exceeds record payload");
      }
      m.row.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        SQO_ASSIGN_OR_RETURN(sqo::Value v, reader->GetValue());
        m.row.push_back(std::move(v));
      }
      break;
    }
    case Kind::kUpdate: {
      SQO_ASSIGN_OR_RETURN(uint64_t oid, reader->GetU64());
      m.oid = sqo::Oid(oid);
      SQO_ASSIGN_OR_RETURN(m.relation, reader->GetString());
      SQO_ASSIGN_OR_RETURN(uint32_t pos, reader->GetU32());
      m.pos = pos;
      SQO_ASSIGN_OR_RETURN(m.value, reader->GetValue());
      break;
    }
    case Kind::kDelete: {
      SQO_ASSIGN_OR_RETURN(uint64_t oid, reader->GetU64());
      m.oid = sqo::Oid(oid);
      SQO_ASSIGN_OR_RETURN(m.relation, reader->GetString());
      break;
    }
    case Kind::kInsertPair:
    case Kind::kErasePair: {
      SQO_ASSIGN_OR_RETURN(m.relation, reader->GetString());
      SQO_ASSIGN_OR_RETURN(uint64_t src, reader->GetU64());
      SQO_ASSIGN_OR_RETURN(uint64_t dst, reader->GetU64());
      m.src = sqo::Oid(src);
      m.dst = sqo::Oid(dst);
      break;
    }
    case Kind::kClearRel: {
      SQO_ASSIGN_OR_RETURN(m.relation, reader->GetString());
      break;
    }
  }
  return m;
}

std::string EncodeMutationBatch(const std::vector<engine::Mutation>& batch) {
  BinaryWriter writer;
  writer.PutU32(static_cast<uint32_t>(batch.size()));
  for (const engine::Mutation& m : batch) EncodeMutation(m, &writer);
  return writer.TakeString();
}

sqo::Result<std::vector<engine::Mutation>> DecodeMutationBatch(
    std::string_view payload) {
  BinaryReader reader(payload);
  SQO_ASSIGN_OR_RETURN(uint32_t n, reader.GetU32());
  if (n > payload.size()) {
    return sqo::DataCorruptionError("batch count " + std::to_string(n) +
                                    " exceeds record payload");
  }
  std::vector<engine::Mutation> batch;
  batch.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SQO_ASSIGN_OR_RETURN(engine::Mutation m, DecodeMutation(&reader));
    batch.push_back(std::move(m));
  }
  if (!reader.exhausted()) {
    return sqo::DataCorruptionError("trailing bytes after mutation batch");
  }
  return batch;
}

}  // namespace sqo::storage
