#ifndef SQO_STORAGE_GROUP_COMMIT_H_
#define SQO_STORAGE_GROUP_COMMIT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

/// Group commit for the WAL: a committer thread batches concurrently
/// submitted record frames into one write+fsync, and each submitter is
/// acknowledged only after the fsync that covers its frame returned OK.
/// Batching is "natural": a batch is whatever accumulated while the
/// previous fsync was running (plus an optional accumulation window), so a
/// lone writer still pays only one fsync per op while N concurrent writers
/// share one fsync per batch — the throughput lever the serving layer needs.
namespace sqo::storage {

class GroupCommitter {
 public:
  struct Options {
    /// Largest batch handed to one commit call.
    size_t max_batch_ops = 64;

    /// Extra time the committer waits after the first frame of a batch
    /// arrives, letting more submitters pile on. Zero (the default) means
    /// pure natural batching. Raising it trades latency for batch size; the
    /// SQO-A018 lint flags values above a session's deadline budget.
    std::chrono::microseconds flush_interval{0};
  };

  /// Writes every frame in order and makes them durable with one fsync
  /// (rotating segments as needed). Runs on the committer thread; a non-OK
  /// return fails every op in the batch.
  using CommitFn = std::function<Status(const std::vector<std::string>& frames)>;

  GroupCommitter(const Options& options, CommitFn commit);
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// One submitted frame's slot in the queue. Shared, so a waiter that
  /// abandons on deadline leaves the committer's reference valid.
  struct Ticket {
    std::string frame;
    Status status;
    bool done = false;
  };

  /// Enqueues a frame for the next batch. Call order is commit order — the
  /// caller serializes Enqueue with its LSN assignment so the log's LSNs
  /// stay strictly increasing.
  std::shared_ptr<Ticket> Enqueue(std::string frame);

  /// Blocks until the ticket's batch outcome is known. Honors the calling
  /// thread's `ExecutionContext` deadline: on expiry returns
  /// kResourceExhausted *without* waiting further — the frame stays queued,
  /// so the op may still become durable even though it was never
  /// acknowledged (the same class as a crash between write and ack).
  Status Wait(const std::shared_ptr<Ticket>& ticket);

  /// Enqueue + Wait.
  Status Append(std::string frame);

  /// Blocks until every frame enqueued before this call has a batch
  /// outcome — the checkpoint barrier: after Flush returns, nothing the
  /// committer acknowledged (or will acknowledge) is missing from the log.
  void Flush();

  /// Drains the queue, then joins the committer thread. Idempotent; frames
  /// enqueued after Stop fail immediately.
  void Stop();

  struct Stats {
    uint64_t batches = 0;
    uint64_t ops = 0;
    uint64_t failed_batches = 0;
    uint64_t max_batch_ops = 0;
    /// Batch-size distribution (value = ops per batch, not a duration; the
    /// log₂ histogram is unit-agnostic).
    obs::DurationHistogram batch_ops;
  };
  Stats stats() const;

 private:
  void Worker();

  const Options options_;
  const CommitFn commit_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // committer wakes on work / stop
  std::condition_variable done_cv_;   // waiters wake on batch completion
  std::deque<std::shared_ptr<Ticket>> queue_;
  bool in_flight_ = false;  // a batch is between dequeue and completion
  bool stop_ = false;
  Stats stats_;

  std::thread worker_;
};

}  // namespace sqo::storage

#endif  // SQO_STORAGE_GROUP_COMMIT_H_
