#ifndef SQO_STORAGE_MANAGER_H_
#define SQO_STORAGE_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "analysis/diagnostic.h"
#include "common/env.h"
#include "common/status.h"
#include "engine/object_store.h"
#include "sqo/semantic_compiler.h"
#include "storage/catalog.h"
#include "storage/group_commit.h"
#include "storage/wal.h"

/// Crash-safe persistence for one ObjectStore: checksummed snapshots plus a
/// segmented write-ahead log with group commit, and fail-open recovery.
///
/// Directory layout:
///   <dir>/snapshot-NNNNNN.sqo   — immutable checkpoints (newest wins;
///                                 the previous one is kept as fallback)
///   <dir>/wal-NNNNNN.log        — mutation segments since the newest
///                                 snapshot, chained by base LSN
///
/// `Open` recovers (newest *valid* snapshot, then replay over the WAL
/// segment chain, truncating at the first torn or corrupt record), installs
/// itself as the store's mutation listener, and from then on every logical
/// store operation becomes one WAL record that is durable before the
/// caller's call returns OK. With group commit (the default) concurrent
/// appends share one fsync per batch: the committer thread writes whatever
/// accumulated while the previous fsync ran, syncs once, and wakes every
/// submitter in the batch. `Checkpoint` rewrites the snapshot, rotates to a
/// fresh segment based at the snapshot's LSN, and prunes the segments the
/// snapshot covers. Recovery never aborts: any corruption degrades
/// fail-open to the best older state (or an empty store) with
/// `RecoveryInfo.degraded` + reason set, mirroring the pipeline's
/// governance degradation contract.
namespace sqo::storage {

struct OpenOptions {
  /// When set, checkpoints embed the serialized semantic catalog and
  /// recovery lints the stored catalog against it (SQO-A013).
  /// Must outlive the manager.
  const core::CompiledSchema* compiled = nullptr;

  /// All storage I/O goes through this Env (nullptr = the POSIX default).
  /// Must outlive the manager. Tests interpose a FaultInjectingEnv here.
  fs::Env* env = nullptr;

  /// fsync before acknowledging: each append in the non-group path, each
  /// batch under group commit. Turning this off trades the last few
  /// operations for throughput (SQO-A018 flags it).
  bool sync_each_append = true;

  /// Batch concurrent appends into one fsync on a committer thread. Off
  /// means the submitting thread writes and syncs inline (the pre-group
  /// behavior; simpler to reason about in single-threaded tests).
  bool group_commit = true;

  /// Largest group-commit batch per fsync.
  size_t group_commit_max_batch = 64;

  /// Extra accumulation time per batch (0 = natural batching). Values
  /// above a session's deadline budget are flagged by SQO-A018.
  std::chrono::microseconds group_commit_flush_interval{0};

  /// Rotate to a new WAL segment once the current one exceeds this size.
  uint64_t wal_segment_bytes = 1 << 20;

  /// Checkpoint automatically when the manager is closed/destroyed.
  bool checkpoint_on_close = true;

  /// Degrade to an older snapshot / empty store on corruption instead of
  /// failing `Open` (matching the pipeline's fail-open default).
  bool fail_open = true;

  /// Checkpoints beyond the newest `keep_snapshots` are pruned.
  size_t keep_snapshots = 2;
};

/// What recovery found and did; stable for tests and the shell to print.
struct RecoveryInfo {
  /// True when the directory held no usable state (first open or total
  /// loss) and the manager bootstrapped a fresh baseline checkpoint from
  /// the store's current in-memory contents.
  bool created = false;

  std::string snapshot_path;       // empty when none loaded
  uint64_t snapshot_lsn = 0;
  uint64_t replayed_records = 0;   // WAL records applied
  uint64_t wal_segments = 0;       // trusted segments in the recovered chain
  uint64_t truncated_bytes = 0;    // bytes cut off the log tail
  bool corruption_detected = false;
  bool degraded = false;
  std::string degradation_reason;

  bool catalog_loaded = false;
  CatalogInfo catalog;

  /// SQO-A013 catalog-freshness and SQO-A018 durability-knob findings.
  analysis::AnalysisReport lint;
};

class StorageManager {
 public:
  /// Recovers `store` from `dir` (created if missing) and attaches the
  /// write-ahead log. `store` must outlive the returned manager; the
  /// manager owns the store's mutation listener slot until Close().
  static sqo::Result<std::unique_ptr<StorageManager>> Open(
      const std::string& dir, engine::ObjectStore* store,
      const OpenOptions& options = {});

  ~StorageManager();
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Writes a new snapshot of the store (atomically), rotates the log to a
  /// fresh segment based at the snapshot's LSN, and prunes covered segments
  /// and old snapshots. Safe to call while appends are in flight: new
  /// appends are gated out, the committer queue is drained first (so no
  /// acknowledged record is left in a segment about to be pruned), and the
  /// snapshot captures the store with everything the log acknowledged. On
  /// failure the previous snapshot and segments remain authoritative.
  sqo::Status Checkpoint();

  /// Detaches from the store (further mutations are no longer logged),
  /// stops the committer thread and, per options, takes a final
  /// checkpoint. Idempotent.
  sqo::Status Close();

  const RecoveryInfo& recovery_info() const { return info_; }
  const std::string& dir() const { return dir_; }
  uint64_t last_lsn() const;

  /// False once an append, sync or checkpoint has failed: the log can no
  /// longer be trusted to be a prefix of memory, so every later mutation is
  /// reported unacknowledged until a successful Checkpoint re-bases it.
  bool healthy() const { return healthy_.load(std::memory_order_relaxed); }

  /// Point-in-time WAL shape, for `\status` and the obs gauges.
  struct WalStats {
    uint64_t segments = 0;     // live segment files
    uint64_t bytes = 0;        // total bytes across them
    uint64_t current_seq = 0;  // seq of the segment being appended to
    uint64_t rotations = 0;    // size-triggered rotations this session
  };
  WalStats wal_stats() const;

  /// Group-commit batching stats (zero batches when group commit is off).
  GroupCommitter::Stats group_commit_stats() const;

  /// Logs one mutation batch and blocks until it is durable (or rejected).
  /// This is the store's mutation-listener entry point, exposed so serving
  /// layers with their own apply path can log through the same committer.
  /// Thread-safe; under group commit, concurrent callers share fsyncs.
  sqo::Status AppendBatch(const std::vector<engine::Mutation>& batch);

 private:
  StorageManager(std::string dir, engine::ObjectStore* store,
                 OpenOptions options)
      : dir_(std::move(dir)),
        store_(store),
        options_(options),
        env_(options.env != nullptr ? options.env : fs::Env::Default()) {}

  sqo::Status Recover();

  /// The group committer's commit function: writes `frames`, fsyncs once,
  /// rotates if due. Runs on the committer thread, takes mu_.
  sqo::Status WriteBatch(const std::vector<std::string>& frames);

  sqo::Status LoadSnapshots(const sqo::Fingerprint128& live_hash,
                            uint64_t* max_seq);
  sqo::Status RecoverWal(const sqo::Fingerprint128& live_hash);
  sqo::Status CheckpointLocked();

  /// Creates segment `wal_seq_ + 1` based at `last_lsn_` and switches the
  /// writer to it. mu_ held.
  sqo::Status RotateLocked();
  void MaybeRotateLocked();

  std::string SnapshotPath(uint64_t seq) const;
  std::string SegmentPath(uint64_t seq) const;
  std::string CatalogJson() const;
  void Degrade(std::string reason, bool corruption);
  void LintOpenOptions();

  std::string dir_;
  engine::ObjectStore* store_;
  OpenOptions options_;
  fs::Env* env_;
  RecoveryInfo info_;

  /// Serializes LSN assignment/enqueue, the inline append path, rotation
  /// and the committer's WriteBatch.
  mutable std::mutex mu_;

  /// Held exclusively by Checkpoint for its whole duration and briefly by
  /// each append before enqueueing, so a checkpoint drains in-flight
  /// batches and blocks new appends while it snapshots and prunes.
  /// Lock order: checkpoint_mu_ before mu_.
  std::mutex checkpoint_mu_;

  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<GroupCommitter> committer_;
  uint64_t last_lsn_ = 0;      // highest durable (acknowledged) LSN
  uint64_t assigned_lsn_ = 0;  // highest LSN handed to an append
  uint64_t wal_seq_ = 0;       // seq of the segment wal_ appends to
  uint64_t wal_rotations_ = 0;
  uint64_t next_snapshot_seq_ = 1;
  std::atomic<bool> healthy_{true};
  bool closed_ = false;
};

}  // namespace sqo::storage

#endif  // SQO_STORAGE_MANAGER_H_
