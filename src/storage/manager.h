#ifndef SQO_STORAGE_MANAGER_H_
#define SQO_STORAGE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/diagnostic.h"
#include "common/status.h"
#include "engine/object_store.h"
#include "sqo/semantic_compiler.h"
#include "storage/catalog.h"
#include "storage/wal.h"

/// Crash-safe persistence for one ObjectStore: checksummed snapshots plus a
/// write-ahead log, with fail-open recovery.
///
/// Directory layout:
///   <dir>/snapshot-NNNNNN.sqo   — immutable checkpoints (newest wins;
///                                 the previous one is kept as fallback)
///   <dir>/wal.log               — mutations since the newest snapshot
///
/// `Open` recovers (newest *valid* snapshot, then WAL replay, truncating at
/// the first torn or corrupt record), installs itself as the store's
/// mutation listener, and from then on every logical store operation is one
/// durable WAL record before the caller's call returns OK. `Checkpoint`
/// rewrites the snapshot and resets the log. Recovery never aborts: any
/// corruption degrades fail-open to the best older state (or an empty
/// store) with `RecoveryInfo.degraded` + reason set, mirroring the
/// pipeline's governance degradation contract.
namespace sqo::storage {

struct OpenOptions {
  /// When set, checkpoints embed the serialized semantic catalog and
  /// recovery lints the stored catalog against it (SQO-A013).
  /// Must outlive the manager.
  const core::CompiledSchema* compiled = nullptr;

  /// fsync the log on every append (durability = acknowledged). Turning
  /// this off trades the last few operations for throughput.
  bool sync_each_append = true;

  /// Checkpoint automatically when the manager is closed/destroyed.
  bool checkpoint_on_close = true;

  /// Degrade to an older snapshot / empty store on corruption instead of
  /// failing `Open` (matching the pipeline's fail-open default).
  bool fail_open = true;

  /// Checkpoints beyond the newest `keep_snapshots` are pruned.
  size_t keep_snapshots = 2;
};

/// What recovery found and did; stable for tests and the shell to print.
struct RecoveryInfo {
  /// True when the directory held no usable state (first open or total
  /// loss) and the manager bootstrapped a fresh baseline checkpoint from
  /// the store's current in-memory contents.
  bool created = false;

  std::string snapshot_path;       // empty when none loaded
  uint64_t snapshot_lsn = 0;
  uint64_t replayed_records = 0;   // WAL records applied
  uint64_t truncated_bytes = 0;    // bytes cut off the log tail
  bool corruption_detected = false;
  bool degraded = false;
  std::string degradation_reason;

  bool catalog_loaded = false;
  CatalogInfo catalog;

  /// SQO-A013 findings (empty when the stored catalog matches the live
  /// schema, or no catalog was stored/configured).
  analysis::AnalysisReport lint;
};

class StorageManager {
 public:
  /// Recovers `store` from `dir` (created if missing) and attaches the
  /// write-ahead log. `store` must outlive the returned manager; the
  /// manager owns the store's mutation listener slot until Close().
  static sqo::Result<std::unique_ptr<StorageManager>> Open(
      const std::string& dir, engine::ObjectStore* store,
      const OpenOptions& options = {});

  ~StorageManager();
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Writes a new snapshot of the store (atomically), resets the log to an
  /// empty one based at the snapshot's LSN, and prunes old snapshots. On
  /// failure the previous snapshot and log remain authoritative.
  sqo::Status Checkpoint();

  /// Detaches from the store (further mutations are no longer logged) and,
  /// per options, takes a final checkpoint. Idempotent.
  sqo::Status Close();

  const RecoveryInfo& recovery_info() const { return info_; }
  const std::string& dir() const { return dir_; }
  uint64_t last_lsn() const { return last_lsn_; }

  /// False once an append or checkpoint has failed: the log can no longer
  /// be trusted to be a prefix of memory, so every later mutation is
  /// reported unacknowledged until a successful Checkpoint re-bases it.
  bool healthy() const { return healthy_; }

 private:
  StorageManager(std::string dir, engine::ObjectStore* store,
                 OpenOptions options)
      : dir_(std::move(dir)), store_(store), options_(options) {}

  sqo::Status Recover();
  sqo::Status AppendBatch(const std::vector<engine::Mutation>& batch);
  sqo::Status LoadSnapshots(const sqo::Fingerprint128& live_hash,
                            uint64_t* max_seq);
  sqo::Status RecoverWal(const sqo::Fingerprint128& live_hash);
  std::string SnapshotPath(uint64_t seq) const;
  std::string WalPath() const;
  std::string CatalogJson() const;
  void Degrade(std::string reason, bool corruption);

  std::string dir_;
  engine::ObjectStore* store_;
  OpenOptions options_;
  RecoveryInfo info_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t last_lsn_ = 0;       // highest durable LSN
  uint64_t next_snapshot_seq_ = 1;
  bool healthy_ = true;
  bool closed_ = false;
};

}  // namespace sqo::storage

#endif  // SQO_STORAGE_MANAGER_H_
