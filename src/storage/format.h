#ifndef SQO_STORAGE_FORMAT_H_
#define SQO_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "engine/object_store.h"

/// On-disk encoding shared by the snapshot and WAL layers.
///
/// All integers are little-endian and fixed-width (no varints: torn-write
/// detection is simpler when record framing is position-independent).
/// Strings are u32-length-prefixed bytes. Values are a kind byte followed
/// by the kind's payload. Readers are strictly bounds-checked and return
/// kDataCorruption instead of reading past the end — a corrupt length field
/// must degrade cleanly, never fault.
namespace sqo::storage {

/// File format magics ("SQOS" / "SQOW" little-endian) and current versions.
/// A version bump invalidates old files: readers treat version skew as
/// kDataCorruption and recovery fails open to the previous good artifact.
inline constexpr uint32_t kSnapshotMagic = 0x534F5153u;  // "SQOS"
inline constexpr uint32_t kWalMagic = 0x574F5153u;       // "SQOW"
/// Snapshot v2 added the index section (persisted secondary indexes and
/// ASR freshness states) and grew the header to 72 bytes; v1 files are
/// rejected as version skew.
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kWalVersion = 1;

/// Append-only binary encoder.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s);
  void PutValue(const sqo::Value& v);
  void PutBytes(std::string_view bytes) { out_.append(bytes); }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked sequential decoder over a borrowed buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  sqo::Result<uint8_t> GetU8();
  sqo::Result<uint32_t> GetU32();
  sqo::Result<uint64_t> GetU64();
  sqo::Result<int64_t> GetI64();
  sqo::Result<double> GetDouble();
  sqo::Result<std::string> GetString();
  sqo::Result<sqo::Value> GetValue();

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  sqo::Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

/// Appends the framed encoding of one store mutation to `writer`.
void EncodeMutation(const engine::Mutation& mutation, BinaryWriter* writer);

/// Decodes one mutation; kDataCorruption on malformed input.
sqo::Result<engine::Mutation> DecodeMutation(BinaryReader* reader);

/// Encodes a batch (one logical operation) as u32 count + mutations.
std::string EncodeMutationBatch(const std::vector<engine::Mutation>& batch);

/// Decodes a batch; the reader must be exhausted afterwards.
sqo::Result<std::vector<engine::Mutation>> DecodeMutationBatch(
    std::string_view payload);

}  // namespace sqo::storage

#endif  // SQO_STORAGE_FORMAT_H_
