#include "storage/group_commit.h"

#include <algorithm>
#include <utility>

#include "common/context.h"

namespace sqo::storage {

GroupCommitter::GroupCommitter(const Options& options, CommitFn commit)
    : options_(options), commit_(std::move(commit)) {
  worker_ = std::thread([this] { Worker(); });
}

GroupCommitter::~GroupCommitter() { Stop(); }

std::shared_ptr<GroupCommitter::Ticket> GroupCommitter::Enqueue(
    std::string frame) {
  auto ticket = std::make_shared<Ticket>();
  ticket->frame = std::move(frame);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      ticket->status = InternalError("group committer is stopped");
      ticket->done = true;
      return ticket;
    }
    queue_.push_back(ticket);
  }
  work_cv_.notify_one();
  return ticket;
}

Status GroupCommitter::Wait(const std::shared_ptr<Ticket>& ticket) {
  ExecutionContext* ctx = CurrentContext();
  std::unique_lock<std::mutex> lock(mu_);
  if (ctx != nullptr && ctx->has_deadline()) {
    if (!done_cv_.wait_until(lock, ctx->deadline(),
                             [&] { return ticket->done; })) {
      // The frame stays queued: it may yet become durable, but this op was
      // never acknowledged — exactly the crash-window semantics the chaos
      // harness verifies (recovered state = acked prefix, maybe +1).
      return ResourceExhaustedError(
          "deadline expired waiting for group commit (op unacknowledged, "
          "may still become durable)");
    }
  } else {
    done_cv_.wait(lock, [&] { return ticket->done; });
  }
  return ticket->status;
}

Status GroupCommitter::Append(std::string frame) {
  return Wait(Enqueue(std::move(frame)));
}

void GroupCommitter::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return queue_.empty() && !in_flight_; });
}

void GroupCommitter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !worker_.joinable()) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

GroupCommitter::Stats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void GroupCommitter::Worker() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained; nothing more can arrive
      continue;
    }
    if (options_.flush_interval.count() > 0 && !stop_) {
      // Accumulation window: let more submitters pile onto this batch.
      const auto due =
          std::chrono::steady_clock::now() + options_.flush_interval;
      work_cv_.wait_until(lock, due, [&] {
        return stop_ || queue_.size() >= options_.max_batch_ops;
      });
    }
    std::vector<std::shared_ptr<Ticket>> batch;
    const size_t take = std::min(queue_.size(), options_.max_batch_ops);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    in_flight_ = true;
    lock.unlock();

    std::vector<std::string> frames;
    frames.reserve(batch.size());
    for (const auto& ticket : batch) frames.push_back(ticket->frame);
    const Status status = commit_(frames);

    lock.lock();
    for (const auto& ticket : batch) {
      ticket->status = status;
      ticket->done = true;
    }
    in_flight_ = false;
    stats_.batches += 1;
    stats_.ops += batch.size();
    if (!status.ok()) stats_.failed_batches += 1;
    stats_.max_batch_ops =
        std::max<uint64_t>(stats_.max_batch_ops, batch.size());
    stats_.batch_ops.Record(static_cast<int64_t>(batch.size()));
    done_cv_.notify_all();
  }
}

}  // namespace sqo::storage
