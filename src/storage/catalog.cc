#include "storage/catalog.h"

#include <cstdio>

#include "obs/json.h"

namespace sqo::storage {
namespace {

/// Byte-stable string fold (schemas are tiny; clarity over speed).
void AppendString(sqo::FingerprintBuilder* builder, std::string_view s) {
  builder->Append(s.size());
  for (unsigned char c : s) builder->Append(c);
}

sqo::Result<uint64_t> ParseHex16(std::string_view hex) {
  uint64_t v = 0;
  for (char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return sqo::DataCorruptionError("invalid hex digit in schema hash");
    }
  }
  return v;
}

}  // namespace

sqo::Fingerprint128 SchemaFingerprint(
    const translate::TranslatedSchema& schema) {
  sqo::FingerprintBuilder builder;
  const auto& relations = schema.catalog.relations();
  builder.Append(relations.size());
  for (const auto& [name, sig] : relations) {
    AppendString(&builder, name);
    builder.Append(static_cast<uint64_t>(sig.kind));
    builder.Append(sig.attributes.size());
    for (const std::string& attr : sig.attributes) AppendString(&builder, attr);
    AppendString(&builder, sig.display_name);
    AppendString(&builder, sig.owner);
    AppendString(&builder, sig.target);
    builder.Append((sig.functional_src_to_dst ? 1u : 0u) |
                   (sig.functional_dst_to_src ? 2u : 0u));
  }
  return builder.fingerprint();
}

std::string SerializeCatalog(const core::CompiledSchema& compiled) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("version").UInt(1);
  if (compiled.schema != nullptr) {
    w.Key("schema_hash").String(SchemaFingerprint(*compiled.schema).ToString());
  } else {
    w.Key("schema_hash").String(sqo::Fingerprint128{}.ToString());
  }
  w.Key("ic_count").UInt(compiled.all_ics.size());
  w.Key("total_residues").UInt(compiled.total_residues());
  w.Key("ics").BeginArray();
  for (const datalog::Clause& ic : compiled.all_ics) {
    w.BeginObject();
    w.Key("label").String(ic.label);
    w.Key("text").String(ic.ToString());
    w.EndObject();
  }
  w.EndArray();
  w.Key("residues").BeginArray();
  for (const auto& [relation, residues] : compiled.residues) {
    w.BeginObject();
    w.Key("relation").String(relation);
    w.Key("count").UInt(residues.size());
    w.Key("texts").BeginArray();
    for (const auto& residue : residues) w.String(residue.ToString());
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

sqo::Result<CatalogInfo> ParseCatalogInfo(std::string_view json) {
  sqo::Result<obs::JsonValue> parsed = obs::ParseJson(json);
  if (!parsed.ok()) {
    return sqo::DataCorruptionError("catalog JSON: " +
                                    parsed.status().message());
  }
  const obs::JsonValue& doc = *parsed;
  if (!doc.is_object()) {
    return sqo::DataCorruptionError("catalog JSON is not an object");
  }
  CatalogInfo info;
  const obs::JsonValue* hash = doc.Find("schema_hash");
  if (hash == nullptr || !hash->is_string() ||
      hash->string_value.size() != 32) {
    return sqo::DataCorruptionError("catalog JSON: bad schema_hash");
  }
  const std::string_view hex = hash->string_value;
  SQO_ASSIGN_OR_RETURN(info.schema_hash.hi, ParseHex16(hex.substr(0, 16)));
  SQO_ASSIGN_OR_RETURN(info.schema_hash.lo, ParseHex16(hex.substr(16, 16)));
  const obs::JsonValue* ic_count = doc.Find("ic_count");
  if (ic_count == nullptr || !ic_count->is_number()) {
    return sqo::DataCorruptionError("catalog JSON: bad ic_count");
  }
  info.ic_count = static_cast<uint64_t>(ic_count->number);
  const obs::JsonValue* residues = doc.Find("total_residues");
  if (residues == nullptr || !residues->is_number()) {
    return sqo::DataCorruptionError("catalog JSON: bad total_residues");
  }
  info.total_residues = static_cast<uint64_t>(residues->number);
  const obs::JsonValue* ics = doc.Find("ics");
  if (ics != nullptr) {
    if (!ics->is_array()) {
      return sqo::DataCorruptionError("catalog JSON: ics is not an array");
    }
    for (const obs::JsonValue& ic : ics->items) {
      const obs::JsonValue* label = ic.Find("label");
      info.ic_labels.push_back(
          label != nullptr && label->is_string() ? label->string_value : "");
    }
  }
  return info;
}

}  // namespace sqo::storage
