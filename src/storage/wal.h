#ifndef SQO_STORAGE_WAL_H_
#define SQO_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fileio.h"
#include "common/fingerprint.h"
#include "common/status.h"
#include "engine/object_store.h"

/// Record-oriented write-ahead log for ObjectStore mutations.
///
/// File layout (all integers little-endian):
///
///   header:  u32 magic "SQOW" | u32 version | u64 schema_lo | u64 schema_hi
///            | u64 base_lsn | u32 masked-CRC32C(preceding 32 bytes)
///   record:  u32 masked-CRC32C(lsn..payload) | u32 payload_len | u64 lsn
///            | payload (one encoded mutation batch = one logical operation)
///
/// `base_lsn` is the LSN of the snapshot this log extends: replay applies
/// only records with lsn > the loaded snapshot's LSN, and refuses a log
/// whose base lies beyond it (the intermediate history is missing). LSNs
/// are strictly increasing within a log; a duplicate or stale LSN is
/// corruption. The reader stops at the first torn or corrupt record and
/// reports the valid prefix length so recovery can physically truncate —
/// the classic "trust the longest checksummed prefix" WAL contract.
namespace sqo::storage {

struct WalHeader {
  sqo::Fingerprint128 schema_hash;
  uint64_t base_lsn = 0;
};

inline constexpr size_t kWalHeaderSize = 4 + 4 + 8 + 8 + 8 + 4;
inline constexpr size_t kWalRecordHeaderSize = 4 + 4 + 8;

/// One decoded log record.
struct WalRecord {
  uint64_t lsn = 0;
  std::vector<engine::Mutation> batch;

  /// Byte offset of this record's frame in the file — the truncation point
  /// if replay must discard this record and everything after it.
  uint64_t offset = 0;
};

/// The result of scanning a log file.
struct WalReadResult {
  WalHeader header;
  std::vector<WalRecord> records;

  /// Length of the trusted prefix (header + intact records). Recovery
  /// truncates the file to this before appending again.
  uint64_t valid_bytes = 0;

  /// Total file size as scanned (valid_bytes + any discarded tail).
  uint64_t file_bytes = 0;

  /// True when the scan stopped before end-of-file.
  bool stopped_early = false;

  /// True when the stop was a checksum mismatch, undecodable payload or
  /// LSN regression — as opposed to a clean torn tail (a crash mid-append),
  /// which sets only `stopped_early`.
  bool corrupt = false;
  std::string stop_reason;

  /// LSN of the last intact record (header.base_lsn when none).
  uint64_t last_lsn = 0;
};

/// Appender. Records become durable ("acknowledged") only once Append
/// returns OK with sync enabled; the failpoint site `storage.wal_append`
/// fires before any bytes are written, so an injected crash loses exactly
/// the unacknowledged record.
class WalWriter {
 public:
  /// Creates (atomically replacing any previous log) a fresh log containing
  /// only `header`, then opens it for appending.
  static sqo::Result<WalWriter> Create(const std::string& path,
                                       const WalHeader& header);

  /// Opens an existing, already-validated log for appending. The caller
  /// (recovery) must have truncated it to its trusted prefix first.
  static sqo::Result<WalWriter> OpenExisting(const std::string& path);

  /// Appends one record; with `sync`, fsyncs before acknowledging.
  sqo::Status Append(uint64_t lsn, const std::vector<engine::Mutation>& batch,
                     bool sync);

  uint64_t size() const { return file_.size(); }

 private:
  explicit WalWriter(fs::AppendFile file) : file_(std::move(file)) {}

  fs::AppendFile file_;
};

/// Encodes just the header bytes (exposed for corruption-corpus tests).
std::string EncodeWalHeader(const WalHeader& header);

/// Scans `path`. A missing file is kNotFound; an invalid *header* is
/// kDataCorruption (the whole log is untrusted); per-record problems are
/// reported in the result, never as an error.
sqo::Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace sqo::storage

#endif  // SQO_STORAGE_WAL_H_
