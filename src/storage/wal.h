#ifndef SQO_STORAGE_WAL_H_
#define SQO_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/fingerprint.h"
#include "common/status.h"
#include "engine/object_store.h"

/// Record-oriented, segmented write-ahead log for ObjectStore mutations.
///
/// The log is a chain of segment files `wal-NNNNNN.log` (seq ascending).
/// Each segment has the same layout (all integers little-endian):
///
///   header:  u32 magic "SQOW" | u32 version | u64 schema_lo | u64 schema_hi
///            | u64 base_lsn | u32 masked-CRC32C(preceding 32 bytes)
///   record:  u32 masked-CRC32C(lsn..payload) | u32 payload_len | u64 lsn
///            | payload (one encoded mutation batch = one logical operation)
///
/// `base_lsn` is the last LSN before the segment: the first segment's base
/// is the LSN of the snapshot the chain extends, and each later segment's
/// base must equal the last LSN of the segment before it — that continuity
/// check is what lets recovery trust a multi-file chain. LSNs are strictly
/// increasing within a segment and across the chain; a duplicate or stale
/// LSN is corruption. The reader stops at the first torn or corrupt record
/// and reports the valid prefix length so recovery can physically truncate —
/// the classic "trust the longest checksummed prefix" WAL contract, extended
/// rule: a segment that *follows* a short or torn segment is untrusted too
/// (its records would leave a hole in the middle of history).
namespace sqo::storage {

struct WalHeader {
  sqo::Fingerprint128 schema_hash;
  uint64_t base_lsn = 0;
};

inline constexpr size_t kWalHeaderSize = 4 + 4 + 8 + 8 + 8 + 4;
inline constexpr size_t kWalRecordHeaderSize = 4 + 4 + 8;

/// One decoded log record.
struct WalRecord {
  uint64_t lsn = 0;
  std::vector<engine::Mutation> batch;

  /// Byte offset of this record's frame in its segment file — the truncation
  /// point if replay must discard this record and everything after it.
  uint64_t offset = 0;
};

/// The result of scanning one segment file.
struct WalReadResult {
  WalHeader header;
  std::vector<WalRecord> records;

  /// Length of the trusted prefix (header + intact records). Recovery
  /// truncates the file to this before appending again.
  uint64_t valid_bytes = 0;

  /// Total file size as scanned (valid_bytes + any discarded tail).
  uint64_t file_bytes = 0;

  /// True when the scan stopped before end-of-file.
  bool stopped_early = false;

  /// True when the stop was a checksum mismatch, undecodable payload or
  /// LSN regression — as opposed to a clean torn tail (a crash mid-append),
  /// which sets only `stopped_early`.
  bool corrupt = false;
  std::string stop_reason;

  /// LSN of the last intact record (header.base_lsn when none).
  uint64_t last_lsn = 0;
};

/// Segment file name for sequence number `seq`: "wal-000042.log".
std::string WalSegmentFileName(uint64_t seq);

/// Parses a segment file name; nullopt for anything else.
std::optional<uint64_t> ParseWalSegmentSeq(std::string_view name);

struct WalSegmentFile {
  uint64_t seq = 0;
  std::string path;
};

/// The WAL segment files in `dir`, sorted by sequence number. An empty
/// vector (no segments) is a valid result; a missing directory is an error.
sqo::Result<std::vector<WalSegmentFile>> ListWalSegments(
    fs::Env& env, const std::string& dir);

/// Appender over one segment. Records become durable ("acknowledged") only
/// once appended and synced; the failpoint site `storage.wal_append` fires
/// before any bytes are written, so an injected crash loses exactly the
/// unacknowledged record. Under group commit the committer thread appends
/// pre-encoded frames for a whole batch, then issues one `Sync`.
class WalWriter {
 public:
  /// Creates (atomically replacing any previous file) a fresh segment
  /// containing only `header`, then opens it for appending.
  static sqo::Result<WalWriter> Create(fs::Env& env, const std::string& path,
                                       const WalHeader& header);
  static sqo::Result<WalWriter> Create(const std::string& path,
                                       const WalHeader& header);

  /// Opens an existing, already-validated segment for appending. The caller
  /// (recovery) must have truncated it to its trusted prefix first.
  static sqo::Result<WalWriter> OpenExisting(fs::Env& env,
                                             const std::string& path);
  static sqo::Result<WalWriter> OpenExisting(const std::string& path);

  /// Appends one record; with `sync`, fsyncs before acknowledging.
  sqo::Status Append(uint64_t lsn, const std::vector<engine::Mutation>& batch,
                     bool sync);

  /// Appends one pre-encoded record frame without syncing (group commit's
  /// per-record write; the batch fsync comes via `Sync`).
  sqo::Status AppendFrame(std::string_view frame);

  /// fsyncs the segment.
  sqo::Status Sync();

  uint64_t size() const { return file_ ? file_->size() : 0; }

 private:
  explicit WalWriter(std::unique_ptr<fs::WritableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<fs::WritableFile> file_;
};

/// Encodes just the header bytes (exposed for corruption-corpus tests).
std::string EncodeWalHeader(const WalHeader& header);

/// Encodes one record frame (checksum + length + lsn + payload). The group
/// committer encodes on the submitting thread and hands frames to the
/// committer thread.
std::string EncodeWalRecord(uint64_t lsn, std::string_view payload);

/// Scans one segment. A missing file is kNotFound; an invalid *header* is
/// kDataCorruption (the whole segment is untrusted); per-record problems are
/// reported in the result, never as an error.
sqo::Result<WalReadResult> ReadWal(fs::Env& env, const std::string& path);
sqo::Result<WalReadResult> ReadWal(const std::string& path);

/// One scanned segment of a chain.
struct WalChainSegment {
  uint64_t seq = 0;
  std::string path;
  WalReadResult read;
};

/// The result of scanning a whole segment chain.
struct WalChainResult {
  /// The trusted prefix of the chain, in seq order. The last entry may have
  /// a discarded tail (`read.stopped_early`) that recovery truncates.
  std::vector<WalChainSegment> segments;

  /// Segment files after the trust horizon (bad header, broken base-LSN
  /// continuity, or following a short segment). Recovery deletes these —
  /// their records would sit beyond a hole in history.
  std::vector<std::string> rejected_paths;

  /// Records of the trusted chain, in LSN order.
  std::vector<WalRecord> records;

  /// True when any segment tail or chain link was discarded.
  bool stopped_early = false;

  /// True when the discard was corruption (checksum/LSN/decode/continuity),
  /// not a clean torn tail at the chain's very end.
  bool corrupt = false;
  std::string stop_reason;

  /// LSN of the last trusted record (first segment's base when none).
  uint64_t last_lsn = 0;

  /// Highest segment seq present in the directory (trusted or not); the
  /// next segment created must use a higher seq.
  uint64_t max_seq = 0;

  /// Total bytes across trusted segment files as scanned.
  uint64_t file_bytes = 0;
};

/// Scans the segment chain in `dir`. kNotFound when no segments exist; a
/// bad header on the *first* segment is kDataCorruption (nothing of the
/// chain is trusted). Later problems — including a corrupt mid-chain header
/// or a continuity break — stop the chain there and are reported in the
/// result, mirroring the per-segment prefix-trust contract.
sqo::Result<WalChainResult> ReadWalChain(fs::Env& env, const std::string& dir);

}  // namespace sqo::storage

#endif  // SQO_STORAGE_WAL_H_
