#include "workload/company.h"

#include <random>

namespace sqo::workload {

using sqo::Value;

std::string_view CompanyOdl() {
  return R"odl(
struct Location {
  string city;
  string country;
};

interface Staff {
  extent staff;
  key badge;
  attribute string badge;
  attribute string name;
  attribute long level;
  attribute Location location;
  relationship Department works_in inverse Department::members;
  relationship Set<Project> assigned inverse Project::team;
  relationship Manager reports_to inverse Manager::reports;
  double bonus(in double factor);
};

interface Manager : Staff {
  extent managers;
  attribute double budget;
  relationship Set<Staff> reports inverse Staff::reports_to;
  relationship Department leads inverse Department::head;
};

interface Department {
  extent departments;
  key dname;
  attribute string dname;
  relationship Set<Staff> members inverse Staff::works_in;
  relationship Manager head inverse Manager::leads;
  relationship Set<Project> owns inverse Project::owned_by;
};

interface Project {
  extent projects;
  key pname;
  attribute string pname;
  attribute long priority;
  relationship Set<Staff> team inverse Staff::assigned;
  relationship Department owned_by inverse Department::owns;
};
)odl";
}

std::string_view CompanyIcs() {
  return R"ics(
MIC1: Level >= 5 <- manager(oid: X, level: Level).
MIC2: Budget > 100K <- manager(oid: X, budget: Budget).
MIC3: owned_by(P, D) <- assigned(S, P).
monotone(bonus, level, increasing).
point(bonus, 5, 2.0, 10).
)ics";
}

core::AsrDefinition CompanyAsr() {
  core::AsrDefinition asr;
  asr.name = "asr_staff_department";
  asr.display_name = "asr_staff_department";
  asr.path = {"assigned", "owned_by"};
  return asr;
}

sqo::Result<core::Pipeline> MakeCompanyPipeline(core::PipelineOptions options) {
  return core::Pipeline::Create(CompanyOdl(), CompanyIcs(), {CompanyAsr()},
                                options);
}

sqo::Status PopulateCompany(const CompanyConfig& config,
                            const core::Pipeline& pipeline,
                            engine::Database* db) {
  engine::ObjectStore& store = db->store();
  std::mt19937_64 rng(config.seed);
  auto rand_int = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  // bonus(factor) = level * factor: strictly increasing in level for
  // positive factors, and exactly 10 at (level 5, factor 2).
  SQO_RETURN_IF_ERROR(store.RegisterMethod(
      "bonus",
      [](const engine::ObjectStore& s, sqo::Oid receiver,
         const std::vector<Value>& args) -> sqo::Result<Value> {
        if (args.size() != 1 || !args[0].is_numeric()) {
          return sqo::InvalidArgumentError("bonus expects one numeric factor");
        }
        auto pos = s.schema().catalog.Find("staff")->AttributeIndex("level");
        SQO_ASSIGN_OR_RETURN(Value level, s.AttributeOf("staff", receiver, *pos));
        return Value::Double(level.AsNumeric() * args[0].AsNumeric());
      }));
  SQO_RETURN_IF_ERROR(db->CreateKeyIndexes());

  if (config.n_departments == 0 || config.n_managers < config.n_departments) {
    return sqo::InvalidArgumentError(
        "need at least one manager per department");
  }

  auto make_location = [&](int i) {
    return store.CreateStruct(
        "Location", {{"city", Value::String("city" + std::to_string(i % 11))},
                     {"country", Value::String(i % 3 == 0 ? "us" : "ca")}});
  };

  std::vector<sqo::Oid> departments;
  for (size_t d = 0; d < config.n_departments; ++d) {
    SQO_ASSIGN_OR_RETURN(
        sqo::Oid dept,
        store.CreateObject(
            "Department", {{"dname", Value::String("dept" + std::to_string(d))}}));
    departments.push_back(dept);
  }

  std::vector<sqo::Oid> managers;
  for (size_t m = 0; m < config.n_managers; ++m) {
    SQO_ASSIGN_OR_RETURN(sqo::Oid loc, make_location(static_cast<int>(m)));
    SQO_ASSIGN_OR_RETURN(
        sqo::Oid manager,
        store.CreateObject(
            "Manager",
            {{"badge", Value::String("M" + std::to_string(m))},
             {"name", Value::String("manager" + std::to_string(m))},
             {"level", Value::Int(rand_int(5, 9))},  // MIC1
             {"location", Value::FromOid(loc)},
             {"budget", Value::Double(110'000 + 1000.0 * rand_int(0, 400))}}));
    managers.push_back(manager);
    SQO_RETURN_IF_ERROR(
        store.Relate("works_in", manager, departments[m % departments.size()]));
    if (m < departments.size()) {
      SQO_RETURN_IF_ERROR(store.Relate("leads", manager, departments[m]));
    }
  }

  std::vector<sqo::Oid> projects;
  for (size_t p = 0; p < config.n_projects; ++p) {
    SQO_ASSIGN_OR_RETURN(
        sqo::Oid project,
        store.CreateObject(
            "Project", {{"pname", Value::String("proj" + std::to_string(p))},
                        {"priority", Value::Int(rand_int(1, 5))}}));
    projects.push_back(project);
    SQO_RETURN_IF_ERROR(store.Relate("owned_by", project,
                                     departments[p % departments.size()]));
  }

  for (size_t i = 0; i < config.n_staff; ++i) {
    SQO_ASSIGN_OR_RETURN(sqo::Oid loc, make_location(static_cast<int>(i + 100)));
    SQO_ASSIGN_OR_RETURN(
        sqo::Oid staff,
        store.CreateObject(
            "Staff", {{"badge", Value::String("S" + std::to_string(i))},
                      {"name", Value::String("staff" + std::to_string(i))},
                      {"level", Value::Int(rand_int(1, 8))},
                      {"location", Value::FromOid(loc)}}));
    SQO_RETURN_IF_ERROR(
        store.Relate("works_in", staff, departments[i % departments.size()]));
    SQO_RETURN_IF_ERROR(
        store.Relate("reports_to", staff, managers[i % managers.size()]));
    for (size_t k = 0; k < config.projects_per_staff; ++k) {
      SQO_RETURN_IF_ERROR(store.Relate(
          "assigned", staff, projects[(i * 13 + k * 5) % projects.size()]));
    }
  }

  for (const core::AsrDefinition& asr : pipeline.compiled().asrs) {
    SQO_RETURN_IF_ERROR(store.Materialize(asr));
  }
  return sqo::Status::Ok();
}

}  // namespace sqo::workload
