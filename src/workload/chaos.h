#ifndef SQO_WORKLOAD_CHAOS_H_
#define SQO_WORKLOAD_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "engine/object_store.h"
#include "sqo/pipeline.h"
#include "workload/university.h"

/// Crash-under-traffic chaos harness: seeded mutation traffic against a
/// forked child process that is killed mid-stream — at a failpoint site, at
/// a fault-injected I/O boundary (torn write / failed fsync), or by a plain
/// SIGKILL — then the directory is reopened in the parent and differentially
/// compared against an in-memory oracle that replays exactly the
/// acknowledged prefix of the same script.
///
/// The invariant: recovered state == oracle(acked ops), or oracle(acked+1)
/// for kill modes that strike after the bytes hit the file but before the
/// acknowledgment reached the caller (failed fsync, SIGKILL). Zero lost
/// acknowledged writes, zero phantom unacknowledged ones beyond that single
/// in-flight record.
///
/// Acknowledgments escape the dying child through an O_APPEND ack file in
/// the database directory: one byte per acknowledged op, written with a raw
/// write() immediately after the durable append returns OK. A write() that
/// returned is visible to the parent even when the child dies by SIGKILL —
/// the page cache survives process death (the harness models process
/// crashes, not kernel or power failures; the WAL's fsyncs cover those).
namespace sqo::workload {

/// How the child dies.
enum class ChaosCrashMode {
  /// A storage failpoint ("storage.wal_append" / "storage.fsync",
  /// alternating by seed) returns an injected error after `crash_point`
  /// trips; the child _exits as soon as an op fails.
  kFailpointError = 0,

  /// FaultInjectingEnv cuts a write short at cumulative byte `crash_point`
  /// and crashes inside the I/O call (a torn in-flight record).
  kTornWriteCrash = 1,

  /// FaultInjectingEnv fails fsync number `crash_point` and crashes inside
  /// it (bytes possibly on disk, acknowledgment never delivered).
  kFsyncCrash = 2,

  /// The parent SIGKILLs the child after `crash_point` acknowledged ops —
  /// no cooperation from the child at all.
  kKillMidTraffic = 3,
};

struct ChaosOptions {
  /// Seeds the op script and every in-iteration random choice.
  uint64_t seed = 0;

  /// Ops in the script; the child streams them in order until it dies.
  size_t ops = 48;

  /// Database directory (created/recovered in the child, reopened in the
  /// parent). The ack file `chaos-acks.log` lives alongside the segments.
  std::string dir;

  /// Compiled university pipeline (shared across iterations; must outlive
  /// the call).
  const core::Pipeline* pipeline = nullptr;

  /// Initial population the child builds before opening storage.
  GeneratorConfig data;

  ChaosCrashMode mode = ChaosCrashMode::kFailpointError;

  /// Mode-specific crash coordinate: failpoint trips, cumulative env bytes,
  /// fsync index, or acknowledged-op count (see ChaosCrashMode).
  uint64_t crash_point = 0;

  /// Checkpoint after the first third of the script, so the kill can land
  /// across a snapshot + rotation boundary, not only inside one segment.
  bool checkpoint_mid_stream = false;

  /// Forwarded to storage::OpenOptions (both arms of the harness matrix).
  bool group_commit = true;
};

struct ChaosOutcome {
  /// True when the child died by the injected mechanism (crash exit code or
  /// SIGKILL) rather than finishing the script.
  bool child_crashed = false;
  int child_exit_code = 0;   // -signal when killed by a signal
  bool baseline_durable = false;  // child's Open() returned before death
  uint64_t acked = 0;             // acknowledged ops (from the ack file)

  /// True when the recovered state matched the oracle within the allowed
  /// +1 in-flight-record slack (the invariant under test).
  bool consistent = false;

  /// Recovery degraded / flagged corruption — never expected for a clean
  /// process kill.
  bool degraded = false;
  std::string detail;  // human-readable mismatch description
};

/// Runs one fork → traffic → kill → reopen → differential-compare cycle.
/// Errors are harness failures (fork failed, child died in setup, oracle
/// replay failed); an invariant violation is NOT an error — it comes back
/// as `consistent == false` with `detail` set.
sqo::Result<ChaosOutcome> RunChaosIteration(const ChaosOptions& options);

/// Canonical signature of a store's logical contents (objects, non-empty
/// relations, OID allocator): equal signatures answer every query alike.
std::string ChaosStateSignature(const engine::ObjectStore& store);

/// The deterministic mixed-mutation script both the child and the oracle
/// replay: creates, attribute updates, relates/unrelates, deletes, seeded
/// by `seed`. Ops resolve OIDs through extents at call time, so equal op
/// prefixes yield equal states.
std::vector<std::function<sqo::Status(engine::Database*)>> ChaosOpScript(
    uint64_t seed, size_t n);

// ---------------------------------------------------------------------------
// Concurrent serving chaos: N client threads against a server::Server in the
// forked child, killed mid-traffic, with a per-client acked-prefix oracle.
// ---------------------------------------------------------------------------

/// Options for one concurrent crash-under-traffic iteration. The child
/// populates the university baseline, opens storage, starts a
/// server::Server over it, and runs `clients` threads, each submitting its
/// own deterministic mutation script through a Session (one ack byte per
/// acknowledged op escapes through the ack file). The crash mechanism is
/// the same matrix as ChaosOptions; for kKillMidTraffic the parent kills
/// at `crash_point` *total* acknowledged ops across clients.
struct ConcurrentChaosOptions {
  uint64_t seed = 0;
  size_t clients = 8;
  size_t ops_per_client = 12;
  std::string dir;
  const core::Pipeline* pipeline = nullptr;
  GeneratorConfig data;
  ChaosCrashMode mode = ChaosCrashMode::kKillMidTraffic;
  uint64_t crash_point = 0;
  bool group_commit = true;

  /// Server worker threads and every `query_every`-th op each client also
  /// issues a snapshot read (result ignored; exercises epoch pinning under
  /// the write stream). 0 disables the read mix.
  size_t server_workers = 2;
  size_t query_every = 4;
};

struct ConcurrentChaosOutcome {
  bool child_crashed = false;
  int child_exit_code = 0;
  bool baseline_durable = false;
  std::vector<uint64_t> acked;  // per client, from the ack file
  uint64_t total_acked = 0;

  /// True when every client's recovered projection matched its oracle
  /// within the per-client +1 in-flight slack AND the baseline projection
  /// matched exactly.
  bool consistent = false;
  bool degraded = false;
  std::string detail;
};

/// Runs one fork → serve-N-clients → kill → reopen → per-client
/// differential compare cycle. The invariant: for every client k the
/// recovered state restricted to k's objects equals replay(acked_k) or
/// replay(acked_k + 1) of k's script, and the restriction to baseline
/// objects equals the untouched population. Clients only ever touch
/// objects they created (names carry a per-client prefix), so their
/// scripts commute and each projection is deterministic.
sqo::Result<ConcurrentChaosOutcome> RunConcurrentChaosIteration(
    const ConcurrentChaosOptions& options);

/// The name prefix ("cc<k>_") that marks every object client `k` creates.
std::string ChaosClientPrefix(size_t client);

/// Client k's deterministic script: creates (Person/Student/Section),
/// own-object attribute updates, takes relates/unrelates and deletes, all
/// addressed by prefixed name — never by OID and never touching another
/// client's or the baseline's objects.
std::vector<std::function<sqo::Status(engine::Database*)>> ChaosClientScript(
    uint64_t seed, size_t client, size_t n);

/// OID-independent signature of the store restricted to objects whose
/// rows carry `prefix`-prefixed strings (plus pairs between two such
/// objects, endpoint OIDs replaced by row identities). Equal projections
/// answer every query about that client's objects alike.
std::string ChaosClientSignature(const engine::ObjectStore& store,
                                 const std::string& prefix);

/// OID-exact signature of the store restricted to objects owned by *no*
/// client (and pairs between two such objects). Excludes the OID
/// allocator, which client creates legitimately advance.
std::string ChaosBaselineSignature(const engine::ObjectStore& store);

}  // namespace sqo::workload

#endif  // SQO_WORKLOAD_CHAOS_H_
