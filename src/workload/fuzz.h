#ifndef SQO_WORKLOAD_FUZZ_H_
#define SQO_WORKLOAD_FUZZ_H_

#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "common/status.h"
#include "sqo/pipeline.h"
#include "sqo/semantic_compiler.h"

namespace sqo::workload {

/// Differential fuzz oracle for the rewrite verifier (and, transitively,
/// the optimizer): seeded random schemas-with-extra-ICs, stores and OQL
/// queries over the university workload; every produced alternative is
/// evaluated against the original on an IC-satisfying store AND certified
/// by the static verifier, and the two oracles are cross-checked.
///
///   verifier says sound, answers differ  -> mismatch (hard failure: one
///                                           of optimizer/verifier is wrong)
///   answers agree, verifier rejects      -> incompleteness counter (the
///                                           bounded chase missed a proof)
struct FuzzConfig {
  uint64_t seed = 20260808;
  size_t iterations = 3;            // independent schema/IC/store variants
  size_t queries_per_iteration = 6; // random OQL queries per variant
  analysis::VerifierOptions verifier;
};

struct FuzzMismatch {
  uint64_t iteration_seed = 0;
  std::string oql;
  size_t alternative = 0;
  std::string detail;
};

struct FuzzReport {
  size_t iterations = 0;
  size_t queries = 0;
  size_t alternatives = 0;
  size_t mismatches = 0;        // sound-but-wrong-answers (hard failure)
  size_t incompleteness = 0;    // right-answers-but-rejected
  size_t verifier_rejects = 0;  // alternatives the verifier refused
  std::vector<FuzzMismatch> mismatch_details;  // capped at 8

  bool ok() const { return mismatches == 0; }
  std::string Summary() const;
};

/// Runs the differential fuzz loop. Per iteration: derives a generator
/// config and up to two extra (generator-consistent) ICs from the seed,
/// builds a pipeline and a populated store, generates random OQL, and
/// cross-checks every alternative. Deterministic for a fixed config.
sqo::Result<FuzzReport> RunDifferentialFuzz(const FuzzConfig& config);

/// Intentional corruption of one compiled residue, used to demonstrate
/// that both oracles catch an unsound semantic catalog.
enum class ResidueCorruption {
  /// Strengthens a comparison guard constant (e.g. the §2 Example-1
  /// invariant `Salary > 40K ←` on faculty becomes `Salary > 80K ←`), so
  /// restriction introduction adds an over-strong restriction.
  kMutateGuard,

  /// Drops a remainder literal from a residue with a negated-class head
  /// (a scope-reduction contrapositive), so the reduction fires without
  /// its precondition.
  kDropRemainderLiteral,
};

std::string_view ResidueCorruptionName(ResidueCorruption kind);

/// Applies `kind` to one deterministically chosen (by `seed`) residue of
/// `compiled`. Returns a description of the mutation, or kNotFound when no
/// residue of the required shape exists.
sqo::Result<std::string> CorruptResidue(core::CompiledSchema* compiled,
                                        uint64_t seed, ResidueCorruption kind);

/// Outcome of optimizing the university seed queries through a corrupted
/// catalog while verifying against the clean one and evaluating on a
/// populated store. A healthy verifier/oracle pair has both flags set
/// (each independently detects the corruption).
struct CorruptionProbe {
  std::string description;       // what CorruptResidue changed
  size_t alternatives = 0;       // non-original alternatives examined
  bool verifier_flagged = false; // some alternative drew SQO-A015
  bool answers_differ = false;   // some alternative's answers diverged
};

sqo::Result<CorruptionProbe> ProbeCorruptedResidue(uint64_t seed,
                                                   ResidueCorruption kind);

}  // namespace sqo::workload

#endif  // SQO_WORKLOAD_FUZZ_H_
