#ifndef SQO_WORKLOAD_UNIVERSITY_H_
#define SQO_WORKLOAD_UNIVERSITY_H_

#include <string>
#include <string_view>

#include "engine/database.h"
#include "sqo/pipeline.h"

namespace sqo::workload {

/// The paper's Figure-1 university schema, in ODL. Single-inheritance
/// rendering: Person ← {Employee ← Faculty, Student ← TA}; Course and
/// Section with the four relationships used in §5; `taxes_withheld` on
/// Employee; `name` is a key on Person (so the §5.3 key IC holds on
/// Faculty by inheritance).
std::string_view UniversityOdl();

/// The paper's application-specific integrity constraints: IC1 (faculty
/// salary > 40K), IC4 (faculty age ≥ 30), IC9 (every section of a course a
/// student takes has a TA), plus the method facts behind IC2/IC3
/// (monotonicity of taxes_withheld in salary, and the 30K/10% → 3000
/// point).
std::string_view UniversityIcs();

/// The §5.4 access support relation for the path
/// takes · is_section_of · has_sections · has_ta (Student → TA).
core::AsrDefinition UniversityAsr();

/// Builds the compiled pipeline for the university schema (Step 1 +
/// inference + semantic compilation), with the ASR registered.
sqo::Result<core::Pipeline> MakeUniversityPipeline(
    core::PipelineOptions options = {});

/// Knobs of the synthetic data generator. Defaults give a small but
/// non-trivial database; benches scale them.
struct GeneratorConfig {
  uint64_t seed = 42;

  size_t n_plain_persons = 50;  // persons that are neither students nor staff
  size_t n_students = 200;      // plain students (TAs come on top)
  size_t n_faculty = 20;
  size_t n_courses = 10;
  size_t sections_per_course = 4;  // one TA per section (maintains IC9)
  size_t takes_per_student = 3;

  int min_person_age = 17;
  int max_person_age = 85;
  int min_faculty_age = 31;  // maintains IC4
  int max_faculty_age = 70;
  double min_faculty_salary = 45'000;  // maintains IC1
  double max_faculty_salary = 120'000;
  double ta_salary = 18'000;

  /// Names guaranteed to exist (the paper's query constants): a student
  /// "john", a student "james", a student "johnson".
  bool include_paper_names = true;
};

/// Registers the `taxes_withheld` implementation (salary × rate) and
/// creates key indexes — the code-side setup every university database
/// needs, with no data. Call this (instead of PopulateUniversity) before
/// recovering a persisted database: methods and index definitions are not
/// stored on disk, while the objects they apply to are.
sqo::Status SetupUniversityRuntime(engine::Database* db);

/// Populates `db` with deterministic synthetic data consistent with every
/// constraint of UniversityIcs(): runs SetupUniversityRuntime, relates
/// students/faculty/TAs to sections, and materializes the ASR.
sqo::Status PopulateUniversity(const GeneratorConfig& config,
                               const core::Pipeline& pipeline,
                               engine::Database* db);

/// The paper's queries, as OQL text over the university schema.
std::string QueryExample2();       // §4.3 Example 2 / §5.1 contradiction
std::string QueryScopeReduction(); // §5.2: persons younger than 30
std::string QueryJoinElimination();// §5.3: student/TA pairs via faculty name
std::string QueryAsrDirect();      // §5.4 Q: student → TA path, name "james"
std::string QueryAsrIndirect();    // §5.4 Q1: path without has_ta, "johnson"

}  // namespace sqo::workload

#endif  // SQO_WORKLOAD_UNIVERSITY_H_
