#ifndef SQO_WORKLOAD_COMPANY_H_
#define SQO_WORKLOAD_COMPANY_H_

#include <string>
#include <string_view>

#include "engine/database.h"
#include "sqo/pipeline.h"

namespace sqo::workload {

/// A second, independent schema exercising the same optimizer machinery as
/// the university workload: staff/manager hierarchy, departments, projects,
/// a self-referential reporting relationship, a `bonus` method with
/// monotonicity facts, and a staff→project→department access support
/// relation. Exists to demonstrate the library is not specialized to the
/// paper's Figure-1 schema.
std::string_view CompanyOdl();

/// Application ICs: manager level ≥ 5, manager budget > 100K, every project
/// of an assigned staff member is owned by some department, plus the bonus
/// method facts (strictly increasing in level; bonus(level 5, factor 2) = 10).
std::string_view CompanyIcs();

/// ASR over the path assigned · owned_by (Staff → Department).
core::AsrDefinition CompanyAsr();

/// Compiled pipeline for the company schema.
sqo::Result<core::Pipeline> MakeCompanyPipeline(core::PipelineOptions options = {});

struct CompanyConfig {
  uint64_t seed = 7;
  size_t n_staff = 150;     // non-manager staff
  size_t n_managers = 15;   // one leads each department, round-robin
  size_t n_departments = 8;
  size_t n_projects = 25;
  size_t projects_per_staff = 2;
};

/// Populates `db` with deterministic data consistent with CompanyIcs();
/// registers `bonus` (level × factor), creates key indexes, materializes
/// the ASR.
sqo::Status PopulateCompany(const CompanyConfig& config,
                            const core::Pipeline& pipeline,
                            engine::Database* db);

}  // namespace sqo::workload

#endif  // SQO_WORKLOAD_COMPANY_H_
