#include "workload/university.h"

#include <random>

#include "common/strings.h"

namespace sqo::workload {

using sqo::Value;

std::string_view UniversityOdl() {
  return R"odl(
struct Address {
  string street;
  string city;
};

interface Person {
  extent persons;
  key name;
  attribute string name;
  attribute long age;
  attribute Address address;
};

interface Employee : Person {
  extent employees;
  attribute double salary;
  double taxes_withheld(in double rate);
};

interface Faculty : Employee {
  extent faculty;
  attribute string rank;
  relationship Set<Section> teaches inverse Section::is_taught_by;
};

interface Student : Person {
  extent students;
  attribute string student_id;
  relationship Set<Section> takes inverse Section::is_taken_by;
};

interface TA : Student {
  extent tas;
  attribute string employee_id;
  relationship Section assists inverse Section::has_ta;
};

interface Course {
  extent courses;
  attribute string cname;
  relationship Set<Section> has_sections inverse Section::is_section_of;
};

interface Section {
  extent sections;
  attribute string number;
  relationship Set<Student> is_taken_by inverse Student::takes;
  relationship Faculty is_taught_by inverse Faculty::teaches;
  relationship Course is_section_of inverse Course::has_sections;
  relationship TA has_ta inverse TA::assists;
};
)odl";
}

std::string_view UniversityIcs() {
  return R"ics(
IC1: Salary > 40K <- faculty(oid: X, salary: Salary).
IC4: Age >= 30 <- faculty(oid: X, age: Age).
IC9: has_ta(V, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V).
monotone(taxes_withheld, salary, increasing).
point(taxes_withheld, 30K, 10%, 3000).
)ics";
}

core::AsrDefinition UniversityAsr() {
  core::AsrDefinition asr;
  asr.name = "asr_student_ta";
  asr.display_name = "asr_student_ta";
  asr.path = {"takes", "is_section_of", "has_sections", "has_ta"};
  return asr;
}

sqo::Result<core::Pipeline> MakeUniversityPipeline(
    core::PipelineOptions options) {
  return core::Pipeline::Create(UniversityOdl(), UniversityIcs(),
                                {UniversityAsr()}, options);
}

sqo::Status SetupUniversityRuntime(engine::Database* db) {
  engine::ObjectStore& store = db->store();
  // taxes_withheld(rate) = salary * rate — strictly increasing in salary
  // for positive rates, and exactly 3000 at (30K, 10%), matching the
  // declared method facts.
  SQO_RETURN_IF_ERROR(store.RegisterMethod(
      "taxes_withheld",
      [](const engine::ObjectStore& s, sqo::Oid receiver,
         const std::vector<Value>& args) -> sqo::Result<Value> {
        if (args.size() != 1 || !args[0].is_numeric()) {
          return sqo::InvalidArgumentError(
              "taxes_withheld expects one numeric rate");
        }
        const datalog::RelationSignature* emp =
            s.schema().catalog.Find("employee");
        auto pos = emp->AttributeIndex("salary");
        SQO_ASSIGN_OR_RETURN(Value salary,
                             s.AttributeOf("employee", receiver, *pos));
        if (!salary.is_numeric()) {
          return sqo::InvalidArgumentError("receiver has no numeric salary");
        }
        return Value::Double(salary.AsNumeric() * args[0].AsNumeric());
      }));

  return db->CreateKeyIndexes();
}

sqo::Status PopulateUniversity(const GeneratorConfig& config,
                               const core::Pipeline& pipeline,
                               engine::Database* db) {
  engine::ObjectStore& store = db->store();
  std::mt19937_64 rng(config.seed);
  auto rand_int = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  auto rand_double = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };

  SQO_RETURN_IF_ERROR(SetupUniversityRuntime(db));

  auto make_address = [&](int i) -> sqo::Result<sqo::Oid> {
    return store.CreateStruct(
        "Address", {{"street", Value::String(std::to_string(i) + " Main St")},
                    {"city", Value::String("city" + std::to_string(i % 17))}});
  };

  int person_counter = 0;
  auto unique_name = [&](const std::string& prefix) {
    return prefix + "_" + std::to_string(++person_counter);
  };

  // Plain persons (some younger than 30, for §5.2).
  for (size_t i = 0; i < config.n_plain_persons; ++i) {
    SQO_ASSIGN_OR_RETURN(sqo::Oid addr, make_address(person_counter));
    SQO_RETURN_IF_ERROR(
        store
            .CreateObject(
                "Person",
                {{"name", Value::String(unique_name("person"))},
                 {"age", Value::Int(rand_int(config.min_person_age,
                                             config.max_person_age))},
                 {"address", Value::FromOid(addr)}})
            .status());
  }

  // Students; the first three get the paper's names.
  std::vector<sqo::Oid> students;
  for (size_t i = 0; i < config.n_students; ++i) {
    SQO_ASSIGN_OR_RETURN(sqo::Oid addr, make_address(person_counter));
    std::string name;
    if (config.include_paper_names && i == 0) {
      name = "john";
      ++person_counter;
    } else if (config.include_paper_names && i == 1) {
      name = "james";
      ++person_counter;
    } else if (config.include_paper_names && i == 2) {
      name = "johnson";
      ++person_counter;
    } else {
      name = unique_name("student");
    }
    SQO_ASSIGN_OR_RETURN(
        sqo::Oid student,
        store.CreateObject(
            "Student",
            {{"name", Value::String(name)},
             {"age", Value::Int(rand_int(config.min_person_age, 45))},
             {"address", Value::FromOid(addr)},
             {"student_id", Value::String("S" + std::to_string(i))}}));
    students.push_back(student);
  }

  // Faculty (ages ≥ 31, salaries > 40K: the data honours IC1/IC4).
  std::vector<sqo::Oid> faculty;
  for (size_t i = 0; i < config.n_faculty; ++i) {
    SQO_ASSIGN_OR_RETURN(sqo::Oid addr, make_address(person_counter));
    SQO_ASSIGN_OR_RETURN(
        sqo::Oid prof,
        store.CreateObject(
            "Faculty",
            {{"name", Value::String(unique_name("prof"))},
             {"age", Value::Int(rand_int(config.min_faculty_age,
                                         config.max_faculty_age))},
             {"address", Value::FromOid(addr)},
             {"salary", Value::Double(rand_double(config.min_faculty_salary,
                                                  config.max_faculty_salary))},
             {"rank", Value::String(i % 3 == 0 ? "full" : "associate")}}));
    faculty.push_back(prof);
  }
  if (faculty.empty()) {
    return sqo::InvalidArgumentError("generator needs at least one faculty");
  }

  // Courses and sections; each section taught by a professor.
  std::vector<sqo::Oid> sections;
  for (size_t c = 0; c < config.n_courses; ++c) {
    SQO_ASSIGN_OR_RETURN(
        sqo::Oid course,
        store.CreateObject(
            "Course", {{"cname", Value::String("course" + std::to_string(c))}}));
    for (size_t s = 0; s < config.sections_per_course; ++s) {
      SQO_ASSIGN_OR_RETURN(
          sqo::Oid section,
          store.CreateObject(
              "Section", {{"number", Value::String(std::to_string(c) + "." +
                                                   std::to_string(s))}}));
      SQO_RETURN_IF_ERROR(store.Relate("has_sections", course, section));
      SQO_RETURN_IF_ERROR(store.Relate(
          "teaches", faculty[(c * config.sections_per_course + s) % faculty.size()],
          section));
      sections.push_back(section);
    }
  }
  if (sections.empty()) {
    return sqo::InvalidArgumentError("generator needs at least one section");
  }

  // One TA per section (IC9 + the one-to-one has_ta).
  for (size_t i = 0; i < sections.size(); ++i) {
    SQO_ASSIGN_OR_RETURN(sqo::Oid addr, make_address(person_counter));
    SQO_ASSIGN_OR_RETURN(
        sqo::Oid ta,
        store.CreateObject(
            "TA", {{"name", Value::String(unique_name("ta"))},
                   {"age", Value::Int(rand_int(21, 35))},
                   {"address", Value::FromOid(addr)},
                   {"student_id", Value::String("T" + std::to_string(i))},
                   {"employee_id", Value::String("E" + std::to_string(i))}}));
    SQO_RETURN_IF_ERROR(store.Relate("assists", ta, sections[i]));
    // TAs also take a section (they are students).
    SQO_RETURN_IF_ERROR(
        store.Relate("takes", ta, sections[(i + 1) % sections.size()]));
  }

  // Student enrollment.
  for (size_t i = 0; i < students.size(); ++i) {
    for (size_t k = 0; k < config.takes_per_student; ++k) {
      SQO_RETURN_IF_ERROR(store.Relate(
          "takes", students[i],
          sections[(i * 31 + k * 7 + static_cast<size_t>(rand_int(0, 3))) %
                   sections.size()]));
    }
  }

  // Materialize every registered ASR.
  for (const core::AsrDefinition& asr : pipeline.compiled().asrs) {
    SQO_RETURN_IF_ERROR(store.Materialize(asr));
  }
  return sqo::Status::Ok();
}

std::string QueryExample2() {
  return "select z.name, w.city\n"
         "from x in Student, y in x.takes, z in y.is_taught_by, w in z.address\n"
         "where x.name = \"john\" and z.taxes_withheld(10%) < 1000";
}

std::string QueryScopeReduction() {
  return "select x.name from x in Person where x.age < 30";
}

std::string QueryJoinElimination() {
  return "select list(s.student_id, t.employee_id)\n"
         "from s in Student, y in s.takes, z in y.is_taught_by,\n"
         "     t in TA, v in t.takes, w in v.is_taught_by\n"
         "where z.name = w.name";
}

std::string QueryAsrDirect() {
  return "select w\n"
         "from x in Student, y in x.takes, z in y.is_section_of,\n"
         "     v in z.has_sections, w in v.has_ta\n"
         "where x.name = \"james\"";
}

std::string QueryAsrIndirect() {
  return "select v\n"
         "from x in Student, y in x.takes, z in y.is_section_of,\n"
         "     v in z.has_sections\n"
         "where x.name = \"johnson\"";
}

}  // namespace sqo::workload
