#include "workload/chaos.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/failpoint.h"
#include "common/fileio.h"
#include "storage/manager.h"

namespace sqo::workload {
namespace {

constexpr char kAckFileName[] = "chaos-acks.log";

// Child exit codes beyond fs::kFaultCrashExitCode (86, "injected crash").
constexpr int kChildSetupFailed = 70;   // population/pipeline broke: harness bug
constexpr int kChildCleanFinish = 0;    // ran the whole script

std::string AckPath(const std::string& dir) {
  return dir + "/" + kAckFileName;
}

/// The ack channel must survive SIGKILL, so it bypasses every buffered
/// layer: one raw write() per event, no fsync needed (the harness models
/// process death, not kernel death).
class AckFile {
 public:
  explicit AckFile(const std::string& path)
      : fd_(::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                   0644)) {}
  ~AckFile() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }
  void Record(char event) {
    if (fd_ < 0) return;
    const ssize_t written = ::write(fd_, &event, 1);
    (void)written;  // a lost ack under-counts, which only loosens the test
  }

 private:
  int fd_;
};

struct AckLog {
  bool baseline = false;
  uint64_t acked = 0;
};

AckLog ReadAckLog(const std::string& dir) {
  AckLog log;
  if (sqo::Result<std::string> data = fs::ReadFile(AckPath(dir)); data.ok()) {
    for (char c : *data) {
      if (c == 'B') log.baseline = true;
      if (c == 'A') ++log.acked;
    }
  }
  return log;
}

storage::OpenOptions MakeOpenOptions(const ChaosOptions& options,
                                     fs::Env* env) {
  storage::OpenOptions open_options;
  open_options.compiled = &options.pipeline->compiled();
  open_options.env = env;
  open_options.group_commit = options.group_commit;
  open_options.checkpoint_on_close = false;
  return open_options;
}

/// Failpoint site for kFailpointError, derived from the seed the same way
/// in the child (to arm it) and in the parent (for diagnostics).
std::string FailpointSite(uint64_t seed) {
  return (seed % 2 == 0) ? "storage.wal_append" : "storage.fsync";
}

/// Everything the child does after fork(). Never returns; communicates
/// exclusively through the ack file, the database directory and its exit
/// status. No exit() — atexit handlers belong to the parent image.
[[noreturn]] void ChildMain(const ChaosOptions& options) {
  engine::Database db(&options.pipeline->schema());
  if (!PopulateUniversity(options.data, *options.pipeline, &db).ok()) {
    ::_exit(kChildSetupFailed);
  }

  fs::FaultInjectingEnv fault_env(fs::Env::Default());
  fs::Env* env = nullptr;
  switch (options.mode) {
    case ChaosCrashMode::kFailpointError: {
      failpoint::Action action;
      action.status = sqo::InternalError("chaos: injected storage failure");
      action.trigger_after = options.crash_point;
      action.max_trips = 1;
      failpoint::Activate(FailpointSite(options.seed), action);
      break;
    }
    case ChaosCrashMode::kTornWriteCrash: {
      fs::FaultPlan plan;
      plan.torn_write_at_byte = options.crash_point;
      plan.crash_on_torn_write = true;  // _Exit(86) inside the write
      fault_env.set_plan(plan);
      env = &fault_env;
      break;
    }
    case ChaosCrashMode::kFsyncCrash: {
      fs::FaultPlan plan;
      plan.fail_sync_at = options.crash_point;
      plan.crash_on_failed_sync = true;  // _Exit(86) inside the fsync
      fault_env.set_plan(plan);
      env = &fault_env;
      break;
    }
    case ChaosCrashMode::kKillMidTraffic:
      break;  // the parent does the killing
  }

  // Open may itself die here (baseline checkpoint I/O is injected too); a
  // surviving-but-failed Open is the same crash point, just politer.
  if (!db.Open(options.dir, MakeOpenOptions(options, env)).ok()) {
    ::_exit(fs::kFaultCrashExitCode);
  }
  AckFile acks(AckPath(options.dir));
  if (!acks.ok()) ::_exit(kChildSetupFailed);
  acks.Record('B');  // baseline durable: Open returned

  const auto ops = ChaosOpScript(options.seed, options.ops);
  const size_t checkpoint_at =
      options.checkpoint_mid_stream ? std::max<size_t>(1, options.ops / 3) : 0;
  size_t done = 0;
  for (const auto& op : ops) {
    if (!op(&db).ok()) {
      // The injected failure (or its unhealthy-latch shadow): this is the
      // crash instant — die without closing anything.
      ::_exit(fs::kFaultCrashExitCode);
    }
    acks.Record('A');
    ++done;
    if (checkpoint_at != 0 && done == checkpoint_at) {
      if (!db.Checkpoint().ok()) ::_exit(fs::kFaultCrashExitCode);
    }
    if (options.mode == ChaosCrashMode::kKillMidTraffic) {
      // Pace the stream so the parent's SIGKILL lands mid-traffic.
      ::usleep(300);
    }
  }
  const sqo::Status closed = db.CloseStorage();
  ::_exit(closed.ok() ? kChildCleanFinish : fs::kFaultCrashExitCode);
}

/// Reaps the child, killing it by SIGKILL per the mode (or as a hang
/// backstop). Returns the exit code, or -signal for a signal death.
sqo::Result<int> SuperviseChild(pid_t pid, const ChaosOptions& options) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::seconds(30);
  bool kill_sent = false;
  for (;;) {
    int status = 0;
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) {
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      if (WIFSIGNALED(status)) return -WTERMSIG(status);
      return sqo::InternalError("chaos child neither exited nor signaled");
    }
    if (reaped < 0) {
      return sqo::InternalError("waitpid failed for chaos child");
    }
    if (!kill_sent && options.mode == ChaosCrashMode::kKillMidTraffic) {
      if (ReadAckLog(options.dir).acked >= options.crash_point) {
        ::kill(pid, SIGKILL);
        kill_sent = true;
      }
    }
    if (clock::now() > deadline) {
      // A hung child (e.g. a committer deadlock) is itself a finding.
      ::kill(pid, SIGKILL);
      (void)::waitpid(pid, &status, 0);
      return sqo::InternalError("chaos child hung past the 30s backstop");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace

std::string ChaosStateSignature(const engine::ObjectStore& store) {
  std::string out;
  for (const auto& [oid, record] : store.objects()) {
    out += std::to_string(oid) + "|" + record.exact_relation;
    for (const sqo::Value& v : record.row) out += "|" + v.ToString();
    out += "\n";
  }
  for (const std::string& rel : store.RelationNames()) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    for (const auto& [src, dst] : store.Pairs(rel)) {
      pairs.emplace_back(src.raw(), dst.raw());
    }
    if (pairs.empty()) continue;  // invisible to queries, skipped by recovery
    std::sort(pairs.begin(), pairs.end());
    out += rel;
    for (const auto& [src, dst] : pairs) {
      out += " (" + std::to_string(src) + "," + std::to_string(dst) + ")";
    }
    out += "\n";
  }
  out += "next_oid=" + std::to_string(store.next_oid());
  return out;
}

std::vector<std::function<sqo::Status(engine::Database*)>> ChaosOpScript(
    uint64_t seed, size_t n) {
  std::vector<std::function<sqo::Status(engine::Database*)>> ops;
  ops.reserve(n);
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    switch (rng() % 6) {
      case 0:
        ops.push_back([i](engine::Database* db) {
          return db->store()
              .CreateObject(
                  "Person",
                  {{"name", Value::String("chaos_p" + std::to_string(i))},
                   {"age", Value::Int(20 + static_cast<int>(i % 50))}})
              .status();
        });
        break;
      case 1:
        ops.push_back([i](engine::Database* db) {
          return db->store()
              .CreateObject(
                  "Student",
                  {{"name", Value::String("chaos_s" + std::to_string(i))},
                   {"age", Value::Int(18 + static_cast<int>(i % 10))},
                   {"student_id", Value::String("CHS" + std::to_string(i))}})
              .status();
        });
        break;
      case 2: {
        const uint64_t pick = rng();
        ops.push_back([i, pick](engine::Database* db) {
          const auto& persons = db->store().Extent("person");
          if (persons.empty()) return sqo::Status::Ok();
          return db->store().UpdateAttribute(
              persons[pick % persons.size()], "age",
              Value::Int(21 + static_cast<int>(i % 60)));
        });
        break;
      }
      case 3: {
        const uint64_t s = rng(), t = rng();
        ops.push_back([s, t](engine::Database* db) {
          const auto& students = db->store().Extent("student");
          const auto& sections = db->store().Extent("section");
          if (students.empty() || sections.empty()) return sqo::Status::Ok();
          return db->store().Relate("takes", students[s % students.size()],
                                    sections[t % sections.size()]);
        });
        break;
      }
      case 4: {
        const uint64_t pick = rng();
        ops.push_back([pick](engine::Database* db) {
          const auto& takes = db->store().Pairs("takes");
          if (takes.empty()) return sqo::Status::Ok();
          const auto [src, dst] = takes[pick % takes.size()];
          return db->store().Unrelate("takes", src, dst);
        });
        break;
      }
      default: {
        const uint64_t pick = rng();
        ops.push_back([pick](engine::Database* db) {
          const auto& persons = db->store().Extent("person");
          if (persons.empty()) return sqo::Status::Ok();
          return db->store().DeleteObject(persons[pick % persons.size()]);
        });
        break;
      }
    }
  }
  return ops;
}

sqo::Result<ChaosOutcome> RunChaosIteration(const ChaosOptions& options) {
  if (options.pipeline == nullptr) {
    return sqo::InvalidArgumentError("ChaosOptions.pipeline is required");
  }
  if (options.dir.empty()) {
    return sqo::InvalidArgumentError("ChaosOptions.dir is required");
  }
  // The child inherits a copy of the parent's memory; the fork must happen
  // while no committer thread is alive in this process (the caller owns
  // that — a Database with attached storage must be closed first).
  const pid_t pid = ::fork();
  if (pid < 0) {
    return sqo::InternalError("fork failed for chaos child");
  }
  if (pid == 0) {
    ChildMain(options);  // never returns
  }

  ChaosOutcome outcome;
  SQO_ASSIGN_OR_RETURN(outcome.child_exit_code, SuperviseChild(pid, options));
  if (outcome.child_exit_code == kChildSetupFailed) {
    return sqo::InternalError("chaos child failed in setup (not an injected "
                              "crash): harness bug");
  }
  outcome.child_crashed = outcome.child_exit_code != kChildCleanFinish;

  const AckLog acks = ReadAckLog(options.dir);
  outcome.baseline_durable = acks.baseline;
  outcome.acked = acks.acked;

  // Reopen in this process with a clean env: whatever the child managed to
  // make durable is all recovery gets.
  engine::Database recovered(&options.pipeline->schema());
  SQO_RETURN_IF_ERROR(SetupUniversityRuntime(&recovered));
  SQO_RETURN_IF_ERROR(
      recovered.Open(options.dir, MakeOpenOptions(options, nullptr)));
  const storage::RecoveryInfo* info = recovered.recovery_info();
  outcome.degraded = info != nullptr && info->degraded;
  std::string degradation_reason =
      info != nullptr ? info->degradation_reason : "";
  const std::string recovered_sig = ChaosStateSignature(recovered.store());
  SQO_RETURN_IF_ERROR(recovered.CloseStorage());

  if (!outcome.baseline_durable) {
    // Death before Open() returned: nothing was ever acknowledged, and the
    // atomically-published baseline either exists in full or not at all.
    engine::Database empty(&options.pipeline->schema());
    SQO_RETURN_IF_ERROR(SetupUniversityRuntime(&empty));
    const std::string empty_sig = ChaosStateSignature(empty.store());
    engine::Database baseline(&options.pipeline->schema());
    SQO_RETURN_IF_ERROR(
        PopulateUniversity(options.data, *options.pipeline, &baseline));
    const std::string baseline_sig = ChaosStateSignature(baseline.store());
    outcome.consistent =
        recovered_sig == empty_sig || recovered_sig == baseline_sig;
    if (!outcome.consistent) {
      outcome.detail = "crash before baseline: recovered state matches "
                       "neither the empty store nor the full baseline";
    }
    return outcome;
  }

  // Oracle: the same deterministic population + exactly the acknowledged
  // prefix of the same script. The +1 candidate is the one in-flight record
  // a post-write crash (failed fsync, SIGKILL between write and ack) may
  // legitimately persist without an acknowledgment.
  const auto ops = ChaosOpScript(options.seed, options.ops);
  engine::Database oracle(&options.pipeline->schema());
  SQO_RETURN_IF_ERROR(
      PopulateUniversity(options.data, *options.pipeline, &oracle));
  for (size_t i = 0; i < outcome.acked && i < ops.size(); ++i) {
    SQO_RETURN_IF_ERROR(ops[i](&oracle));
  }
  const std::string acked_sig = ChaosStateSignature(oracle.store());
  std::string plus_one_sig = acked_sig;
  if (outcome.acked < ops.size()) {
    SQO_RETURN_IF_ERROR(ops[outcome.acked](&oracle));
    plus_one_sig = ChaosStateSignature(oracle.store());
  }

  outcome.consistent =
      recovered_sig == acked_sig || recovered_sig == plus_one_sig;
  if (!outcome.consistent) {
    outcome.detail =
        "recovered state matches neither the acked prefix (" +
        std::to_string(outcome.acked) + " ops) nor acked+1 (mode " +
        std::to_string(static_cast<int>(options.mode)) + ", crash_point " +
        std::to_string(options.crash_point) + ")";
  } else if (outcome.degraded) {
    // Consistency with degradation means fail-open recovery papered over
    // something a clean process kill should never produce.
    outcome.consistent = false;
    outcome.detail =
        "recovery degraded after a clean process kill: " + degradation_reason;
  }
  return outcome;
}

}  // namespace sqo::workload
