#include "workload/chaos.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include <atomic>
#include <cctype>
#include <map>
#include <optional>
#include <set>

#include "common/env.h"
#include "common/failpoint.h"
#include "common/fileio.h"
#include "server/server.h"
#include "storage/manager.h"

namespace sqo::workload {
namespace {

constexpr char kAckFileName[] = "chaos-acks.log";

// Child exit codes beyond fs::kFaultCrashExitCode (86, "injected crash").
constexpr int kChildSetupFailed = 70;   // population/pipeline broke: harness bug
constexpr int kChildCleanFinish = 0;    // ran the whole script

std::string AckPath(const std::string& dir) {
  return dir + "/" + kAckFileName;
}

/// The ack channel must survive SIGKILL, so it bypasses every buffered
/// layer: one raw write() per event, no fsync needed (the harness models
/// process death, not kernel death).
class AckFile {
 public:
  explicit AckFile(const std::string& path)
      : fd_(::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                   0644)) {}
  ~AckFile() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }
  void Record(char event) {
    if (fd_ < 0) return;
    const ssize_t written = ::write(fd_, &event, 1);
    (void)written;  // a lost ack under-counts, which only loosens the test
  }

 private:
  int fd_;
};

struct AckLog {
  bool baseline = false;
  uint64_t acked = 0;
};

AckLog ReadAckLog(const std::string& dir) {
  AckLog log;
  if (sqo::Result<std::string> data = fs::ReadFile(AckPath(dir)); data.ok()) {
    for (char c : *data) {
      if (c == 'B') log.baseline = true;
      if (c == 'A') ++log.acked;
    }
  }
  return log;
}

storage::OpenOptions MakeOpenOptionsFor(const core::Pipeline& pipeline,
                                        bool group_commit, fs::Env* env) {
  storage::OpenOptions open_options;
  open_options.compiled = &pipeline.compiled();
  open_options.env = env;
  open_options.group_commit = group_commit;
  open_options.checkpoint_on_close = false;
  return open_options;
}

storage::OpenOptions MakeOpenOptions(const ChaosOptions& options,
                                     fs::Env* env) {
  return MakeOpenOptionsFor(*options.pipeline, options.group_commit, env);
}

/// Failpoint site for kFailpointError, derived from the seed the same way
/// in the child (to arm it) and in the parent (for diagnostics).
std::string FailpointSite(uint64_t seed) {
  return (seed % 2 == 0) ? "storage.wal_append" : "storage.fsync";
}

/// Arms the crash mechanism for the child. Returns the Env to open storage
/// with (the fault-injecting one, or nullptr for the default).
fs::Env* ArmCrashMechanism(ChaosCrashMode mode, uint64_t crash_point,
                           const std::string& failpoint_site,
                           fs::FaultInjectingEnv* fault_env) {
  switch (mode) {
    case ChaosCrashMode::kFailpointError: {
      failpoint::Action action;
      action.status = sqo::InternalError("chaos: injected storage failure");
      action.trigger_after = crash_point;
      action.max_trips = 1;
      failpoint::Activate(failpoint_site, action);
      return nullptr;
    }
    case ChaosCrashMode::kTornWriteCrash: {
      fs::FaultPlan plan;
      plan.torn_write_at_byte = crash_point;
      plan.crash_on_torn_write = true;  // _Exit(86) inside the write
      fault_env->set_plan(plan);
      return fault_env;
    }
    case ChaosCrashMode::kFsyncCrash: {
      fs::FaultPlan plan;
      plan.fail_sync_at = crash_point;
      plan.crash_on_failed_sync = true;  // _Exit(86) inside the fsync
      fault_env->set_plan(plan);
      return fault_env;
    }
    case ChaosCrashMode::kKillMidTraffic:
      return nullptr;  // the parent does the killing
  }
  return nullptr;
}

/// Everything the child does after fork(). Never returns; communicates
/// exclusively through the ack file, the database directory and its exit
/// status. No exit() — atexit handlers belong to the parent image.
[[noreturn]] void ChildMain(const ChaosOptions& options) {
  engine::Database db(&options.pipeline->schema());
  if (!PopulateUniversity(options.data, *options.pipeline, &db).ok()) {
    ::_exit(kChildSetupFailed);
  }

  fs::FaultInjectingEnv fault_env(fs::Env::Default());
  fs::Env* env = ArmCrashMechanism(options.mode, options.crash_point,
                                   FailpointSite(options.seed), &fault_env);

  // Open may itself die here (baseline checkpoint I/O is injected too); a
  // surviving-but-failed Open is the same crash point, just politer.
  if (!db.Open(options.dir, MakeOpenOptions(options, env)).ok()) {
    ::_exit(fs::kFaultCrashExitCode);
  }
  AckFile acks(AckPath(options.dir));
  if (!acks.ok()) ::_exit(kChildSetupFailed);
  acks.Record('B');  // baseline durable: Open returned

  const auto ops = ChaosOpScript(options.seed, options.ops);
  const size_t checkpoint_at =
      options.checkpoint_mid_stream ? std::max<size_t>(1, options.ops / 3) : 0;
  size_t done = 0;
  for (const auto& op : ops) {
    if (!op(&db).ok()) {
      // The injected failure (or its unhealthy-latch shadow): this is the
      // crash instant — die without closing anything.
      ::_exit(fs::kFaultCrashExitCode);
    }
    acks.Record('A');
    ++done;
    if (checkpoint_at != 0 && done == checkpoint_at) {
      if (!db.Checkpoint().ok()) ::_exit(fs::kFaultCrashExitCode);
    }
    if (options.mode == ChaosCrashMode::kKillMidTraffic) {
      // Pace the stream so the parent's SIGKILL lands mid-traffic.
      ::usleep(300);
    }
  }
  const sqo::Status closed = db.CloseStorage();
  ::_exit(closed.ok() ? kChildCleanFinish : fs::kFaultCrashExitCode);
}

/// Reaps the child, SIGKILLing it once `should_kill` first returns true
/// (pass nullptr for modes where the child dies on its own) or as a hang
/// backstop. Returns the exit code, or -signal for a signal death.
sqo::Result<int> Supervise(pid_t pid,
                           const std::function<bool()>& should_kill) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::seconds(30);
  bool kill_sent = false;
  for (;;) {
    int status = 0;
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) {
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      if (WIFSIGNALED(status)) return -WTERMSIG(status);
      return sqo::InternalError("chaos child neither exited nor signaled");
    }
    if (reaped < 0) {
      return sqo::InternalError("waitpid failed for chaos child");
    }
    if (!kill_sent && should_kill != nullptr && should_kill()) {
      ::kill(pid, SIGKILL);
      kill_sent = true;
    }
    if (clock::now() > deadline) {
      // A hung child (e.g. a committer deadlock) is itself a finding.
      ::kill(pid, SIGKILL);
      (void)::waitpid(pid, &status, 0);
      return sqo::InternalError("chaos child hung past the 30s backstop");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

sqo::Result<int> SuperviseChild(pid_t pid, const ChaosOptions& options) {
  std::function<bool()> should_kill;
  if (options.mode == ChaosCrashMode::kKillMidTraffic) {
    should_kill = [&options] {
      return ReadAckLog(options.dir).acked >= options.crash_point;
    };
  }
  return Supervise(pid, should_kill);
}

}  // namespace

std::string ChaosStateSignature(const engine::ObjectStore& store) {
  std::string out;
  for (const auto& [oid, record] : store.objects()) {
    out += std::to_string(oid) + "|" + record.exact_relation;
    for (const sqo::Value& v : record.row) out += "|" + v.ToString();
    out += "\n";
  }
  for (const std::string& rel : store.RelationNames()) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    for (const auto& [src, dst] : store.Pairs(rel)) {
      pairs.emplace_back(src.raw(), dst.raw());
    }
    if (pairs.empty()) continue;  // invisible to queries, skipped by recovery
    std::sort(pairs.begin(), pairs.end());
    out += rel;
    for (const auto& [src, dst] : pairs) {
      out += " (" + std::to_string(src) + "," + std::to_string(dst) + ")";
    }
    out += "\n";
  }
  out += "next_oid=" + std::to_string(store.next_oid());
  return out;
}

std::vector<std::function<sqo::Status(engine::Database*)>> ChaosOpScript(
    uint64_t seed, size_t n) {
  std::vector<std::function<sqo::Status(engine::Database*)>> ops;
  ops.reserve(n);
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    switch (rng() % 6) {
      case 0:
        ops.push_back([i](engine::Database* db) {
          return db->store()
              .CreateObject(
                  "Person",
                  {{"name", Value::String("chaos_p" + std::to_string(i))},
                   {"age", Value::Int(20 + static_cast<int>(i % 50))}})
              .status();
        });
        break;
      case 1:
        ops.push_back([i](engine::Database* db) {
          return db->store()
              .CreateObject(
                  "Student",
                  {{"name", Value::String("chaos_s" + std::to_string(i))},
                   {"age", Value::Int(18 + static_cast<int>(i % 10))},
                   {"student_id", Value::String("CHS" + std::to_string(i))}})
              .status();
        });
        break;
      case 2: {
        const uint64_t pick = rng();
        ops.push_back([i, pick](engine::Database* db) {
          const auto& persons = db->store().Extent("person");
          if (persons.empty()) return sqo::Status::Ok();
          return db->store().UpdateAttribute(
              persons[pick % persons.size()], "age",
              Value::Int(21 + static_cast<int>(i % 60)));
        });
        break;
      }
      case 3: {
        const uint64_t s = rng(), t = rng();
        ops.push_back([s, t](engine::Database* db) {
          const auto& students = db->store().Extent("student");
          const auto& sections = db->store().Extent("section");
          if (students.empty() || sections.empty()) return sqo::Status::Ok();
          return db->store().Relate("takes", students[s % students.size()],
                                    sections[t % sections.size()]);
        });
        break;
      }
      case 4: {
        const uint64_t pick = rng();
        ops.push_back([pick](engine::Database* db) {
          const auto& takes = db->store().Pairs("takes");
          if (takes.empty()) return sqo::Status::Ok();
          const auto [src, dst] = takes[pick % takes.size()];
          return db->store().Unrelate("takes", src, dst);
        });
        break;
      }
      default: {
        const uint64_t pick = rng();
        ops.push_back([pick](engine::Database* db) {
          const auto& persons = db->store().Extent("person");
          if (persons.empty()) return sqo::Status::Ok();
          return db->store().DeleteObject(persons[pick % persons.size()]);
        });
        break;
      }
    }
  }
  return ops;
}

sqo::Result<ChaosOutcome> RunChaosIteration(const ChaosOptions& options) {
  if (options.pipeline == nullptr) {
    return sqo::InvalidArgumentError("ChaosOptions.pipeline is required");
  }
  if (options.dir.empty()) {
    return sqo::InvalidArgumentError("ChaosOptions.dir is required");
  }
  // The child inherits a copy of the parent's memory; the fork must happen
  // while no committer thread is alive in this process (the caller owns
  // that — a Database with attached storage must be closed first).
  const pid_t pid = ::fork();
  if (pid < 0) {
    return sqo::InternalError("fork failed for chaos child");
  }
  if (pid == 0) {
    ChildMain(options);  // never returns
  }

  ChaosOutcome outcome;
  SQO_ASSIGN_OR_RETURN(outcome.child_exit_code, SuperviseChild(pid, options));
  if (outcome.child_exit_code == kChildSetupFailed) {
    return sqo::InternalError("chaos child failed in setup (not an injected "
                              "crash): harness bug");
  }
  outcome.child_crashed = outcome.child_exit_code != kChildCleanFinish;

  const AckLog acks = ReadAckLog(options.dir);
  outcome.baseline_durable = acks.baseline;
  outcome.acked = acks.acked;

  // Reopen in this process with a clean env: whatever the child managed to
  // make durable is all recovery gets.
  engine::Database recovered(&options.pipeline->schema());
  SQO_RETURN_IF_ERROR(SetupUniversityRuntime(&recovered));
  SQO_RETURN_IF_ERROR(
      recovered.Open(options.dir, MakeOpenOptions(options, nullptr)));
  const storage::RecoveryInfo* info = recovered.recovery_info();
  outcome.degraded = info != nullptr && info->degraded;
  std::string degradation_reason =
      info != nullptr ? info->degradation_reason : "";
  const std::string recovered_sig = ChaosStateSignature(recovered.store());
  SQO_RETURN_IF_ERROR(recovered.CloseStorage());

  if (!outcome.baseline_durable) {
    // Death before Open() returned: nothing was ever acknowledged, and the
    // atomically-published baseline either exists in full or not at all.
    engine::Database empty(&options.pipeline->schema());
    SQO_RETURN_IF_ERROR(SetupUniversityRuntime(&empty));
    const std::string empty_sig = ChaosStateSignature(empty.store());
    engine::Database baseline(&options.pipeline->schema());
    SQO_RETURN_IF_ERROR(
        PopulateUniversity(options.data, *options.pipeline, &baseline));
    const std::string baseline_sig = ChaosStateSignature(baseline.store());
    outcome.consistent =
        recovered_sig == empty_sig || recovered_sig == baseline_sig;
    if (!outcome.consistent) {
      outcome.detail = "crash before baseline: recovered state matches "
                       "neither the empty store nor the full baseline";
    }
    return outcome;
  }

  // Oracle: the same deterministic population + exactly the acknowledged
  // prefix of the same script. The +1 candidate is the one in-flight record
  // a post-write crash (failed fsync, SIGKILL between write and ack) may
  // legitimately persist without an acknowledgment.
  const auto ops = ChaosOpScript(options.seed, options.ops);
  engine::Database oracle(&options.pipeline->schema());
  SQO_RETURN_IF_ERROR(
      PopulateUniversity(options.data, *options.pipeline, &oracle));
  for (size_t i = 0; i < outcome.acked && i < ops.size(); ++i) {
    SQO_RETURN_IF_ERROR(ops[i](&oracle));
  }
  const std::string acked_sig = ChaosStateSignature(oracle.store());
  std::string plus_one_sig = acked_sig;
  if (outcome.acked < ops.size()) {
    SQO_RETURN_IF_ERROR(ops[outcome.acked](&oracle));
    plus_one_sig = ChaosStateSignature(oracle.store());
  }

  outcome.consistent =
      recovered_sig == acked_sig || recovered_sig == plus_one_sig;
  if (!outcome.consistent) {
    outcome.detail =
        "recovered state matches neither the acked prefix (" +
        std::to_string(outcome.acked) + " ops) nor acked+1 (mode " +
        std::to_string(static_cast<int>(options.mode)) + ", crash_point " +
        std::to_string(options.crash_point) + ")";
  } else if (outcome.degraded) {
    // Consistency with degradation means fail-open recovery papered over
    // something a clean process kill should never produce.
    outcome.consistent = false;
    outcome.detail =
        "recovery degraded after a clean process kill: " + degradation_reason;
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Concurrent serving chaos
// ---------------------------------------------------------------------------

namespace {

/// True when `s` looks like a client-owned identity: "cc<digits>_...".
bool HasAnyClientPrefix(const std::string& s) {
  if (s.size() < 4 || s[0] != 'c' || s[1] != 'c') return false;
  size_t i = 2;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  return i > 2 && i < s.size() && s[i] == '_';
}

bool RowHasString(const engine::ObjectStore::ObjectRecord& record,
                  const std::function<bool(const std::string&)>& pred) {
  for (const sqo::Value& v : record.row) {
    if (v.kind() == sqo::ValueKind::kString && pred(v.AsString())) return true;
  }
  return false;
}

/// OID-free identity of an object: class plus every non-OID attribute
/// value (the row's first column is the object's own OID, and OIDs differ
/// between the child's populated store and an oracle replaying on an empty
/// one). The per-client name scheme makes this unique among one client's
/// objects.
std::string RowIdentity(const engine::ObjectStore::ObjectRecord& record) {
  std::string id = record.exact_relation;
  for (const sqo::Value& v : record.row) {
    if (v.kind() == sqo::ValueKind::kOid) continue;
    id += "|" + v.ToString();
  }
  return id;
}

struct ConcurrentAckLog {
  bool baseline = false;
  std::vector<uint64_t> acked;
  uint64_t total = 0;
};

/// Per-client ack bytes are 1+k (distinct from 'B' for any sane client
/// count); unknown bytes are ignored.
ConcurrentAckLog ReadConcurrentAckLog(const std::string& dir, size_t clients) {
  ConcurrentAckLog log;
  log.acked.assign(clients, 0);
  if (sqo::Result<std::string> data = fs::ReadFile(AckPath(dir)); data.ok()) {
    for (char c : *data) {
      if (c == 'B') {
        log.baseline = true;
        continue;
      }
      const size_t k = static_cast<size_t>(static_cast<unsigned char>(c)) - 1;
      if (k < clients) {
        ++log.acked[k];
        ++log.total;
      }
    }
  }
  return log;
}

std::optional<sqo::Oid> FindByStringValue(const engine::ObjectStore& store,
                                          const std::string& relation,
                                          const std::string& value) {
  for (const auto& [oid, record] : store.objects()) {
    if (record.exact_relation != relation) continue;
    for (const sqo::Value& v : record.row) {
      if (v.kind() == sqo::ValueKind::kString && v.AsString() == value) {
        return sqo::Oid(oid);
      }
    }
  }
  return std::nullopt;
}

/// The failpoint site for concurrent kFailpointError: every third seed
/// faults the server's reply path (op applied + durable, ack lost), the
/// rest fault storage like the single-client harness.
std::string ConcurrentFailpointSite(uint64_t seed) {
  return (seed % 3 == 2) ? "server.reply" : FailpointSite(seed);
}

/// Everything the child does after fork(): populate, open storage, start a
/// Server, run N client threads. Dies by the armed mechanism, the parent's
/// SIGKILL, or _exit(86) as soon as any client's request fails.
[[noreturn]] void ConcurrentChildMain(const ConcurrentChaosOptions& options) {
  engine::Database db(&options.pipeline->schema());
  if (!PopulateUniversity(options.data, *options.pipeline, &db).ok()) {
    ::_exit(kChildSetupFailed);
  }

  fs::FaultInjectingEnv fault_env(fs::Env::Default());
  fs::Env* env =
      ArmCrashMechanism(options.mode, options.crash_point,
                        ConcurrentFailpointSite(options.seed), &fault_env);

  if (!db.Open(options.dir,
               MakeOpenOptionsFor(*options.pipeline, options.group_commit, env))
           .ok()) {
    ::_exit(fs::kFaultCrashExitCode);
  }
  AckFile acks(AckPath(options.dir));
  if (!acks.ok()) ::_exit(kChildSetupFailed);
  acks.Record('B');  // baseline durable: Open returned

  server::ServerConfig config;
  config.workers = options.server_workers;
  config.replicas = 2;
  config.replica_setup = [](engine::Database* replica) {
    return SetupUniversityRuntime(replica);
  };
  server::Server server(options.pipeline, &db, config);
  if (!server.Start().ok()) ::_exit(kChildSetupFailed);

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (size_t k = 0; k < options.clients; ++k) {
    clients.emplace_back([&options, &server, &acks, &failed, k] {
      std::shared_ptr<server::Session> session =
          server.OpenSession(ChaosClientPrefix(k));
      const auto ops =
          ChaosClientScript(options.seed, k, options.ops_per_client);
      size_t done = 0;
      for (const auto& op : ops) {
        if (failed.load(std::memory_order_acquire)) return;
        if (!session->Mutate(op).ok()) {
          // The injected failure (or its unhealthy-latch shadow). This
          // client's last op is the unacknowledged in-flight candidate.
          failed.store(true, std::memory_order_release);
          return;
        }
        acks.Record(static_cast<char>(1 + k));
        ++done;
        if (options.query_every != 0 && done % options.query_every == 0) {
          // Read mix: pin a snapshot under the write stream. Result and
          // status intentionally ignored — reads don't ack.
          (void)session->Query(
              "select x.name from x in Person where x.age < 30");
        }
        if (options.mode == ChaosCrashMode::kKillMidTraffic) {
          ::usleep(300);  // pace so the parent's SIGKILL lands mid-traffic
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  if (failed.load(std::memory_order_acquire)) {
    ::_exit(fs::kFaultCrashExitCode);  // die like a crash: no Stop, no Close
  }
  server.Stop();
  const sqo::Status closed = db.CloseStorage();
  ::_exit(closed.ok() ? kChildCleanFinish : fs::kFaultCrashExitCode);
}

}  // namespace

std::string ChaosClientPrefix(size_t client) {
  return "cc" + std::to_string(client) + "_";
}

std::string ChaosClientSignature(const engine::ObjectStore& store,
                                 const std::string& prefix) {
  std::map<uint64_t, std::string> identities;
  std::vector<std::string> lines;
  for (const auto& [oid, record] : store.objects()) {
    if (!RowHasString(record, [&prefix](const std::string& s) {
          return s.rfind(prefix, 0) == 0;
        })) {
      continue;
    }
    std::string id = RowIdentity(record);
    lines.push_back(id);
    identities.emplace(oid, std::move(id));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  for (const std::string& rel : store.RelationNames()) {
    std::vector<std::string> pair_lines;
    for (const auto& [src, dst] : store.Pairs(rel)) {
      const auto a = identities.find(src.raw());
      if (a == identities.end()) continue;
      const auto b = identities.find(dst.raw());
      if (b == identities.end()) continue;
      pair_lines.push_back(rel + "(" + a->second + " -> " + b->second + ")");
    }
    std::sort(pair_lines.begin(), pair_lines.end());
    for (const std::string& line : pair_lines) out += line + "\n";
  }
  return out;
}

std::string ChaosBaselineSignature(const engine::ObjectStore& store) {
  std::set<uint64_t> client_owned;
  std::vector<std::string> lines;
  for (const auto& [oid, record] : store.objects()) {
    if (RowHasString(record, HasAnyClientPrefix)) {
      client_owned.insert(oid);
      continue;
    }
    lines.push_back(std::to_string(oid) + "|" + RowIdentity(record));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  for (const std::string& rel : store.RelationNames()) {
    std::vector<std::string> pair_lines;
    for (const auto& [src, dst] : store.Pairs(rel)) {
      if (client_owned.count(src.raw()) > 0 ||
          client_owned.count(dst.raw()) > 0) {
        continue;
      }
      pair_lines.push_back(rel + "(" + std::to_string(src.raw()) + "," +
                           std::to_string(dst.raw()) + ")");
    }
    if (pair_lines.empty()) continue;
    std::sort(pair_lines.begin(), pair_lines.end());
    for (const std::string& line : pair_lines) out += line + "\n";
  }
  // next_oid intentionally excluded: client creates legitimately advance
  // the allocator without touching baseline objects.
  return out;
}

std::vector<std::function<sqo::Status(engine::Database*)>> ChaosClientScript(
    uint64_t seed, size_t client, size_t n) {
  std::vector<std::function<sqo::Status(engine::Database*)>> ops;
  ops.reserve(n);
  const std::string prefix = ChaosClientPrefix(client);
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + client + 1);
  for (size_t i = 0; i < n; ++i) {
    switch (rng() % 7) {
      case 0:
        ops.push_back([prefix, i](engine::Database* db) {
          return db->store()
              .CreateObject(
                  "Person",
                  {{"name", Value::String(prefix + "p" + std::to_string(i))},
                   {"age", Value::Int(20 + static_cast<int>(i % 50))}})
              .status();
        });
        break;
      case 1:
        ops.push_back([prefix, i](engine::Database* db) {
          return db->store()
              .CreateObject(
                  "Student",
                  {{"name", Value::String(prefix + "s" + std::to_string(i))},
                   {"age", Value::Int(18 + static_cast<int>(i % 10))},
                   {"student_id",
                    Value::String(prefix + "id" + std::to_string(i))}})
              .status();
        });
        break;
      case 2:
        ops.push_back([prefix, i](engine::Database* db) {
          return db->store()
              .CreateObject(
                  "Section",
                  {{"number",
                    Value::String(prefix + "x" + std::to_string(i))}})
              .status();
        });
        break;
      case 3: {
        const size_t j = rng() % (i + 1);
        ops.push_back([prefix, i, j](engine::Database* db) {
          const auto person = FindByStringValue(
              db->store(), "person", prefix + "p" + std::to_string(j));
          if (!person.has_value()) return sqo::Status::Ok();
          return db->store().UpdateAttribute(
              *person, "age", Value::Int(21 + static_cast<int>(i % 60)));
        });
        break;
      }
      case 4: {
        const size_t j1 = rng() % (i + 1), j2 = rng() % (i + 1);
        ops.push_back([prefix, j1, j2](engine::Database* db) {
          const auto student = FindByStringValue(
              db->store(), "student", prefix + "s" + std::to_string(j1));
          const auto section = FindByStringValue(
              db->store(), "section", prefix + "x" + std::to_string(j2));
          if (!student.has_value() || !section.has_value()) {
            return sqo::Status::Ok();
          }
          return db->store().Relate("takes", *student, *section);
        });
        break;
      }
      case 5: {
        const size_t j1 = rng() % (i + 1), j2 = rng() % (i + 1);
        ops.push_back([prefix, j1, j2](engine::Database* db) {
          const auto student = FindByStringValue(
              db->store(), "student", prefix + "s" + std::to_string(j1));
          const auto section = FindByStringValue(
              db->store(), "section", prefix + "x" + std::to_string(j2));
          if (!student.has_value() || !section.has_value()) {
            return sqo::Status::Ok();
          }
          return db->store().Unrelate("takes", *student, *section);
        });
        break;
      }
      default: {
        const size_t j = rng() % (i + 1);
        ops.push_back([prefix, j](engine::Database* db) {
          const auto person = FindByStringValue(
              db->store(), "person", prefix + "p" + std::to_string(j));
          if (!person.has_value()) return sqo::Status::Ok();
          return db->store().DeleteObject(*person);
        });
        break;
      }
    }
  }
  return ops;
}

sqo::Result<ConcurrentChaosOutcome> RunConcurrentChaosIteration(
    const ConcurrentChaosOptions& options) {
  if (options.pipeline == nullptr) {
    return sqo::InvalidArgumentError(
        "ConcurrentChaosOptions.pipeline is required");
  }
  if (options.dir.empty()) {
    return sqo::InvalidArgumentError("ConcurrentChaosOptions.dir is required");
  }
  if (options.clients == 0 || options.clients > 64) {
    return sqo::InvalidArgumentError("clients must be in [1, 64]");
  }
  // As with RunChaosIteration, the fork must happen while this process has
  // no live committer/worker threads (the caller owns that).
  const pid_t pid = ::fork();
  if (pid < 0) {
    return sqo::InternalError("fork failed for chaos child");
  }
  if (pid == 0) {
    ConcurrentChildMain(options);  // never returns
  }

  ConcurrentChaosOutcome outcome;
  std::function<bool()> should_kill;
  if (options.mode == ChaosCrashMode::kKillMidTraffic) {
    should_kill = [&options] {
      return ReadConcurrentAckLog(options.dir, options.clients).total >=
             options.crash_point;
    };
  }
  SQO_ASSIGN_OR_RETURN(outcome.child_exit_code, Supervise(pid, should_kill));
  if (outcome.child_exit_code == kChildSetupFailed) {
    return sqo::InternalError(
        "concurrent chaos child failed in setup (not an injected crash): "
        "harness bug");
  }
  outcome.child_crashed = outcome.child_exit_code != kChildCleanFinish;

  const ConcurrentAckLog acks =
      ReadConcurrentAckLog(options.dir, options.clients);
  outcome.baseline_durable = acks.baseline;
  outcome.acked = acks.acked;
  outcome.total_acked = acks.total;

  engine::Database recovered(&options.pipeline->schema());
  SQO_RETURN_IF_ERROR(SetupUniversityRuntime(&recovered));
  SQO_RETURN_IF_ERROR(recovered.Open(
      options.dir,
      MakeOpenOptionsFor(*options.pipeline, options.group_commit, nullptr)));
  const storage::RecoveryInfo* info = recovered.recovery_info();
  outcome.degraded = info != nullptr && info->degraded;
  const std::string degradation_reason =
      info != nullptr ? info->degradation_reason : "";

  if (!outcome.baseline_durable) {
    // Death before Open() returned: the server never started, so nothing
    // was ever acknowledged — same all-or-nothing baseline check as the
    // single-client harness.
    const std::string recovered_sig = ChaosStateSignature(recovered.store());
    SQO_RETURN_IF_ERROR(recovered.CloseStorage());
    engine::Database empty(&options.pipeline->schema());
    SQO_RETURN_IF_ERROR(SetupUniversityRuntime(&empty));
    engine::Database baseline(&options.pipeline->schema());
    SQO_RETURN_IF_ERROR(
        PopulateUniversity(options.data, *options.pipeline, &baseline));
    outcome.consistent =
        recovered_sig == ChaosStateSignature(empty.store()) ||
        recovered_sig == ChaosStateSignature(baseline.store());
    if (!outcome.consistent) {
      outcome.detail = "crash before baseline: recovered state matches "
                       "neither the empty store nor the full baseline";
    }
    return outcome;
  }

  // Baseline projection first: client traffic must never perturb the
  // population (OID-exact, modulo the advanced allocator).
  outcome.consistent = true;
  {
    engine::Database baseline(&options.pipeline->schema());
    SQO_RETURN_IF_ERROR(
        PopulateUniversity(options.data, *options.pipeline, &baseline));
    if (ChaosBaselineSignature(recovered.store()) !=
        ChaosBaselineSignature(baseline.store())) {
      outcome.consistent = false;
      outcome.detail = "baseline projection diverged from the population";
    }
  }

  // Per-client differential oracle: replay exactly client k's acked prefix
  // (its ops touch only its own objects, so they replay on an empty store)
  // and allow the single unacknowledged in-flight op as +1 slack.
  for (size_t k = 0; outcome.consistent && k < options.clients; ++k) {
    const std::string prefix = ChaosClientPrefix(k);
    const std::string recovered_sig =
        ChaosClientSignature(recovered.store(), prefix);
    const auto ops = ChaosClientScript(options.seed, k, options.ops_per_client);
    engine::Database oracle(&options.pipeline->schema());
    SQO_RETURN_IF_ERROR(SetupUniversityRuntime(&oracle));
    const size_t acked_k =
        std::min<size_t>(outcome.acked[k], ops.size());
    for (size_t i = 0; i < acked_k; ++i) {
      SQO_RETURN_IF_ERROR(ops[i](&oracle));
    }
    if (recovered_sig == ChaosClientSignature(oracle.store(), prefix)) {
      continue;
    }
    if (acked_k < ops.size()) {
      SQO_RETURN_IF_ERROR(ops[acked_k](&oracle));
      if (recovered_sig == ChaosClientSignature(oracle.store(), prefix)) {
        continue;
      }
    }
    outcome.consistent = false;
    outcome.detail = "client " + std::to_string(k) +
                     ": recovered projection matches neither acked prefix (" +
                     std::to_string(acked_k) + " ops) nor acked+1 (mode " +
                     std::to_string(static_cast<int>(options.mode)) +
                     ", crash_point " + std::to_string(options.crash_point) +
                     ")";
  }
  SQO_RETURN_IF_ERROR(recovered.CloseStorage());

  if (outcome.consistent && outcome.degraded) {
    outcome.consistent = false;
    outcome.detail =
        "recovery degraded after a clean process kill: " + degradation_reason;
  }
  return outcome;
}

}  // namespace sqo::workload
