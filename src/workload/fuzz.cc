#include "workload/fuzz.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "datalog/parser.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "odl/parser.h"
#include "oql/parser.h"
#include "sqo/optimizer.h"
#include "translate/query_translator.h"
#include "workload/university.h"

namespace sqo::workload {

namespace {

constexpr size_t kMaxMismatchDetails = 8;

/// SplitMix64 step — decorrelates per-iteration seeds derived from the
/// master seed without std::seed_seq's allocation.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Rows as a sorted multiset of printed rows — the set-semantics answer
/// comparison every equivalence test in the repo uses.
std::vector<std::string> CanonicalRows(
    const std::vector<std::vector<sqo::Value>>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::string s;
    for (const sqo::Value& v : row) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Compact random-OQL generator over the university schema (the grammar of
/// tests/integration/random_query_property_test.cc): a root extent, 0–3
/// type-correct relationship hops, 0–2 attribute restrictions, an optional
/// subclass exclusion, 1–2 projections.
class RandomOql {
 public:
  explicit RandomOql(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    vars_.clear();
    from_.clear();
    where_.clear();
    static const char* kClasses[] = {"Person",  "Student", "Faculty",
                                     "TA",      "Course",  "Section",
                                     "Employee"};
    AddVar(kClasses[Pick(7)]);
    const size_t hops = Pick(4);
    for (size_t i = 0; i < hops; ++i) {
      const size_t base = Pick(vars_.size());
      auto rel = RandomRelationship(vars_[base].cls);
      if (!rel.has_value()) continue;
      const std::string var = AddVar(rel->second);
      from_.back() = var + " in " + vars_[base].name + "." + rel->first;
    }
    const size_t restrictions = Pick(3);
    for (size_t i = 0; i < restrictions; ++i) {
      where_.push_back(RandomRestriction(vars_[Pick(vars_.size())]));
    }
    if (Pick(4) == 0) {
      for (const Var& v : vars_) {
        if (auto sub = SubclassOf(v.cls)) {
          from_.push_back(v.name + " not in " + *sub);
          break;
        }
      }
    }
    std::vector<std::string> select;
    select.push_back(RandomProjection(vars_[Pick(vars_.size())]));
    if (Pick(2) == 0) {
      select.push_back(RandomProjection(vars_[Pick(vars_.size())]));
    }
    std::string oql = "select " + select[0];
    for (size_t i = 1; i < select.size(); ++i) oql += ", " + select[i];
    oql += " from " + from_[0];
    for (size_t i = 1; i < from_.size(); ++i) oql += ", " + from_[i];
    if (!where_.empty()) {
      oql += " where " + where_[0];
      for (size_t i = 1; i < where_.size(); ++i) oql += " and " + where_[i];
    }
    return oql;
  }

 private:
  struct Var {
    std::string name;
    std::string cls;
  };

  size_t Pick(size_t n) {
    return std::uniform_int_distribution<size_t>(0, n - 1)(rng_);
  }

  std::string AddVar(const std::string& cls) {
    std::string name = "v" + std::to_string(vars_.size());
    vars_.push_back({name, cls});
    from_.push_back(name + " in " + cls);
    return name;
  }

  std::optional<std::pair<std::string, std::string>> RandomRelationship(
      const std::string& cls) {
    static const struct {
      const char* cls;
      const char* rel;
      const char* target;
    } kRels[] = {
        {"Student", "takes", "Section"},
        {"TA", "takes", "Section"},
        {"TA", "assists", "Section"},
        {"Faculty", "teaches", "Section"},
        {"Course", "has_sections", "Section"},
        {"Section", "is_taken_by", "Student"},
        {"Section", "is_taught_by", "Faculty"},
        {"Section", "is_section_of", "Course"},
        {"Section", "has_ta", "TA"},
    };
    std::vector<std::pair<std::string, std::string>> candidates;
    for (const auto& r : kRels) {
      if (cls == r.cls) candidates.emplace_back(r.rel, r.target);
    }
    if (candidates.empty()) return std::nullopt;
    return candidates[Pick(candidates.size())];
  }

  static std::optional<std::string> SubclassOf(const std::string& cls) {
    if (cls == "Person") return "Faculty";
    if (cls == "Student") return "TA";
    if (cls == "Employee") return "Faculty";
    return std::nullopt;
  }

  std::string RandomRestriction(const Var& v) {
    struct AttrInfo {
      const char* cls;
      const char* attr;
      int lo, hi;
    };
    static const AttrInfo kAttrs[] = {
        {"Person", "age", 10, 90},   {"Student", "age", 10, 90},
        {"Faculty", "age", 10, 90},  {"TA", "age", 10, 90},
        {"Employee", "age", 10, 90}, {"Faculty", "salary", 30000, 130000},
        {"Employee", "salary", 30000, 130000},
    };
    std::vector<AttrInfo> candidates;
    for (const auto& a : kAttrs) {
      if (v.cls == a.cls) candidates.push_back(a);
    }
    if (candidates.empty()) {
      if (v.cls == "Course") return v.name + ".cname != \"nope\"";
      if (v.cls == "Section") return v.name + ".number != \"nope\"";
      return v.name + ".name != \"nope\"";
    }
    const AttrInfo a = candidates[Pick(candidates.size())];
    static const char* kOps[] = {"<", "<=", ">", ">=", "!="};
    const int c =
        a.lo + static_cast<int>(Pick(static_cast<size_t>(a.hi - a.lo)));
    return std::string(v.name) + "." + a.attr + " " + kOps[Pick(5)] + " " +
           std::to_string(c);
  }

  std::string RandomProjection(const Var& v) {
    if (Pick(3) == 0) return v.name;
    if (v.cls == "Course") return v.name + ".cname";
    if (v.cls == "Section") return v.name + ".number";
    return v.name + ".name";
  }

  std::mt19937_64 rng_;
  std::vector<Var> vars_;
  std::vector<std::string> from_;
  std::vector<std::string> where_;
};

void RecordMismatch(FuzzReport* report, uint64_t iteration_seed,
                    const std::string& oql, size_t alternative,
                    std::string detail) {
  ++report->mismatches;
  obs::Count("fuzz.mismatches");
  if (report->mismatch_details.size() < kMaxMismatchDetails) {
    report->mismatch_details.push_back(
        FuzzMismatch{iteration_seed, oql, alternative, std::move(detail)});
  }
}

}  // namespace

std::string FuzzReport::Summary() const {
  return std::to_string(iterations) + " iterations, " +
         std::to_string(queries) + " queries, " + std::to_string(alternatives) +
         " alternatives; " + std::to_string(mismatches) + " mismatches, " +
         std::to_string(verifier_rejects) + " verifier rejects (" +
         std::to_string(incompleteness) + " incomplete)";
}

sqo::Result<FuzzReport> RunDifferentialFuzz(const FuzzConfig& config) {
  obs::Span span("fuzz.run");
  FuzzReport report;
  for (size_t iter = 0; iter < config.iterations; ++iter) {
    obs::Span iter_span("fuzz.iteration");
    const uint64_t iter_seed = Mix(config.seed + iter);
    iter_span.Tag("seed", iter_seed);
    std::mt19937_64 rng(iter_seed);
    auto pick = [&rng](int lo, int hi) {
      return std::uniform_int_distribution<int>(lo, hi)(rng);
    };

    // Extra random ICs strictly weaker than the generator's invariants
    // (min faculty age 31, min faculty salary 45000), so every populated
    // store satisfies them — more semantic knowledge, same data.
    std::string ics(UniversityIcs());
    if (pick(0, 1) == 1) {
      ics += "FZA: Age >= " + std::to_string(pick(18, 30)) +
             " <- faculty(oid: X, age: Age).\n";
    }
    if (pick(0, 1) == 1) {
      ics += "FZS: Salary > " + std::to_string(pick(30000, 44000)) +
             " <- faculty(oid: X, salary: Salary).\n";
    }

    SQO_ASSIGN_OR_RETURN(
        core::Pipeline pipeline,
        core::Pipeline::Create(UniversityOdl(), ics, {UniversityAsr()}));

    GeneratorConfig gen;
    gen.seed = iter_seed;
    gen.n_plain_persons = static_cast<size_t>(pick(10, 30));
    gen.n_students = static_cast<size_t>(pick(20, 60));
    gen.n_faculty = static_cast<size_t>(pick(4, 10));
    gen.n_courses = static_cast<size_t>(pick(3, 6));
    engine::Database db(&pipeline.schema());
    SQO_RETURN_IF_ERROR(PopulateUniversity(gen, pipeline, &db));

    RandomOql oql_gen(iter_seed);
    for (size_t qi = 0; qi < config.queries_per_iteration; ++qi) {
      const std::string oql = oql_gen.Generate();
      auto result = pipeline.OptimizeText(oql);
      if (!result.ok()) continue;  // generator/grammar mismatch: skip
      ++report.queries;
      obs::Count("fuzz.queries");

      auto rows_orig = db.Run(result->original_datalog);
      if (!rows_orig.ok()) continue;
      const std::vector<std::string> expected = CanonicalRows(*rows_orig);

      if (result->contradiction) {
        if (!expected.empty()) {
          RecordMismatch(&report, iter_seed, oql, 0,
                         "claimed contradiction but the original query has " +
                             std::to_string(expected.size()) + " answers");
        }
        continue;
      }

      SQO_ASSIGN_OR_RETURN(analysis::VerificationResult verification,
                           pipeline.Verify(*result, config.verifier));
      for (size_t i = 1; i < result->alternatives.size(); ++i) {
        const core::Alternative& alt = result->alternatives[i];
        ++report.alternatives;
        const bool sound = verification.verdicts[i].sound;
        auto rows = db.Run(alt.datalog);
        if (!rows.ok()) {
          if (sound) {
            RecordMismatch(&report, iter_seed, oql, i,
                           "verifier-sound alternative failed to evaluate: " +
                               rows.status().ToString());
          }
          continue;
        }
        const bool agree = CanonicalRows(*rows) == expected;
        if (sound && !agree) {
          RecordMismatch(&report, iter_seed, oql, i,
                         "verifier says sound but answers differ: " +
                             alt.datalog.ToString());
        }
        if (!sound) {
          ++report.verifier_rejects;
          obs::Count("fuzz.verifier_rejects");
          if (agree) ++report.incompleteness;
        }
      }
    }
    ++report.iterations;
  }
  span.Tag("queries", static_cast<uint64_t>(report.queries));
  span.Tag("mismatches", static_cast<uint64_t>(report.mismatches));
  return report;
}

std::string_view ResidueCorruptionName(ResidueCorruption kind) {
  switch (kind) {
    case ResidueCorruption::kMutateGuard:
      return "mutate_guard";
    case ResidueCorruption::kDropRemainderLiteral:
      return "drop_remainder_literal";
  }
  return "unknown";
}

sqo::Result<std::string> CorruptResidue(core::CompiledSchema* compiled,
                                        uint64_t seed,
                                        ResidueCorruption kind) {
  // Deterministic candidate scan in relation order (std::map).
  std::vector<core::Residue*> candidates;
  for (auto& [relation, residues] : compiled->residues) {
    for (core::Residue& r : residues) {
      switch (kind) {
        case ResidueCorruption::kMutateGuard:
          // Strict lower-bound invariants with an empty remainder (IC1-style
          // "Salary > 40K <- faculty") fire on any scan of the relation, and
          // doubling the bound makes the optimizer both introduce the
          // inflated guard and eliminate user guards it does not imply.
          if (r.remainder.empty() && r.head.has_value() &&
              r.head->atom.is_comparison() && r.head->atom.rhs().is_constant() &&
              r.head->atom.rhs().constant().is_numeric() &&
              r.head->atom.op() == datalog::CmpOp::kGt) {
            candidates.push_back(&r);
          }
          break;
        case ResidueCorruption::kDropRemainderLiteral:
          // Scope-reduction contrapositives: negated-class head guarded by
          // a comparison remainder; dropping the guard makes the reduction
          // fire unconditionally.
          if (!r.remainder.empty() && r.head.has_value() &&
              !r.head->positive && r.head->atom.is_predicate()) {
            candidates.push_back(&r);
          }
          break;
      }
    }
  }
  if (candidates.empty()) {
    return sqo::NotFoundError(
        std::string("no residue of the required shape for corruption ") +
        std::string(ResidueCorruptionName(kind)));
  }
  // The detection probe drives fixed queries (a guarded faculty scan and an
  // unrestricted person scan); prefer victims attached to those relations so
  // the corruption is reachable, falling back to the full candidate set for
  // schemas without them.
  const char* preferred =
      kind == ResidueCorruption::kMutateGuard ? "faculty" : "person";
  std::vector<core::Residue*> scoped;
  for (core::Residue* r : candidates) {
    if (r->relation == preferred) scoped.push_back(r);
  }
  if (!scoped.empty()) candidates = std::move(scoped);
  core::Residue& victim = *candidates[seed % candidates.size()];
  const std::string before = victim.ToString();
  switch (kind) {
    case ResidueCorruption::kMutateGuard: {
      const double old_value = victim.head->atom.rhs().constant().AsNumeric();
      victim.head->atom.mutable_args()[1] =
          datalog::Term::Double(old_value * 2.0);
      break;
    }
    case ResidueCorruption::kDropRemainderLiteral: {
      victim.remainder.erase(victim.remainder.begin() +
                             static_cast<long>(seed % victim.remainder.size()));
      victim.FinalizeForMatching(victim.id);
      break;
    }
  }
  return std::string(ResidueCorruptionName(kind)) + " on " + victim.relation +
         ": " + before + "  ==>  " + victim.ToString();
}

sqo::Result<CorruptionProbe> ProbeCorruptedResidue(uint64_t seed,
                                                   ResidueCorruption kind) {
  obs::Span span("fuzz.corruption_probe");
  span.Tag("kind", ResidueCorruptionName(kind));

  // Clean side: the reference pipeline supplies the verifier catalog and
  // the schema the evaluation store is populated against.
  SQO_ASSIGN_OR_RETURN(core::Pipeline clean, MakeUniversityPipeline());
  engine::Database db(&clean.schema());
  GeneratorConfig gen;
  gen.seed = seed;
  SQO_RETURN_IF_ERROR(PopulateUniversity(gen, clean, &db));
  analysis::VerifierCatalog catalog;
  catalog.schema = &clean.schema();
  catalog.ics = &clean.compiled().all_ics;
  catalog.asrs = &clean.compiled().asrs;

  // Corrupted side: an independently compiled semantic catalog (Pipeline
  // keeps its own private) with one residue mutated, driven directly
  // through the Step-3 optimizer.
  SQO_ASSIGN_OR_RETURN(odl::SchemaAst ast, odl::ParseOdl(UniversityOdl()));
  SQO_ASSIGN_OR_RETURN(odl::Schema odl_schema, odl::Schema::Resolve(ast));
  SQO_ASSIGN_OR_RETURN(translate::TranslatedSchema translated,
                       translate::TranslateSchema(odl_schema));
  auto schema = std::make_unique<translate::TranslatedSchema>(
      std::move(translated));
  std::vector<core::AsrDefinition> registry;
  SQO_RETURN_IF_ERROR(
      core::RegisterAsr(UniversityAsr(), schema.get(), &registry));
  SQO_ASSIGN_OR_RETURN(
      std::vector<datalog::Clause> user_ics,
      datalog::ParseProgram(UniversityIcs(), &schema->catalog));
  for (const core::AsrDefinition& def : registry) {
    user_ics.push_back(def.view);
  }
  SQO_ASSIGN_OR_RETURN(core::CompiledSchema compiled,
                       core::CompileSemantics(schema.get(), std::move(user_ics),
                                              std::move(registry)));

  CorruptionProbe probe;
  SQO_ASSIGN_OR_RETURN(probe.description,
                       CorruptResidue(&compiled, seed, kind));

  core::Optimizer optimizer(&compiled);
  // One query per corruption family: a salary restriction the mutated
  // guard over-strengthens, and an unrestricted Person scan the dropped
  // guard wrongly scope-reduces. Both run under either corruption; the
  // untargeted one simply stays clean.
  static const char* kProbeQueries[] = {
      "select f.name from f in Faculty where f.salary > 30000",
      "select p.name from p in Person",
  };
  for (const char* oql_text : kProbeQueries) {
    SQO_ASSIGN_OR_RETURN(oql::SelectQuery parsed, oql::ParseOql(oql_text));
    SQO_ASSIGN_OR_RETURN(translate::TranslatedQuery tq,
                         translate::TranslateQuery(*schema, parsed));
    SQO_ASSIGN_OR_RETURN(core::OptimizationOutcome outcome,
                         optimizer.Optimize(tq.query));
    SQO_ASSIGN_OR_RETURN(auto rows_orig, db.Run(tq.query));
    const std::vector<std::string> expected = CanonicalRows(rows_orig);
    if (outcome.contradiction) {
      // Neither corruption can prove these queries empty; a claimed
      // contradiction with answers is itself an answer divergence.
      if (!expected.empty()) probe.answers_differ = true;
      continue;
    }
    for (size_t i = 1; i < outcome.equivalents.size(); ++i) {
      const core::Rewriting& rw = outcome.equivalents[i];
      ++probe.alternatives;
      analysis::RewriteCandidate candidate;
      candidate.query = &rw.query;
      candidate.steps = &rw.steps;
      const analysis::AlternativeVerdict verdict =
          analysis::VerifyRewriting(catalog, tq.query, candidate, i);
      if (!verdict.sound) probe.verifier_flagged = true;
      auto rows = db.Run(rw.query);
      if (!rows.ok() || CanonicalRows(*rows) != expected) {
        probe.answers_differ = true;
      }
    }
  }
  span.Tag("verifier_flagged", probe.verifier_flagged ? "true" : "false");
  span.Tag("answers_differ", probe.answers_differ ? "true" : "false");
  return probe;
}

}  // namespace sqo::workload
