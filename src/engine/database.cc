#include "engine/database.h"

#include <algorithm>
#include <functional>

#include "common/context.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqo::engine {

sqo::Status Database::CreateKeyIndexes() {
  const odl::Schema& odl_schema = schema().schema;
  for (const odl::ClassInfo& cls : odl_schema.classes()) {
    // Keys are inherited: index the declaring class and every subclass
    // relation so key probes work at any level of the hierarchy.
    const odl::ClassInfo* cur = &cls;
    while (cur != nullptr) {
      for (const std::string& key : cur->keys) {
        SQO_RETURN_IF_ERROR(
            store_.CreateIndex(schema().RelationFor(cls.name), key));
      }
      cur = cur->super.empty() ? nullptr : odl_schema.FindClass(cur->super);
    }
  }
  return sqo::Status::Ok();
}

sqo::Result<std::vector<std::vector<sqo::Value>>> Database::Run(
    const datalog::Query& query, EvalStats* stats, EvalOptions options) const {
  Evaluator evaluator(&store_, options);
  return evaluator.Evaluate(query, stats);
}

sqo::Result<Database::ProfiledRun> Database::ProfileQuery(
    const datalog::Query& query, EvalOptions options) const {
  Evaluator evaluator(&store_, options);
  ProfiledRun run;
  SQO_ASSIGN_OR_RETURN(
      run.rows,
      evaluator.Evaluate(query, &run.stats, /*order=*/nullptr, &run.profile));
  return run;
}

sqo::Status Database::ProfileAlternatives(core::PipelineResult* result,
                                          EvalOptions options) const {
  if (result == nullptr || result->contradiction) return sqo::Status::Ok();
  const size_t n = result->alternatives.size();
  size_t threads = options.profile_threads == 0 ? ThreadPool::DefaultSize()
                                                : options.profile_threads;
  threads = std::min(threads, n);
  // Spans are recorded against a thread-local tracer in strict
  // parent-before-child order; profiling in parallel would scatter or drop
  // them, so an installed tracer forces the serial path.
  if (threads <= 1 || obs::CurrentTracer() != nullptr) {
    sqo::Status first_error = sqo::Status::Ok();
    Evaluator evaluator(&store_, options);
    for (core::Alternative& alt : result->alternatives) {
      alt.eval_stats.Reset();
      auto rows = evaluator.Evaluate(alt.datalog, &alt.eval_stats);
      alt.evaluated = rows.ok();
      if (!rows.ok() && first_error.ok()) first_error = rows.status();
    }
    return first_error;
  }

  ExecutionContext* parent = CurrentContext();
  obs::MetricsRegistry* caller_metrics = obs::CurrentMetrics();
  std::vector<sqo::Status> statuses(n, sqo::Status::Ok());
  std::vector<obs::MetricsRegistry> task_metrics(n);
  const Evaluator evaluator(&store_, options);

  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back([this, i, parent, &evaluator, result, &statuses,
                     &task_metrics] {
      core::Alternative& alt = result->alternatives[i];
      // Workers inherit governance through a private context seeded from
      // the caller's deadline and budgets (each alternative gets a full
      // budget — the serial path's cumulative charging has no meaningful
      // parallel analogue), and record metrics into a private registry.
      ExecutionContext task_context;
      if (parent != nullptr) {
        task_context.budgets() = parent->budgets();
        if (parent->has_deadline()) task_context.SetDeadline(parent->deadline());
      }
      ScopedContext context_scope(parent != nullptr ? &task_context : nullptr);
      obs::ScopedMetrics metrics_scope(&task_metrics[i]);
      alt.eval_stats.Reset();
      auto rows = evaluator.Evaluate(alt.datalog, &alt.eval_stats);
      alt.evaluated = rows.ok();
      if (!rows.ok()) statuses[i] = rows.status();
    });
  }
  ThreadPool pool(threads);
  pool.RunBatch(std::move(tasks));

  // Merge in alternative order so counter totals are deterministic.
  if (caller_metrics != nullptr) {
    for (const obs::MetricsRegistry& metrics : task_metrics) {
      caller_metrics->MergeFrom(metrics);
    }
  }
  obs::Count("profile.parallel_tasks", n);
  for (const sqo::Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return sqo::Status::Ok();
}

}  // namespace sqo::engine
