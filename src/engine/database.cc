#include "engine/database.h"

namespace sqo::engine {

sqo::Status Database::CreateKeyIndexes() {
  const odl::Schema& odl_schema = schema().schema;
  for (const odl::ClassInfo& cls : odl_schema.classes()) {
    // Keys are inherited: index the declaring class and every subclass
    // relation so key probes work at any level of the hierarchy.
    const odl::ClassInfo* cur = &cls;
    while (cur != nullptr) {
      for (const std::string& key : cur->keys) {
        SQO_RETURN_IF_ERROR(
            store_.CreateIndex(schema().RelationFor(cls.name), key));
      }
      cur = cur->super.empty() ? nullptr : odl_schema.FindClass(cur->super);
    }
  }
  return sqo::Status::Ok();
}

sqo::Result<std::vector<std::vector<sqo::Value>>> Database::Run(
    const datalog::Query& query, EvalStats* stats, EvalOptions options) const {
  Evaluator evaluator(&store_, options);
  return evaluator.Evaluate(query, stats);
}

sqo::Status Database::ProfileAlternatives(core::PipelineResult* result,
                                          EvalOptions options) const {
  if (result == nullptr || result->contradiction) return sqo::Status::Ok();
  sqo::Status first_error = sqo::Status::Ok();
  Evaluator evaluator(&store_, options);
  for (core::Alternative& alt : result->alternatives) {
    alt.eval_stats.Reset();
    auto rows = evaluator.Evaluate(alt.datalog, &alt.eval_stats);
    alt.evaluated = rows.ok();
    if (!rows.ok() && first_error.ok()) first_error = rows.status();
  }
  return first_error;
}

}  // namespace sqo::engine
