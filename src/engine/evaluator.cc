#include "engine/evaluator.h"

#include <chrono>

#include "engine/batch_evaluator.h"
#include <functional>
#include <map>
#include <set>
#include <unordered_set>

#include "common/context.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqo::engine {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Query;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

namespace {

/// Variable bindings with a trail for chronological backtracking.
class Env {
 public:
  const sqo::Value* Lookup(const std::string& var) const {
    auto it = bindings_.find(var);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  void Bind(const std::string& var, sqo::Value value) {
    bindings_.emplace(var, std::move(value));
    trail_.push_back(var);
  }

  size_t Mark() const { return trail_.size(); }

  void Rollback(size_t mark) {
    while (trail_.size() > mark) {
      bindings_.erase(trail_.back());
      trail_.pop_back();
    }
  }

 private:
  std::map<std::string, sqo::Value> bindings_;
  std::vector<std::string> trail_;
};

/// Resolved view of a term: a concrete value, or unbound.
const sqo::Value* Resolve(const Term& t, const Env& env, sqo::Value* storage) {
  if (t.is_constant()) {
    *storage = t.constant();
    return storage;
  }
  return env.Lookup(t.var_name());
}

/// Structural hashing/equality for result tuples, so DISTINCT dedup works
/// on the values themselves rather than on a stringified key (which could
/// collide when a value's text contains the former separator byte).
struct TupleHash {
  size_t operator()(const std::vector<sqo::Value>& t) const {
    size_t h = 0xcbf29ce484222325ull;
    for (const sqo::Value& v : t) h = h * 1099511628211ull + v.Hash();
    return h;
  }
};
struct TupleEq {
  bool operator()(const std::vector<sqo::Value>& a,
                  const std::vector<sqo::Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

/// Accumulates inclusive wall time into a profile node; null-safe no-op
/// when profiling is off.
class NodeTimer {
 public:
  explicit NodeTimer(obs::ProfileNode* node) : node_(node) {
    if (node_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~NodeTimer() {
    if (node_ != nullptr) {
      node_->total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
    }
  }

  NodeTimer(const NodeTimer&) = delete;
  NodeTimer& operator=(const NodeTimer&) = delete;

 private:
  obs::ProfileNode* node_;
  std::chrono::steady_clock::time_point start_;
};

/// Labels a node's operator kind on first execution (later invocations of
/// the same plan step keep the first label; the access path of a fixed
/// plan step is stable across bindings in practice).
void LabelNode(obs::ProfileNode* node, const char* op,
               const std::string& relation, bool index_used = false) {
  if (node == nullptr || !node->op.empty()) return;
  node->op = op;
  node->relation = relation;
  node->index_used = index_used;
}

class Execution {
 public:
  Execution(const ObjectStore& store, const Query& query,
            const EvalOptions& options, EvalStats& stats,
            obs::QueryProfile* profile = nullptr, const Plan* plan = nullptr)
      : store_(store), query_(query), options_(options), stats_(stats),
        profile_(profile), plan_(plan) {
    for (const Term& t : query.head_args) {
      if (t.is_variable()) var_occurrences_[t.var_name()] += 2;
    }
    for (const Literal& lit : query.body) {
      std::vector<std::string> vars;
      lit.atom.CollectVariables(&vars);
      for (const std::string& v : vars) ++var_occurrences_[v];
    }
  }

  sqo::Status Run(const std::vector<size_t>& order,
                  std::vector<std::vector<sqo::Value>>* out) {
    order_ = &order;
    out_ = out;
    if (profile_ != nullptr) SetUpProfile();
    // Selection pushdown: pre-bind variables equated to constants so index
    // probes and OID lookups see them from the start; the equality literal
    // itself then passes trivially.
    for (const Literal& lit : query_.body) {
      if (!lit.positive || !lit.atom.is_comparison() ||
          lit.atom.op() != CmpOp::kEq) {
        continue;
      }
      const Term& l = lit.atom.lhs();
      const Term& r = lit.atom.rhs();
      if (l.is_variable() && r.is_constant() &&
          env_.Lookup(l.var_name()) == nullptr) {
        env_.Bind(l.var_name(), r.constant());
      } else if (r.is_variable() && l.is_constant() &&
                 env_.Lookup(r.var_name()) == nullptr) {
        env_.Bind(r.var_name(), l.constant());
      }
    }
    return Step(0);
  }

 private:
  /// One profile node per plan position (relation pre-filled from the
  /// literal, operator labeled on first execution) plus the final emit
  /// node. The left-deep pipeline links up lazily: a node's parent is the
  /// node that first passed it a binding.
  void SetUpProfile() {
    profile_->nodes.clear();
    node_of_.assign(order_->size(), -1);
    for (size_t k = 0; k < order_->size(); ++k) {
      obs::ProfileNode node;
      node.id = static_cast<int>(profile_->nodes.size());
      node.literal_index = static_cast<int>((*order_)[k]);
      const Literal& lit = query_.body[(*order_)[k]];
      if (lit.atom.is_comparison()) {
        node.relation = lit.atom.ToString();
      } else {
        node.relation =
            (lit.positive ? "" : "¬") + lit.atom.predicate();
      }
      if (plan_ != nullptr && k < plan_->steps.size()) {
        node.detail = plan_->steps[k];
      }
      if (plan_ != nullptr && k < plan_->est_rows.size()) {
        node.est_rows = plan_->est_rows[k];
      }
      node_of_[k] = node.id;
      profile_->nodes.push_back(std::move(node));
    }
    obs::ProfileNode emit;
    emit.id = static_cast<int>(profile_->nodes.size());
    emit.op = "emit";
    emit.relation = options_.distinct ? "distinct" : "all";
    emit_node_ = emit.id;
    profile_->nodes.push_back(std::move(emit));
  }

  obs::ProfileNode* NodeFor(size_t k) {
    if (profile_ == nullptr) return nullptr;
    return &profile_->nodes[node_of_[k]];
  }

  /// Records one binding entering plan position `k` (and wires the node's
  /// parent on first arrival). Returns the node for timing/labeling.
  obs::ProfileNode* EnterNode(size_t k) {
    obs::ProfileNode* node = NodeFor(k);
    if (node != nullptr) {
      if (node->rows_in == 0 && node->parent < 0 && last_caller_ != node->id) {
        node->parent = last_caller_;
      }
      ++node->rows_in;
    }
    return node;
  }

  /// Position `k` passes the current binding downstream: count it as a
  /// row out and continue with the next plan position.
  sqo::Status Advance(size_t k) {
    if (obs::ProfileNode* node = NodeFor(k)) {
      ++node->rows_out;
      last_caller_ = node->id;
    }
    return Step(k + 1);
  }

  /// Unifies `atom`'s arguments against `row`; returns false on mismatch.
  bool UnifyRow(const Atom& atom, const ObjectStore::Row& row) {
    for (size_t i = 0; i < atom.arity(); ++i) {
      sqo::Value tmp;
      const sqo::Value* bound = Resolve(atom.args()[i], env_, &tmp);
      if (bound != nullptr) {
        ++stats_.comparisons;
        if (!bound->Equals(row[i])) return false;
      } else {
        env_.Bind(atom.args()[i].var_name(), row[i]);
      }
    }
    return true;
  }

  bool UnifyOidPair(const Atom& atom, sqo::Oid src, sqo::Oid dst) {
    sqo::Value pair[2] = {sqo::Value::FromOid(src), sqo::Value::FromOid(dst)};
    for (size_t i = 0; i < 2; ++i) {
      sqo::Value tmp;
      const sqo::Value* bound = Resolve(atom.args()[i], env_, &tmp);
      if (bound != nullptr) {
        ++stats_.comparisons;
        if (!bound->Equals(pair[i])) return false;
      } else {
        env_.Bind(atom.args()[i].var_name(), pair[i]);
      }
    }
    return true;
  }

  /// Existence check for a (possibly partially bound) atom; unbound
  /// variables act as wildcards and are never bound.
  sqo::Result<bool> Exists(const Atom& atom, const RelationSignature& sig) {
    auto matches_row = [&](const ObjectStore::Row& row) {
      for (size_t i = 0; i < atom.arity(); ++i) {
        sqo::Value tmp;
        const sqo::Value* bound = Resolve(atom.args()[i], env_, &tmp);
        if (bound != nullptr) {
          ++stats_.comparisons;
          if (!bound->Equals(row[i])) return false;
        }
      }
      return true;
    };
    switch (sig.kind) {
      case RelationKind::kClass:
      case RelationKind::kStructure: {
        sqo::Value tmp;
        const sqo::Value* oid = Resolve(atom.args()[0], env_, &tmp);
        if (oid != nullptr) {
          if (oid->kind() != sqo::ValueKind::kOid) return false;
          bool attrs_bound = false;
          for (size_t i = 1; i < atom.arity() && !attrs_bound; ++i) {
            sqo::Value atmp;
            attrs_bound = Resolve(atom.args()[i], env_, &atmp) != nullptr;
          }
          if (!attrs_bound) {
            // Pure membership test: no object fetch needed.
            return store_.IsMember(sig.name, oid->AsOid());
          }
          auto row = store_.RowAs(sig.name, oid->AsOid());
          if (!row.has_value()) return false;
          ++stats_.objects_fetched;
          return matches_row(*row);
        }
        ++stats_.extent_scans;
        for (sqo::Oid candidate : store_.Extent(sig.name)) {
          auto row = store_.RowAs(sig.name, candidate);
          ++stats_.objects_fetched;
          if (matches_row(*row)) return true;
        }
        return false;
      }
      case RelationKind::kRelationship:
      case RelationKind::kAsr: {
        sqo::Value stmp, dtmp;
        const sqo::Value* src = Resolve(atom.args()[0], env_, &stmp);
        const sqo::Value* dst = Resolve(atom.args()[1], env_, &dtmp);
        if (src != nullptr && src->kind() != sqo::ValueKind::kOid) return false;
        if (dst != nullptr && dst->kind() != sqo::ValueKind::kOid) return false;
        if (src != nullptr) {
          const auto& nbrs = store_.Neighbors(sig.name, src->AsOid());
          stats_.relationship_traversals += nbrs.size();
          if (dst == nullptr) return !nbrs.empty();
          for (sqo::Oid n : nbrs) {
            if (n == dst->AsOid()) return true;
          }
          return false;
        }
        if (dst != nullptr) {
          const auto& nbrs = store_.ReverseNeighbors(sig.name, dst->AsOid());
          stats_.relationship_traversals += nbrs.size();
          return !nbrs.empty();
        }
        return store_.PairCount(sig.name) > 0;
      }
      case RelationKind::kMethod: {
        std::vector<sqo::Value> args;
        sqo::Value rtmp;
        const sqo::Value* receiver = Resolve(atom.args()[0], env_, &rtmp);
        if (receiver == nullptr || receiver->kind() != sqo::ValueKind::kOid) {
          return sqo::UnsupportedError(
              "negated method atom requires a bound receiver");
        }
        for (size_t i = 1; i + 1 < atom.arity(); ++i) {
          sqo::Value tmp;
          const sqo::Value* arg = Resolve(atom.args()[i], env_, &tmp);
          if (arg == nullptr) {
            return sqo::UnsupportedError(
                "negated method atom requires bound arguments");
          }
          args.push_back(*arg);
        }
        ++stats_.method_invocations;
        SQO_ASSIGN_OR_RETURN(sqo::Value result, store_.InvokeMethod(
                                                    sig.name,
                                                    receiver->AsOid(), args));
        sqo::Value vtmp;
        const sqo::Value* expected = Resolve(atom.args().back(), env_, &vtmp);
        if (expected == nullptr) return true;  // some result always exists
        ++stats_.comparisons;
        return expected->Equals(result);
      }
    }
    return false;
  }

  /// Finds "membership guards" downstream of plan position `k`: negated
  /// class/structure literals over the scan variable whose attribute
  /// arguments are pure wildcards. These evaluate as cheap extent-
  /// membership pre-filters during the scan — the paper's §5.2 plan that
  /// "first identifies objects in Person but not in Faculty, then
  /// retrieves only those instances". Returns (plan position, relation).
  std::vector<std::pair<size_t, std::string>> FindGuards(
      size_t k, const std::string& scan_var) const {
    std::vector<std::pair<size_t, std::string>> guards;
    for (size_t j = k + 1; j < order_->size(); ++j) {
      const Literal& lit = query_.body[(*order_)[j]];
      if (lit.positive || !lit.atom.is_predicate() || lit.atom.args().empty()) {
        continue;
      }
      const RelationSignature* sig =
          store_.schema().catalog.Find(lit.atom.predicate());
      if (sig == nullptr || (sig->kind != RelationKind::kClass &&
                             sig->kind != RelationKind::kStructure)) {
        continue;
      }
      const Term& oid = lit.atom.args()[0];
      if (!oid.is_variable() || oid.var_name() != scan_var) continue;
      bool wildcards = true;
      for (size_t ai = 1; ai < lit.atom.arity(); ++ai) {
        const Term& t = lit.atom.args()[ai];
        auto occ = t.is_variable() ? var_occurrences_.find(t.var_name())
                                   : var_occurrences_.end();
        if (!t.is_variable() || occ == var_occurrences_.end() ||
            occ->second != 1) {
          wildcards = false;
          break;
        }
      }
      if (wildcards) guards.emplace_back(j, sig->name);
    }
    return guards;
  }

  bool PassesGuards(const std::vector<std::pair<size_t, std::string>>& guards,
                    sqo::Oid oid) {
    for (const auto& [pos, rel] : guards) {
      ++stats_.negation_checks;
      obs::ProfileNode* guard_node = NodeFor(pos);
      if (guard_node != nullptr) ++guard_node->rows_in;
      if (store_.IsMember(rel, oid)) return false;
      if (guard_node != nullptr) ++guard_node->rows_out;
    }
    return true;
  }

  sqo::Status Step(size_t k) {
    // Every join step is a budget unit; the charge also polls the deadline
    // on a stride, so a pathological join order cannot run unbounded.
    if (ExecutionContext* governance = CurrentContext()) {
      SQO_RETURN_IF_ERROR(governance->ChargeEvalJoins());
    }
    if (k == order_->size()) return EmitTuple();
    if (consumed_.count(k) > 0) return Step(k + 1);
    obs::ProfileNode* node = EnterNode(k);
    NodeTimer node_timer(node);
    const Literal& lit = query_.body[(*order_)[k]];
    const Atom& atom = lit.atom;

    if (atom.is_comparison()) {
      LabelNode(node, "filter", atom.ToString());
      sqo::Value ltmp, rtmp;
      const sqo::Value* lhs = Resolve(atom.lhs(), env_, &ltmp);
      const sqo::Value* rhs = Resolve(atom.rhs(), env_, &rtmp);
      if (lhs == nullptr || rhs == nullptr) {
        return sqo::InvalidArgumentError(
            "comparison over unbound variables: " + atom.ToString() +
            " (unsafe query)");
      }
      ++stats_.comparisons;
      bool pass;
      if (atom.op() == CmpOp::kEq || atom.op() == CmpOp::kNe) {
        pass = datalog::EvalCmp(atom.op(), lhs->Equals(*rhs) ? 0 : 1);
      } else {
        auto cmp = lhs->Compare(*rhs);
        if (!cmp.has_value()) {
          return sqo::InvalidArgumentError("unorderable comparison: " +
                                           atom.ToString());
        }
        pass = datalog::EvalCmp(atom.op(), *cmp);
      }
      if (!pass) return sqo::Status::Ok();
      return Advance(k);
    }

    const RelationSignature* sig = store_.schema().catalog.Find(atom.predicate());
    if (sig == nullptr || sig->arity() != atom.arity()) {
      return sqo::NotFoundError("unknown relation in query: " + atom.ToString());
    }

    if (!lit.positive) {
      LabelNode(node, "anti-join", "¬" + sig->name);
      ++stats_.negation_checks;
      SQO_ASSIGN_OR_RETURN(bool exists, Exists(atom, *sig));
      if (exists) return sqo::Status::Ok();
      return Advance(k);
    }

    switch (sig->kind) {
      case RelationKind::kClass:
      case RelationKind::kStructure: {
        sqo::Value tmp;
        const sqo::Value* oid = Resolve(atom.args()[0], env_, &tmp);
        if (oid != nullptr) {
          LabelNode(node, "oid-lookup", sig->name);
          if (oid->kind() != sqo::ValueKind::kOid) return sqo::Status::Ok();
          auto row = store_.RowAs(sig->name, oid->AsOid());
          if (!row.has_value()) return sqo::Status::Ok();
          ++stats_.objects_fetched;
          size_t mark = env_.Mark();
          if (UnifyRow(atom, *row)) SQO_RETURN_IF_ERROR(Advance(k));
          env_.Rollback(mark);
          return sqo::Status::Ok();
        }
        // Membership guards let the scan skip excluded objects before
        // fetching them (§5.2).
        std::vector<std::pair<size_t, std::string>> guards =
            FindGuards(k, atom.args()[0].var_name());
        for (const auto& [pos, rel] : guards) {
          consumed_.insert(pos);
          // Guards report under the scan that consumes them, not in the
          // pipeline chain.
          if (obs::ProfileNode* guard_node = NodeFor(pos);
              guard_node != nullptr && guard_node->op.empty()) {
            guard_node->op = "guard";
            guard_node->parent = node != nullptr ? node->id : -1;
          }
        }
        auto release_guards = [&]() {
          for (const auto& [pos, rel] : guards) consumed_.erase(pos);
        };
        // Joins every candidate OID that passes the guards and unifies.
        auto probe_candidates =
            [&](const std::vector<sqo::Oid>& oids) -> sqo::Status {
          for (sqo::Oid candidate : oids) {
            if (!PassesGuards(guards, candidate)) continue;
            auto row = store_.RowAs(sig->name, candidate);
            ++stats_.objects_fetched;
            size_t mark = env_.Mark();
            if (UnifyRow(atom, *row)) {
              sqo::Status status = Advance(k);
              if (!status.ok()) return status;
            }
            env_.Rollback(mark);
          }
          return sqo::Status::Ok();
        };
        // Indexed access on the first bound, indexed attribute.
        for (size_t i = 1; i < atom.arity(); ++i) {
          sqo::Value vtmp;
          const sqo::Value* v = Resolve(atom.args()[i], env_, &vtmp);
          if (v == nullptr || !store_.HasIndex(sig->name, i)) continue;
          LabelNode(node, "index-probe", sig->name + "." + sig->attributes[i],
                    /*index_used=*/true);
          ++stats_.index_probes;
          obs::Count("index.probes");
          const std::vector<sqo::Oid>* oids = store_.IndexLookup(sig->name, i, *v);
          sqo::Status status =
              oids != nullptr ? probe_candidates(*oids) : sqo::Status::Ok();
          release_guards();
          return status;
        }
        // Lazily indexed access: an equality-bound attribute with no
        // explicit index still probes a hash table — built by the store on
        // first use and dropped on mutation — instead of scanning the
        // extent.
        if (options_.auto_index) {
          for (size_t i = 1; i < atom.arity(); ++i) {
            sqo::Value vtmp;
            const sqo::Value* v = Resolve(atom.args()[i], env_, &vtmp);
            if (v == nullptr) continue;
            bool indexed = false;
            const std::vector<sqo::Oid>* oids = store_.LazyIndexLookup(
                sig->name, i, *v, options_.auto_index_min_extent, &indexed);
            if (!indexed) continue;  // extent under threshold: scan instead
            LabelNode(node, "lazy-index-probe",
                      sig->name + "." + sig->attributes[i],
                      /*index_used=*/true);
            ++stats_.index_probes;
            obs::Count("index.probes");
            sqo::Status status =
                oids != nullptr ? probe_candidates(*oids) : sqo::Status::Ok();
            release_guards();
            return status;
          }
        }
        // Extent scan.
        LabelNode(node, "extent-scan", sig->name);
        SQO_FAILPOINT("eval.scan");
        ++stats_.extent_scans;
        sqo::Status status = probe_candidates(store_.Extent(sig->name));
        release_guards();
        return status;
      }
      case RelationKind::kRelationship:
      case RelationKind::kAsr: {
        sqo::Value stmp, dtmp;
        const sqo::Value* src = Resolve(atom.args()[0], env_, &stmp);
        const sqo::Value* dst = Resolve(atom.args()[1], env_, &dtmp);
        if (src != nullptr && src->kind() != sqo::ValueKind::kOid) {
          return sqo::Status::Ok();
        }
        if (dst != nullptr && dst->kind() != sqo::ValueKind::kOid) {
          return sqo::Status::Ok();
        }
        if (src != nullptr) {
          LabelNode(node, "traverse", sig->name);
          const auto& nbrs = store_.Neighbors(sig->name, src->AsOid());
          stats_.relationship_traversals += nbrs.size();
          for (sqo::Oid n : nbrs) {
            size_t mark = env_.Mark();
            if (UnifyOidPair(atom, src->AsOid(), n)) {
              SQO_RETURN_IF_ERROR(Advance(k));
            }
            env_.Rollback(mark);
          }
          return sqo::Status::Ok();
        }
        if (dst != nullptr) {
          LabelNode(node, "reverse-traverse", sig->name);
          const auto& nbrs = store_.ReverseNeighbors(sig->name, dst->AsOid());
          stats_.relationship_traversals += nbrs.size();
          for (sqo::Oid n : nbrs) {
            size_t mark = env_.Mark();
            if (UnifyOidPair(atom, n, dst->AsOid())) {
              SQO_RETURN_IF_ERROR(Advance(k));
            }
            env_.Rollback(mark);
          }
          return sqo::Status::Ok();
        }
        LabelNode(node, "pair-scan", sig->name);
        const auto& pairs = store_.Pairs(sig->name);
        stats_.relationship_traversals += pairs.size();
        for (const auto& [s, d] : pairs) {
          size_t mark = env_.Mark();
          if (UnifyOidPair(atom, s, d)) SQO_RETURN_IF_ERROR(Advance(k));
          env_.Rollback(mark);
        }
        return sqo::Status::Ok();
      }
      case RelationKind::kMethod: {
        LabelNode(node, "invoke", sig->name);
        sqo::Value rtmp;
        const sqo::Value* receiver = Resolve(atom.args()[0], env_, &rtmp);
        if (receiver == nullptr) {
          return sqo::InvalidArgumentError(
              "method atom with unbound receiver: " + atom.ToString());
        }
        if (receiver->kind() != sqo::ValueKind::kOid) return sqo::Status::Ok();
        std::vector<sqo::Value> args;
        for (size_t i = 1; i + 1 < atom.arity(); ++i) {
          sqo::Value atmp;
          const sqo::Value* arg = Resolve(atom.args()[i], env_, &atmp);
          if (arg == nullptr) {
            return sqo::InvalidArgumentError(
                "method atom with unbound argument: " + atom.ToString());
          }
          args.push_back(*arg);
        }
        ++stats_.method_invocations;
        SQO_ASSIGN_OR_RETURN(
            sqo::Value result,
            store_.InvokeMethod(sig->name, receiver->AsOid(), args));
        sqo::Value vtmp;
        const sqo::Value* expected = Resolve(atom.args().back(), env_, &vtmp);
        if (expected != nullptr) {
          ++stats_.comparisons;
          if (!expected->Equals(result)) return sqo::Status::Ok();
          return Advance(k);
        }
        size_t mark = env_.Mark();
        env_.Bind(atom.args().back().var_name(), result);
        SQO_RETURN_IF_ERROR(Advance(k));
        env_.Rollback(mark);
        return sqo::Status::Ok();
      }
    }
    return sqo::Status::Ok();
  }

  sqo::Status EmitTuple() {
    obs::ProfileNode* emit = nullptr;
    if (profile_ != nullptr && emit_node_ >= 0) {
      emit = &profile_->nodes[emit_node_];
      if (emit->rows_in == 0 && emit->parent < 0) emit->parent = last_caller_;
      ++emit->rows_in;
    }
    NodeTimer emit_timer(emit);
    if (ExecutionContext* governance = CurrentContext()) {
      SQO_RETURN_IF_ERROR(governance->ChargeEvalRows());
    }
    std::vector<sqo::Value> tuple;
    tuple.reserve(query_.head_args.size());
    for (const Term& t : query_.head_args) {
      sqo::Value tmp;
      const sqo::Value* v = Resolve(t, env_, &tmp);
      if (v == nullptr) {
        return sqo::InvalidArgumentError(
            "projected variable never bound: " + t.ToString());
      }
      tuple.push_back(*v);
    }
    ++stats_.tuples_emitted;
    if (options_.max_tuples != 0 && stats_.tuples_emitted > options_.max_tuples) {
      return sqo::ResourceExhaustedError("result limit exceeded");
    }
    if (options_.distinct) {
      if (!dedup_.insert(tuple).second) return sqo::Status::Ok();
    }
    ++stats_.results;
    if (emit != nullptr) ++emit->rows_out;
    out_->push_back(std::move(tuple));
    return sqo::Status::Ok();
  }

  const ObjectStore& store_;
  const Query& query_;
  const EvalOptions& options_;
  EvalStats& stats_;
  Env env_;
  const std::vector<size_t>* order_ = nullptr;
  std::vector<std::vector<sqo::Value>>* out_ = nullptr;
  std::unordered_set<std::vector<sqo::Value>, TupleHash, TupleEq> dedup_;
  std::map<std::string, int> var_occurrences_;
  std::set<size_t> consumed_;

  // EXPLAIN ANALYZE state (all inert when profile_ is null).
  obs::QueryProfile* profile_;
  const Plan* plan_;
  std::vector<int> node_of_;  // plan position -> profile node index
  int emit_node_ = -1;
  int last_caller_ = -1;  // node that last passed a binding downstream
};

}  // namespace

sqo::Result<std::vector<std::vector<sqo::Value>>> Evaluator::Evaluate(
    const Query& query, EvalStats* stats, const std::vector<size_t>* order,
    obs::QueryProfile* profile) const {
  obs::Span span("eval.evaluate");
  obs::ScopedTimer timer("eval.evaluate");
  SQO_FAILPOINT("eval.evaluate");
  SQO_RETURN_IF_ERROR(CheckGovernance("eval.evaluate"));
  const auto profile_start = std::chrono::steady_clock::now();
  // Work into a local so only *this* evaluation's counters reach the
  // metrics registry even when the caller accumulates into `stats`.
  EvalStats local;
  Plan plan;
  const Plan* plan_ptr = nullptr;
  std::vector<size_t> plan_order;
  if (order != nullptr) {
    plan_order = *order;
  } else {
    plan = PlanQuery(query, *store_, PlannerOptions{options_.batch});
    plan_order = plan.order;
    plan_ptr = &plan;
  }
  if (plan_order.size() != query.body.size()) {
    return sqo::InvalidArgumentError("evaluation order size mismatch");
  }
  // Finalizes the profile on every exit path so error returns still carry
  // whatever the execution recorded.
  auto finalize_profile = [&]() {
    if (profile == nullptr) return;
    profile->total_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - profile_start)
                            .count();
    if (plan_ptr != nullptr) {
      profile->planned_cost = plan_ptr->cost;
      profile->planned_rows = plan_ptr->cardinality;
    }
    profile->stats = local;
    profile->FinalizeSelfTimes();
  };
  std::vector<std::vector<sqo::Value>> out;
  {
    obs::Span exec_span("eval.execute");
    sqo::Status status;
    if (options_.batch &&
        PlanBenefitsFromBatching(*store_, query, plan_order, options_)) {
      status = ExecuteBatchPlan(*store_, query, options_, local, plan_order,
                                plan_ptr, profile, &out);
    } else {
      Execution exec(*store_, query, options_, local, profile, plan_ptr);
      status = exec.Run(plan_order, &out);
    }
    exec_span.Tag("rows", static_cast<uint64_t>(out.size()));
    if (!status.ok()) {
      if (stats != nullptr) *stats += local;
      finalize_profile();
      return status;
    }
  }
  span.Tag("rows", static_cast<uint64_t>(out.size()));
  if (stats != nullptr) *stats += local;
  finalize_profile();
  // The registry absorbs the per-evaluation counters alongside the
  // optimizer-side metrics.
  local.ExportTo(obs::CurrentMetrics());
  return out;
}

}  // namespace sqo::engine
