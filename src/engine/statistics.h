#ifndef SQO_ENGINE_STATISTICS_H_
#define SQO_ENGINE_STATISTICS_H_

#include <cstdint>
#include <string>

namespace sqo::engine {

/// Instrumentation counters for one query evaluation. These are the
/// quantities the paper's optimizations improve — object fetches, join
/// work, method invocations — and the numbers EXPERIMENTS.md reports.
struct EvalStats {
  uint64_t objects_fetched = 0;          // class/struct rows materialized
  uint64_t extent_scans = 0;             // full extent enumerations started
  uint64_t index_probes = 0;             // hash-index lookups
  uint64_t relationship_traversals = 0;  // relationship/ASR edges visited
  uint64_t method_invocations = 0;       // registered method calls
  uint64_t comparisons = 0;              // value comparisons performed
  uint64_t negation_checks = 0;          // anti-join existence probes
  uint64_t tuples_emitted = 0;           // result tuples before dedup
  uint64_t results = 0;                  // distinct result tuples

  void Reset() { *this = EvalStats(); }

  EvalStats& operator+=(const EvalStats& other);

  /// Single-line summary for logs and bench output.
  std::string ToString() const;
};

}  // namespace sqo::engine

#endif  // SQO_ENGINE_STATISTICS_H_
