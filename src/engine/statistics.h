#ifndef SQO_ENGINE_STATISTICS_H_
#define SQO_ENGINE_STATISTICS_H_

#include "obs/eval_stats.h"

namespace sqo::engine {

/// EvalStats moved to the observability layer (src/obs/eval_stats.h) so the
/// optimizer pipeline can carry per-alternative evaluation counters without
/// depending on the engine. This alias keeps existing engine-side code and
/// tests source-compatible.
using EvalStats = ::sqo::obs::EvalStats;

}  // namespace sqo::engine

#endif  // SQO_ENGINE_STATISTICS_H_
