#ifndef SQO_ENGINE_PLANNER_H_
#define SQO_ENGINE_PLANNER_H_

#include <string>
#include <vector>

#include "datalog/clause.h"
#include "engine/object_store.h"

namespace sqo::engine {

/// A greedy left-deep plan: the order in which the evaluator processes the
/// query's body literals, plus the cost/cardinality estimates that chose it.
struct Plan {
  /// Body literal indexes in execution order.
  std::vector<size_t> order;

  /// Estimated total work (rows touched; lower is better).
  double cost = 0.0;

  /// Estimated result cardinality.
  double cardinality = 1.0;

  /// Per-step description, for EXPLAIN-style output.
  std::vector<std::string> steps;

  /// Estimated cumulative cardinality after each step (parallel to
  /// `order`/`steps`) — the "est rows" column of EXPLAIN ANALYZE profiles.
  std::vector<double> est_rows;

  std::string ToString() const;
};

struct PlannerOptions {
  /// Price selections for the set-at-a-time batch evaluator: an
  /// equality-bound attribute with no explicit index becomes a hash
  /// build+probe join — one pass over the extent amortized across the
  /// input batch plus one probe per binding — instead of a per-binding
  /// extent scan. Off reproduces the tuple-at-a-time nested-loop prices.
  bool batch = false;
};

/// Plans a conjunctive DATALOG query against the store's statistics
/// (extent sizes, relationship fanouts, index availability). Greedy:
/// repeatedly pick the placeable literal with the lowest estimated
/// per-step cost, preferring filters as soon as their variables are bound.
///
/// Placement rules: comparisons need both sides bound; method atoms need
/// receiver and argument terms bound; negated atoms need every variable
/// they share with the rest of the query bound (their private variables
/// are anti-join wildcards).
Plan PlanQuery(const datalog::Query& query, const ObjectStore& store,
               const PlannerOptions& options);

inline Plan PlanQuery(const datalog::Query& query, const ObjectStore& store) {
  return PlanQuery(query, store, PlannerOptions{});
}

}  // namespace sqo::engine

#endif  // SQO_ENGINE_PLANNER_H_
