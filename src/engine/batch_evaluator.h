#ifndef SQO_ENGINE_BATCH_EVALUATOR_H_
#define SQO_ENGINE_BATCH_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "datalog/clause.h"
#include "engine/evaluator.h"
#include "engine/object_store.h"
#include "engine/planner.h"
#include "engine/statistics.h"
#include "obs/profile.h"

namespace sqo::engine {

/// Set-at-a-time executor behind `Evaluator::Evaluate` (the default,
/// `EvalOptions::batch`): each plan step consumes the entire batch of
/// bindings produced upstream and emits the next batch, so work that the
/// tuple-at-a-time engine repeats per binding is shared across the batch:
///
///  - an equality-bound attribute with no explicit index becomes a hash
///    build+probe join — one guarded pass over the extent builds the
///    table, then every binding probes it ("hash-join" in profiles);
///  - extent scans and pair scans with no bound terms run once and
///    cross-join their survivors with the batch;
///  - negated literals anti-join the whole batch in one operator pass.
///
/// Semantics mirror the tuple engine exactly: same plan, same result
/// tuples in the same order (input-major, candidate order preserved),
/// same governance charges (joins amortized per batch, rows per tuple),
/// and the same `QueryProfile` tree shape with per-batch rows_in/rows_out.
///
/// `order` must match `query.body.size()`; `plan` and `profile` may be
/// null. Returns the same error statuses as the tuple engine (unsafe
/// comparisons, unbound method terms, governance violations, ...).
sqo::Status ExecuteBatchPlan(const ObjectStore& store,
                             const datalog::Query& query,
                             const EvalOptions& options, EvalStats& stats,
                             const std::vector<size_t>& order, const Plan* plan,
                             obs::QueryProfile* profile,
                             std::vector<std::vector<sqo::Value>>* out);

/// Routing predicate for `Evaluator::Evaluate`: true iff some step past
/// the seed position uses a binding-independent access path the batch
/// engine amortizes — a transient hash join (bound attribute, no explicit
/// or adaptive index), a shared extent scan, or a shared pair scan. Plans
/// made purely of per-binding steps (oid lookups, index probes,
/// traversals, filters, anti-joins, method calls) gain nothing from
/// batching but pay its intermediate-batch materialization, so the
/// evaluator keeps them on the tuple pipeline even when
/// `EvalOptions::batch` is set.
bool PlanBenefitsFromBatching(const ObjectStore& store,
                              const datalog::Query& query,
                              const std::vector<size_t>& order,
                              const EvalOptions& options);

}  // namespace sqo::engine

#endif  // SQO_ENGINE_BATCH_EVALUATOR_H_
