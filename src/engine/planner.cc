#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/context.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace sqo::engine {

using datalog::Literal;
using datalog::Query;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

namespace {

constexpr double kEqSelectivity = 0.1;
constexpr double kIneqSelectivity = 0.5;
constexpr double kNegSelectivity = 0.8;
constexpr double kDefaultFanout = 4.0;

std::set<std::string> TermVars(const Literal& lit) {
  std::vector<std::string> v;
  lit.atom.CollectVariables(&v);
  return std::set<std::string>(v.begin(), v.end());
}

bool TermBound(const Term& t, const std::set<std::string>& bound) {
  return t.is_constant() || bound.count(t.var_name()) > 0;
}

/// Per-step estimate: expected rows produced per input binding (fanout)
/// and work per input binding (cost).
struct StepEstimate {
  bool placeable = false;
  double fanout = 1.0;
  double cost = 1.0;
  std::string description;
};

/// True if body literal `j` is a pure membership guard for `scan_var`: a
/// negated class/structure atom over that variable whose other arguments
/// occur nowhere else. Mirrors the evaluator's guard detection.
bool IsMembershipGuard(const Query& query, size_t j, const std::string& scan_var,
                       const ObjectStore& store, std::string* relation) {
  const Literal& lit = query.body[j];
  if (lit.positive || !lit.atom.is_predicate() || lit.atom.args().empty()) {
    return false;
  }
  const RelationSignature* sig = store.schema().catalog.Find(lit.atom.predicate());
  if (sig == nullptr || (sig->kind != RelationKind::kClass &&
                         sig->kind != RelationKind::kStructure)) {
    return false;
  }
  const Term& oid = lit.atom.args()[0];
  if (!oid.is_variable() || oid.var_name() != scan_var) return false;
  for (size_t ai = 1; ai < lit.atom.arity(); ++ai) {
    const Term& t = lit.atom.args()[ai];
    if (!t.is_variable()) return false;
    for (const Term& h : query.head_args) {
      if (h.is_variable() && h.var_name() == t.var_name()) return false;
    }
    for (size_t other = 0; other < query.body.size(); ++other) {
      if (other == j) continue;
      std::vector<std::string> vars;
      query.body[other].atom.CollectVariables(&vars);
      for (const std::string& v : vars) {
        if (v == t.var_name()) return false;
      }
    }
  }
  *relation = sig->name;
  return true;
}

StepEstimate EstimateLiteral(const Literal& lit, const Query& query, size_t index,
                             const std::set<std::string>& bound,
                             const ObjectStore& store,
                             const PlannerOptions& options, double card) {
  StepEstimate est;
  const auto& atom = lit.atom;

  if (atom.is_comparison()) {
    if (!TermBound(atom.lhs(), bound) || !TermBound(atom.rhs(), bound)) return est;
    est.placeable = true;
    est.cost = 0.01;
    if (atom.lhs() == atom.rhs()) {
      // Reflexive comparison: never filters (X = X), or always filters
      // (X != X, X < X).
      est.fanout = (atom.op() == datalog::CmpOp::kEq ||
                    atom.op() == datalog::CmpOp::kLe ||
                    atom.op() == datalog::CmpOp::kGe)
                       ? 1.0
                       : 0.0001;
    } else {
      est.fanout =
          atom.op() == datalog::CmpOp::kEq ? kEqSelectivity : kIneqSelectivity;
    }
    est.description = "filter " + atom.ToString();
    return est;
  }

  const RelationSignature* sig = store.schema().catalog.Find(atom.predicate());
  if (sig == nullptr || sig->arity() != atom.arity()) return est;

  if (!lit.positive) {
    // A pure membership guard is consumed by the scan that binds its
    // variable (see the evaluator); by itself it is nearly free.
    if (!atom.args().empty() && atom.args()[0].is_variable()) {
      std::string guard_rel;
      if (IsMembershipGuard(query, index, atom.args()[0].var_name(), store,
                            &guard_rel) &&
          bound.count(atom.args()[0].var_name()) > 0) {
        est.placeable = true;
        est.cost = 0.02;
        est.fanout = 1.0;  // the guarded scan already accounted for it
        est.description = "membership guard " + atom.ToString();
        return est;
      }
    }
    // Negation: every variable shared with the rest of the query (or the
    // head) must already be bound; private variables are wildcards.
    std::set<std::string> shared;
    for (const std::string& v : TermVars(lit)) {
      bool elsewhere = false;
      for (const Term& t : query.head_args) {
        if (t.is_variable() && t.var_name() == v) elsewhere = true;
      }
      for (size_t j = 0; j < query.body.size() && !elsewhere; ++j) {
        if (j == index) continue;
        if (TermVars(query.body[j]).count(v) > 0) elsewhere = true;
      }
      if (elsewhere) shared.insert(v);
    }
    for (const std::string& v : shared) {
      if (bound.count(v) == 0) return est;
    }
    est.placeable = true;
    est.cost = 1.0;
    est.fanout = kNegSelectivity;
    est.description = "anti-join " + atom.ToString();
    return est;
  }

  switch (sig->kind) {
    case RelationKind::kClass:
    case RelationKind::kStructure: {
      const double extent = std::max<double>(1.0, store.ExtentSize(sig->name));
      est.placeable = true;
      if (TermBound(atom.args()[0], bound)) {
        est.cost = 1.0;
        est.fanout = 1.0;
        est.description = "oid lookup " + sig->name;
      } else {
        // Indexed bound attribute?
        int indexed_pos = -1;
        size_t bound_attrs = 0;
        for (size_t i = 1; i < atom.arity(); ++i) {
          if (!TermBound(atom.args()[i], bound)) continue;
          ++bound_attrs;
          if (indexed_pos < 0 && store.HasIndex(sig->name, i)) {
            indexed_pos = static_cast<int>(i);
          }
        }
        // Membership guards shrink both the fetch cost and the output
        // cardinality of the scan (extent-difference evaluation, §5.2).
        double guard_sel = 1.0;
        size_t n_guards = 0;
        if (atom.args()[0].is_variable()) {
          for (size_t j = 0; j < query.body.size(); ++j) {
            if (j == index) continue;
            std::string guard_rel;
            if (IsMembershipGuard(query, j, atom.args()[0].var_name(), store,
                                  &guard_rel)) {
              ++n_guards;
              const double excluded = store.ExtentSize(guard_rel);
              guard_sel *= std::max(0.02, 1.0 - excluded / extent);
            }
          }
        }
        if (indexed_pos >= 0) {
          const double distinct = std::max<double>(
              1.0, store.IndexDistinct(sig->name, indexed_pos));
          est.cost = est.fanout =
              std::max(1.0, extent / distinct) * guard_sel +
              0.05 * n_guards;
          est.description = "index probe " + sig->name + "." +
                            sig->attributes[indexed_pos];
        } else if (options.batch && bound_attrs > 0) {
          // Batch hash join: the evaluator builds one hash table over the
          // extent (amortized across the whole input batch) and probes it
          // once per binding, so the per-binding work collapses from a
          // full scan to build-share + probe.
          est.cost = extent * guard_sel / std::max(1.0, card) + 1.0 +
                     0.05 * n_guards;
          est.fanout =
              extent * guard_sel * std::pow(kEqSelectivity, bound_attrs);
          est.description = "hash join " + sig->name;
          if (n_guards > 0) est.description += " (guarded)";
        } else {
          est.cost = extent * guard_sel + 0.05 * n_guards * extent;
          est.fanout =
              extent * guard_sel * std::pow(kEqSelectivity, bound_attrs);
          est.description = "extent scan " + sig->name;
          if (n_guards > 0) est.description += " (guarded)";
        }
      }
      // Residual bound attributes filter further (rough).
      return est;
    }
    case RelationKind::kRelationship:
    case RelationKind::kAsr: {
      const bool src_bound = TermBound(atom.args()[0], bound);
      const bool dst_bound = TermBound(atom.args()[1], bound);
      const double pairs = std::max<double>(1.0, store.PairCount(sig->name));
      est.placeable = true;
      if (src_bound && dst_bound) {
        est.cost = 1.0;
        est.fanout = kEqSelectivity;
        est.description = "edge check " + sig->name;
      } else if (src_bound) {
        double f = store.AvgFanout(sig->name);
        if (f <= 0) f = kDefaultFanout;
        est.cost = est.fanout = f;
        est.description = "traverse " + sig->name;
      } else if (dst_bound) {
        double f = store.AvgReverseFanout(sig->name);
        if (f <= 0) f = kDefaultFanout;
        est.cost = est.fanout = f;
        est.description = "reverse traverse " + sig->name;
      } else {
        est.cost = est.fanout = pairs;
        est.description = "pair scan " + sig->name;
      }
      return est;
    }
    case RelationKind::kMethod: {
      for (size_t i = 0; i + 1 < atom.arity(); ++i) {
        if (!TermBound(atom.args()[i], bound)) return est;
      }
      est.placeable = true;
      est.cost = 2.0;  // invocation weight
      est.fanout = TermBound(atom.args().back(), bound) ? kEqSelectivity : 1.0;
      est.description = "invoke " + sig->name;
      return est;
    }
  }
  return est;
}

}  // namespace

std::string Plan::ToString() const {
  std::string out = sqo::StrFormat("plan cost=%.1f card=%.1f\n", cost, cardinality);
  for (size_t i = 0; i < steps.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ". " + steps[i] + "\n";
  }
  return out;
}

Plan PlanQuery(const Query& query, const ObjectStore& store,
               const PlannerOptions& options) {
  obs::Span span("eval.plan");
  // PlanQuery returns a plain Plan, so governance violations latch on the
  // current context and surface at the evaluator's boundary check.
  if (ExecutionContext* governance = CurrentContext()) {
    governance->LatchError(failpoint::Check("eval.plan"));
    governance->Check("eval.plan");
  }
  Plan plan;
  const size_t n = query.body.size();
  std::vector<bool> placed(n, false);
  std::set<std::string> bound;
  // Mirror the evaluator's selection pushdown: variables equated to
  // constants are bound from the start.
  for (const Literal& lit : query.body) {
    if (!lit.positive || !lit.atom.is_comparison() ||
        lit.atom.op() != datalog::CmpOp::kEq) {
      continue;
    }
    if (lit.atom.lhs().is_variable() && lit.atom.rhs().is_constant()) {
      bound.insert(lit.atom.lhs().var_name());
    } else if (lit.atom.rhs().is_variable() && lit.atom.lhs().is_constant()) {
      bound.insert(lit.atom.rhs().var_name());
    }
  }
  double card = 1.0;

  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    StepEstimate best_est;
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      StepEstimate est =
          EstimateLiteral(query.body[i], query, i, bound, store, options, card);
      if (!est.placeable) continue;
      // Rank by the work this step adds now plus the growth it causes.
      const double score = card * est.cost + card * est.fanout;
      const double best_score =
          best < 0 ? 0 : card * best_est.cost + card * best_est.fanout;
      if (best < 0 || score < best_score) {
        best = static_cast<int>(i);
        best_est = est;
      }
    }
    if (best < 0) {
      // No placeable literal (e.g. a comparison over never-bound variables).
      // Fall back to textual order for the remainder; the evaluator will
      // surface a proper error.
      for (size_t i = 0; i < n; ++i) {
        if (!placed[i]) {
          plan.order.push_back(i);
          plan.steps.push_back("unplaceable " + query.body[i].ToString());
          plan.est_rows.push_back(card);
          placed[i] = true;
        }
      }
      break;
    }
    placed[best] = true;
    plan.order.push_back(static_cast<size_t>(best));
    plan.cost += card * best_est.cost;
    card = std::max(card * best_est.fanout, 0.001);
    plan.steps.push_back(best_est.description);
    plan.est_rows.push_back(card);
    if (query.body[best].positive) {
      for (const std::string& v : TermVars(query.body[best])) bound.insert(v);
    }
  }
  plan.cardinality = card;
  return plan;
}

}  // namespace sqo::engine
