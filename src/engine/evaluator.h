#ifndef SQO_ENGINE_EVALUATOR_H_
#define SQO_ENGINE_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "datalog/clause.h"
#include "engine/object_store.h"
#include "engine/planner.h"
#include "engine/statistics.h"
#include "obs/profile.h"

namespace sqo::engine {

struct EvalOptions {
  /// Set-at-a-time batch execution (the default): each plan step consumes
  /// the whole batch of bindings produced upstream, so unindexed equality
  /// selections become hash build+probe joins and extent/pair scans are
  /// shared across the batch instead of repeated per binding. Off falls
  /// back to the original tuple-at-a-time engine — kept for row-for-row
  /// differential comparison (both modes produce identical result sets in
  /// the same order for the same plan).
  bool batch = true;

  /// Deduplicate result tuples (DATALOG set semantics). OQL `select`
  /// without `distinct` would use false.
  bool distinct = true;

  /// Safety valve for runaway joins in tests/benches (0 = unlimited).
  uint64_t max_tuples = 0;

  /// Probe the store's lazily built secondary hash indexes
  /// (ObjectStore::LazyIndexLookup) for equality-bound attributes that have
  /// no explicit index, instead of scanning the full extent. Off switches
  /// every selection back to linear scans (the differential tests compare
  /// the two paths).
  bool auto_index = true;

  /// Extents smaller than this are scanned rather than auto-indexed — for
  /// a handful of rows the scan is cheaper than building the hash table.
  size_t auto_index_min_extent = 16;

  /// Worker threads for Database::ProfileAlternatives. 0 = one per
  /// hardware core (capped; see ThreadPool::DefaultSize), 1 = serial.
  /// Profiling also falls back to serial when a tracer is installed, so
  /// span parent/child ordering stays intact.
  size_t profile_threads = 0;
};

/// Evaluator for conjunctive DATALOG queries over an ObjectStore, ordered
/// by the greedy planner. Two execution engines share the entry point:
/// the default set-at-a-time batch engine (hash build+probe joins for
/// unindexed equality selections, shared scans, batch anti-joins) and the
/// tuple-at-a-time fallback (`EvalOptions::batch = false`; index
/// nested-loop joins). Both fill `EvalStats` with the instrumentation
/// counters the benchmarks report.
class Evaluator {
 public:
  explicit Evaluator(const ObjectStore* store, EvalOptions options = {})
      : store_(store), options_(options) {}

  /// Evaluates `query`, returning the result tuples (one row per head-arg
  /// vector). A custom literal order may be supplied; otherwise the
  /// planner chooses. `stats` may be null.
  ///
  /// When `profile` is non-null the evaluator additionally builds an
  /// operator-level profile tree (EXPLAIN ANALYZE): one node per plan
  /// step with rows in/out, per-operator timing, and the planner's
  /// estimates when the planner chose the order. Profiling costs two
  /// clock reads per join step, so it is opt-in per evaluation.
  sqo::Result<std::vector<std::vector<sqo::Value>>> Evaluate(
      const datalog::Query& query, EvalStats* stats,
      const std::vector<size_t>* order = nullptr,
      obs::QueryProfile* profile = nullptr) const;

 private:
  const ObjectStore* store_;
  EvalOptions options_;
};

}  // namespace sqo::engine

#endif  // SQO_ENGINE_EVALUATOR_H_
