#ifndef SQO_ENGINE_DATABASE_H_
#define SQO_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/evaluator.h"
#include "engine/object_store.h"
#include "sqo/pipeline.h"

namespace sqo::storage {
class StorageManager;
struct OpenOptions;
struct RecoveryInfo;
}  // namespace sqo::storage

namespace sqo::engine {

/// Convenience facade bundling an ObjectStore with evaluation: the
/// "database" a user of the library populates and queries. Also creates
/// hash indexes for every declared ODL key (the physical structure §5.3's
/// optimization assumes).
class Database {
 public:
  /// `schema` must outlive the database.
  explicit Database(const translate::TranslatedSchema* schema)
      : store_(schema) {}

  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }
  const translate::TranslatedSchema& schema() const { return store_.schema(); }

  /// Builds a hash index on every (class, key attribute) declared in the
  /// ODL schema. Call once (before or after loading; indexes are
  /// maintained incrementally afterwards).
  sqo::Status CreateKeyIndexes();

  /// Plans and evaluates a DATALOG query. `stats` may be null.
  sqo::Result<std::vector<std::vector<sqo::Value>>> Run(
      const datalog::Query& query, EvalStats* stats = nullptr,
      EvalOptions options = {}) const;

  /// Result of a profiled evaluation: the rows plus the EXPLAIN ANALYZE
  /// operator tree the evaluator recorded while producing them.
  struct ProfiledRun {
    std::vector<std::vector<sqo::Value>> rows;
    EvalStats stats;
    obs::QueryProfile profile;
  };

  /// Plans and evaluates `query` with operator-level profiling on: each
  /// plan step gets a ProfileNode with rows in/out, inclusive/self time,
  /// the planner's estimate, and whether an index served it. On error the
  /// partial profile is discarded with the rows.
  sqo::Result<ProfiledRun> ProfileQuery(const datalog::Query& query,
                                        EvalOptions options = {}) const;

  /// Evaluates every alternative of a pipeline result, filling each
  /// `Alternative::eval_stats` / `evaluated` — so shells and benches can
  /// report evaluator counters per alternative, not just per run. An
  /// alternative whose evaluation fails keeps `evaluated == false`; the
  /// first such error (by alternative index) is returned (after profiling
  /// the rest). Skipped for contradictory results (nothing to evaluate).
  ///
  /// Alternatives are profiled in parallel on a fixed-size pool
  /// (`options.profile_threads`; the store is only read). Each task gets
  /// its own ExecutionContext seeded from the caller's deadline and
  /// budgets and its own metrics registry; registries merge into the
  /// caller's in alternative order, so totals are deterministic and
  /// identical to a serial run.
  sqo::Status ProfileAlternatives(core::PipelineResult* result,
                                  EvalOptions options = {}) const;

  // --- Durability (implemented in src/storage/database_storage.cc; link
  // sqo_storage to use; calling without it is an unresolved symbol).

  /// Attaches crash-safe persistence rooted at `dir`: recovers the store
  /// from the newest valid snapshot + WAL (see storage::StorageManager),
  /// then logs every further mutation. On a fresh directory the current
  /// in-memory contents become the persisted baseline.
  sqo::Status Open(const std::string& dir,
                   const storage::OpenOptions& options);
  sqo::Status Open(const std::string& dir);

  /// Writes a snapshot and resets the log. No-op error if not open.
  sqo::Status Checkpoint();

  /// Detaches persistence (final checkpoint per the open options).
  sqo::Status CloseStorage();

  bool storage_attached() const { return storage_ != nullptr; }

  /// What the last Open() recovered; nullptr when storage is not attached.
  const storage::RecoveryInfo* recovery_info() const;

  /// The attached manager (health, WAL/group-commit stats for `\status`);
  /// nullptr when storage is not attached.
  storage::StorageManager* storage() const { return storage_.get(); }

 private:
  ObjectStore store_;
  std::shared_ptr<storage::StorageManager> storage_;
};

}  // namespace sqo::engine

#endif  // SQO_ENGINE_DATABASE_H_
