#include "engine/object_store.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/metrics.h"

namespace sqo::engine {

using datalog::RelationKind;
using datalog::RelationSignature;

namespace {
const std::vector<sqo::Oid>& EmptyOids() {
  static const std::vector<sqo::Oid> empty;
  return empty;
}
const std::vector<std::pair<sqo::Oid, sqo::Oid>>& EmptyPairs() {
  static const std::vector<std::pair<sqo::Oid, sqo::Oid>> empty;
  return empty;
}
}  // namespace

std::vector<std::string> ObjectStore::MemberRelations(
    const std::string& exact_relation) const {
  std::vector<std::string> out;
  const RelationSignature* sig = schema_->catalog.Find(exact_relation);
  if (sig == nullptr) return out;
  if (sig->kind == RelationKind::kStructure) {
    out.push_back(exact_relation);
    return out;
  }
  const odl::ClassInfo* cls = schema_->schema.FindClass(sig->owner);
  while (cls != nullptr) {
    out.push_back(schema_->RelationFor(cls->name));
    cls = cls->super.empty() ? nullptr : schema_->schema.FindClass(cls->super);
  }
  return out;
}

void ObjectStore::InstallRecord(sqo::Oid oid, const std::string& relation,
                                Row row) {
  ObjectRecord record;
  record.exact_relation = relation;
  record.row = std::move(row);
  const Row& stored = objects_.emplace(oid.raw(), std::move(record))
                          .first->second.row;

  const std::vector<std::string> members = MemberRelations(relation);
  for (const std::string& member : members) {
    extents_[member].push_back(oid);
    // Maintain any indexes on the member relation.
    auto idx_it = indexes_.find(member);
    if (idx_it != indexes_.end()) {
      for (auto& [pos, index] : idx_it->second) {
        if (pos < stored.size()) index[stored[pos]].push_back(oid);
      }
    }
  }
  LazyIndexInsert(members, stored, oid);
}

sqo::Result<sqo::Oid> ObjectStore::CreateInstance(
    const std::string& type_name, const std::map<std::string, sqo::Value>& attrs,
    bool is_struct) {
  const std::string relation = schema_->RelationFor(type_name);
  const RelationSignature* sig = schema_->catalog.Find(relation);
  if (sig == nullptr ||
      (is_struct && sig->kind != RelationKind::kStructure) ||
      (!is_struct && sig->kind != RelationKind::kClass)) {
    return sqo::NotFoundError("unknown " +
                              std::string(is_struct ? "struct" : "class") +
                              " '" + type_name + "'");
  }
  sqo::Oid oid(next_oid_++);
  Row row(sig->arity());
  row[0] = sqo::Value::FromOid(oid);
  for (const auto& [name, value] : attrs) {
    auto pos = sig->AttributeIndex(sqo::ToLower(name));
    if (!pos.has_value() || *pos == 0) {
      return sqo::InvalidArgumentError("type '" + type_name +
                                       "' has no attribute '" + name + "'");
    }
    row[*pos] = value;
  }
  if (listener_) {
    Mutation m;
    m.kind = Mutation::Kind::kCreate;
    m.oid = oid;
    m.relation = relation;
    m.row = row;
    pending_.push_back(std::move(m));
  }
  InstallRecord(oid, relation, std::move(row));
  SQO_RETURN_IF_ERROR(FlushMutations());
  return oid;
}

sqo::Result<sqo::Oid> ObjectStore::CreateObject(
    const std::string& class_name, const std::map<std::string, sqo::Value>& attrs) {
  return CreateInstance(class_name, attrs, /*is_struct=*/false);
}

sqo::Result<sqo::Oid> ObjectStore::CreateStruct(
    const std::string& struct_name, const std::map<std::string, sqo::Value>& fields) {
  return CreateInstance(struct_name, fields, /*is_struct=*/true);
}

sqo::Status ObjectStore::InsertPair(const std::string& rel, sqo::Oid src,
                                    sqo::Oid dst, bool enforce_cardinality,
                                    bool record) {
  const RelationSignature* sig = schema_->catalog.Find(rel);
  RelData& data = rels_[rel];
  if (data.pair_set.count({src.raw(), dst.raw()}) > 0) {
    return sqo::Status::Ok();  // already related
  }
  if (enforce_cardinality && sig != nullptr) {
    if (sig->functional_src_to_dst && data.fwd.count(src.raw()) > 0 &&
        !data.fwd.at(src.raw()).empty()) {
      return sqo::SemanticError("cardinality violation: '" + rel +
                                "' is to-one from its source");
    }
    if (sig->functional_dst_to_src && data.bwd.count(dst.raw()) > 0 &&
        !data.bwd.at(dst.raw()).empty()) {
      return sqo::SemanticError("cardinality violation: '" + rel +
                                "' is to-one from its target");
    }
  }
  data.pair_set.insert({src.raw(), dst.raw()});
  data.pairs.emplace_back(src, dst);
  data.fwd[src.raw()].push_back(dst);
  data.bwd[dst.raw()].push_back(src);
  if (record) {
    Mutation m;
    m.kind = Mutation::Kind::kInsertPair;
    m.relation = rel;
    m.src = src;
    m.dst = dst;
    Record(std::move(m));
  }
  // Pair data never feeds the attribute indexes, so they stay intact; the
  // new pair may extend materialized ASR paths, though.
  return MaintainAsrsOnInsert(rel, src, dst, record);
}

sqo::Status ObjectStore::Relate(const std::string& relationship, sqo::Oid src,
                                sqo::Oid dst) {
  const std::string rel = sqo::ToLower(relationship);
  const RelationSignature* sig = schema_->catalog.Find(rel);
  if (sig == nullptr || sig->kind != RelationKind::kRelationship) {
    return sqo::NotFoundError("unknown relationship '" + relationship + "'");
  }
  if (!IsMember(schema_->RelationFor(sig->owner), src)) {
    return sqo::SemanticError("Relate('" + rel + "'): source object is not a " +
                              sig->owner);
  }
  if (!IsMember(schema_->RelationFor(sig->target), dst)) {
    return sqo::SemanticError("Relate('" + rel + "'): target object is not a " +
                              sig->target);
  }
  sqo::Status status = InsertPair(rel, src, dst, /*enforce_cardinality=*/true);

  // Maintain the declared inverse.
  if (status.ok()) {
    const std::string inverse = InverseOf(rel, *sig);
    if (!inverse.empty()) {
      status = InsertPair(inverse, dst, src, /*enforce_cardinality=*/true);
    }
  }
  // Flush even on failure: whatever was applied in memory must reach the
  // log, or disk and memory diverge without a crash.
  const sqo::Status log_status = FlushMutations();
  return status.ok() ? log_status : status;
}

std::string ObjectStore::InverseOf(const std::string& rel,
                                   const RelationSignature& sig) {
  auto it = inverse_of_.find(rel);
  if (it != inverse_of_.end()) return it->second;
  const odl::ResolvedRelationship* decl =
      schema_->schema.FindRelationship(sig.owner, sig.display_name);
  std::string inverse = (decl != nullptr && !decl->inverse.empty())
                            ? sqo::ToLower(decl->inverse)
                            : "";
  inverse_of_[rel] = inverse;
  return inverse;
}

void ObjectStore::ErasePair(const std::string& rel, sqo::Oid src, sqo::Oid dst,
                            bool record) {
  auto it = rels_.find(rel);
  if (it == rels_.end()) return;
  RelData& data = it->second;
  if (data.pair_set.erase({src.raw(), dst.raw()}) == 0) return;
  if (record) {
    Mutation m;
    m.kind = Mutation::Kind::kErasePair;
    m.relation = rel;
    m.src = src;
    m.dst = dst;
    Record(std::move(m));
  }
  auto drop = [](std::vector<sqo::Oid>& v, sqo::Oid x) {
    v.erase(std::remove(v.begin(), v.end(), x), v.end());
  };
  data.pairs.erase(std::remove(data.pairs.begin(), data.pairs.end(),
                               std::make_pair(src, dst)),
                   data.pairs.end());
  auto fit = data.fwd.find(src.raw());
  if (fit != data.fwd.end()) drop(fit->second, dst);
  auto bit = data.bwd.find(dst.raw());
  if (bit != data.bwd.end()) drop(bit->second, src);
  // A removed path pair may invalidate derived ASR pairs whose only
  // witness it was — a counting problem we do not track, so the ASR is
  // marked for re-materialization instead.
  MarkAsrsStaleOnErase(rel);
}

sqo::Status ObjectStore::Unrelate(const std::string& relationship, sqo::Oid src,
                                  sqo::Oid dst) {
  const std::string rel = sqo::ToLower(relationship);
  const RelationSignature* sig = schema_->catalog.Find(rel);
  if (sig == nullptr || sig->kind != RelationKind::kRelationship) {
    return sqo::NotFoundError("unknown relationship '" + relationship + "'");
  }
  ErasePair(rel, src, dst);
  const std::string inverse = InverseOf(rel, *sig);
  if (!inverse.empty()) ErasePair(inverse, dst, src);
  return FlushMutations();
}

sqo::Status ObjectStore::UpdateRowPosition(sqo::Oid oid, size_t pos,
                                           sqo::Value value) {
  auto it = objects_.find(oid.raw());
  if (it == objects_.end()) {
    return sqo::NotFoundError("no object @" + std::to_string(oid.raw()));
  }
  ObjectRecord& record = it->second;
  if (pos == 0 || pos >= record.row.size()) {
    return sqo::InvalidArgumentError("attribute position out of range");
  }
  const sqo::Value old_value = record.row[pos];
  record.row[pos] = std::move(value);
  // Maintain indexes on every member relation covering this position.
  const std::vector<std::string> members =
      MemberRelations(record.exact_relation);
  for (const std::string& member : members) {
    auto idx_it = indexes_.find(member);
    if (idx_it == indexes_.end()) continue;
    auto pit = idx_it->second.find(pos);
    if (pit == idx_it->second.end()) continue;
    auto old_bucket = pit->second.find(old_value);
    if (old_bucket != pit->second.end()) {
      auto& oids = old_bucket->second;
      oids.erase(std::remove(oids.begin(), oids.end(), oid), oids.end());
      if (oids.empty()) pit->second.erase(old_bucket);
    }
    pit->second[record.row[pos]].push_back(oid);
  }
  LazyIndexUpdate(members, pos, old_value, record.row[pos], oid);
  return sqo::Status::Ok();
}

sqo::Status ObjectStore::UpdateAttribute(sqo::Oid oid,
                                         const std::string& attribute,
                                         sqo::Value value) {
  auto it = objects_.find(oid.raw());
  if (it == objects_.end()) {
    return sqo::NotFoundError("no object @" + std::to_string(oid.raw()));
  }
  ObjectRecord& record = it->second;
  const RelationSignature* sig = schema_->catalog.Find(record.exact_relation);
  auto pos = sig->AttributeIndex(sqo::ToLower(attribute));
  if (!pos.has_value() || *pos == 0) {
    return sqo::InvalidArgumentError("type '" + sig->display_name +
                                     "' has no attribute '" + attribute + "'");
  }
  if (listener_) {
    Mutation m;
    m.kind = Mutation::Kind::kUpdate;
    m.oid = oid;
    m.relation = record.exact_relation;
    m.pos = *pos;
    m.value = value;
    pending_.push_back(std::move(m));
  }
  const sqo::Status status = UpdateRowPosition(oid, *pos, std::move(value));
  const sqo::Status log_status = FlushMutations();
  return status.ok() ? log_status : status;
}

sqo::Status ObjectStore::DeleteObjectImpl(sqo::Oid oid, bool record_mutations) {
  auto it = objects_.find(oid.raw());
  if (it == objects_.end()) {
    return sqo::NotFoundError("no object @" + std::to_string(oid.raw()));
  }
  const ObjectRecord record = std::move(it->second);

  // Drop relationship pairs touching the object.
  for (auto& [rel, data] : rels_) {
    std::vector<std::pair<sqo::Oid, sqo::Oid>> doomed;
    for (const auto& pair : data.pairs) {
      if (pair.first == oid || pair.second == oid) doomed.push_back(pair);
    }
    for (const auto& [src, dst] : doomed) {
      ErasePair(rel, src, dst, record_mutations);
    }
  }

  // Remove from extents and indexes.
  const std::vector<std::string> members =
      MemberRelations(record.exact_relation);
  for (const std::string& member : members) {
    auto ext_it = extents_.find(member);
    if (ext_it != extents_.end()) {
      auto& oids = ext_it->second;
      oids.erase(std::remove(oids.begin(), oids.end(), oid), oids.end());
    }
    auto idx_it = indexes_.find(member);
    if (idx_it == indexes_.end()) continue;
    for (auto& [pos, index] : idx_it->second) {
      if (pos >= record.row.size()) continue;
      auto bucket = index.find(record.row[pos]);
      if (bucket == index.end()) continue;
      auto& oids = bucket->second;
      oids.erase(std::remove(oids.begin(), oids.end(), oid), oids.end());
      if (oids.empty()) index.erase(bucket);
    }
  }
  LazyIndexErase(members, record.row, oid);

  objects_.erase(oid.raw());
  if (record_mutations) {
    Mutation m;
    m.kind = Mutation::Kind::kDelete;
    m.oid = oid;
    m.relation = record.exact_relation;
    Record(std::move(m));
  }
  return sqo::Status::Ok();
}

sqo::Status ObjectStore::DeleteObject(sqo::Oid oid) {
  const sqo::Status status = DeleteObjectImpl(oid, /*record_mutations=*/true);
  const sqo::Status log_status = FlushMutations();
  return status.ok() ? log_status : status;
}

sqo::Status ObjectStore::RegisterMethod(const std::string& method, MethodFn fn) {
  const std::string rel = sqo::ToLower(method);
  const RelationSignature* sig = schema_->catalog.Find(rel);
  if (sig == nullptr || sig->kind != RelationKind::kMethod) {
    return sqo::NotFoundError("unknown method '" + method + "'");
  }
  methods_[rel] = std::move(fn);
  return sqo::Status::Ok();
}

sqo::Status ObjectStore::CreateIndex(const std::string& relation,
                                     const std::string& attribute) {
  const std::string rel = sqo::ToLower(relation);
  const RelationSignature* sig = schema_->catalog.Find(rel);
  if (sig == nullptr || (sig->kind != RelationKind::kClass &&
                         sig->kind != RelationKind::kStructure)) {
    return sqo::NotFoundError("cannot index relation '" + relation + "'");
  }
  auto pos = sig->AttributeIndex(sqo::ToLower(attribute));
  if (!pos.has_value() || *pos == 0) {
    return sqo::InvalidArgumentError("relation '" + rel +
                                     "' has no indexable attribute '" +
                                     attribute + "'");
  }
  HashIndex index;
  for (sqo::Oid oid : Extent(rel)) {
    auto row = RowAs(rel, oid);
    index[(*row)[*pos]].push_back(oid);
  }
  indexes_[rel][*pos] = std::move(index);
  return sqo::Status::Ok();
}

sqo::Status ObjectStore::Materialize(const core::AsrDefinition& asr) {
  if (rels_.erase(asr.name) > 0) {
    Mutation m;
    m.kind = Mutation::Kind::kClearRel;
    m.relation = asr.name;
    Record(std::move(m));
  }
  // Walk the path breadth-first from every source of the first hop.
  const RelData* first = nullptr;
  auto it = rels_.find(asr.path.front());
  if (it != rels_.end()) first = &it->second;
  std::vector<std::pair<sqo::Oid, sqo::Oid>> frontier;
  if (first != nullptr) {
    frontier.assign(first->pairs.begin(), first->pairs.end());
  }
  for (size_t hop = 1; hop < asr.path.size(); ++hop) {
    std::vector<std::pair<sqo::Oid, sqo::Oid>> next;
    for (const auto& [origin, mid] : frontier) {
      for (sqo::Oid dst : Neighbors(asr.path[hop], mid)) {
        next.emplace_back(origin, dst);
      }
    }
    frontier = std::move(next);
  }
  sqo::Status status = sqo::Status::Ok();
  for (const auto& [src, dst] : frontier) {
    status = InsertPair(asr.name, src, dst, /*enforce_cardinality=*/false);
    if (!status.ok()) break;
  }
  if (status.ok()) {
    // Register (or refresh) the maintenance state: from here on, inserts
    // into path relations extend the materialization incrementally and
    // erasures mark it stale.
    AsrState& state = asrs_[asr.name];
    if (state.stale) stale_asr_count_.fetch_sub(1, std::memory_order_release);
    state.name = asr.name;
    state.path = asr.path;
    state.stale = false;
  }
  const sqo::Status log_status = FlushMutations();
  return status.ok() ? log_status : status;
}

sqo::Status ObjectStore::MaintainAsrsOnInsert(const std::string& rel,
                                              sqo::Oid src, sqo::Oid dst,
                                              bool record) {
  if (asrs_.empty() || asr_maintenance_depth_ >= 4) return sqo::Status::Ok();
  ++asr_maintenance_depth_;
  sqo::Status status = sqo::Status::Ok();
  for (auto& [name, state] : asrs_) {
    if (state.stale || !status.ok()) continue;
    for (size_t hop = 0; hop < state.path.size() && status.ok(); ++hop) {
      if (state.path[hop] != rel) continue;
      // Origins: everything that reaches `src` through the path prefix.
      std::vector<sqo::Oid> origins{src};
      for (size_t i = hop; i-- > 0 && !origins.empty();) {
        std::vector<sqo::Oid> prev;
        std::set<uint64_t> seen;
        for (sqo::Oid o : origins) {
          for (sqo::Oid p : ReverseNeighbors(state.path[i], o)) {
            if (seen.insert(p.raw()).second) prev.push_back(p);
          }
        }
        origins = std::move(prev);
      }
      if (origins.empty()) continue;
      // Targets: everything `dst` reaches through the path suffix.
      std::vector<sqo::Oid> targets{dst};
      for (size_t i = hop + 1; i < state.path.size() && !targets.empty(); ++i) {
        std::vector<sqo::Oid> next;
        std::set<uint64_t> seen;
        for (sqo::Oid t : targets) {
          for (sqo::Oid n : Neighbors(state.path[i], t)) {
            if (seen.insert(n.raw()).second) next.push_back(n);
          }
        }
        targets = std::move(next);
      }
      if (targets.empty()) continue;
      obs::Count("asr.delta_pairs", origins.size() * targets.size());
      for (sqo::Oid origin : origins) {
        for (sqo::Oid target : targets) {
          status = InsertPair(name, origin, target,
                              /*enforce_cardinality=*/false, record);
          if (!status.ok()) break;
        }
        if (!status.ok()) break;
      }
    }
  }
  --asr_maintenance_depth_;
  return status;
}

void ObjectStore::MarkAsrsStaleOnErase(const std::string& rel) {
  for (auto& [name, state] : asrs_) {
    if (state.stale) continue;
    if (name == rel ||
        std::find(state.path.begin(), state.path.end(), rel) !=
            state.path.end()) {
      state.stale = true;
      stale_asr_count_.fetch_add(1, std::memory_order_release);
      obs::Count("asr.marked_stale");
    }
  }
}

void ObjectStore::RebuildAsrLocked(AsrState& state, int depth) {
  if (!state.stale) return;
  if (depth >= 4) return;  // ASR-over-ASR cycle guard; stays stale (A019)
  // A stale hop would feed the walk invalidated pairs; heal it first.
  for (const std::string& hop : state.path) {
    auto hit = asrs_.find(hop);
    if (hit != asrs_.end() && hit->second.stale && hit->first != state.name) {
      RebuildAsrLocked(hit->second, depth + 1);
      if (hit->second.stale) return;  // depth-bounded out: give up here too
    }
  }
  // Re-walk the path breadth-first (Materialize's derivation) over raw
  // pair data — the accessor wrappers would re-enter the stale check.
  std::vector<std::pair<sqo::Oid, sqo::Oid>> frontier;
  if (auto it = rels_.find(state.path.front()); it != rels_.end()) {
    frontier.assign(it->second.pairs.begin(), it->second.pairs.end());
  }
  for (size_t hop = 1; hop < state.path.size(); ++hop) {
    std::vector<std::pair<sqo::Oid, sqo::Oid>> next;
    auto it = rels_.find(state.path[hop]);
    if (it != rels_.end()) {
      for (const auto& [origin, mid] : frontier) {
        auto fit = it->second.fwd.find(mid.raw());
        if (fit == it->second.fwd.end()) continue;
        for (sqo::Oid dst : fit->second) next.emplace_back(origin, dst);
      }
    }
    frontier = std::move(next);
  }
  RelData& data = rels_[state.name];
  data.pairs.clear();
  data.fwd.clear();
  data.bwd.clear();
  data.pair_set.clear();
  for (const auto& [src, dst] : frontier) {
    if (!data.pair_set.insert({src.raw(), dst.raw()}).second) continue;
    data.pairs.emplace_back(src, dst);
    data.fwd[src.raw()].push_back(dst);
    data.bwd[dst.raw()].push_back(src);
  }
  state.stale = false;
  stale_asr_count_.fetch_sub(1, std::memory_order_release);
  obs::Count("asr.lazy_rebuilds");
}

void ObjectStore::LazyRebuildIfStale(const std::string& relation) const {
  // Derived-state rebuild on a const read path, like LazyIndexLookup.
  ObjectStore* self = const_cast<ObjectStore*>(this);
  std::lock_guard<std::mutex> lock(lazy_mu_);
  auto it = self->asrs_.find(relation);
  if (it == self->asrs_.end() || !it->second.stale) return;
  self->RebuildAsrLocked(it->second, 0);
}

void ObjectStore::RefreshStaleAsrs() {
  if (stale_asr_count_.load(std::memory_order_acquire) == 0) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  for (auto& [name, state] : asrs_) {
    (void)name;
    if (state.stale) RebuildAsrLocked(state, 0);
  }
}

const std::vector<sqo::Oid>& ObjectStore::Extent(const std::string& relation) const {
  auto it = extents_.find(relation);
  return it == extents_.end() ? EmptyOids() : it->second;
}

bool ObjectStore::IsMember(const std::string& relation, sqo::Oid oid) const {
  auto it = objects_.find(oid.raw());
  if (it == objects_.end()) return false;
  for (const std::string& member : MemberRelations(it->second.exact_relation)) {
    if (member == relation) return true;
  }
  return false;
}

std::optional<ObjectStore::Row> ObjectStore::RowAs(const std::string& relation,
                                                   sqo::Oid oid) const {
  auto it = objects_.find(oid.raw());
  if (it == objects_.end()) return std::nullopt;
  if (!IsMember(relation, oid)) return std::nullopt;
  const RelationSignature* sig = schema_->catalog.Find(relation);
  if (sig == nullptr) return std::nullopt;
  const Row& full = it->second.row;
  if (sig->arity() > full.size()) return std::nullopt;
  return Row(full.begin(), full.begin() + static_cast<long>(sig->arity()));
}

sqo::Result<sqo::Value> ObjectStore::AttributeOf(const std::string& relation,
                                                 sqo::Oid oid, size_t pos) const {
  auto it = objects_.find(oid.raw());
  if (it == objects_.end() || !IsMember(relation, oid)) {
    return sqo::NotFoundError("object @" + std::to_string(oid.raw()) +
                              " is not a member of '" + relation + "'");
  }
  const Row& full = it->second.row;
  if (pos >= full.size()) {
    return sqo::InvalidArgumentError("attribute position out of range");
  }
  return full[pos];
}

const std::vector<std::pair<sqo::Oid, sqo::Oid>>& ObjectStore::Pairs(
    const std::string& relation) const {
  if (stale_asr_count_.load(std::memory_order_acquire) != 0) {
    LazyRebuildIfStale(relation);
  }
  return PairsRaw(relation);
}

const std::vector<std::pair<sqo::Oid, sqo::Oid>>& ObjectStore::PairsRaw(
    const std::string& relation) const {
  auto it = rels_.find(relation);
  return it == rels_.end() ? EmptyPairs() : it->second.pairs;
}

const std::vector<sqo::Oid>& ObjectStore::Neighbors(const std::string& relation,
                                                    sqo::Oid src) const {
  if (stale_asr_count_.load(std::memory_order_acquire) != 0) {
    LazyRebuildIfStale(relation);
  }
  auto it = rels_.find(relation);
  if (it == rels_.end()) return EmptyOids();
  auto fit = it->second.fwd.find(src.raw());
  return fit == it->second.fwd.end() ? EmptyOids() : fit->second;
}

const std::vector<sqo::Oid>& ObjectStore::ReverseNeighbors(
    const std::string& relation, sqo::Oid dst) const {
  if (stale_asr_count_.load(std::memory_order_acquire) != 0) {
    LazyRebuildIfStale(relation);
  }
  auto it = rels_.find(relation);
  if (it == rels_.end()) return EmptyOids();
  auto bit = it->second.bwd.find(dst.raw());
  return bit == it->second.bwd.end() ? EmptyOids() : bit->second;
}

sqo::Result<sqo::Value> ObjectStore::InvokeMethod(
    const std::string& method, sqo::Oid receiver,
    const std::vector<sqo::Value>& args) const {
  auto it = methods_.find(sqo::ToLower(method));
  if (it == methods_.end()) {
    return sqo::NotFoundError("method '" + method + "' has no implementation");
  }
  return it->second(*this, receiver, args);
}

bool ObjectStore::HasIndex(const std::string& relation, size_t pos) const {
  auto it = indexes_.find(relation);
  return it != indexes_.end() && it->second.count(pos) > 0;
}

const std::vector<sqo::Oid>* ObjectStore::IndexLookup(
    const std::string& relation, size_t pos, const sqo::Value& value) const {
  auto it = indexes_.find(relation);
  if (it == indexes_.end()) return nullptr;
  auto pit = it->second.find(pos);
  if (pit == it->second.end()) return nullptr;
  auto vit = pit->second.find(value);
  return vit == pit->second.end() ? nullptr : &vit->second;
}

void ObjectStore::LazyIndexInsert(const std::vector<std::string>& members,
                                  const Row& row, sqo::Oid oid) {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (lazy_indexes_.empty()) return;
  for (const std::string& member : members) {
    auto rel_it = lazy_indexes_.find(member);
    if (rel_it == lazy_indexes_.end()) continue;
    for (auto& [pos, index] : rel_it->second) {
      if (pos >= row.size()) continue;
      index[row[pos]].push_back(oid);
      obs::Count("index.delta_applies");
    }
  }
}

void ObjectStore::LazyIndexUpdate(const std::vector<std::string>& members,
                                  size_t pos, const sqo::Value& old_value,
                                  const sqo::Value& new_value, sqo::Oid oid) {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (lazy_indexes_.empty()) return;
  for (const std::string& member : members) {
    auto rel_it = lazy_indexes_.find(member);
    if (rel_it == lazy_indexes_.end()) continue;
    auto pos_it = rel_it->second.find(pos);
    if (pos_it == rel_it->second.end()) continue;
    HashIndex& index = pos_it->second;
    auto old_bucket = index.find(old_value);
    if (old_bucket != index.end()) {
      auto& oids = old_bucket->second;
      oids.erase(std::remove(oids.begin(), oids.end(), oid), oids.end());
      if (oids.empty()) index.erase(old_bucket);
    }
    index[new_value].push_back(oid);
    obs::Count("index.delta_applies");
  }
}

void ObjectStore::LazyIndexErase(const std::vector<std::string>& members,
                                 const Row& row, sqo::Oid oid) {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (lazy_indexes_.empty()) return;
  for (const std::string& member : members) {
    auto rel_it = lazy_indexes_.find(member);
    if (rel_it == lazy_indexes_.end()) continue;
    for (auto& [pos, index] : rel_it->second) {
      if (pos >= row.size()) continue;
      auto bucket = index.find(row[pos]);
      if (bucket == index.end()) continue;
      auto& oids = bucket->second;
      oids.erase(std::remove(oids.begin(), oids.end(), oid), oids.end());
      if (oids.empty()) index.erase(bucket);
      obs::Count("index.delta_applies");
    }
  }
}

const std::vector<sqo::Oid>* ObjectStore::LazyIndexLookup(
    const std::string& relation, size_t pos, const sqo::Value& value,
    size_t min_extent, bool* built) const {
  if (built != nullptr) *built = false;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  HashIndex* index = nullptr;
  auto rel_it = lazy_indexes_.find(relation);
  if (rel_it != lazy_indexes_.end()) {
    auto pos_it = rel_it->second.find(pos);
    if (pos_it != rel_it->second.end()) index = &pos_it->second;
  }
  if (index == nullptr) {
    const std::vector<sqo::Oid>& extent = Extent(relation);
    if (extent.size() < min_extent) return nullptr;
    HashIndex fresh;
    fresh.reserve(extent.size());
    for (sqo::Oid oid : extent) {
      auto it = objects_.find(oid.raw());
      if (it == objects_.end() || pos >= it->second.row.size()) continue;
      fresh[it->second.row[pos]].push_back(oid);
    }
    index = &(lazy_indexes_[relation][pos] = std::move(fresh));
    // A (relation, pos) that was built before only reaches this path after
    // Clear() wiped the tables: that is a full rebuild, the event the
    // delta-apply maintenance exists to avoid.
    if (ever_built_.insert({relation, pos}).second) {
      obs::Count("index.lazy_builds");
    } else {
      obs::Count("index.full_rebuilds");
    }
  }
  if (built != nullptr) *built = true;
  auto vit = index->find(value);
  return vit == index->end() ? nullptr : &vit->second;
}

std::vector<ObjectStore::SecondaryIndexDump>
ObjectStore::DumpSecondaryIndexes() const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  std::vector<SecondaryIndexDump> dumps;
  for (const auto& [relation, positions] : lazy_indexes_) {
    for (const auto& [pos, index] : positions) {
      SecondaryIndexDump dump;
      dump.relation = relation;
      dump.pos = pos;
      dump.entries.reserve(index.size());
      for (const auto& [value, oids] : index) {
        dump.entries.emplace_back(value, oids);
      }
      // Bucket order inside the hash table is incidental; sort the dump so
      // the snapshot encoding is stable.
      std::sort(dump.entries.begin(), dump.entries.end(),
                [](const auto& a, const auto& b) {
                  return a.first.Hash() < b.first.Hash();
                });
      dumps.push_back(std::move(dump));
    }
  }
  return dumps;
}

void ObjectStore::RestoreSecondaryIndex(SecondaryIndexDump dump) {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  HashIndex index;
  index.reserve(dump.entries.size());
  for (auto& [value, oids] : dump.entries) {
    index[value] = std::move(oids);
  }
  lazy_indexes_[dump.relation][dump.pos] = std::move(index);
  ever_built_.insert({dump.relation, dump.pos});
  obs::Count("index.restored");
}

std::vector<ObjectStore::AsrState> ObjectStore::AsrStates() const {
  std::vector<AsrState> states;
  states.reserve(asrs_.size());
  for (const auto& [name, state] : asrs_) states.push_back(state);
  return states;
}

void ObjectStore::RestoreAsrState(AsrState state) {
  AsrState& slot = asrs_[state.name];
  if (slot.stale) stale_asr_count_.fetch_sub(1, std::memory_order_release);
  slot = std::move(state);
  if (slot.stale) stale_asr_count_.fetch_add(1, std::memory_order_release);
}

size_t ObjectStore::ExtentSize(const std::string& relation) const {
  return Extent(relation).size();
}

size_t ObjectStore::PairCount(const std::string& relation) const {
  return Pairs(relation).size();
}

double ObjectStore::AvgFanout(const std::string& relation) const {
  auto it = rels_.find(relation);
  if (it == rels_.end() || it->second.fwd.empty()) return 0.0;
  return static_cast<double>(it->second.pairs.size()) /
         static_cast<double>(it->second.fwd.size());
}

double ObjectStore::AvgReverseFanout(const std::string& relation) const {
  auto it = rels_.find(relation);
  if (it == rels_.end() || it->second.bwd.empty()) return 0.0;
  return static_cast<double>(it->second.pairs.size()) /
         static_cast<double>(it->second.bwd.size());
}

void ObjectStore::SetMutationListener(MutationListener listener) {
  listener_ = std::move(listener);
  pending_.clear();
}

void ObjectStore::Record(Mutation m) {
  if (listener_) pending_.push_back(std::move(m));
}

sqo::Status ObjectStore::FlushMutations() {
  if (!listener_ || pending_.empty()) return sqo::Status::Ok();
  std::vector<Mutation> batch;
  batch.swap(pending_);
  return listener_(batch);
}

sqo::Status ObjectStore::ApplyOne(const Mutation& m) {
  switch (m.kind) {
    case Mutation::Kind::kCreate: {
      const RelationSignature* sig = schema_->catalog.Find(m.relation);
      if (sig == nullptr || (sig->kind != RelationKind::kClass &&
                             sig->kind != RelationKind::kStructure)) {
        return sqo::DataCorruptionError("create: unknown relation '" +
                                        m.relation + "'");
      }
      if (m.row.size() != sig->arity()) {
        return sqo::DataCorruptionError(
            "create: row arity " + std::to_string(m.row.size()) +
            " does not match relation '" + m.relation + "'");
      }
      if (!m.oid.valid() || objects_.count(m.oid.raw()) > 0) {
        return sqo::DataCorruptionError("create: invalid or duplicate OID @" +
                                        std::to_string(m.oid.raw()));
      }
      InstallRecord(m.oid, m.relation, m.row);
      next_oid_ = std::max(next_oid_, m.oid.raw() + 1);
      return sqo::Status::Ok();
    }
    case Mutation::Kind::kUpdate: {
      const sqo::Status status = UpdateRowPosition(m.oid, m.pos, m.value);
      if (!status.ok()) {
        return sqo::DataCorruptionError("update: " + status.message());
      }
      return sqo::Status::Ok();
    }
    case Mutation::Kind::kDelete: {
      const sqo::Status status =
          DeleteObjectImpl(m.oid, /*record_mutations=*/false);
      if (!status.ok()) {
        return sqo::DataCorruptionError("delete: " + status.message());
      }
      return sqo::Status::Ok();
    }
    case Mutation::Kind::kInsertPair:
      return InsertPair(m.relation, m.src, m.dst,
                        /*enforce_cardinality=*/false, /*record=*/false);
    case Mutation::Kind::kErasePair:
      ErasePair(m.relation, m.src, m.dst, /*record=*/false);
      return sqo::Status::Ok();
    case Mutation::Kind::kClearRel:
      // Clears pair data only (ASR re-materialization); the attribute
      // indexes cover object rows and are unaffected.
      rels_.erase(m.relation);
      return sqo::Status::Ok();
  }
  return sqo::DataCorruptionError("unknown mutation kind " +
                                  std::to_string(static_cast<int>(m.kind)));
}

sqo::Status ObjectStore::ApplyMutations(const std::vector<Mutation>& batch) {
  for (const Mutation& m : batch) {
    SQO_RETURN_IF_ERROR(ApplyOne(m));
  }
  return sqo::Status::Ok();
}

void ObjectStore::Clear() {
  objects_.clear();
  extents_.clear();
  rels_.clear();
  // Index *definitions* survive (they are physical-design choices, like
  // methods); their contents are data and go.
  for (auto& [relation, positions] : indexes_) {
    (void)relation;
    for (auto& [pos, index] : positions) {
      (void)pos;
      index.clear();
    }
  }
  {
    // The adaptive indexes and ASR registrations are data-derived and go
    // too; `ever_built_` survives so a post-Clear rebuild is counted as a
    // full rebuild rather than a first build.
    std::lock_guard<std::mutex> lock(lazy_mu_);
    lazy_indexes_.clear();
  }
  asrs_.clear();
  stale_asr_count_.store(0, std::memory_order_release);
  next_oid_ = 1;
  pending_.clear();
}

std::vector<std::string> ObjectStore::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(rels_.size());
  for (const auto& [name, data] : rels_) {
    (void)data;
    names.push_back(name);
  }
  return names;
}

void ObjectStore::RestoreNextOid(uint64_t next_oid) {
  next_oid_ = std::max(next_oid_, next_oid);
}

size_t ObjectStore::IndexDistinct(const std::string& relation, size_t pos) const {
  auto it = indexes_.find(relation);
  if (it == indexes_.end()) return 0;
  auto pit = it->second.find(pos);
  return pit == it->second.end() ? 0 : pit->second.size();
}

}  // namespace sqo::engine
