#ifndef SQO_ENGINE_IC_DISCOVERY_H_
#define SQO_ENGINE_IC_DISCOVERY_H_

#include <vector>

#include "datalog/clause.h"
#include "engine/database.h"

namespace sqo::engine {

struct DiscoveryOptions {
  /// Propose `attr >= min` / `attr <= max` range constraints for numeric
  /// attributes of class relations.
  bool ranges = true;

  /// Propose key constraints (IC7 shape) for attributes whose values are
  /// distinct across a class extent.
  bool keys = true;

  /// Skip extents smaller than this — tiny extents make every attribute
  /// look like a key and every range look tight.
  size_t min_extent = 8;
};

/// Mines candidate integrity constraints from the current database state:
/// the inverse of the paper's pipeline, closing the loop for applications
/// whose schemas lack declared semantics. The proposals are *soft*
/// constraints — true of the data now, not enforced going forward — so
/// callers should either re-validate after updates (CheckConstraints) or
/// treat optimized results as snapshot-consistent. Labels are prefixed
/// "discovered:" so downstream tooling can distinguish them from declared
/// knowledge.
///
/// Soundness note: feeding discovered ICs to the semantic compiler is
/// exactly as sound as the ICs are true; on a frozen database they are
/// exact, which is what the benchmarks and tests use.
std::vector<datalog::Clause> DiscoverConstraints(
    const Database& db, const DiscoveryOptions& options = {});

}  // namespace sqo::engine

#endif  // SQO_ENGINE_IC_DISCOVERY_H_
