#ifndef SQO_ENGINE_CONSTRAINT_CHECKER_H_
#define SQO_ENGINE_CONSTRAINT_CHECKER_H_

#include <string>
#include <vector>

#include "datalog/clause.h"
#include "engine/database.h"

namespace sqo::engine {

/// One integrity-constraint violation found in the data.
struct Violation {
  std::string ic_label;
  /// Human-readable rendering: the instantiated body match and the failed
  /// head.
  std::string description;

  std::string ToString() const { return "[" + ic_label + "] " + description; }
};

/// Validates that the database satisfies every constraint in `ics`.
///
/// SQO is only sound on databases that satisfy the integrity constraints it
/// compiles from (§2: "or else the database would violate the IC") — this
/// checker closes the loop, letting applications verify data after bulk
/// loads and letting tests assert the generator's output is consistent.
///
/// For each IC `H ← B`, the body is evaluated as a conjunctive query; for
/// every match σ the head is checked:
///   * evaluable head: `Hσ` must hold;
///   * positive predicate head: a tuple matching `Hσ` must exist
///     (head-only variables are existential wildcards);
///   * negated predicate head: no tuple matching `Hσ` may exist (head-only
///     variables are universal, i.e. not-exists);
///   * denial (no head): any body match is a violation.
///
/// The outcome: found violations plus the labels of constraints that are
/// unverifiable by enumeration — bodies containing a method atom whose
/// receiver is not bound by any stored relation (methods are computed, not
/// stored, so their "relation" cannot be scanned; such ICs hold by the
/// method-registration contract).
struct CheckReport {
  std::vector<Violation> violations;
  std::vector<std::string> skipped;

  bool consistent() const { return violations.empty(); }
};

/// Stops after `max_violations` findings.
sqo::Result<CheckReport> CheckConstraints(
    const Database& db, const std::vector<datalog::Clause>& ics,
    size_t max_violations = 16);

}  // namespace sqo::engine

#endif  // SQO_ENGINE_CONSTRAINT_CHECKER_H_
