#include "engine/cost_model.h"

// EngineCostModel is header-only today; this file anchors the vtable.

namespace sqo::engine {}  // namespace sqo::engine
