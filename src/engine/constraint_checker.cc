#include "engine/constraint_checker.h"

#include <set>

#include "common/strings.h"

namespace sqo::engine {

using datalog::Atom;
using datalog::Clause;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Query;
using datalog::Substitution;
using datalog::Term;

namespace {

/// Evaluates a ground comparison between two values; unorderable pairs
/// fail order comparisons (a violation-side choice: such an IC head is
/// considered not satisfied).
bool HoldsGround(CmpOp op, const sqo::Value& lhs, const sqo::Value& rhs) {
  if (op == CmpOp::kEq || op == CmpOp::kNe) {
    return datalog::EvalCmp(op, lhs.Equals(rhs) ? 0 : 1);
  }
  auto cmp = lhs.Compare(rhs);
  return cmp.has_value() && datalog::EvalCmp(op, *cmp);
}

/// True if any tuple matches `atom` under the current instantiation:
/// constant arguments are fixed, variable arguments are wildcards. Runs a
/// zero-projection query over the atom.
sqo::Result<bool> TupleExists(const Database& db, const Atom& atom) {
  Query probe;
  probe.name = "exists";
  probe.body.push_back(Literal::Pos(atom));
  EvalOptions options;
  options.distinct = true;  // the empty projection collapses to ≤ 1 row
  SQO_ASSIGN_OR_RETURN(auto rows, db.Run(probe, nullptr, options));
  return !rows.empty();
}

}  // namespace

namespace {

/// True if some method atom's receiver variable is bound by no stored
/// (class / structure / relationship / ASR) body atom — the body cannot be
/// enumerated.
bool HasUnenumerableMethodAtom(const Database& db, const Clause& ic) {
  std::set<std::string> stored_vars;
  for (const Literal& lit : ic.body) {
    if (!lit.positive || !lit.atom.is_predicate()) continue;
    const datalog::RelationSignature* sig =
        db.schema().catalog.Find(lit.atom.predicate());
    if (sig == nullptr || sig->kind == datalog::RelationKind::kMethod) continue;
    std::vector<std::string> vars;
    lit.atom.CollectVariables(&vars);
    stored_vars.insert(vars.begin(), vars.end());
  }
  for (const Literal& lit : ic.body) {
    if (!lit.positive || !lit.atom.is_predicate()) continue;
    const datalog::RelationSignature* sig =
        db.schema().catalog.Find(lit.atom.predicate());
    if (sig == nullptr || sig->kind != datalog::RelationKind::kMethod) continue;
    const Term& receiver = lit.atom.args()[0];
    if (receiver.is_variable() && stored_vars.count(receiver.var_name()) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

sqo::Result<CheckReport> CheckConstraints(
    const Database& db, const std::vector<Clause>& ics, size_t max_violations) {
  CheckReport report;
  std::vector<Violation>& violations = report.violations;

  for (const Clause& ic : ics) {
    if (violations.size() >= max_violations) break;
    if (ic.body.empty()) continue;  // facts carry no data obligation here
    if (HasUnenumerableMethodAtom(db, ic)) {
      report.skipped.push_back(ic.label.empty() ? ic.ToString() : ic.label);
      continue;
    }

    // Evaluate the body, projecting every body variable so the head can be
    // instantiated per match.
    std::vector<std::string> body_vars;
    for (const Literal& lit : ic.body) lit.atom.CollectVariables(&body_vars);
    Query body_query;
    body_query.name = "icbody";
    for (const std::string& v : body_vars) {
      body_query.head_args.push_back(Term::Var(v));
    }
    body_query.body = ic.body;

    EvalOptions options;
    options.distinct = true;
    auto rows_or = db.Run(body_query, nullptr, options);
    if (!rows_or.ok()) {
      return sqo::InvalidArgumentError(
          "cannot evaluate body of IC '" +
          (ic.label.empty() ? ic.ToString() : ic.label) +
          "': " + rows_or.status().ToString());
    }

    for (const auto& row : *rows_or) {
      if (violations.size() >= max_violations) break;
      Substitution subst;
      for (size_t i = 0; i < body_vars.size(); ++i) {
        subst.Bind(body_vars[i], Term::Const(row[i]));
      }

      bool satisfied = false;
      std::string failed_head;
      if (!ic.head.has_value()) {
        satisfied = false;  // denial: any body match violates
        failed_head = "false";
      } else {
        Literal head = subst.ApplyToLiteral(*ic.head);
        failed_head = head.ToString();
        if (head.atom.is_comparison()) {
          // Head-only variables cannot appear in a well-formed evaluable
          // head; if they do, the comparison cannot hold for all values.
          satisfied = head.atom.lhs().is_constant() &&
                      head.atom.rhs().is_constant() &&
                      HoldsGround(head.atom.op(), head.atom.lhs().constant(),
                                  head.atom.rhs().constant());
        } else {
          SQO_ASSIGN_OR_RETURN(bool exists, TupleExists(db, head.atom));
          satisfied = head.positive ? exists : !exists;
        }
      }

      if (!satisfied) {
        Violation violation;
        violation.ic_label = ic.label.empty() ? ic.ToString() : ic.label;
        std::vector<std::string> binding;
        for (size_t i = 0; i < body_vars.size(); ++i) {
          binding.push_back(body_vars[i] + " = " + row[i].ToString());
        }
        violation.description =
            "head " + failed_head + " fails for {" + StrJoin(binding, ", ") + "}";
        violations.push_back(std::move(violation));
      }
    }
  }
  return report;
}

}  // namespace sqo::engine
