#include "engine/ic_discovery.h"

#include <set>

#include "common/strings.h"

namespace sqo::engine {

using datalog::Atom;
using datalog::Clause;
using datalog::CmpOp;
using datalog::Literal;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

namespace {

/// Capitalized variable name for an attribute ("salary" → "Salary").
std::string AttrVar(const std::string& attr) {
  std::string v = attr;
  v[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(v[0])));
  return v;
}

/// Builds `c(X, _, ..., Var@pos, ...)`.
Atom ClassAtom(const RelationSignature& sig, size_t pos, const Term& at_pos,
               int* anon) {
  std::vector<Term> args;
  args.reserve(sig.arity());
  for (size_t i = 0; i < sig.arity(); ++i) {
    if (i == pos) {
      args.push_back(at_pos);
    } else if (i == 0) {
      args.push_back(Term::Var("X" + std::to_string(++*anon)));
    } else {
      args.push_back(Term::Var("_D" + std::to_string(++*anon)));
    }
  }
  return Atom::Pred(sig.name, std::move(args));
}

}  // namespace

std::vector<Clause> DiscoverConstraints(const Database& db,
                                        const DiscoveryOptions& options) {
  std::vector<Clause> out;
  const ObjectStore& store = db.store();
  int anon = 0;

  for (const auto& [name, sig] : db.schema().catalog.relations()) {
    if (sig.kind != RelationKind::kClass &&
        sig.kind != RelationKind::kStructure) {
      continue;
    }
    const auto& extent = store.Extent(sig.name);
    if (extent.size() < options.min_extent) continue;

    for (size_t pos = 1; pos < sig.arity(); ++pos) {
      // One pass: min/max over numerics, distinctness for key proposal.
      bool numeric = true;
      bool has_value = false;
      double min_value = 0, max_value = 0;
      bool all_distinct = true;
      std::set<std::string> seen;
      for (sqo::Oid oid : extent) {
        auto value_or = store.AttributeOf(sig.name, oid, pos);
        if (!value_or.ok()) continue;
        const sqo::Value& value = *value_or;
        if (value.is_null()) {
          numeric = false;
          all_distinct = false;
          break;
        }
        if (!seen.insert(value.ToString()).second) all_distinct = false;
        if (!value.is_numeric()) {
          numeric = false;
          continue;
        }
        const double v = value.AsNumeric();
        if (!has_value || v < min_value) min_value = v;
        if (!has_value || v > max_value) max_value = v;
        has_value = true;
      }

      if (options.ranges && numeric && has_value) {
        const std::string attr = sig.attributes[pos];
        Term var = Term::Var(AttrVar(attr));
        Clause lower;
        lower.label = "discovered:range:" + sig.name + "." + attr + ":min";
        lower.head = Literal::Pos(
            Atom::Comparison(CmpOp::kGe, var, Term::Double(min_value)));
        lower.body = {Literal::Pos(ClassAtom(sig, pos, var, &anon))};
        out.push_back(std::move(lower));
        Clause upper;
        upper.label = "discovered:range:" + sig.name + "." + attr + ":max";
        upper.head = Literal::Pos(
            Atom::Comparison(CmpOp::kLe, var, Term::Double(max_value)));
        upper.body = {Literal::Pos(ClassAtom(sig, pos, var, &anon))};
        out.push_back(std::move(upper));
      }

      if (options.keys && all_distinct && !extent.empty()) {
        const std::string attr = sig.attributes[pos];
        Term shared = Term::Var(AttrVar(attr));
        Clause key;
        key.label = "discovered:key:" + sig.name + "." + attr;
        Atom a1 = ClassAtom(sig, pos, shared, &anon);
        Atom a2 = ClassAtom(sig, pos, shared, &anon);
        key.head = Literal::Pos(
            Atom::Comparison(CmpOp::kEq, a1.args()[0], a2.args()[0]));
        key.body = {Literal::Pos(std::move(a1)), Literal::Pos(std::move(a2))};
        out.push_back(std::move(key));
      }
    }
  }
  return out;
}

}  // namespace sqo::engine
