#ifndef SQO_ENGINE_COST_MODEL_H_
#define SQO_ENGINE_COST_MODEL_H_

#include "engine/object_store.h"
#include "engine/planner.h"
#include "sqo/pipeline.h"

namespace sqo::engine {

/// The "cost-based physical optimizer" the paper defers to: ranks the
/// semantically equivalent queries produced by Step 3 using the store's
/// statistics, via the same greedy planner the evaluator uses. By default
/// it prices plans for the set-at-a-time batch engine (hash build+probe
/// joins for unindexed equality selections), matching the evaluator's
/// default execution mode; pass `batch_costs = false` to rank for the
/// tuple-at-a-time fallback engine.
class EngineCostModel : public core::CostModel {
 public:
  /// `store` must outlive the model.
  explicit EngineCostModel(const ObjectStore* store, bool batch_costs = true)
      : store_(store), batch_costs_(batch_costs) {}

  double EstimateCost(const datalog::Query& query) const override {
    return PlanQuery(query, *store_, PlannerOptions{batch_costs_}).cost;
  }

 private:
  const ObjectStore* store_;
  bool batch_costs_;
};

}  // namespace sqo::engine

#endif  // SQO_ENGINE_COST_MODEL_H_
