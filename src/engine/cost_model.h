#ifndef SQO_ENGINE_COST_MODEL_H_
#define SQO_ENGINE_COST_MODEL_H_

#include "engine/object_store.h"
#include "engine/planner.h"
#include "sqo/pipeline.h"

namespace sqo::engine {

/// The "cost-based physical optimizer" the paper defers to: ranks the
/// semantically equivalent queries produced by Step 3 using the store's
/// statistics, via the same greedy planner the evaluator uses.
class EngineCostModel : public core::CostModel {
 public:
  /// `store` must outlive the model.
  explicit EngineCostModel(const ObjectStore* store) : store_(store) {}

  double EstimateCost(const datalog::Query& query) const override {
    return PlanQuery(query, *store_).cost;
  }

 private:
  const ObjectStore* store_;
};

}  // namespace sqo::engine

#endif  // SQO_ENGINE_COST_MODEL_H_
