#include "engine/batch_evaluator.h"

#include <chrono>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/context.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace sqo::engine {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Query;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

namespace {

/// Structural hashing/equality for result tuples (DISTINCT dedup) and for
/// hash-join keys. Mirrors the tuple engine's dedup semantics.
struct TupleHash {
  size_t operator()(const std::vector<sqo::Value>& t) const {
    size_t h = 0xcbf29ce484222325ull;
    for (const sqo::Value& v : t) h = h * 1099511628211ull + v.Hash();
    return h;
  }
};
struct TupleEq {
  bool operator()(const std::vector<sqo::Value>& a,
                  const std::vector<sqo::Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};
struct ValueHash {
  size_t operator()(const sqo::Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const sqo::Value& a, const sqo::Value& b) const {
    return a.Equals(b);
  }
};

void LabelNode(obs::ProfileNode* node, const char* op,
               const std::string& relation, bool index_used = false) {
  if (node == nullptr || !node->op.empty()) return;
  node->op = op;
  node->relation = relation;
  node->index_used = index_used;
}

int64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Set-at-a-time execution of one planned query. Bindings are row-major:
/// every row of a batch has the same columns, and `col_` maps variable
/// names to column positions. Each plan step consumes the whole batch and
/// produces the next one, so the column layout is decided once per step
/// (never per row) and access paths that the tuple engine repeats per
/// binding — extent scans, hash-table builds — run once per batch.
class BatchExecution {
 public:
  using Row = std::vector<sqo::Value>;
  using Batch = std::vector<Row>;

  BatchExecution(const ObjectStore& store, const Query& query,
                 const EvalOptions& options, EvalStats& stats,
                 obs::QueryProfile* profile, const Plan* plan)
      : store_(store), query_(query), options_(options), stats_(stats),
        profile_(profile), plan_(plan) {
    for (const Term& t : query.head_args) {
      if (t.is_variable()) var_occurrences_[t.var_name()] += 2;
    }
    for (const Literal& lit : query.body) {
      std::vector<std::string> vars;
      lit.atom.CollectVariables(&vars);
      for (const std::string& v : vars) ++var_occurrences_[v];
    }
  }

  sqo::Status Run(const std::vector<size_t>& order, Batch* out) {
    order_ = &order;
    if (profile_ != nullptr) SetUpProfile();
    // Selection pushdown, as in the tuple engine: variables equated to
    // constants become columns of the initial one-row batch, so index
    // probes and OID lookups see them from the start.
    Row seed;
    for (const Literal& lit : query_.body) {
      if (!lit.positive || !lit.atom.is_comparison() ||
          lit.atom.op() != CmpOp::kEq) {
        continue;
      }
      const Term& l = lit.atom.lhs();
      const Term& r = lit.atom.rhs();
      if (l.is_variable() && r.is_constant() &&
          col_.count(l.var_name()) == 0) {
        col_[l.var_name()] = width_++;
        seed.push_back(r.constant());
      } else if (r.is_variable() && l.is_constant() &&
                 col_.count(r.var_name()) == 0) {
        col_[r.var_name()] = width_++;
        seed.push_back(l.constant());
      }
    }
    Batch batch;
    batch.push_back(std::move(seed));
    sqo::Status status = RunSteps(&batch, out);
    AssignInclusiveTimes();
    return status;
  }

 private:
  /// One argument of an atom, resolved once per step against the batch's
  /// column layout.
  struct ArgSlot {
    enum Kind {
      kConst,   // constant term
      kCol,     // variable bound by an earlier step: compare against column
      kNew,     // first occurrence of an unbound variable: binds
      kNewDup,  // repeated unbound variable: compare against its binding
    };
    Kind kind = kNew;
    sqo::Value constant;  // kConst
    size_t col = 0;       // kCol: column in the input row
    size_t append = 0;    // kNew/kNewDup: offset in the appended segment
  };

  static bool IsBound(const ArgSlot& s) {
    return s.kind == ArgSlot::kConst || s.kind == ArgSlot::kCol;
  }

  /// The value of a bound slot for `row`; nullptr for unbound slots
  /// (which negation treats as wildcards).
  const sqo::Value* SlotValue(const ArgSlot& s, const Row& row) const {
    switch (s.kind) {
      case ArgSlot::kConst:
        return &s.constant;
      case ArgSlot::kCol:
        return &row[s.col];
      case ArgSlot::kNew:
      case ArgSlot::kNewDup:
        return nullptr;
    }
    return nullptr;
  }

  /// Resolves one term in isolation: constant, column, or unbound (kNew).
  ArgSlot TermSlot(const Term& t) const {
    ArgSlot s;
    if (t.is_constant()) {
      s.kind = ArgSlot::kConst;
      s.constant = t.constant();
      return s;
    }
    auto it = col_.find(t.var_name());
    if (it != col_.end()) {
      s.kind = ArgSlot::kCol;
      s.col = it->second;
    }
    return s;
  }

  /// Resolves every argument of `atom` against the current column layout.
  /// Unbound variables are assigned append offsets in first-occurrence
  /// order; `new_vars` receives their names (register with
  /// RegisterNewVars once the step's rows are built).
  std::vector<ArgSlot> SlotsFor(const Atom& atom,
                                std::vector<std::string>* new_vars) const {
    std::map<std::string, size_t> local;
    std::vector<ArgSlot> slots;
    slots.reserve(atom.arity());
    for (const Term& t : atom.args()) {
      ArgSlot s;
      if (t.is_constant()) {
        s.kind = ArgSlot::kConst;
        s.constant = t.constant();
      } else {
        auto it = col_.find(t.var_name());
        if (it != col_.end()) {
          s.kind = ArgSlot::kCol;
          s.col = it->second;
        } else {
          auto seen = local.find(t.var_name());
          if (seen != local.end()) {
            s.kind = ArgSlot::kNewDup;
            s.append = seen->second;
          } else {
            s.kind = ArgSlot::kNew;
            s.append = new_vars->size();
            local[t.var_name()] = s.append;
            new_vars->push_back(t.var_name());
          }
        }
      }
      slots.push_back(std::move(s));
    }
    return slots;
  }

  void RegisterNewVars(const std::vector<std::string>& new_vars) {
    for (const std::string& v : new_vars) col_[v] = width_++;
  }

  /// Unifies `cand` against the slots: bound slots compare (counting a
  /// comparison each, stopping at the first mismatch, as the tuple engine
  /// does), unbound slots fill the appended segment `app`.
  bool UnifyCandidate(const std::vector<ArgSlot>& slots, const Row& in,
                      const ObjectStore::Row& cand, Row* app) {
    for (size_t i = 0; i < slots.size(); ++i) {
      const ArgSlot& s = slots[i];
      switch (s.kind) {
        case ArgSlot::kConst:
          ++stats_.comparisons;
          if (!s.constant.Equals(cand[i])) return false;
          break;
        case ArgSlot::kCol:
          ++stats_.comparisons;
          if (!in[s.col].Equals(cand[i])) return false;
          break;
        case ArgSlot::kNew:
          (*app)[s.append] = cand[i];
          break;
        case ArgSlot::kNewDup:
          ++stats_.comparisons;
          if (!(*app)[s.append].Equals(cand[i])) return false;
          break;
      }
    }
    return true;
  }

  /// Unifies and, on success, emits `in` extended with the new columns.
  void AppendUnified(const std::vector<ArgSlot>& slots, size_t n_new,
                     const Row& in, const ObjectStore::Row& cand,
                     Batch* next) {
    Row app(n_new);
    if (!UnifyCandidate(slots, in, cand, &app)) return;
    Row out = in;
    out.insert(out.end(), std::make_move_iterator(app.begin()),
               std::make_move_iterator(app.end()));
    next->push_back(std::move(out));
  }

  // --- profile plumbing (all inert when profile_ is null) ---------------

  void SetUpProfile() {
    profile_->nodes.clear();
    node_of_.assign(order_->size(), -1);
    for (size_t k = 0; k < order_->size(); ++k) {
      obs::ProfileNode node;
      node.id = static_cast<int>(profile_->nodes.size());
      node.literal_index = static_cast<int>((*order_)[k]);
      const Literal& lit = query_.body[(*order_)[k]];
      if (lit.atom.is_comparison()) {
        node.relation = lit.atom.ToString();
      } else {
        node.relation = (lit.positive ? "" : "¬") + lit.atom.predicate();
      }
      if (plan_ != nullptr && k < plan_->steps.size()) {
        node.detail = plan_->steps[k];
      }
      if (plan_ != nullptr && k < plan_->est_rows.size()) {
        node.est_rows = plan_->est_rows[k];
      }
      node_of_[k] = node.id;
      profile_->nodes.push_back(std::move(node));
    }
    obs::ProfileNode emit;
    emit.id = static_cast<int>(profile_->nodes.size());
    emit.op = "emit";
    emit.relation = options_.distinct ? "distinct" : "all";
    emit_node_ = emit.id;
    profile_->nodes.push_back(std::move(emit));
  }

  obs::ProfileNode* NodeFor(size_t k) {
    if (profile_ == nullptr) return nullptr;
    return &profile_->nodes[node_of_[k]];
  }

  obs::ProfileNode* EnterNode(size_t k, size_t rows) {
    obs::ProfileNode* node = NodeFor(k);
    if (node != nullptr) {
      if (node->rows_in == 0 && node->parent < 0 && last_caller_ != node->id) {
        node->parent = last_caller_;
      }
      node->rows_in += rows;
    }
    return node;
  }

  /// The executed operators form a chain; each node's inclusive time is
  /// its own batch-processing time plus everything downstream, so the
  /// profile's total/self split matches the tuple engine's.
  void AssignInclusiveTimes() {
    if (profile_ == nullptr) return;
    int64_t suffix = 0;
    for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
      suffix += it->second;
      profile_->nodes[it->first].total_ns = suffix;
    }
  }

  // --- membership guards (§5.2 extent-difference scans) -----------------

  std::vector<std::pair<size_t, std::string>> FindGuards(
      size_t k, const std::string& scan_var) const {
    std::vector<std::pair<size_t, std::string>> guards;
    for (size_t j = k + 1; j < order_->size(); ++j) {
      const Literal& lit = query_.body[(*order_)[j]];
      if (lit.positive || !lit.atom.is_predicate() || lit.atom.args().empty()) {
        continue;
      }
      const RelationSignature* sig =
          store_.schema().catalog.Find(lit.atom.predicate());
      if (sig == nullptr || (sig->kind != RelationKind::kClass &&
                             sig->kind != RelationKind::kStructure)) {
        continue;
      }
      const Term& oid = lit.atom.args()[0];
      if (!oid.is_variable() || oid.var_name() != scan_var) continue;
      bool wildcards = true;
      for (size_t ai = 1; ai < lit.atom.arity(); ++ai) {
        const Term& t = lit.atom.args()[ai];
        auto occ = t.is_variable() ? var_occurrences_.find(t.var_name())
                                   : var_occurrences_.end();
        if (!t.is_variable() || occ == var_occurrences_.end() ||
            occ->second != 1) {
          wildcards = false;
          break;
        }
      }
      if (wildcards) guards.emplace_back(j, sig->name);
    }
    return guards;
  }

  void ConsumeGuards(
      const std::vector<std::pair<size_t, std::string>>& guards,
      obs::ProfileNode* node) {
    for (const auto& [pos, rel] : guards) {
      consumed_.insert(pos);
      if (obs::ProfileNode* guard_node = NodeFor(pos);
          guard_node != nullptr && guard_node->op.empty()) {
        guard_node->op = "guard";
        guard_node->parent = node != nullptr ? node->id : -1;
      }
    }
  }

  bool PassesGuards(const std::vector<std::pair<size_t, std::string>>& guards,
                    sqo::Oid oid) {
    for (const auto& [pos, rel] : guards) {
      ++stats_.negation_checks;
      obs::ProfileNode* guard_node = NodeFor(pos);
      if (guard_node != nullptr) ++guard_node->rows_in;
      if (store_.IsMember(rel, oid)) return false;
      if (guard_node != nullptr) ++guard_node->rows_out;
    }
    return true;
  }

  // --- pipeline ---------------------------------------------------------

  sqo::Status RunSteps(Batch* batch, Batch* out) {
    for (size_t k = 0; k < order_->size(); ++k) {
      if (batch->empty()) return sqo::Status::Ok();
      // Join charges amortize across the batch: one bulk charge per step
      // instead of one per binding (the poll stride still observes the
      // deadline).
      if (ExecutionContext* governance = CurrentContext()) {
        SQO_RETURN_IF_ERROR(governance->ChargeEvalJoins(batch->size()));
      }
      if (consumed_.count(k) > 0) continue;
      obs::ProfileNode* node = EnterNode(k, batch->size());
      Batch next;
      const auto start = std::chrono::steady_clock::now();
      sqo::Status status = Step(k, node, *batch, &next);
      if (node != nullptr) {
        chain_.emplace_back(node->id, ElapsedNs(start));
        node->rows_out += next.size();
        if (!next.empty()) last_caller_ = node->id;
      }
      SQO_RETURN_IF_ERROR(status);
      *batch = std::move(next);
    }
    if (batch->empty()) return sqo::Status::Ok();
    if (ExecutionContext* governance = CurrentContext()) {
      SQO_RETURN_IF_ERROR(governance->ChargeEvalJoins(batch->size()));
    }
    obs::ProfileNode* emit = nullptr;
    if (profile_ != nullptr && emit_node_ >= 0) {
      emit = &profile_->nodes[emit_node_];
      if (emit->rows_in == 0 && emit->parent < 0) emit->parent = last_caller_;
    }
    const auto start = std::chrono::steady_clock::now();
    sqo::Status status = EmitBatch(*batch, emit, out);
    if (emit != nullptr) chain_.emplace_back(emit->id, ElapsedNs(start));
    return status;
  }

  sqo::Status Step(size_t k, obs::ProfileNode* node, Batch& in, Batch* next) {
    const Literal& lit = query_.body[(*order_)[k]];
    const Atom& atom = lit.atom;
    // Comparisons filter regardless of sign (a negated comparison was
    // normalized by the parser), matching the tuple engine's dispatch.
    if (atom.is_comparison()) return FilterStep(atom, node, in, next);
    const RelationSignature* sig =
        store_.schema().catalog.Find(atom.predicate());
    if (sig == nullptr || sig->arity() != atom.arity()) {
      return sqo::NotFoundError("unknown relation in query: " + atom.ToString());
    }
    if (!lit.positive) return AntiJoinStep(atom, *sig, node, in, next);
    switch (sig->kind) {
      case RelationKind::kClass:
      case RelationKind::kStructure:
        return ClassStep(k, atom, *sig, node, in, next);
      case RelationKind::kRelationship:
      case RelationKind::kAsr:
        return PairStep(atom, *sig, node, in, next);
      case RelationKind::kMethod:
        return MethodStep(atom, *sig, node, in, next);
    }
    return sqo::Status::Ok();
  }

  sqo::Status FilterStep(const Atom& atom, obs::ProfileNode* node, Batch& in,
                         Batch* next) {
    LabelNode(node, "filter", atom.ToString());
    const ArgSlot ls = TermSlot(atom.lhs());
    const ArgSlot rs = TermSlot(atom.rhs());
    if (!IsBound(ls) || !IsBound(rs)) {
      return sqo::InvalidArgumentError(
          "comparison over unbound variables: " + atom.ToString() +
          " (unsafe query)");
    }
    for (Row& row : in) {
      const sqo::Value* lhs = SlotValue(ls, row);
      const sqo::Value* rhs = SlotValue(rs, row);
      ++stats_.comparisons;
      bool pass;
      if (atom.op() == CmpOp::kEq || atom.op() == CmpOp::kNe) {
        pass = datalog::EvalCmp(atom.op(), lhs->Equals(*rhs) ? 0 : 1);
      } else {
        auto cmp = lhs->Compare(*rhs);
        if (!cmp.has_value()) {
          return sqo::InvalidArgumentError("unorderable comparison: " +
                                           atom.ToString());
        }
        pass = datalog::EvalCmp(atom.op(), *cmp);
      }
      if (pass) next->push_back(std::move(row));
    }
    return sqo::Status::Ok();
  }

  sqo::Status AntiJoinStep(const Atom& atom, const RelationSignature& sig,
                           obs::ProfileNode* node, Batch& in, Batch* next) {
    LabelNode(node, "anti-join", "¬" + sig.name);
    // Negation never binds: unbound slots act as wildcards.
    std::vector<std::string> wildcards;
    std::vector<ArgSlot> slots = SlotsFor(atom, &wildcards);
    for (Row& row : in) {
      ++stats_.negation_checks;
      SQO_ASSIGN_OR_RETURN(bool exists, ExistsRow(atom, sig, slots, row));
      if (!exists) next->push_back(std::move(row));
    }
    return sqo::Status::Ok();
  }

  /// Existence check for a (possibly partially bound) atom against one
  /// row; mirrors the tuple engine's `Exists` counter for counter.
  sqo::Result<bool> ExistsRow(const Atom& atom, const RelationSignature& sig,
                              const std::vector<ArgSlot>& slots,
                              const Row& row) {
    auto matches_row = [&](const ObjectStore::Row& cand) {
      for (size_t i = 0; i < slots.size(); ++i) {
        const sqo::Value* bound = SlotValue(slots[i], row);
        if (bound != nullptr) {
          ++stats_.comparisons;
          if (!bound->Equals(cand[i])) return false;
        }
      }
      return true;
    };
    switch (sig.kind) {
      case RelationKind::kClass:
      case RelationKind::kStructure: {
        const sqo::Value* oid = SlotValue(slots[0], row);
        if (oid != nullptr) {
          if (oid->kind() != sqo::ValueKind::kOid) return false;
          bool attrs_bound = false;
          for (size_t i = 1; i < slots.size() && !attrs_bound; ++i) {
            attrs_bound = SlotValue(slots[i], row) != nullptr;
          }
          if (!attrs_bound) {
            // Pure membership test: no object fetch needed.
            return store_.IsMember(sig.name, oid->AsOid());
          }
          auto crow = store_.RowAs(sig.name, oid->AsOid());
          if (!crow.has_value()) return false;
          ++stats_.objects_fetched;
          return matches_row(*crow);
        }
        ++stats_.extent_scans;
        for (sqo::Oid candidate : store_.Extent(sig.name)) {
          auto crow = store_.RowAs(sig.name, candidate);
          ++stats_.objects_fetched;
          if (matches_row(*crow)) return true;
        }
        return false;
      }
      case RelationKind::kRelationship:
      case RelationKind::kAsr: {
        const sqo::Value* src = SlotValue(slots[0], row);
        const sqo::Value* dst = SlotValue(slots[1], row);
        if (src != nullptr && src->kind() != sqo::ValueKind::kOid) return false;
        if (dst != nullptr && dst->kind() != sqo::ValueKind::kOid) return false;
        if (src != nullptr) {
          const auto& nbrs = store_.Neighbors(sig.name, src->AsOid());
          stats_.relationship_traversals += nbrs.size();
          if (dst == nullptr) return !nbrs.empty();
          for (sqo::Oid n : nbrs) {
            if (n == dst->AsOid()) return true;
          }
          return false;
        }
        if (dst != nullptr) {
          const auto& nbrs = store_.ReverseNeighbors(sig.name, dst->AsOid());
          stats_.relationship_traversals += nbrs.size();
          return !nbrs.empty();
        }
        return store_.PairCount(sig.name) > 0;
      }
      case RelationKind::kMethod: {
        const sqo::Value* receiver = SlotValue(slots[0], row);
        if (receiver == nullptr || receiver->kind() != sqo::ValueKind::kOid) {
          return sqo::UnsupportedError(
              "negated method atom requires a bound receiver");
        }
        std::vector<sqo::Value> args;
        for (size_t i = 1; i + 1 < atom.arity(); ++i) {
          const sqo::Value* arg = SlotValue(slots[i], row);
          if (arg == nullptr) {
            return sqo::UnsupportedError(
                "negated method atom requires bound arguments");
          }
          args.push_back(*arg);
        }
        ++stats_.method_invocations;
        SQO_ASSIGN_OR_RETURN(
            sqo::Value result,
            store_.InvokeMethod(sig.name, receiver->AsOid(), args));
        const sqo::Value* expected = SlotValue(slots.back(), row);
        if (expected == nullptr) return true;  // some result always exists
        ++stats_.comparisons;
        return expected->Equals(result);
      }
    }
    return false;
  }

  sqo::Status ClassStep(size_t k, const Atom& atom,
                        const RelationSignature& sig, obs::ProfileNode* node,
                        Batch& in, Batch* next) {
    std::vector<std::string> new_vars;
    std::vector<ArgSlot> slots = SlotsFor(atom, &new_vars);

    if (IsBound(slots[0])) {
      LabelNode(node, "oid-lookup", sig.name);
      for (const Row& row : in) {
        const sqo::Value* oid = SlotValue(slots[0], row);
        if (oid->kind() != sqo::ValueKind::kOid) continue;
        auto crow = store_.RowAs(sig.name, oid->AsOid());
        if (!crow.has_value()) continue;
        ++stats_.objects_fetched;
        AppendUnified(slots, new_vars.size(), row, *crow, next);
      }
      RegisterNewVars(new_vars);
      return sqo::Status::Ok();
    }

    // Membership guards let every access path below skip excluded objects
    // before fetching them (§5.2).
    std::vector<std::pair<size_t, std::string>> guards =
        FindGuards(k, atom.args()[0].var_name());
    ConsumeGuards(guards, node);

    auto probe_candidates = [&](const Row& row,
                                const std::vector<sqo::Oid>& oids) {
      for (sqo::Oid candidate : oids) {
        if (!PassesGuards(guards, candidate)) continue;
        auto crow = store_.RowAs(sig.name, candidate);
        ++stats_.objects_fetched;
        AppendUnified(slots, new_vars.size(), row, *crow, next);
      }
    };

    // Explicit index on the first bound, indexed attribute: probe per
    // binding (the index already is a hash join's build side).
    for (size_t i = 1; i < atom.arity(); ++i) {
      if (!IsBound(slots[i]) || !store_.HasIndex(sig.name, i)) continue;
      LabelNode(node, "index-probe", sig.name + "." + sig.attributes[i],
                /*index_used=*/true);
      for (const Row& row : in) {
        ++stats_.index_probes;
        obs::Count("index.probes");
        const sqo::Value* v = SlotValue(slots[i], row);
        const std::vector<sqo::Oid>* oids = store_.IndexLookup(sig.name, i, *v);
        if (oids == nullptr) continue;
        probe_candidates(row, *oids);
      }
      RegisterNewVars(new_vars);
      return sqo::Status::Ok();
    }

    // Persistent adaptive index: an equality-bound attribute with no
    // explicit index probes the store's incrementally maintained
    // secondary index (built on first use, delta-maintained on writes).
    if (options_.auto_index) {
      for (size_t i = 1; i < atom.arity(); ++i) {
        if (!IsBound(slots[i])) continue;
        // The build/scan decision (extent size vs. threshold) is
        // row-independent; the first row's probe settles it.
        bool indexed = false;
        const sqo::Value* v0 = SlotValue(slots[i], in.front());
        const std::vector<sqo::Oid>* first = store_.LazyIndexLookup(
            sig.name, i, *v0, options_.auto_index_min_extent, &indexed);
        if (!indexed) continue;  // extent under threshold: join instead
        LabelNode(node, "lazy-index-probe",
                  sig.name + "." + sig.attributes[i],
                  /*index_used=*/true);
        for (size_t r = 0; r < in.size(); ++r) {
          ++stats_.index_probes;
          obs::Count("index.probes");
          const std::vector<sqo::Oid>* oids = first;
          if (r != 0) {
            const sqo::Value* v = SlotValue(slots[i], in[r]);
            bool again = false;
            oids = store_.LazyIndexLookup(sig.name, i, *v,
                                          options_.auto_index_min_extent,
                                          &again);
          }
          if (oids == nullptr) continue;
          probe_candidates(in[r], *oids);
        }
        RegisterNewVars(new_vars);
        return sqo::Status::Ok();
      }
    }

    // Transient hash join on the first bound attribute: one guarded pass
    // over the extent builds the table, every binding probes it. This is
    // where the batch engine beats the tuple engine's per-binding scans.
    // `objects_fetched` stays the *logical* per-binding count the tuple
    // engine reports (so SQO before/after comparisons are engine-
    // invariant); `extent_scans` records the physical amortization.
    for (size_t i = 1; i < atom.arity(); ++i) {
      if (!IsBound(slots[i])) continue;
      LabelNode(node, "hash-join", sig.name + "." + sig.attributes[i]);
      SQO_FAILPOINT("eval.scan");
      ++stats_.extent_scans;
      std::unordered_map<sqo::Value, std::vector<ObjectStore::Row>, ValueHash,
                         ValueEq>
          table;
      uint64_t built = 0;
      for (sqo::Oid candidate : store_.Extent(sig.name)) {
        if (!PassesGuards(guards, candidate)) continue;
        auto crow = store_.RowAs(sig.name, candidate);
        ++built;
        sqo::Value key = (*crow)[i];
        table[std::move(key)].push_back(std::move(*crow));
      }
      stats_.objects_fetched += built * in.size();
      for (const Row& row : in) {
        const sqo::Value* v = SlotValue(slots[i], row);
        auto it = table.find(*v);
        if (it == table.end()) continue;
        for (const ObjectStore::Row& crow : it->second) {
          AppendUnified(slots, new_vars.size(), row, crow, next);
        }
      }
      RegisterNewVars(new_vars);
      return sqo::Status::Ok();
    }

    // No bound attribute: the candidate set is binding-independent, so
    // scan once and cross-join the survivors with the batch. As with the
    // hash join, fetches are charged per logical binding.
    LabelNode(node, "extent-scan", sig.name);
    SQO_FAILPOINT("eval.scan");
    ++stats_.extent_scans;
    const Row no_input;
    std::vector<Row> appends;
    uint64_t scanned = 0;
    for (sqo::Oid candidate : store_.Extent(sig.name)) {
      if (!PassesGuards(guards, candidate)) continue;
      auto crow = store_.RowAs(sig.name, candidate);
      ++scanned;
      Row app(new_vars.size());
      if (UnifyCandidate(slots, no_input, *crow, &app)) {
        appends.push_back(std::move(app));
      }
    }
    stats_.objects_fetched += scanned * in.size();
    CrossJoin(in, appends, next);
    RegisterNewVars(new_vars);
    return sqo::Status::Ok();
  }

  sqo::Status PairStep(const Atom& atom, const RelationSignature& sig,
                       obs::ProfileNode* node, Batch& in, Batch* next) {
    std::vector<std::string> new_vars;
    std::vector<ArgSlot> slots = SlotsFor(atom, &new_vars);
    const bool src_bound = IsBound(slots[0]);
    const bool dst_bound = IsBound(slots[1]);

    if (src_bound) {
      LabelNode(node, "traverse", sig.name);
      for (const Row& row : in) {
        const sqo::Value* src = SlotValue(slots[0], row);
        if (src->kind() != sqo::ValueKind::kOid) continue;
        if (dst_bound &&
            SlotValue(slots[1], row)->kind() != sqo::ValueKind::kOid) {
          continue;
        }
        const auto& nbrs = store_.Neighbors(sig.name, src->AsOid());
        stats_.relationship_traversals += nbrs.size();
        for (sqo::Oid n : nbrs) {
          const ObjectStore::Row pair = {*src, sqo::Value::FromOid(n)};
          AppendUnified(slots, new_vars.size(), row, pair, next);
        }
      }
      RegisterNewVars(new_vars);
      return sqo::Status::Ok();
    }

    if (dst_bound) {
      LabelNode(node, "reverse-traverse", sig.name);
      for (const Row& row : in) {
        const sqo::Value* dst = SlotValue(slots[1], row);
        if (dst->kind() != sqo::ValueKind::kOid) continue;
        const auto& nbrs = store_.ReverseNeighbors(sig.name, dst->AsOid());
        stats_.relationship_traversals += nbrs.size();
        for (sqo::Oid n : nbrs) {
          const ObjectStore::Row pair = {sqo::Value::FromOid(n), *dst};
          AppendUnified(slots, new_vars.size(), row, pair, next);
        }
      }
      RegisterNewVars(new_vars);
      return sqo::Status::Ok();
    }

    // Neither end bound: scan the pair extent once and cross-join
    // (traversals, like fetches, are charged per logical binding).
    LabelNode(node, "pair-scan", sig.name);
    const auto& pairs = store_.Pairs(sig.name);
    stats_.relationship_traversals += pairs.size() * in.size();
    const Row no_input;
    std::vector<Row> appends;
    for (const auto& [s, d] : pairs) {
      const ObjectStore::Row pair = {sqo::Value::FromOid(s),
                                     sqo::Value::FromOid(d)};
      Row app(new_vars.size());
      if (UnifyCandidate(slots, no_input, pair, &app)) {
        appends.push_back(std::move(app));
      }
    }
    CrossJoin(in, appends, next);
    RegisterNewVars(new_vars);
    return sqo::Status::Ok();
  }

  sqo::Status MethodStep(const Atom& atom, const RelationSignature& sig,
                         obs::ProfileNode* node, Batch& in, Batch* next) {
    LabelNode(node, "invoke", sig.name);
    std::vector<std::string> new_vars;
    std::vector<ArgSlot> slots = SlotsFor(atom, &new_vars);
    if (!IsBound(slots[0])) {
      return sqo::InvalidArgumentError("method atom with unbound receiver: " +
                                       atom.ToString());
    }
    for (const Row& row : in) {
      const sqo::Value* receiver = SlotValue(slots[0], row);
      if (receiver->kind() != sqo::ValueKind::kOid) continue;
      std::vector<sqo::Value> args;
      bool unbound_arg = false;
      for (size_t i = 1; i + 1 < atom.arity(); ++i) {
        const sqo::Value* arg = SlotValue(slots[i], row);
        if (arg == nullptr) {
          unbound_arg = true;
          break;
        }
        args.push_back(*arg);
      }
      if (unbound_arg) {
        return sqo::InvalidArgumentError("method atom with unbound argument: " +
                                         atom.ToString());
      }
      ++stats_.method_invocations;
      SQO_ASSIGN_OR_RETURN(
          sqo::Value result,
          store_.InvokeMethod(sig.name, receiver->AsOid(), args));
      const ArgSlot& out_slot = slots.back();
      if (IsBound(out_slot)) {
        ++stats_.comparisons;
        if (!SlotValue(out_slot, row)->Equals(result)) continue;
        next->push_back(row);
      } else {
        Row out = row;
        out.push_back(std::move(result));
        next->push_back(std::move(out));
      }
    }
    RegisterNewVars(new_vars);
    return sqo::Status::Ok();
  }

  /// Every input row pairs with every surviving candidate, input-major —
  /// the same order the tuple engine's nested loop produces.
  void CrossJoin(const Batch& in, const std::vector<Row>& appends,
                 Batch* next) {
    for (const Row& row : in) {
      for (const Row& app : appends) {
        Row out = row;
        out.insert(out.end(), app.begin(), app.end());
        next->push_back(std::move(out));
      }
    }
  }

  sqo::Status EmitBatch(const Batch& batch, obs::ProfileNode* emit,
                        Batch* out) {
    // Head projections resolve once: constants and columns (a still-
    // unbound head variable errors on the first emitted row, like the
    // tuple engine).
    for (const Row& row : batch) {
      if (emit != nullptr) ++emit->rows_in;
      if (ExecutionContext* governance = CurrentContext()) {
        SQO_RETURN_IF_ERROR(governance->ChargeEvalRows());
      }
      std::vector<sqo::Value> tuple;
      tuple.reserve(query_.head_args.size());
      for (const Term& t : query_.head_args) {
        if (t.is_constant()) {
          tuple.push_back(t.constant());
          continue;
        }
        auto it = col_.find(t.var_name());
        if (it == col_.end()) {
          return sqo::InvalidArgumentError(
              "projected variable never bound: " + t.ToString());
        }
        tuple.push_back(row[it->second]);
      }
      ++stats_.tuples_emitted;
      if (options_.max_tuples != 0 &&
          stats_.tuples_emitted > options_.max_tuples) {
        return sqo::ResourceExhaustedError("result limit exceeded");
      }
      if (options_.distinct) {
        if (!dedup_.insert(tuple).second) continue;
      }
      ++stats_.results;
      if (emit != nullptr) ++emit->rows_out;
      out->push_back(std::move(tuple));
    }
    return sqo::Status::Ok();
  }

  const ObjectStore& store_;
  const Query& query_;
  const EvalOptions& options_;
  EvalStats& stats_;
  obs::QueryProfile* profile_;
  const Plan* plan_;

  std::map<std::string, size_t> col_;  // variable -> column position
  size_t width_ = 0;
  std::map<std::string, int> var_occurrences_;
  std::set<size_t> consumed_;  // guard positions consumed by a scan
  const std::vector<size_t>* order_ = nullptr;
  std::unordered_set<std::vector<sqo::Value>, TupleHash, TupleEq> dedup_;

  // EXPLAIN ANALYZE state (all inert when profile_ is null).
  std::vector<int> node_of_;
  int emit_node_ = -1;
  int last_caller_ = -1;
  std::vector<std::pair<int, int64_t>> chain_;  // executed (node, self ns)
};

}  // namespace

sqo::Status ExecuteBatchPlan(const ObjectStore& store, const Query& query,
                             const EvalOptions& options, EvalStats& stats,
                             const std::vector<size_t>& order, const Plan* plan,
                             obs::QueryProfile* profile,
                             std::vector<std::vector<sqo::Value>>* out) {
  BatchExecution exec(store, query, options, stats, profile, plan);
  return exec.Run(order, out);
}

bool PlanBenefitsFromBatching(const ObjectStore& store, const Query& query,
                              const std::vector<size_t>& order,
                              const EvalOptions& options) {
  std::unordered_set<std::string> bound;
  auto is_bound = [&](const Term& t) {
    return !t.is_variable() || bound.count(t.var_name()) > 0;
  };
  for (size_t k = 0; k < order.size(); ++k) {
    if (order[k] >= query.body.size()) return false;
    const Literal& lit = query.body[order[k]];
    const Atom& atom = lit.atom;
    if (atom.is_comparison()) continue;
    const RelationSignature* sig =
        store.schema().catalog.Find(atom.predicate());
    if (sig == nullptr || sig->arity() != atom.arity()) {
      return false;  // let the tuple engine report the error
    }
    if (!lit.positive) continue;  // anti-joins probe per row either way
    // The seed step (k == 0) runs against a single-row batch, so nothing
    // amortizes there; from k > 0 on, a binding-independent access path
    // shares work across the whole batch.
    if (k > 0) {
      switch (sig->kind) {
        case RelationKind::kClass:
        case RelationKind::kStructure: {
          if (!is_bound(atom.args()[0])) {
            bool attr_bound = false;
            bool index_served = false;
            for (size_t i = 1; i < atom.arity(); ++i) {
              if (!is_bound(atom.args()[i])) continue;
              attr_bound = true;
              if (store.HasIndex(sig->name, i)) index_served = true;
            }
            if (!attr_bound) return true;  // shared extent scan
            if (!index_served &&
                (!options.auto_index ||
                 store.Extent(sig->name).size() <
                     options.auto_index_min_extent)) {
              return true;  // transient hash join
            }
          }
          break;
        }
        case RelationKind::kRelationship:
        case RelationKind::kAsr:
          if (!is_bound(atom.args()[0]) && !is_bound(atom.args()[1])) {
            return true;  // shared pair scan
          }
          break;
        case RelationKind::kMethod:
          break;
      }
    }
    for (const Term& t : atom.args()) {
      if (t.is_variable()) bound.insert(t.var_name());
    }
  }
  return false;
}

}  // namespace sqo::engine
