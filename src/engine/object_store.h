#ifndef SQO_ENGINE_OBJECT_STORE_H_
#define SQO_ENGINE_OBJECT_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sqo/asr.h"
#include "translate/schema_translator.h"

namespace sqo::engine {

/// One primitive state change of an ObjectStore, in replayable form. Every
/// public mutator decomposes into a sequence of these records; the store
/// hands the whole sequence of one logical operation to its
/// MutationListener as a single batch, and the storage layer's write-ahead
/// log frames each batch as one checksummed record — so a torn log tail
/// never exposes half of a Relate (pair + inverse) or DeleteObject (pair
/// erasures + removal).
struct Mutation {
  enum class Kind : uint8_t {
    kCreate = 1,      // oid, relation (exact type), row
    kUpdate = 2,      // oid, relation, pos, value
    kDelete = 3,      // oid
    kInsertPair = 4,  // relation, src, dst
    kErasePair = 5,   // relation, src, dst
    kClearRel = 6,    // relation (ASR re-materialization)
  };

  Kind kind = Kind::kCreate;
  sqo::Oid oid;
  std::string relation;
  std::vector<sqo::Value> row;  // kCreate
  size_t pos = 0;               // kUpdate
  sqo::Value value;             // kUpdate
  sqo::Oid src, dst;            // kInsertPair / kErasePair
};

/// An in-memory ODMG-style object store bound to a translated schema.
///
/// Storage model:
///   * every object/structure instance gets a fresh OID and one full row
///     aligned with its exact type's relation signature (row[0] is the OID);
///   * class extents are maintained for the exact class and every ancestor
///     (the paper's "object databases that maintain the extents of
///     classes"), so a Faculty object is enumerable via person, employee
///     and faculty;
///   * relationships are stored as OID pairs with forward/backward
///     adjacency; declared inverses are maintained automatically and
///     declared cardinalities are enforced on insert;
///   * methods are registered C++ callbacks, invoked by OID;
///   * hash indexes can be built on any (class relation, attribute);
///   * access support relations are materialized from their path
///     definition and then behave like relationships.
class ObjectStore {
 public:
  using Row = std::vector<sqo::Value>;
  using MethodFn = std::function<sqo::Result<sqo::Value>(
      const ObjectStore&, sqo::Oid receiver,
      const std::vector<sqo::Value>& args)>;

  /// Called once per completed logical mutation with the primitive records
  /// it decomposed into (never empty). A non-OK return is propagated to the
  /// mutator's caller as *unacknowledged durability*: the in-memory change
  /// has already been applied, but the storage layer could not log it — the
  /// caller must treat the operation as not persisted (the crash-recovery
  /// tests reopen from disk and expect state as of the last OK batch).
  using MutationListener = std::function<sqo::Status(const std::vector<Mutation>&)>;

  /// The store's full public record of one object, exposed for snapshot
  /// serialization.
  struct ObjectRecord {
    std::string exact_relation;  // relation of the exact type
    Row row;                     // full row, aligned with that relation
  };

  /// `schema` must outlive the store.
  explicit ObjectStore(const translate::TranslatedSchema* schema)
      : schema_(schema) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // ---- Population ----

  /// Creates an object of ODL class `class_name`. `attrs` maps attribute
  /// names (any case) to values; struct-valued attributes take the OID of
  /// a previously created structure instance. Missing attributes are null.
  sqo::Result<sqo::Oid> CreateObject(const std::string& class_name,
                                     const std::map<std::string, sqo::Value>& attrs);

  /// Creates a structure instance.
  sqo::Result<sqo::Oid> CreateStruct(const std::string& struct_name,
                                     const std::map<std::string, sqo::Value>& fields);

  /// Adds (src, dst) to a relationship (by ODL or relation name). Enforces
  /// endpoint class membership and declared cardinalities; maintains the
  /// declared inverse.
  sqo::Status Relate(const std::string& relationship, sqo::Oid src, sqo::Oid dst);

  /// Removes (src, dst) from a relationship, and the mirrored pair from
  /// its declared inverse. No-op if the pair is absent.
  sqo::Status Unrelate(const std::string& relationship, sqo::Oid src, sqo::Oid dst);

  /// Updates one attribute of an existing object/structure, maintaining
  /// any indexes. The attribute is addressed by name on the object's exact
  /// type.
  sqo::Status UpdateAttribute(sqo::Oid oid, const std::string& attribute,
                              sqo::Value value);

  /// Deletes an object: removes it from every extent and index, and drops
  /// every relationship pair (either endpoint) that references it.
  /// Structure instances referenced by the object's attributes are not
  /// cascaded (structures may be shared in this store).
  sqo::Status DeleteObject(sqo::Oid oid);

  /// Registers the implementation of a method (by ODL or relation name).
  sqo::Status RegisterMethod(const std::string& method, MethodFn fn);

  /// Builds (or rebuilds) a hash index on `relation`.`attribute`.
  /// Maintained incrementally by subsequent CreateObject calls.
  sqo::Status CreateIndex(const std::string& relation, const std::string& attribute);

  /// Materializes an access support relation from its path definition; the
  /// result is queryable like a relationship under `asr.name`. Call after
  /// loading data (re-call to refresh).
  sqo::Status Materialize(const core::AsrDefinition& asr);

  /// Rebuilds every stale materialized ASR in place from its path
  /// definition, so reads trust the materialization again (counter
  /// "asr.lazy_rebuilds" per ASR). Unlike Materialize this records no
  /// mutations — like the adaptive indexes, the rebuilt extent is derived
  /// state recovery re-derives on demand. The read accessors (Pairs /
  /// Neighbors / ReverseNeighbors) invoke the same rebuild lazily on the
  /// first access to a stale ASR; serving layers that share one store
  /// among concurrent readers should call this eagerly before publishing
  /// a snapshot, so the read path stays structurally immutable.
  void RefreshStaleAsrs();

  // ---- Reads ----

  /// OIDs of all members of a class/structure relation (subclass instances
  /// included). Empty for unknown relations.
  const std::vector<sqo::Oid>& Extent(const std::string& relation) const;

  /// True if `oid` is a member of class/structure relation `relation`.
  bool IsMember(const std::string& relation, sqo::Oid oid) const;

  /// The row of `oid` viewed as `relation` (a prefix of its exact row).
  /// nullopt if the object is not a member of that relation.
  std::optional<Row> RowAs(const std::string& relation, sqo::Oid oid) const;

  /// Number of attributes readable when viewing `oid` as `relation`
  /// without copying: position `pos` of the view.
  sqo::Result<sqo::Value> AttributeOf(const std::string& relation, sqo::Oid oid,
                                      size_t pos) const;

  /// All (src, dst) pairs of a relationship or materialized ASR.
  const std::vector<std::pair<sqo::Oid, sqo::Oid>>& Pairs(
      const std::string& relation) const;

  /// Pairs() without the lazy stale-ASR rebuild: dump/serialization paths
  /// (snapshots, signatures) must capture the store verbatim — including
  /// the staleness a later access would heal — not mutate derived state.
  const std::vector<std::pair<sqo::Oid, sqo::Oid>>& PairsRaw(
      const std::string& relation) const;

  /// Forward / backward adjacency.
  const std::vector<sqo::Oid>& Neighbors(const std::string& relation,
                                         sqo::Oid src) const;
  const std::vector<sqo::Oid>& ReverseNeighbors(const std::string& relation,
                                                sqo::Oid dst) const;

  /// Invokes a registered method.
  sqo::Result<sqo::Value> InvokeMethod(const std::string& method, sqo::Oid receiver,
                                       const std::vector<sqo::Value>& args) const;

  bool HasIndex(const std::string& relation, size_t pos) const;

  /// Index probe; nullptr when no index or no entry.
  const std::vector<sqo::Oid>* IndexLookup(const std::string& relation, size_t pos,
                                           const sqo::Value& value) const;

  /// Like IndexLookup, but over the store's *adaptive* secondary indexes:
  /// the first probe of (relation, pos) whose extent has at least
  /// `min_extent` members builds a hash index over that attribute. Once
  /// built, the index is persistent: mutations to members of `relation`
  /// apply deltas in place (counter "index.delta_applies") instead of
  /// dropping the table, and mutations to other relations never touch it.
  /// Only Clear() discards the tables; a build after Clear counts as
  /// "index.full_rebuilds" (first-ever builds count "index.lazy_builds").
  /// Returns nullptr when the extent is under the threshold or the value
  /// has no entry — callers distinguish "no index" from "no match" via
  /// `built`, set to true when an index (fresh or cached) answered the
  /// probe.
  ///
  /// Thread-safe for concurrent readers (one mutex-guarded table). The
  /// returned pointer is valid until the next store mutation; concurrent
  /// evaluation over an immutable store — the parallel-profiling contract —
  /// never invalidates it.
  const std::vector<sqo::Oid>* LazyIndexLookup(const std::string& relation,
                                               size_t pos, const sqo::Value& value,
                                               size_t min_extent,
                                               bool* built) const;

  // ---- Statistics (for the planner / cost model) ----

  size_t ExtentSize(const std::string& relation) const;
  size_t PairCount(const std::string& relation) const;
  /// Average out-degree (pairs / distinct sources); ≥ 0.
  double AvgFanout(const std::string& relation) const;
  double AvgReverseFanout(const std::string& relation) const;
  /// Distinct values at an indexed position (0 when unindexed).
  size_t IndexDistinct(const std::string& relation, size_t pos) const;

  const translate::TranslatedSchema& schema() const { return *schema_; }
  size_t object_count() const { return objects_.size(); }

  // ---- Persistence support ----

  /// One adaptive secondary index in snapshot-serializable form: every
  /// (value → OIDs) bucket of the hash index on `relation`.`pos`, with the
  /// buckets in a deterministic order.
  struct SecondaryIndexDump {
    std::string relation;
    size_t pos = 0;
    std::vector<std::pair<sqo::Value, std::vector<sqo::Oid>>> entries;
  };

  /// Maintenance state of one materialized access support relation: the
  /// relationship path its pairs were derived from, and whether a deletion
  /// on a path relation has left the materialization stale (pair inserts
  /// are applied incrementally; deletions mark the ASR for
  /// re-materialization instead).
  struct AsrState {
    std::string name;
    std::vector<std::string> path;
    bool stale = false;
  };

  /// Every built adaptive secondary index (LazyIndexLookup tables), for
  /// snapshot serialization.
  std::vector<SecondaryIndexDump> DumpSecondaryIndexes() const;

  /// Installs one secondary index restored from a snapshot, marking it as
  /// previously built so a later from-scratch build counts as a full
  /// rebuild.
  void RestoreSecondaryIndex(SecondaryIndexDump dump);

  /// Maintenance states of every ASR materialized (or restored) into this
  /// store, in name order.
  std::vector<AsrState> AsrStates() const;

  /// Re-registers one ASR maintenance state restored from a snapshot, so
  /// incremental maintenance resumes across recovery.
  void RestoreAsrState(AsrState state);

  /// Installs (or, with an empty function, removes) the mutation listener.
  /// The storage layer installs its WAL appender here *after* recovery, so
  /// replayed mutations are never re-logged.
  void SetMutationListener(MutationListener listener);
  bool has_mutation_listener() const { return static_cast<bool>(listener_); }

  /// Replays a batch of primitive mutation records (one logical operation,
  /// as previously delivered to a MutationListener or reconstructed from a
  /// snapshot). Bypasses cardinality enforcement and the listener. A record
  /// inconsistent with the schema or current state (unknown relation, arity
  /// mismatch, duplicate or missing OID, position out of range) yields
  /// kDataCorruption; earlier records of the batch stay applied — recovery
  /// treats any failure as a corrupt log suffix and truncates.
  sqo::Status ApplyMutations(const std::vector<Mutation>& batch);

  /// Drops all data (objects, extents, relationship pairs, index *entries*
  /// and lazy indexes) and resets OID allocation. Keeps what is code or
  /// schema rather than data: registered methods, declared index positions
  /// (emptied, still maintained) and the inverse-relation cache. Recovery
  /// uses this between snapshot attempts when failing open to an older
  /// snapshot.
  void Clear();

  /// All stored objects, keyed by raw OID (deterministic iteration order
  /// for snapshot encoding).
  const std::map<uint64_t, ObjectRecord>& objects() const { return objects_; }

  /// Names of every relation with pair data (relationships + materialized
  /// ASRs), in map order.
  std::vector<std::string> RelationNames() const;

  /// The next OID the store would mint.
  uint64_t next_oid() const { return next_oid_; }

  /// Raises the OID allocator to at least `next_oid` (never lowers it):
  /// deleted objects must not lead to OID reuse after recovery.
  void RestoreNextOid(uint64_t next_oid);

 private:
  struct RelData {
    std::vector<std::pair<sqo::Oid, sqo::Oid>> pairs;
    std::map<uint64_t, std::vector<sqo::Oid>> fwd;
    std::map<uint64_t, std::vector<sqo::Oid>> bwd;
    std::set<std::pair<uint64_t, uint64_t>> pair_set;
  };

  struct ValueEq {
    bool operator()(const sqo::Value& a, const sqo::Value& b) const {
      return a.Equals(b);
    }
  };
  using HashIndex =
      std::unordered_map<sqo::Value, std::vector<sqo::Oid>, sqo::ValueHash, ValueEq>;

  /// Relations (exact + ancestors/struct) an instance row belongs to.
  std::vector<std::string> MemberRelations(const std::string& exact_relation) const;

  /// Inserts a pair into `rel` (no inverse handling). `record` queues a
  /// kInsertPair mutation for the listener (off on replay paths).
  sqo::Status InsertPair(const std::string& rel, sqo::Oid src, sqo::Oid dst,
                         bool enforce_cardinality, bool record = true);

  /// Removes a pair from `rel` (no inverse handling).
  void ErasePair(const std::string& rel, sqo::Oid src, sqo::Oid dst,
                 bool record = true);

  /// Installs a fully built object row: record map, extents of every member
  /// relation, declared indexes. Shared by CreateInstance and replay.
  void InstallRecord(sqo::Oid oid, const std::string& relation, Row row);

  /// In-place attribute write with index maintenance, shared by
  /// UpdateAttribute and replay. `pos` must be a valid non-OID position of
  /// the object's exact row.
  sqo::Status UpdateRowPosition(sqo::Oid oid, size_t pos, sqo::Value value);

  /// DeleteObject's body; `record` queues the primitive records.
  sqo::Status DeleteObjectImpl(sqo::Oid oid, bool record);

  /// Applies one primitive record (replay; no listener, no cardinality).
  sqo::Status ApplyOne(const Mutation& m);

  /// Queues `m` for the listener (no-op without one).
  void Record(Mutation m);

  /// Delivers and clears the queued records of the completing operation.
  sqo::Status FlushMutations();

  /// Resolves the declared inverse relation of `rel` ("" if none), cached.
  std::string InverseOf(const std::string& rel, const datalog::RelationSignature& sig);

  sqo::Result<sqo::Oid> CreateInstance(const std::string& type_name,
                                       const std::map<std::string, sqo::Value>& attrs,
                                       bool is_struct);

  /// Incremental maintenance of the adaptive secondary indexes, scoped to
  /// the member relations of the mutated object (indexes over unrelated
  /// relations are untouched). Each call that changes a built index counts
  /// one "index.delta_applies".
  void LazyIndexInsert(const std::vector<std::string>& members, const Row& row,
                       sqo::Oid oid);
  void LazyIndexUpdate(const std::vector<std::string>& members, size_t pos,
                       const sqo::Value& old_value, const sqo::Value& new_value,
                       sqo::Oid oid);
  void LazyIndexErase(const std::vector<std::string>& members, const Row& row,
                      sqo::Oid oid);

  /// Derives and inserts the ASR pairs a new `(src, dst)` pair of path
  /// relation `rel` gives rise to, for every fresh registered ASR whose
  /// path contains `rel` (prefix reachability backwards from `src`, suffix
  /// reachability forwards from `dst`).
  sqo::Status MaintainAsrsOnInsert(const std::string& rel, sqo::Oid src,
                                   sqo::Oid dst, bool record);

  /// Marks every registered ASR whose path contains `rel` stale: removing
  /// a path pair is a counting problem (a derived pair may have other
  /// witnesses), so deletions demand re-materialization.
  void MarkAsrsStaleOnErase(const std::string& rel);

  /// Read-path half of the lazy ASR self-heal: when `relation` names a
  /// stale ASR, re-derive its extent in place before the read proceeds.
  /// Const because it runs on read accessors; like LazyIndexLookup the
  /// rebuild happens under `lazy_mu_` and mutates only derived state.
  void LazyRebuildIfStale(const std::string& relation) const;

  /// Rebuilds one stale ASR (and, first, any stale ASR its path hops
  /// through, depth-bounded like insert maintenance) by re-walking the
  /// path over the current pair data. lazy_mu_ held; no mutation records.
  void RebuildAsrLocked(AsrState& state, int depth);

  const translate::TranslatedSchema* schema_;
  std::map<uint64_t, ObjectRecord> objects_;
  std::map<std::string, std::vector<sqo::Oid>> extents_;
  std::map<std::string, RelData> rels_;
  std::map<std::string, std::map<size_t, HashIndex>> indexes_;
  /// Adaptive attribute indexes (LazyIndexLookup): built on first probe,
  /// then delta-maintained by mutations. Mutable: building happens on const
  /// read paths; `lazy_mu_` guards the table and `ever_built_`.
  mutable std::mutex lazy_mu_;
  mutable std::map<std::string, std::map<size_t, HashIndex>> lazy_indexes_;
  /// (relation, pos) pairs that were built at least once this store
  /// lifetime — a later from-scratch build is a full rebuild, not a lazy
  /// build.
  mutable std::set<std::pair<std::string, size_t>> ever_built_;
  /// Maintenance state of every materialized ASR, keyed by relation name.
  std::map<std::string, AsrState> asrs_;
  /// Number of entries of `asrs_` with `stale == true`. The read accessors
  /// poll this (one relaxed-ish atomic load) to keep the fresh-ASR fast
  /// path free of map lookups; a release store after a rebuild pairs with
  /// the acquire load, so a reader that sees zero also sees the rebuilt
  /// pair data.
  mutable std::atomic<size_t> stale_asr_count_{0};
  /// Recursion guard for ASRs whose paths are defined over other ASRs.
  int asr_maintenance_depth_ = 0;
  std::map<std::string, MethodFn> methods_;
  /// relation name of a relationship -> relation name of its inverse ("")
  std::map<std::string, std::string> inverse_of_;
  uint64_t next_oid_ = 1;
  MutationListener listener_;
  /// Primitive records of the logical operation in progress; delivered as
  /// one batch by FlushMutations. Only populated while a listener is set.
  std::vector<Mutation> pending_;
};

}  // namespace sqo::engine

#endif  // SQO_ENGINE_OBJECT_STORE_H_
