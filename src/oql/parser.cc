#include "oql/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace sqo::oql {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

OqlParser::OqlParser(std::string_view text) : text_(text) { Lex(); }

void OqlParser::Lex() {
  size_t i = 0, line = 1;
  const std::string& s = text_;
  auto push = [&](Token t) {
    t.line = line;
    tokens_.push_back(std::move(t));
  };
  while (i < s.size()) {
    char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if ((c == '-' && i + 1 < s.size() && s[i + 1] == '-') ||
        (c == '/' && i + 1 < s.size() && s[i + 1] == '/')) {
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < s.size() && IsIdentChar(s[i])) ++i;
      Token t;
      t.kind = Token::kIdent;
      t.text = s.substr(start, i - start);
      push(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                              (s[i] == '.' && i + 1 < s.size() &&
                               std::isdigit(static_cast<unsigned char>(s[i + 1]))))) {
        if (s[i] == '.') is_float = true;
        ++i;
      }
      std::string num = s.substr(start, i - start);
      double scale = 1.0;
      bool force_double = false;
      if (i < s.size() && (s[i] == 'K' || s[i] == 'k')) {
        scale = 1000.0;
        ++i;
      } else if (i < s.size() && s[i] == 'M') {
        scale = 1000000.0;
        ++i;
      } else if (i < s.size() && s[i] == '%') {
        scale = 0.01;
        force_double = true;
        ++i;
      }
      Token t;
      t.kind = Token::kNumber;
      t.text = num;
      if (is_float || force_double) {
        t.value = sqo::Value::Double(std::strtod(num.c_str(), nullptr) * scale);
      } else {
        t.value = sqo::Value::Int(static_cast<int64_t>(
            std::strtoll(num.c_str(), nullptr, 10) * static_cast<int64_t>(scale)));
      }
      push(std::move(t));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string contents;
      bool closed = false;
      while (i < s.size()) {
        if (s[i] == '\\' && i + 1 < s.size()) {
          contents += s[i + 1];
          i += 2;
          continue;
        }
        if (s[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        contents += s[i++];
      }
      Token t;
      if (!closed) {
        t.kind = Token::kError;
        t.text = "unterminated string";
      } else {
        t.kind = Token::kString;
        t.text = contents;
        t.value = sqo::Value::String(contents);
      }
      push(std::move(t));
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < s.size() && s[i + 1] == b;
    };
    Token t;
    if (two('<', '=')) {
      t.kind = Token::kCmp;
      t.op = sqo::CmpOp::kLe;
      i += 2;
    } else if (two('>', '=')) {
      t.kind = Token::kCmp;
      t.op = sqo::CmpOp::kGe;
      i += 2;
    } else if (two('!', '=') || two('<', '>')) {
      t.kind = Token::kCmp;
      t.op = sqo::CmpOp::kNe;
      i += 2;
    } else if (two('=', '=')) {
      t.kind = Token::kCmp;
      t.op = sqo::CmpOp::kEq;
      i += 2;
    } else {
      switch (c) {
        case '(':
          t.kind = Token::kLParen;
          break;
        case ')':
          t.kind = Token::kRParen;
          break;
        case ',':
          t.kind = Token::kComma;
          break;
        case '.':
          t.kind = Token::kDot;
          break;
        case ':':
          t.kind = Token::kColon;
          break;
        case '=':
          t.kind = Token::kCmp;
          t.op = sqo::CmpOp::kEq;
          break;
        case '<':
          t.kind = Token::kCmp;
          t.op = sqo::CmpOp::kLt;
          break;
        case '>':
          t.kind = Token::kCmp;
          t.op = sqo::CmpOp::kGt;
          break;
        default:
          t.kind = Token::kError;
          t.text = std::string("unexpected character '") + c + "'";
          break;
      }
      ++i;
    }
    push(std::move(t));
  }
  Token end;
  end.kind = Token::kEnd;
  end.line = line;
  tokens_.push_back(std::move(end));
}

const OqlParser::Token& OqlParser::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

OqlParser::Token OqlParser::Consume() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool OqlParser::ConsumeIf(Token::Kind kind) {
  if (Peek().kind == kind) {
    Consume();
    return true;
  }
  return false;
}

bool OqlParser::PeekKeyword(std::string_view keyword, size_t ahead) const {
  return Peek(ahead).kind == Token::kIdent &&
         sqo::ToLower(Peek(ahead).text) == sqo::ToLower(keyword);
}

bool OqlParser::ConsumeKeyword(std::string_view keyword) {
  if (PeekKeyword(keyword)) {
    Consume();
    return true;
  }
  return false;
}

sqo::Status OqlParser::Expect(Token::Kind kind, std::string_view what) {
  if (Peek().kind != kind) return ErrorAt(Peek(), "expected " + std::string(what));
  Consume();
  return sqo::Status::Ok();
}

sqo::Status OqlParser::ErrorAt(const Token& tok, std::string message) const {
  std::string detail = "OQL: " + message + " at line " + std::to_string(tok.line);
  if (!tok.text.empty()) detail += " near '" + tok.text + "'";
  return sqo::ParseError(std::move(detail));
}

sqo::Result<std::vector<Expr>> OqlParser::ParseCallArgs() {
  std::vector<Expr> args;
  Consume();  // '('
  if (Peek().kind != Token::kRParen) {
    while (true) {
      SQO_ASSIGN_OR_RETURN(Expr arg, ParseExpr());
      args.push_back(std::move(arg));
      if (!ConsumeIf(Token::kComma)) break;
    }
  }
  SQO_RETURN_IF_ERROR(Expect(Token::kRParen, "')'"));
  return args;
}

sqo::Result<Expr> OqlParser::ParsePath(std::string base) {
  Expr e = Expr::Ident(std::move(base));
  while (ConsumeIf(Token::kDot)) {
    if (Peek().kind != Token::kIdent) {
      return ErrorAt(Peek(), "expected a property or method name after '.'");
    }
    PathStep step;
    step.name = Consume().text;
    if (Peek().kind == Token::kLParen) {
      SQO_ASSIGN_OR_RETURN(std::vector<Expr> args, ParseCallArgs());
      step.call_args = std::move(args);
    }
    e.steps.push_back(std::move(step));
  }
  return e;
}

sqo::Result<Expr> OqlParser::ParseExpr() {
  if (depth_ >= kMaxParseDepth) {
    return sqo::ResourceExhaustedError(
        "OQL: expression nesting exceeds the parser depth limit (" +
        std::to_string(kMaxParseDepth) + ")");
  }
  ++depth_;
  sqo::Result<Expr> result = ParseExprInner();
  --depth_;
  return result;
}

sqo::Result<Expr> OqlParser::ParseExprInner() {
  const Token& tok = Peek();
  if (tok.kind == Token::kNumber || tok.kind == Token::kString) {
    return Expr::Literal(Consume().value);
  }
  if (tok.kind != Token::kIdent) {
    return ErrorAt(tok, "expected an expression");
  }
  std::string lower = sqo::ToLower(tok.text);
  if (lower == "true" || lower == "false") {
    Consume();
    return Expr::Literal(sqo::Value::Bool(lower == "true"));
  }
  // Collection constructors.
  if ((lower == "list" || lower == "set" || lower == "bag") &&
      Peek(1).kind == Token::kLParen) {
    Expr e;
    e.kind = Expr::Kind::kCollection;
    e.ctor_name = lower;
    Consume();  // name
    SQO_ASSIGN_OR_RETURN(e.elements, ParseCallArgs());
    return e;
  }
  // Struct constructors: `struct(f: e, ...)` or `Name(f: e, ...)` — detected
  // by the `ident ( ident :` lookahead.
  if (Peek(1).kind == Token::kLParen &&
      (lower == "struct" ||
       (Peek(2).kind == Token::kIdent && Peek(3).kind == Token::kColon))) {
    Expr e;
    e.kind = Expr::Kind::kStruct;
    e.ctor_name = Consume().text;
    Consume();  // '('
    while (true) {
      if (Peek().kind != Token::kIdent) {
        return ErrorAt(Peek(), "expected a field name in struct constructor");
      }
      StructField field;
      field.name = Consume().text;
      SQO_RETURN_IF_ERROR(Expect(Token::kColon, "':'"));
      SQO_ASSIGN_OR_RETURN(Expr value, ParseExpr());
      field.value.push_back(std::move(value));
      e.fields.push_back(std::move(field));
      if (!ConsumeIf(Token::kComma)) break;
    }
    SQO_RETURN_IF_ERROR(Expect(Token::kRParen, "')'"));
    return e;
  }
  return ParsePath(Consume().text);
}

sqo::Result<FromEntry> OqlParser::ParseFromEntry() {
  if (Peek().kind != Token::kIdent) {
    return ErrorAt(Peek(), "expected a from-clause range");
  }
  // Paper style: `x in Domain` / `x not in Domain`.
  if (PeekKeyword("in", 1) ||
      (PeekKeyword("not", 1) && PeekKeyword("in", 2))) {
    std::string var = Consume().text;
    bool positive = !ConsumeKeyword("not");
    ConsumeKeyword("in");
    SQO_ASSIGN_OR_RETURN(Expr domain, ParseExpr());
    if (domain.kind != Expr::Kind::kPath) {
      return sqo::ParseError("OQL: from-clause domain must be an extent or path");
    }
    return FromEntry::Range(std::move(var), std::move(domain), positive);
  }
  // SQL-92 style: `Domain [as] x`.
  SQO_ASSIGN_OR_RETURN(Expr domain, ParseExpr());
  if (domain.kind != Expr::Kind::kPath) {
    return sqo::ParseError("OQL: from-clause domain must be an extent or path");
  }
  ConsumeKeyword("as");
  if (Peek().kind != Token::kIdent) {
    return ErrorAt(Peek(), "expected a range variable name");
  }
  std::string var = Consume().text;
  return FromEntry::Range(std::move(var), std::move(domain), true);
}

sqo::Result<Predicate> OqlParser::ParsePredicate() {
  if (depth_ >= kMaxParseDepth) {
    return sqo::ResourceExhaustedError(
        "OQL: predicate nesting exceeds the parser depth limit (" +
        std::to_string(kMaxParseDepth) + ")");
  }
  ++depth_;
  sqo::Result<Predicate> result = ParsePredicateInner();
  --depth_;
  return result;
}

sqo::Result<Predicate> OqlParser::ParsePredicateInner() {
  // exists v in <collection> : <pred>   or   : ( <pred> and <pred> ... )
  if (PeekKeyword("exists")) {
    Consume();
    if (Peek().kind != Token::kIdent) {
      return ErrorAt(Peek(), "expected a quantified variable after 'exists'");
    }
    std::string var = Consume().text;
    if (!ConsumeKeyword("in")) {
      return ErrorAt(Peek(), "expected 'in' in exists quantifier");
    }
    SQO_ASSIGN_OR_RETURN(Expr collection, ParseExpr());
    SQO_RETURN_IF_ERROR(Expect(Token::kColon, "':'"));
    std::vector<Predicate> inner;
    if (ConsumeIf(Token::kLParen)) {
      while (true) {
        SQO_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
        inner.push_back(std::move(p));
        if (!ConsumeKeyword("and")) break;
      }
      SQO_RETURN_IF_ERROR(Expect(Token::kRParen, "')'"));
    } else {
      SQO_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
      inner.push_back(std::move(p));
    }
    return Predicate::Exists(std::move(var), std::move(collection),
                             std::move(inner));
  }
  SQO_ASSIGN_OR_RETURN(Expr lhs, ParseExpr());
  if (PeekKeyword("in") || (PeekKeyword("not") && PeekKeyword("in", 1))) {
    bool positive = !ConsumeKeyword("not");
    ConsumeKeyword("in");
    SQO_ASSIGN_OR_RETURN(Expr collection, ParseExpr());
    return Predicate::Membership(std::move(lhs), std::move(collection), positive);
  }
  if (Peek().kind != Token::kCmp) {
    return ErrorAt(Peek(), "expected a comparison or membership predicate");
  }
  Token op = Consume();
  SQO_ASSIGN_OR_RETURN(Expr rhs, ParseExpr());
  return Predicate::Comparison(std::move(lhs), op.op, std::move(rhs));
}

sqo::Result<std::vector<SelectQuery>> OqlParser::ParseQueries() {
  SelectQuery base;
  if (!ConsumeKeyword("select")) {
    return ErrorAt(Peek(), "expected 'select'");
  }
  base.distinct = ConsumeKeyword("distinct");
  while (true) {
    SQO_ASSIGN_OR_RETURN(Expr e, ParseExpr());
    base.select_list.push_back(std::move(e));
    if (!ConsumeIf(Token::kComma)) break;
  }
  if (!ConsumeKeyword("from")) {
    return ErrorAt(Peek(), "expected 'from'");
  }
  while (true) {
    SQO_ASSIGN_OR_RETURN(FromEntry entry, ParseFromEntry());
    base.from.push_back(std::move(entry));
    if (ConsumeIf(Token::kComma)) continue;
    // Paper style: ranges separated by whitespace only. Continue if the
    // next tokens look like the start of another range.
    if (Peek().kind == Token::kIdent && !PeekKeyword("where") &&
        (PeekKeyword("in", 1) || (PeekKeyword("not", 1) && PeekKeyword("in", 2)))) {
      continue;
    }
    break;
  }
  std::vector<std::vector<Predicate>> disjuncts;
  if (ConsumeKeyword("where")) {
    disjuncts.emplace_back();
    while (true) {
      SQO_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
      disjuncts.back().push_back(std::move(p));
      if (ConsumeKeyword("and")) continue;
      if (ConsumeKeyword("or")) {
        disjuncts.emplace_back();
        continue;
      }
      break;
    }
  }
  if (Peek().kind != Token::kEnd) {
    return ErrorAt(Peek(), "unexpected trailing input");
  }
  std::vector<SelectQuery> out;
  if (disjuncts.empty()) {
    out.push_back(std::move(base));
    return out;
  }
  for (std::vector<Predicate>& conj : disjuncts) {
    SelectQuery q = base;
    q.where = std::move(conj);
    out.push_back(std::move(q));
  }
  return out;
}

sqo::Result<SelectQuery> OqlParser::ParseQuery() {
  SQO_ASSIGN_OR_RETURN(std::vector<SelectQuery> queries, ParseQueries());
  if (queries.size() != 1) {
    return sqo::UnsupportedError(
        "OQL: disjunctive conditions need the union pipeline "
        "(Pipeline::OptimizeDisjunctiveText)");
  }
  return std::move(queries.front());
}

sqo::Result<SelectQuery> ParseOql(std::string_view text) {
  return OqlParser(text).ParseQuery();
}

sqo::Result<std::vector<SelectQuery>> ParseOqlDisjunctive(std::string_view text) {
  return OqlParser(text).ParseQueries();
}

}  // namespace sqo::oql
