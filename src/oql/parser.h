#ifndef SQO_OQL_PARSER_H_
#define SQO_OQL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "oql/ast.h"

namespace sqo::oql {

/// Recursive-descent parser for the OQL select-from-where subset of §4.3.
/// Grammar (keywords case-insensitive):
///
///   query     := "select" ["distinct"] expr ("," expr)*
///                "from" range (( "," | ε ) range)*
///                ["where" predicate ("and" predicate)*]
///   range     := ident ["not"] "in" path            -- paper style
///              | path ["as"] ident                  -- SQL-92 style
///   predicate := expr cmp expr
///              | expr ["not"] "in" path
///   expr      := literal | path | ctor
///   ctor      := ("struct" | Name) "(" field ":" expr ("," field ":" expr)* ")"
///              | ("list" | "set" | "bag") "(" [expr ("," expr)*] ")"
///   path      := ident ("." ident ["(" [expr ("," expr)*] ")"])*
///   literal   := number ["K" | "M" | "%"] | string | "true" | "false"
///   cmp       := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
///
/// The paper separates from-clause ranges by whitespace only
/// ("from x in Student y in x.Takes ..."); both that and comma separation
/// are accepted. `10%` parses as 0.10 and `40K` as 40000, matching the
/// paper's literals.
class OqlParser {
 public:
  explicit OqlParser(std::string_view text);

  /// Parses one select-from-where query. Rejects top-level `or` — use
  /// ParseQueries for disjunctive conditions.
  sqo::Result<SelectQuery> ParseQuery();

  /// Parses a query whose condition may be a disjunction of conjunctions
  /// (`... where C1 and C2 or C3 ...`, with `or` binding weaker than
  /// `and`). Returns one SelectQuery per disjunct, sharing the select and
  /// from clauses — the DATALOG image of a union of conjunctive queries,
  /// which is how the paper's "set expressions … can be represented in
  /// DATALOG" plays out for union. A query without `or` yields exactly one
  /// element.
  sqo::Result<std::vector<SelectQuery>> ParseQueries();

 private:
  struct Token {
    enum Kind {
      kIdent,
      kNumber,
      kString,
      kLParen,
      kRParen,
      kComma,
      kDot,
      kColon,
      kCmp,
      kEnd,
      kError,
    };
    Kind kind = kEnd;
    std::string text;
    sqo::Value value;
    sqo::CmpOp op = sqo::CmpOp::kEq;
    size_t line = 1;
  };

  void Lex();
  const Token& Peek(size_t ahead = 0) const;
  Token Consume();
  bool ConsumeIf(Token::Kind kind);
  bool PeekKeyword(std::string_view keyword, size_t ahead = 0) const;
  bool ConsumeKeyword(std::string_view keyword);
  sqo::Status Expect(Token::Kind kind, std::string_view what);
  sqo::Status ErrorAt(const Token& tok, std::string message) const;

  sqo::Result<Expr> ParseExpr();
  sqo::Result<Expr> ParseExprInner();
  sqo::Result<Expr> ParsePath(std::string base);
  sqo::Result<std::vector<Expr>> ParseCallArgs();
  sqo::Result<FromEntry> ParseFromEntry();
  sqo::Result<Predicate> ParsePredicate();
  sqo::Result<Predicate> ParsePredicateInner();

  /// Constructor arguments and `exists` predicates recurse; nesting is
  /// bounded explicitly so adversarial input gets kResourceExhausted
  /// instead of a stack overflow. Paths are iterative and unbounded.
  static constexpr int kMaxParseDepth = 512;
  int depth_ = 0;

  std::string text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Convenience wrappers.
sqo::Result<SelectQuery> ParseOql(std::string_view text);
sqo::Result<std::vector<SelectQuery>> ParseOqlDisjunctive(std::string_view text);

}  // namespace sqo::oql

#endif  // SQO_OQL_PARSER_H_
