#ifndef SQO_OQL_AST_H_
#define SQO_OQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/cmp.h"
#include "common/value.h"

namespace sqo::oql {

struct Expr;

/// One step of a path expression: an attribute/relationship name, or a
/// method call with user-provided arguments (`taxes_withheld(10%)`).
struct PathStep {
  std::string name;
  /// Present iff this step is a method call; may be an empty vector for a
  /// zero-argument call.
  std::optional<std::vector<Expr>> call_args;

  bool is_call() const { return call_args.has_value(); }
  bool operator==(const PathStep& other) const;
};

/// A named field of a struct constructor: `city: w.address.city`.
struct StructField {
  std::string name;
  std::vector<Expr> value;  // exactly one element (vector for value semantics)

  bool operator==(const StructField& other) const;
};

/// An OQL value expression of the restricted subset: a literal, a (possibly
/// multi-step) path expression with optional method-call steps, or a
/// constructor (struct / list / set / bag). Constructors may appear only in
/// the select clause; they are never translated to DATALOG (§4.3) — Step 4
/// preserves them by editing the original AST in place.
struct Expr {
  enum class Kind { kLiteral, kPath, kStruct, kCollection };

  Kind kind = Kind::kLiteral;

  // kLiteral
  sqo::Value literal;

  // kPath: `base.step1.step2...`; `base` alone is a bare identifier.
  std::string base;
  std::vector<PathStep> steps;

  // kStruct: constructor type name ("struct" when anonymous) and fields.
  // kCollection: "list" / "set" / "bag" and element expressions.
  std::string ctor_name;
  std::vector<StructField> fields;
  std::vector<Expr> elements;

  static Expr Literal(sqo::Value v);
  static Expr Ident(std::string name);
  static Expr Path(std::string base, std::vector<PathStep> steps);

  bool is_bare_ident() const { return kind == Kind::kPath && steps.empty(); }

  bool operator==(const Expr& other) const;

  /// Renders back to OQL surface syntax.
  std::string ToString() const;
};

/// A where-clause predicate: a comparison between expressions, a
/// membership test (`e in p`, `e not in p`), or an existential quantifier
/// (`exists v in p : predicate`) — the extension the paper lists as future
/// work ("we intend to consider larger classes of OQL queries, e.g.,
/// existentially quantified queries"). Conjunctive query bodies are
/// implicitly existential, so a positive `exists` translates to ordinary
/// atoms over a fresh, unprojected variable. Membership predicates appear
/// in optimized queries when the change mapper cannot add a from-clause
/// range (the variable is already bound).
struct Predicate {
  enum class Kind { kComparison, kMembership, kExists };

  Kind kind = Kind::kComparison;

  // kComparison
  sqo::CmpOp op = sqo::CmpOp::kEq;
  std::vector<Expr> lhs;  // exactly one element
  std::vector<Expr> rhs;  // exactly one element

  // kMembership: element [not] in collection
  bool positive = true;
  std::vector<Expr> element;     // exactly one element
  std::vector<Expr> collection;  // exactly one element

  // kExists: exists <var> in <collection> : <inner>. `inner` holds the
  // quantified conjunction (one or more predicates).
  std::string var;
  std::vector<Predicate> inner;

  static Predicate Comparison(Expr l, sqo::CmpOp op, Expr r);
  static Predicate Membership(Expr element, Expr collection, bool positive);
  static Predicate Exists(std::string var, Expr collection,
                          std::vector<Predicate> inner);

  bool operator==(const Predicate& other) const;
  std::string ToString() const;
};

/// One from-clause range: `x in Students` (positive, declares `x`) or the
/// SQO-introduced `x not in Faculty` (negative, constrains an existing
/// variable — paper §5.2 and ALGORITHM DATALOG_to_OQL case 2).
struct FromEntry {
  std::string var;
  std::vector<Expr> domain;  // exactly one element: extent name or path
  bool positive = true;

  static FromEntry Range(std::string var, Expr domain, bool positive = true);

  bool operator==(const FromEntry& other) const;
  std::string ToString() const;
};

/// A select-from-where OQL query (the subset of §4.3).
struct SelectQuery {
  bool distinct = false;
  std::vector<Expr> select_list;
  std::vector<FromEntry> from;
  std::vector<Predicate> where;  // conjunctive

  bool operator==(const SelectQuery& other) const;

  /// Renders to OQL text, formatted clause-per-line like the paper.
  std::string ToString() const;
};

}  // namespace sqo::oql

#endif  // SQO_OQL_AST_H_
