#include "oql/ast.h"

#include "common/strings.h"

namespace sqo::oql {

bool PathStep::operator==(const PathStep& other) const {
  return name == other.name && call_args == other.call_args;
}

bool StructField::operator==(const StructField& other) const {
  return name == other.name && value == other.value;
}

Expr Expr::Literal(sqo::Value v) {
  Expr e;
  e.kind = Kind::kLiteral;
  e.literal = std::move(v);
  return e;
}

Expr Expr::Ident(std::string name) {
  Expr e;
  e.kind = Kind::kPath;
  e.base = std::move(name);
  return e;
}

Expr Expr::Path(std::string base, std::vector<PathStep> steps) {
  Expr e;
  e.kind = Kind::kPath;
  e.base = std::move(base);
  e.steps = std::move(steps);
  return e;
}

bool Expr::operator==(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kLiteral:
      return literal == other.literal;
    case Kind::kPath:
      return base == other.base && steps == other.steps;
    case Kind::kStruct:
      return ctor_name == other.ctor_name && fields == other.fields;
    case Kind::kCollection:
      return ctor_name == other.ctor_name && elements == other.elements;
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral: {
      // OQL renders strings with double quotes, which Value::ToString
      // already does.
      return literal.ToString();
    }
    case Kind::kPath: {
      std::string out = base;
      for (const PathStep& step : steps) {
        out += "." + step.name;
        if (step.is_call()) {
          std::vector<std::string> args;
          args.reserve(step.call_args->size());
          for (const Expr& a : *step.call_args) args.push_back(a.ToString());
          out += "(" + StrJoin(args, ", ") + ")";
        }
      }
      return out;
    }
    case Kind::kStruct: {
      std::vector<std::string> parts;
      parts.reserve(fields.size());
      for (const StructField& f : fields) {
        parts.push_back(f.name + ": " + f.value.front().ToString());
      }
      return ctor_name + "(" + StrJoin(parts, ", ") + ")";
    }
    case Kind::kCollection: {
      std::vector<std::string> parts;
      parts.reserve(elements.size());
      for (const Expr& e : elements) parts.push_back(e.ToString());
      return ctor_name + "(" + StrJoin(parts, ", ") + ")";
    }
  }
  return "?";
}

Predicate Predicate::Comparison(Expr l, sqo::CmpOp op, Expr r) {
  Predicate p;
  p.kind = Kind::kComparison;
  p.op = op;
  p.lhs.push_back(std::move(l));
  p.rhs.push_back(std::move(r));
  return p;
}

Predicate Predicate::Membership(Expr element, Expr collection, bool positive) {
  Predicate p;
  p.kind = Kind::kMembership;
  p.positive = positive;
  p.element.push_back(std::move(element));
  p.collection.push_back(std::move(collection));
  return p;
}

Predicate Predicate::Exists(std::string var, Expr collection,
                            std::vector<Predicate> inner) {
  Predicate p;
  p.kind = Kind::kExists;
  p.var = std::move(var);
  p.collection.push_back(std::move(collection));
  p.inner = std::move(inner);
  return p;
}

bool Predicate::operator==(const Predicate& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kComparison:
      return op == other.op && lhs == other.lhs && rhs == other.rhs;
    case Kind::kMembership:
      return positive == other.positive && element == other.element &&
             collection == other.collection;
    case Kind::kExists:
      return var == other.var && collection == other.collection &&
             inner == other.inner;
  }
  return false;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kComparison:
      return lhs.front().ToString() + " " + std::string(sqo::CmpOpSymbol(op)) +
             " " + rhs.front().ToString();
    case Kind::kMembership:
      return element.front().ToString() + (positive ? " in " : " not in ") +
             collection.front().ToString();
    case Kind::kExists: {
      std::string out = "exists " + var + " in " +
                        collection.front().ToString() + " : (";
      for (size_t i = 0; i < inner.size(); ++i) {
        if (i > 0) out += " and ";
        out += inner[i].ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

FromEntry FromEntry::Range(std::string var, Expr domain, bool positive) {
  FromEntry f;
  f.var = std::move(var);
  f.domain.push_back(std::move(domain));
  f.positive = positive;
  return f;
}

bool FromEntry::operator==(const FromEntry& other) const {
  return var == other.var && domain == other.domain && positive == other.positive;
}

std::string FromEntry::ToString() const {
  return var + (positive ? " in " : " not in ") + domain.front().ToString();
}

bool SelectQuery::operator==(const SelectQuery& other) const {
  return distinct == other.distinct && select_list == other.select_list &&
         from == other.from && where == other.where;
}

std::string SelectQuery::ToString() const {
  std::vector<std::string> sel;
  sel.reserve(select_list.size());
  for (const Expr& e : select_list) sel.push_back(e.ToString());
  std::string out = "select ";
  if (distinct) out += "distinct ";
  out += StrJoin(sel, ", ");
  out += "\nfrom ";
  std::vector<std::string> ranges;
  ranges.reserve(from.size());
  for (const FromEntry& f : from) ranges.push_back(f.ToString());
  out += StrJoin(ranges, ",\n     ");
  if (!where.empty()) {
    std::vector<std::string> preds;
    preds.reserve(where.size());
    for (const Predicate& p : where) preds.push_back(p.ToString());
    out += "\nwhere " + StrJoin(preds, " and ");
  }
  return out;
}

}  // namespace sqo::oql
