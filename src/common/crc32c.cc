#include "common/crc32c.h"

#include <array>

namespace sqo {

namespace {

/// 4 tables of 256 entries: table[0] is the plain byte-at-a-time table for
/// the reflected Castagnoli polynomial; table[k] advances a byte through
/// k additional zero bytes, enabling the slice-by-4 inner loop.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  constexpr Crc32cTables() : t{} {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

constexpr Crc32cTables kTables;

uint32_t Update(uint32_t crc, const unsigned char* p, size_t n) {
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFFu] ^ kTables.t[2][(crc >> 8) & 0xFFu] ^
          kTables.t[1][(crc >> 16) & 0xFFu] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
  }
  return crc;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size) {
  return ~Update(~0u, static_cast<const unsigned char*>(data), size);
}

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  return ~Update(~crc, static_cast<const unsigned char*>(data), size);
}

}  // namespace sqo
