#ifndef SQO_COMMON_CONTEXT_H_
#define SQO_COMMON_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace sqo {

/// Per-phase work budgets, in units of the phase's dominant operation
/// (0 = unlimited). Budgets bound the *combinatorial* blow-ups of the
/// Figure-2 pipeline: residue application and alternative generation in
/// Step 3, and join/row work in the evaluator.
struct WorkBudgets {
  uint64_t residue_applications = 0;  // optimizer: residues tried
  uint64_t alternatives = 0;          // optimizer: rewritings generated
  uint64_t eval_joins = 0;            // evaluator: join steps attempted
  uint64_t eval_rows = 0;             // evaluator: tuples emitted
};

/// Resource governance for one unit of work (one query through the
/// pipeline, one evaluation): a steady-clock deadline, work budgets, and a
/// cooperative cancellation flag.
///
/// The context *latches*: the first governance violation (deadline expiry,
/// budget exhaustion, cancellation) is recorded as an error Status that
/// every subsequent `Check`/`Charge*` call returns, so deep loops can bail
/// out cheaply by polling `ok()` and the phase boundary that observes the
/// failure reports the original cause. Create a fresh context per query —
/// a latched context stays errored by design.
///
/// Like the obs tracer/metrics registry, a context is *pull*-installed per
/// thread via `ScopedContext`; instrumentation sites call the free
/// functions below, which are no-ops (one thread-local load and a branch)
/// when no context is installed. The library is single-threaded per query;
/// only `RequestCancellation` may be called from another thread.
class ExecutionContext {
 public:
  ExecutionContext() = default;

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Sets an absolute steady-clock deadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Sets the deadline `budget` from now.
  void SetDeadlineAfter(std::chrono::milliseconds budget) {
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }

  bool has_deadline() const { return has_deadline_; }

  /// The absolute deadline (meaningful only when `has_deadline()`); lets a
  /// fan-out seed per-task contexts with the caller's deadline.
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// Forces the deadline into the past, so the next `Check` fails with
  /// kResourceExhausted. Deterministic deadline expiry for tests and
  /// failpoints — no wall-clock sleeping required.
  void ExpireDeadlineNow() {
    deadline_ = std::chrono::steady_clock::time_point::min();
    has_deadline_ = true;
  }

  /// Requests cooperative cancellation; the next `Check` fails with
  /// kCancelled. Safe to call from another thread.
  void RequestCancellation() { cancelled_.store(true, std::memory_order_relaxed); }

  WorkBudgets& budgets() { return budgets_; }
  const WorkBudgets& budgets() const { return budgets_; }

  /// Fast health probe: false once any violation has latched. No clock
  /// read — loops poll this and leave the expensive check to the phase
  /// boundary.
  bool ok() const {
    return latched_.ok() && !cancelled_.load(std::memory_order_relaxed);
  }

  /// Full governance check: latched error, then cancellation, then
  /// deadline. `site` names the phase for the error message of a newly
  /// latched violation.
  Status Check(std::string_view site);

  /// Latches an externally detected error (e.g. a failpoint firing inside
  /// a loop that cannot propagate a Status). First error wins.
  void LatchError(Status status);

  /// Charge `n` units against a budget; returns kResourceExhausted (and
  /// latches) when the budget is exceeded. Deadline expiry is also
  /// observed every `kDeadlinePollStride` charges, so a runaway loop
  /// honours the deadline even between phase boundaries.
  Status ChargeResidueApplications(uint64_t n = 1);
  Status ChargeAlternatives(uint64_t n = 1);
  Status ChargeEvalJoins(uint64_t n = 1);
  Status ChargeEvalRows(uint64_t n = 1);

  /// True when the latched violation was a deadline expiry (used to
  /// distinguish `optimize.deadline_exceeded` from budget exhaustion).
  bool deadline_exceeded() const { return deadline_exceeded_; }

  /// Work performed so far (for diagnostics and tests).
  uint64_t used_residue_applications() const { return used_residue_applications_; }
  uint64_t used_alternatives() const { return used_alternatives_; }
  uint64_t used_eval_joins() const { return used_eval_joins_; }
  uint64_t used_eval_rows() const { return used_eval_rows_; }

 private:
  static constexpr uint64_t kDeadlinePollStride = 4096;

  Status Charge(uint64_t* used, uint64_t limit, uint64_t n,
                std::string_view what);

  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool deadline_exceeded_ = false;
  std::atomic<bool> cancelled_{false};
  WorkBudgets budgets_;
  uint64_t used_residue_applications_ = 0;
  uint64_t used_alternatives_ = 0;
  uint64_t used_eval_joins_ = 0;
  uint64_t used_eval_rows_ = 0;
  uint64_t charges_since_poll_ = 0;
  Status latched_;
};

/// The context installed for this thread, or nullptr (governance off).
ExecutionContext* CurrentContext();

/// Installs `context` as the thread's current context for the scope,
/// restoring the previous one on destruction. Pass nullptr to force-disable
/// governance within a scope.
class ScopedContext {
 public:
  explicit ScopedContext(ExecutionContext* context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  ExecutionContext* previous_;
};

/// Checks the installed context; OK when none is installed.
Status CheckGovernance(std::string_view site);

}  // namespace sqo

#endif  // SQO_COMMON_CONTEXT_H_
