#ifndef SQO_COMMON_VALUE_H_
#define SQO_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

namespace sqo {

/// An object identifier. OIDs are opaque handles minted by the object store;
/// value 0 is reserved as "invalid". The DATALOG layer treats OIDs as
/// uninterpreted constants that support only equality, exactly matching the
/// ODMG notion of object identity.
class Oid {
 public:
  constexpr Oid() : raw_(0) {}
  constexpr explicit Oid(uint64_t raw) : raw_(raw) {}

  constexpr uint64_t raw() const { return raw_; }
  constexpr bool valid() const { return raw_ != 0; }

  friend constexpr bool operator==(Oid a, Oid b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Oid a, Oid b) { return a.raw_ != b.raw_; }
  /// Arbitrary-but-stable order so OIDs can live in ordered containers.
  friend constexpr bool operator<(Oid a, Oid b) { return a.raw_ < b.raw_; }

 private:
  uint64_t raw_;
};

/// Discriminator for `Value`.
enum class ValueKind {
  kNull = 0,
  kInt,
  kDouble,
  kString,
  kBool,
  kOid,
};

/// Returns a stable name for a value kind ("int", "string", ...).
std::string_view ValueKindName(ValueKind kind);

/// A typed runtime value: the constant domain shared by the DATALOG
/// representation (constants in atoms) and the execution engine (attribute
/// values). Numeric values (`kInt`, `kDouble`) compare with each other under
/// the usual numeric order; strings compare lexicographically; booleans and
/// OIDs support equality only (plus an arbitrary stable order used by
/// containers, exposed separately as `TotalOrder`).
class Value {
 public:
  /// Null / absent value.
  Value() : rep_(std::monostate{}) {}

  static Value Int(int64_t v) { return Value(Rep(std::in_place_index<1>, v)); }
  static Value Double(double v) { return Value(Rep(std::in_place_index<2>, v)); }
  static Value String(std::string v) {
    return Value(Rep(std::in_place_index<3>, std::move(v)));
  }
  static Value Bool(bool v) { return Value(Rep(std::in_place_index<4>, v)); }
  static Value FromOid(Oid v) { return Value(Rep(std::in_place_index<5>, v)); }

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_numeric() const {
    return kind() == ValueKind::kInt || kind() == ValueKind::kDouble;
  }

  int64_t AsInt() const { return std::get<1>(rep_); }
  double AsDoubleExact() const { return std::get<2>(rep_); }
  const std::string& AsString() const { return std::get<3>(rep_); }
  bool AsBool() const { return std::get<4>(rep_); }
  Oid AsOid() const { return std::get<5>(rep_); }

  /// Numeric view of an int or double value. Must be numeric.
  double AsNumeric() const {
    return kind() == ValueKind::kInt ? static_cast<double>(std::get<1>(rep_))
                                     : std::get<2>(rep_);
  }

  /// Semantic equality: 1 == 1.0; distinct kinds outside the numeric pair
  /// are never equal.
  bool Equals(const Value& other) const;

  /// Three-way semantic comparison. Returns -1/0/+1 for comparable pairs
  /// (numeric vs numeric, string vs string) and std::nullopt for pairs with
  /// no defined order (bool, OID, null, or mixed kinds).
  std::optional<int> Compare(const Value& other) const;

  /// Arbitrary but stable total order across all kinds, for use as a
  /// container comparator. Orders first by kind, then by value.
  static bool TotalOrder(const Value& a, const Value& b);

  /// Hash consistent with `Equals` (ints and doubles with equal numeric
  /// value hash identically).
  size_t Hash() const;

  /// Renders for diagnostics: strings quoted, OIDs as `@<raw>`.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
  friend bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }

 private:
  using Rep =
      std::variant<std::monostate, int64_t, double, std::string, bool, Oid>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// std::hash adapter for Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace sqo

#endif  // SQO_COMMON_VALUE_H_
