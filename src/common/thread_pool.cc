#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace sqo {

ThreadPool::ThreadPool(size_t threads) {
  threads = std::max<size_t>(threads, 1);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = tasks.size();
  for (std::function<void()>& task : tasks) {
    Submit([&done_mu, &done_cv, &remaining, task = std::move(task)] {
      task();
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

size_t ThreadPool::DefaultSize() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, std::min(hw, 8u));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace sqo
