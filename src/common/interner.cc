#include "common/interner.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace sqo {

namespace {

/// Process-wide intern table. `storage_` is a deque so SymbolData records
/// have stable addresses forever; the map's string_view keys point into
/// those records. Leaked intentionally (never destroyed) so symbols created
/// during static initialization stay valid through static destruction.
class InternerImpl {
 public:
  InternerImpl() {
    empty_ = InternLocked("");  // id 0, backs Symbol's default constructor
  }

  const SymbolData* Intern(std::string_view s) {
    std::lock_guard<std::mutex> lock(mu_);
    return InternLocked(s);
  }

  const SymbolData* empty() const { return empty_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return storage_.size();
  }

 private:
  const SymbolData* InternLocked(std::string_view s) {
    auto it = map_.find(s);
    if (it != map_.end()) return it->second;
    storage_.push_back(SymbolData{std::string(s),
                                  std::hash<std::string_view>()(s),
                                  static_cast<uint32_t>(storage_.size())});
    const SymbolData* data = &storage_.back();
    map_.emplace(std::string_view(data->text), data);
    return data;
  }

  mutable std::mutex mu_;
  std::deque<SymbolData> storage_;
  std::unordered_map<std::string_view, const SymbolData*> map_;
  const SymbolData* empty_ = nullptr;
};

InternerImpl& Global() {
  static InternerImpl* impl = new InternerImpl();  // leaked, see above
  return *impl;
}

}  // namespace

Symbol::Symbol() : data_(Global().empty()) {}

Symbol Intern(std::string_view s) {
  InternerImpl& g = Global();
  if (s.empty()) return Symbol(g.empty());
  return Symbol(g.Intern(s));
}

size_t InternerSize() { return Global().size(); }

}  // namespace sqo
