#include "common/cmp.h"

namespace sqo {

CmpOp NegateOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return CmpOp::kEq;
}

CmpOp FlipOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  return op;
}

std::string_view CmpOpSymbol(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, int three_way) {
  switch (op) {
    case CmpOp::kEq:
      return three_way == 0;
    case CmpOp::kNe:
      return three_way != 0;
    case CmpOp::kLt:
      return three_way < 0;
    case CmpOp::kLe:
      return three_way <= 0;
    case CmpOp::kGt:
      return three_way > 0;
    case CmpOp::kGe:
      return three_way >= 0;
  }
  return false;
}

}  // namespace sqo
