#ifndef SQO_COMMON_ENV_H_
#define SQO_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// The storage layer's I/O seam. Every byte the durability subsystem writes
/// goes through an `Env` so tests can interpose a `FaultInjectingEnv` that
/// produces short/torn writes, ENOSPC, fsync failures, and hard crashes at a
/// deterministic byte offset — the storage contract ("an acknowledged op is
/// never lost, an unacknowledged op never resurrected as acknowledged") is
/// proven against this interface, not against a cooperating filesystem.
namespace sqo::fs {

/// A writable file handle. Durability is explicit: `Append` buffers into the
/// OS, `Sync` makes it durable, and `Close` must report errors — a failed
/// close after buffered writes can lose data, so callers on the durability
/// path treat it like a failed write.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends all of `data` (retrying short writes at the POSIX layer).
  virtual Status Append(std::string_view data) = 0;

  /// fsyncs the file (failpoint site `storage.fsync` in the POSIX impl).
  virtual Status Sync() = 0;

  /// Closes the handle, reporting close-time errors. Idempotent.
  virtual Status Close() = 0;

  /// Bytes in the file (size at open plus appends through this handle).
  virtual uint64_t size() const = 0;
};

/// Filesystem operations used by src/storage. The default implementation is
/// POSIX; `FaultInjectingEnv` wraps any Env with a deterministic fault plan.
class Env {
 public:
  virtual ~Env() = default;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status EnsureDir(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Renames `from` over `to` (no failpoint here; `WriteFileAtomic` owns the
  /// `storage.rename` site so armed tests trip once per publication).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Opens `path` for appending, creating it if absent.
  virtual Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) = 0;

  /// Opens `path` truncated to empty, creating it if absent.
  virtual Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// Writes `data` to `path` atomically through `env`: write `<path>.tmp.<pid>`,
/// fsync it, close it (close failures fail the publication — buffered data
/// may not have reached the file), rename over `path` (failpoint site
/// `storage.rename`), fsync the parent directory. A crash at any point leaves
/// the old file or the new one, never a torn mix.
Status WriteFileAtomic(Env& env, const std::string& path, std::string_view data);

/// Exit code used by FaultInjectingEnv hard crashes (`std::_Exit`), chosen so
/// a parent process can tell an injected crash from a normal failure.
inline constexpr int kFaultCrashExitCode = 86;

/// Deterministic fault plan for `FaultInjectingEnv`. Byte thresholds are
/// cumulative over every byte appended through the env (all files), so a
/// seeded chaos loop can place a fault at any point of a write sequence
/// without knowing file boundaries. `kNever` disables a fault.
struct FaultPlan {
  static constexpr uint64_t kNever = ~uint64_t{0};

  /// Appends whose global byte range starts at or crosses this offset fail
  /// with "no space left"; a crossing append writes the prefix first (a
  /// short write followed by ENOSPC, like a full disk).
  uint64_t enospc_after_bytes = kNever;

  /// The append crossing this global offset writes only the prefix up to it,
  /// then fails — or hard-crashes mid-write when `crash_on_torn_write` is
  /// set, leaving a torn record on disk like a power cut.
  uint64_t torn_write_at_byte = kNever;
  bool crash_on_torn_write = false;

  /// 0-based index of the first Sync (file or directory) that fails; every
  /// later sync fails too (a dead disk stays dead). With
  /// `crash_on_failed_sync`, the process exits inside that sync instead —
  /// after the bytes were written but before anyone was acknowledged.
  uint64_t fail_sync_at = kNever;
  bool crash_on_failed_sync = false;

  /// 0-based index of the one Close that fails (data may be lost).
  uint64_t fail_close_at = kNever;

  /// 0-based index of the one RenameFile that fails.
  uint64_t fail_rename_at = kNever;
};

/// An Env decorator that injects the faults described by a `FaultPlan`.
/// Thread-safe: counters are shared across all files opened through it, so
/// it can sit under a group-commit committer thread.
class FaultInjectingEnv : public Env {
 public:
  explicit FaultInjectingEnv(Env* base = Env::Default()) : base_(base) {}

  /// Replaces the plan and resets all fault counters.
  void set_plan(const FaultPlan& plan);

  /// Cumulative bytes successfully appended through this env.
  uint64_t bytes_written() const;
  /// Sync / Close / Rename attempts observed (for placing faults by index).
  uint64_t syncs() const;
  uint64_t closes() const;
  uint64_t renames() const;

  bool FileExists(const std::string& path) override;
  Status EnsureDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override;

 private:
  friend class FaultWritableFile;

  /// How much of an `n`-byte append to perform, and with what outcome.
  struct WriteVerdict {
    size_t allowed = 0;   // prefix bytes to actually write
    bool crash = false;   // _Exit after writing the prefix
    Status status;        // returned after the prefix write (may be OK)
  };
  WriteVerdict JudgeWrite(size_t n);
  Status JudgeSync();  // may _Exit; counts the sync
  Status JudgeClose();
  Status JudgeRename();

  Env* base_;
  mutable std::mutex mu_;
  FaultPlan plan_;
  uint64_t bytes_written_ = 0;
  uint64_t sync_count_ = 0;
  uint64_t close_count_ = 0;
  uint64_t rename_count_ = 0;
};

}  // namespace sqo::fs

#endif  // SQO_COMMON_ENV_H_
