#ifndef SQO_COMMON_FINGERPRINT_H_
#define SQO_COMMON_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

namespace sqo {

/// A 128-bit fingerprint: two independently seeded 64-bit lanes. Used where
/// a hash stands in for an exact key (the optimizer's canonical-form dedup
/// and its residue-application memo), so the collision probability must be
/// negligible rather than merely small: with two independent lanes the
/// expected collision count over n keys is ~n²/2¹²⁹ — for the ≤10⁶ keys a
/// pathological optimization can produce, under 10⁻²⁵.
struct Fingerprint128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const Fingerprint128& o) const {
    return lo == o.lo && hi == o.hi;
  }
  bool operator!=(const Fingerprint128& o) const { return !(*this == o); }
  bool operator<(const Fingerprint128& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  std::string ToString() const {
    char buf[36];
    snprintf(buf, sizeof(buf), "%016llx%016llx",
             static_cast<unsigned long long>(hi),
             static_cast<unsigned long long>(lo));
    return std::string(buf);
  }
};

struct FingerprintHash {
  size_t operator()(const Fingerprint128& f) const {
    return static_cast<size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ull));
  }
};

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Component-wise sum of two fingerprints built with `AppendUnordered`:
/// because the unordered fold is plain addition from zero, summing two
/// partial multiset fingerprints equals fingerprinting the multiset union.
inline Fingerprint128 CombineUnordered(Fingerprint128 a,
                                       const Fingerprint128& b) {
  a.lo += b.lo;
  a.hi += b.hi;
  return a;
}

/// Incremental Fingerprint128 builder. `Append` is order-sensitive
/// (sequence hashing); `AppendUnordered` folds by addition, so a multiset
/// of values fingerprints identically under any insertion order — the
/// basis of the optimizer's memo keys over body-literal multisets.
class FingerprintBuilder {
 public:
  void Append(uint64_t v) {
    fp_.lo = fp_.lo * kMul1 + Mix64(v ^ kLaneSeed1);
    fp_.hi = fp_.hi * kMul2 + Mix64(v ^ kLaneSeed2);
  }

  void AppendUnordered(uint64_t v) {
    fp_.lo += Mix64(v ^ kLaneSeed1);
    fp_.hi += Mix64(v ^ kLaneSeed2);
  }

  const Fingerprint128& fingerprint() const { return fp_; }

 private:
  static constexpr uint64_t kMul1 = 0x100000001b3ull;        // FNV-1a prime
  static constexpr uint64_t kMul2 = 0xc6a4a7935bd1e995ull;   // Murmur2 mult
  static constexpr uint64_t kLaneSeed1 = 0x7fb5d329728ea185ull;
  static constexpr uint64_t kLaneSeed2 = 0x1f67b3b7a4a44072ull;

  Fingerprint128 fp_;
};

}  // namespace sqo

#endif  // SQO_COMMON_FINGERPRINT_H_
