#include "common/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/failpoint.h"
#include "common/fileio.h"

namespace sqo::fs {

namespace {

Status ErrnoError(const std::string& op, const std::string& path) {
  return InternalError(op + " '" + path + "': " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t size, const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// The default WritableFile: a POSIX fd. Close reports errors — see the
/// WritableFile contract.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return InternalError("append on closed file '" + path_ + "'");
    SQO_RETURN_IF_ERROR(WriteAll(fd_, data.data(), data.size(), path_));
    size_ += data.size();
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return InternalError("sync on closed file '" + path_ + "'");
    SQO_FAILPOINT("storage.fsync");
    if (::fsync(fd_) != 0) return ErrnoError("fsync", path_);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoError("close", path_);
    return Status::Ok();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
  std::string path_;
};

Result<std::unique_ptr<WritableFile>> OpenPosix(const std::string& path,
                                                int flags) {
  const int fd = ::open(path.c_str(), flags | O_CLOEXEC, 0666);
  if (fd < 0) return ErrnoError("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = ErrnoError("fstat", path);
    ::close(fd);
    return status;
  }
  return std::unique_ptr<WritableFile>(std::make_unique<PosixWritableFile>(
      fd, static_cast<uint64_t>(st.st_size), path));
}

/// Default Env: thin delegation to the POSIX helpers in common/fileio.
class PosixEnv : public Env {
 public:
  bool FileExists(const std::string& path) override { return Exists(path); }
  Status EnsureDir(const std::string& path) override {
    return fs::EnsureDir(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return fs::ListDir(dir);
  }
  Result<std::string> ReadFile(const std::string& path) override {
    return fs::ReadFile(path);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoError("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }
  Status RemoveFile(const std::string& path) override {
    return fs::RemoveFile(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return fs::TruncateFile(path, size);
  }
  Status SyncDir(const std::string& dir) override { return fs::SyncDir(dir); }
  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoError("rename", from);
    }
    return Status::Ok();
  }
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override {
    return OpenPosix(path, O_WRONLY | O_CREAT | O_APPEND);
  }
  Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override {
    return OpenPosix(path, O_WRONLY | O_CREAT | O_TRUNC);
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Status WriteFileAtomic(Env& env, const std::string& path,
                       std::string_view data) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  auto file = env.OpenTrunc(tmp);
  if (!file.ok()) return file.status();
  Status status = (*file)->Append(data);
  if (status.ok()) status = (*file)->Sync();
  // A close failure after buffered writes can lose data even though every
  // write call succeeded, so it fails the publication like a failed write.
  const Status close_status = (*file)->Close();
  if (status.ok()) status = close_status;
  if (status.ok()) {
    status = failpoint::Check("storage.rename");
    if (status.ok()) status = env.RenameFile(tmp, path);
  }
  if (!status.ok()) {
    (void)env.RemoveFile(tmp);
    return status;
  }
  // Publish durably: without the directory fsync, the rename itself may be
  // lost on power failure even though the file contents are on disk.
  const size_t slash = path.find_last_of('/');
  return env.SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

/// WritableFile decorator applying the env's FaultPlan to appends, syncs,
/// and closes. All bookkeeping lives in the env so faults are placed by
/// global byte offset / operation index, not per file. At namespace scope
/// (not anonymous) so the friend declaration in env.h binds to it.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override;
  Status Sync() override {
    SQO_RETURN_IF_ERROR(env_->JudgeSync());
    return base_->Sync();
  }
  Status Close() override {
    const Status injected = env_->JudgeClose();
    const Status real = base_->Close();
    return injected.ok() ? real : injected;
  }
  uint64_t size() const override { return base_->size(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* env_;
};

Status FaultWritableFile::Append(std::string_view data) {
  const FaultInjectingEnv::WriteVerdict verdict = env_->JudgeWrite(data.size());
  if (verdict.allowed > 0) {
    SQO_RETURN_IF_ERROR(base_->Append(data.substr(0, verdict.allowed)));
  }
  if (verdict.crash) {
    // A power cut mid-write: the prefix reached the file, nothing else did,
    // and nobody gets to run cleanup.
    std::_Exit(kFaultCrashExitCode);
  }
  return verdict.status;
}

void FaultInjectingEnv::set_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  bytes_written_ = 0;
  sync_count_ = 0;
  close_count_ = 0;
  rename_count_ = 0;
}

uint64_t FaultInjectingEnv::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}
uint64_t FaultInjectingEnv::syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_count_;
}
uint64_t FaultInjectingEnv::closes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return close_count_;
}
uint64_t FaultInjectingEnv::renames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rename_count_;
}

FaultInjectingEnv::WriteVerdict FaultInjectingEnv::JudgeWrite(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  WriteVerdict verdict;
  const uint64_t begin = bytes_written_;
  const uint64_t end = begin + n;
  uint64_t cut = end;
  if (plan_.enospc_after_bytes < cut) cut = plan_.enospc_after_bytes;
  if (plan_.torn_write_at_byte < cut) cut = plan_.torn_write_at_byte;
  if (cut >= end) {
    verdict.allowed = n;
    bytes_written_ = end;
    return verdict;
  }
  verdict.allowed = cut > begin ? static_cast<size_t>(cut - begin) : 0;
  bytes_written_ = begin + verdict.allowed;
  if (cut == plan_.torn_write_at_byte) {
    verdict.crash = plan_.crash_on_torn_write;
    verdict.status = InternalError("torn write at byte " + std::to_string(cut) +
                                   " (injected)");
  } else {
    verdict.status = InternalError("write: no space left on device (injected)");
  }
  return verdict;
}

Status FaultInjectingEnv::JudgeSync() {
  bool crash = false;
  Status status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t index = sync_count_++;
    if (index >= plan_.fail_sync_at) {
      crash = plan_.crash_on_failed_sync;
      status = InternalError("fsync #" + std::to_string(index) + " (injected)");
    }
  }
  // Crash outside the lock: _Exit does not unwind, and a held mutex dies
  // with the process anyway, but keep the invariant obvious.
  if (crash) std::_Exit(kFaultCrashExitCode);
  return status;
}

Status FaultInjectingEnv::JudgeClose() {
  std::lock_guard<std::mutex> lock(mu_);
  if (close_count_++ == plan_.fail_close_at) {
    return InternalError("close (injected)");
  }
  return Status::Ok();
}

Status FaultInjectingEnv::JudgeRename() {
  std::lock_guard<std::mutex> lock(mu_);
  if (rename_count_++ == plan_.fail_rename_at) {
    return InternalError("rename (injected)");
  }
  return Status::Ok();
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}
Status FaultInjectingEnv::EnsureDir(const std::string& path) {
  return base_->EnsureDir(path);
}
Result<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}
Result<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  return base_->ReadFile(path);
}
Result<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}
Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}
Status FaultInjectingEnv::TruncateFile(const std::string& path, uint64_t size) {
  return base_->TruncateFile(path, size);
}
Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  SQO_RETURN_IF_ERROR(JudgeSync());
  return base_->SyncDir(dir);
}
Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  SQO_RETURN_IF_ERROR(JudgeRename());
  return base_->RenameFile(from, to);
}
Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::OpenAppend(
    const std::string& path) {
  auto base = base_->OpenAppend(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(std::move(*base), this));
}
Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::OpenTrunc(
    const std::string& path) {
  auto base = base_->OpenTrunc(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(std::move(*base), this));
}

}  // namespace sqo::fs
