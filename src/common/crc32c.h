#ifndef SQO_COMMON_CRC32C_H_
#define SQO_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sqo {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
/// checksum guarding every persistent artifact of the storage layer —
/// snapshot headers and sections, and each write-ahead-log record. Chosen
/// over CRC-32 (IEEE) for its strictly better Hamming-distance profile at
/// the record sizes the WAL produces; this is the same polynomial iSCSI,
/// ext4 and LevelDB use. Software slice-by-4 implementation — storage I/O,
/// not checksumming, dominates every path that calls it.
uint32_t Crc32c(const void* data, size_t size);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

/// Extends a running CRC with more bytes: Crc32cExtend(Crc32c(a), b) equals
/// Crc32c(a + b). `crc` is the finalized value returned by Crc32c.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

/// Masked CRC, LevelDB-style: storing the CRC of data that itself contains
/// CRCs makes accidental fixed points more likely, so stored checksums are
/// rotated and offset. Verification unmasks before comparing.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace sqo

#endif  // SQO_COMMON_CRC32C_H_
