#include "common/failpoint.h"

#ifndef SQO_FAILPOINTS_DISABLED

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/context.h"

namespace sqo::failpoint {

namespace {

struct SiteState {
  Action action;
  bool armed = false;
  uint64_t hits = 0;   // passes while armed
  uint64_t trips = 0;  // times the action fired
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState, std::less<>> sites;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

/// Armed-site count; sites short-circuit on zero without taking the lock.
std::atomic<uint64_t> g_armed_count{0};
std::atomic<TripObserver> g_trip_observer{nullptr};

}  // namespace

void Activate(std::string_view site, Action action) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.sites.try_emplace(std::string(site));
  if (!it->second.armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  it->second.action = std::move(action);
  it->second.armed = true;
  it->second.hits = 0;
  it->second.trips = 0;
}

void Deactivate(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DeactivateAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [site, state] : r.sites) {
    if (state.armed) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    state.armed = false;
  }
  r.sites.clear();
}

uint64_t TripCount(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.trips;
}

void SetTripObserver(TripObserver observer) {
  g_trip_observer.store(observer, std::memory_order_relaxed);
}

Status Check(std::string_view site) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return Status::Ok();
  Action action;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end() || !it->second.armed) return Status::Ok();
    SiteState& state = it->second;
    if (state.hits++ < state.action.trigger_after) return Status::Ok();
    if (state.action.max_trips != 0 && state.trips >= state.action.max_trips) {
      return Status::Ok();
    }
    ++state.trips;
    action = state.action;
  }
  if (TripObserver observer = g_trip_observer.load(std::memory_order_relaxed);
      observer != nullptr) {
    observer(site);
  }
  switch (action.kind) {
    case ActionKind::kError:
      return action.status;
    case ActionKind::kExpireDeadline:
      if (ExecutionContext* context = CurrentContext()) {
        context->ExpireDeadlineNow();
      }
      return Status::Ok();
    case ActionKind::kCancel:
      if (ExecutionContext* context = CurrentContext()) {
        context->RequestCancellation();
      }
      return Status::Ok();
    case ActionKind::kDelayMs:
      std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
      return Status::Ok();
  }
  return Status::Ok();
}

}  // namespace sqo::failpoint

#endif  // SQO_FAILPOINTS_DISABLED
