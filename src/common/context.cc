#include "common/context.h"

#include <string>

namespace sqo {

namespace {
thread_local ExecutionContext* g_current_context = nullptr;
}  // namespace

Status ExecutionContext::Check(std::string_view site) {
  if (!latched_.ok()) return latched_;
  if (cancelled_.load(std::memory_order_relaxed)) {
    latched_ = CancelledError("cancellation requested (observed at " +
                              std::string(site) + ")");
    return latched_;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    deadline_exceeded_ = true;
    latched_ = ResourceExhaustedError("deadline exceeded (observed at " +
                                      std::string(site) + ")");
    return latched_;
  }
  return Status::Ok();
}

void ExecutionContext::LatchError(Status status) {
  if (latched_.ok() && !status.ok()) latched_ = std::move(status);
}

Status ExecutionContext::Charge(uint64_t* used, uint64_t limit, uint64_t n,
                                std::string_view what) {
  if (!latched_.ok()) return latched_;
  *used += n;
  if (limit != 0 && *used > limit) {
    latched_ = ResourceExhaustedError(
        std::string(what) + " budget exceeded (" + std::to_string(*used) +
        " > " + std::to_string(limit) + ")");
    return latched_;
  }
  // A runaway loop must observe the deadline even between phase
  // boundaries; poll the clock on a stride so the common case stays a
  // couple of integer ops.
  charges_since_poll_ += n;
  if (has_deadline_ && charges_since_poll_ >= kDeadlinePollStride) {
    charges_since_poll_ = 0;
    return Check(what);
  }
  return Status::Ok();
}

Status ExecutionContext::ChargeResidueApplications(uint64_t n) {
  return Charge(&used_residue_applications_, budgets_.residue_applications, n,
                "residue-application");
}
Status ExecutionContext::ChargeAlternatives(uint64_t n) {
  return Charge(&used_alternatives_, budgets_.alternatives, n, "alternative");
}
Status ExecutionContext::ChargeEvalJoins(uint64_t n) {
  return Charge(&used_eval_joins_, budgets_.eval_joins, n, "eval-join");
}
Status ExecutionContext::ChargeEvalRows(uint64_t n) {
  return Charge(&used_eval_rows_, budgets_.eval_rows, n, "eval-row");
}

ExecutionContext* CurrentContext() { return g_current_context; }

ScopedContext::ScopedContext(ExecutionContext* context)
    : previous_(g_current_context) {
  g_current_context = context;
}

ScopedContext::~ScopedContext() { g_current_context = previous_; }

Status CheckGovernance(std::string_view site) {
  ExecutionContext* context = g_current_context;
  return context == nullptr ? Status::Ok() : context->Check(site);
}

}  // namespace sqo
