#ifndef SQO_COMMON_FAILPOINT_H_
#define SQO_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"

/// Deterministic fault injection for the Figure-2 pipeline phases. Library
/// code marks named sites with `SQO_FAILPOINT("phase.site")`; tests
/// activate a site with an Action (force an error Status, expire the
/// current ExecutionContext's deadline, request cancellation, or sleep) to
/// prove every failure path end to end. Inactive sites cost one relaxed
/// atomic load; defining `SQO_FAILPOINTS_DISABLED` at compile time removes
/// even that (mirroring `SQO_OBS_DISABLED`).
namespace sqo::failpoint {

enum class ActionKind {
  kError,           // return `status` from the site
  kExpireDeadline,  // force the current context's deadline into the past
  kCancel,          // set the current context's cancellation flag
  kDelayMs,         // sleep `delay_ms` (real wall-clock; use sparingly)
};

struct Action {
  ActionKind kind = ActionKind::kError;
  Status status = InternalError("failpoint");  // for kError
  int64_t delay_ms = 0;                        // for kDelayMs

  /// Pass over the site this many times before acting (0 = act at once).
  uint64_t trigger_after = 0;

  /// Act at most this many times, then go dormant (0 = unlimited).
  uint64_t max_trips = 0;
};

#ifndef SQO_FAILPOINTS_DISABLED

/// Arms `site` with `action`, replacing any previous arming and resetting
/// its hit/trip counters.
void Activate(std::string_view site, Action action);

/// Disarms `site` (its trip count remains readable until re-armed).
void Deactivate(std::string_view site);

/// Disarms every site and clears all counters. Tests call this in
/// SetUp/TearDown so armed failpoints never leak across tests.
void DeactivateAll();

/// Times `site`'s action actually fired since it was last armed.
uint64_t TripCount(std::string_view site);

/// Evaluates `site`: no-op unless armed and due, otherwise performs the
/// action (kError returns the injected status; the other kinds return OK
/// after acting). Called via SQO_FAILPOINT; callable directly from sites
/// that cannot propagate a Status.
Status Check(std::string_view site);

/// Observer invoked on every trip (installed by the obs layer to bump the
/// `failpoint.trips` counter); pass nullptr to clear.
using TripObserver = void (*)(std::string_view site);
void SetTripObserver(TripObserver observer);

#define SQO_FAILPOINT(site) SQO_RETURN_IF_ERROR(::sqo::failpoint::Check(site))

#else  // SQO_FAILPOINTS_DISABLED

inline void Activate(std::string_view, Action) {}
inline void Deactivate(std::string_view) {}
inline void DeactivateAll() {}
inline uint64_t TripCount(std::string_view) { return 0; }
inline Status Check(std::string_view) { return Status::Ok(); }
using TripObserver = void (*)(std::string_view site);
inline void SetTripObserver(TripObserver) {}

#define SQO_FAILPOINT(site) \
  do {                      \
  } while (0)

#endif  // SQO_FAILPOINTS_DISABLED

}  // namespace sqo::failpoint

#endif  // SQO_COMMON_FAILPOINT_H_
