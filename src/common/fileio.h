#ifndef SQO_COMMON_FILEIO_H_
#define SQO_COMMON_FILEIO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// POSIX file helpers for the storage layer. Everything returns Status —
/// the storage subsystem must degrade, never abort, on I/O failure — and
/// the durability-critical steps carry failpoint sites so recovery tests
/// can simulate a crash at any point of a write:
///
///   storage.fsync   — before any fsync (file or directory)
///   storage.rename  — before the atomic rename of a finished temp file
namespace sqo::fs {

/// True if `path` exists (any file type).
bool Exists(const std::string& path);

/// Creates `path` as a directory if absent (single level, like mkdir -p
/// for the last component only). OK if it already exists as a directory.
sqo::Status EnsureDir(const std::string& path);

/// Entry names (not paths) in `dir`, excluding "." / "..", sorted.
sqo::Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Whole-file read; kNotFound when the file does not exist.
sqo::Result<std::string> ReadFile(const std::string& path);

/// Deletes a file; OK if it does not exist.
sqo::Status RemoveFile(const std::string& path);

/// Truncates an existing file to `size` bytes.
sqo::Status TruncateFile(const std::string& path, uint64_t size);

/// fsyncs a directory so a completed rename within it is durable.
sqo::Status SyncDir(const std::string& dir);

/// Writes `data` to `path` atomically: write to `<path>.tmp.<pid>`, fsync
/// the temp file, rename it over `path`, fsync the parent directory. A
/// crash at any point leaves either the old file or the new one, never a
/// torn mix; a failed step removes the temp file. This is the snapshot
/// writer's publication primitive.
sqo::Status WriteFileAtomic(const std::string& path, std::string_view data);

/// An append-only file handle (the WAL's physical layer). Move-only;
/// closes on destruction without syncing — durability is explicit via
/// `Sync`, matching the "acknowledged = appended and synced" contract.
class AppendFile {
 public:
  /// Opens (creating if needed) `path` for appending.
  static sqo::Result<AppendFile> Open(const std::string& path);

  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  /// Appends all of `data` (retrying short writes).
  sqo::Status Append(std::string_view data);

  /// fsyncs the file (failpoint site `storage.fsync`).
  sqo::Status Sync();

  /// Bytes in the file (as of open plus appends through this handle).
  uint64_t size() const { return size_; }

  void Close();
  bool open() const { return fd_ >= 0; }

 private:
  explicit AppendFile(int fd, uint64_t size) : fd_(fd), size_(size) {}

  int fd_ = -1;
  uint64_t size_ = 0;
};

}  // namespace sqo::fs

#endif  // SQO_COMMON_FILEIO_H_
