#ifndef SQO_COMMON_INTERNER_H_
#define SQO_COMMON_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>

namespace sqo {

/// Backing record of one interned string. Allocated once by the global
/// interner and never moved or freed, so `Symbol` can hold a raw pointer.
struct SymbolData {
  std::string text;
  size_t hash;  // std::hash<std::string>(text), precomputed
  uint32_t id;  // dense, in interning order (0 = the empty string)
};

/// An interned string: a pointer into the process-wide intern table.
///
/// Equality is pointer equality (one machine word compare) and `hash()` is
/// precomputed, which is the whole point — DATALOG predicate and variable
/// names are compared millions of times per optimization, and after
/// interning those comparisons never touch the characters. `hash()` equals
/// `std::hash<std::string>()(str())` so containers keyed on symbol hashes
/// agree with legacy string-keyed hashes.
///
/// Ordering (`operator<`) intentionally stays *lexicographic* on the
/// underlying text: canonicalization and every `std::set`/`std::map` keyed
/// on names must stay deterministic across runs, which pointer or id order
/// would not be.
class Symbol {
 public:
  /// The interned empty string.
  Symbol();

  const std::string& str() const { return data_->text; }
  std::string_view view() const { return data_->text; }
  size_t hash() const { return data_->hash; }
  uint32_t id() const { return data_->id; }
  bool empty() const { return data_->text.empty(); }

  bool operator==(const Symbol& o) const { return data_ == o.data_; }
  bool operator!=(const Symbol& o) const { return data_ != o.data_; }
  bool operator<(const Symbol& o) const {
    return data_ != o.data_ && data_->text < o.data_->text;
  }

 private:
  friend Symbol Intern(std::string_view s);
  explicit Symbol(const SymbolData* data) : data_(data) {}

  const SymbolData* data_;
};

struct SymbolHash {
  size_t operator()(const Symbol& s) const { return s.hash(); }
};

/// Unordered symbol set — the matcher's bindable-variable representation.
using SymbolSet = std::unordered_set<Symbol, SymbolHash>;

/// Interns `s` in the process-wide table (thread-safe; a hit takes the
/// mutex once and does one hash-map probe). Returned symbols are valid for
/// the life of the process.
Symbol Intern(std::string_view s);

/// Number of distinct strings interned so far. Exported to observability
/// as the `interner.size` counter by layers that link obs.
size_t InternerSize();

}  // namespace sqo

#endif  // SQO_COMMON_INTERNER_H_
