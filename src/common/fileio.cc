#include "common/fileio.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/env.h"
#include "common/failpoint.h"

namespace sqo::fs {

namespace {

sqo::Status ErrnoError(const std::string& op, const std::string& path) {
  return sqo::InternalError(op + " '" + path + "': " + std::strerror(errno));
}

sqo::Status SyncFd(int fd, const std::string& path) {
  SQO_FAILPOINT("storage.fsync");
  if (::fsync(fd) != 0) return ErrnoError("fsync", path);
  return sqo::Status::Ok();
}

sqo::Status WriteAll(int fd, const char* data, size_t size,
                     const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return sqo::Status::Ok();
}

}  // namespace

bool Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

sqo::Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0) return sqo::Status::Ok();
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return sqo::Status::Ok();
    }
    return sqo::InvalidArgumentError("'" + path +
                                     "' exists and is not a directory");
  }
  return ErrnoError("mkdir", path);
}

sqo::Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoError("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

sqo::Result<std::string> ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return sqo::NotFoundError("no file '" + path + "'");
    return ErrnoError("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const sqo::Status status = ErrnoError("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

sqo::Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return sqo::Status::Ok();
  return ErrnoError("unlink", path);
}

sqo::Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoError("truncate", path);
  }
  return sqo::Status::Ok();
}

sqo::Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("open dir", dir);
  const sqo::Status status = SyncFd(fd, dir);
  ::close(fd);
  return status;
}

sqo::Status WriteFileAtomic(const std::string& path, std::string_view data) {
  // Delegates to the Env-based primitive so close/fsync failures propagate
  // (a close error after buffered writes can lose data) and so the default
  // path shares one implementation with fault-injected storage.
  return WriteFileAtomic(*Env::Default(), path, data);
}

sqo::Result<AppendFile> AppendFile::Open(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0666);
  if (fd < 0) return ErrnoError("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const sqo::Status status = ErrnoError("fstat", path);
    ::close(fd);
    return status;
  }
  return AppendFile(fd, static_cast<uint64_t>(st.st_size));
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_) {
  other.fd_ = -1;
  other.size_ = 0;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    size_ = other.size_;
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

sqo::Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return sqo::InternalError("append on closed file");
  SQO_RETURN_IF_ERROR(WriteAll(fd_, data.data(), data.size(), "<append>"));
  size_ += data.size();
  return sqo::Status::Ok();
}

sqo::Status AppendFile::Sync() {
  if (fd_ < 0) return sqo::InternalError("sync on closed file");
  return SyncFd(fd_, "<append>");
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sqo::fs
