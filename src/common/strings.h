#ifndef SQO_COMMON_STRINGS_H_
#define SQO_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqo {

/// Joins `parts` with `sep`: StrJoin({"a","b"}, ", ") == "a, b".
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Trims ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

}  // namespace sqo

#endif  // SQO_COMMON_STRINGS_H_
