#include "common/status.h"

namespace sqo {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataCorruption:
      return "DataCorruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status SemanticError(std::string message) {
  return Status(StatusCode::kSemanticError, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status DataCorruptionError(std::string message) {
  return Status(StatusCode::kDataCorruption, std::move(message));
}

}  // namespace sqo
