#ifndef SQO_COMMON_STATUS_H_
#define SQO_COMMON_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace sqo {

/// Error categories produced by the library. Kept deliberately coarse:
/// callers dispatch on category, humans read the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // lexical / syntactic error in ODL, OQL or IC text
  kSemanticError,     // well-formed input that violates schema rules
  kNotFound,          // lookup of a class / relation / method failed
  kUnsupported,       // valid ODMG construct outside the implemented subset
  kInternal,          // invariant violation inside the library
  kResourceExhausted, // a deadline, work budget or depth limit was exceeded
  kCancelled,         // cooperative cancellation was requested
  kDataCorruption,    // persistent state failed a checksum / format check
};

/// Returns a stable human-readable name for a status code ("ParseError", ...).
std::string_view StatusCodeName(StatusCode code);

/// Exception-free error propagation, modeled after absl::Status.
///
/// The library never throws across its public API; every fallible operation
/// returns `Status` or `Result<T>`. An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A `kOk` code
  /// produces an OK status and the message is dropped.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? "" : std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Convenience factories mirroring the StatusCode enumerators.
Status InvalidArgumentError(std::string message);
Status ParseError(std::string message);
Status SemanticError(std::string message);
Status NotFoundError(std::string message);
Status UnsupportedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status CancelledError(std::string message);
Status DataCorruptionError(std::string message);

/// Either a value of type T or an error `Status`. Modeled after
/// absl::StatusOr. Accessing the value of an errored result aborts.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return my_t;` in functions returning
  /// Result<T>, matching StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from error status: allows `return ParseError(...);`.
  /// Must not be an OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      std::fprintf(stderr, "Result<T> constructed from OK status without a value\n");
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result<T>::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace sqo

/// Propagates a non-OK Status from an expression, absl-style.
#define SQO_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::sqo::Status sqo_status_ = (expr);          \
    if (!sqo_status_.ok()) return sqo_status_;   \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors; on success binds
/// the unwrapped value to `lhs`. `lhs` may include a declaration.
#define SQO_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  SQO_ASSIGN_OR_RETURN_IMPL_(SQO_CONCAT_(sqo_result_, __LINE__), lhs, rexpr)

#define SQO_CONCAT_INNER_(a, b) a##b
#define SQO_CONCAT_(a, b) SQO_CONCAT_INNER_(a, b)
#define SQO_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#endif  // SQO_COMMON_STATUS_H_
