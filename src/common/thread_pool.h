#ifndef SQO_COMMON_THREAD_POOL_H_
#define SQO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sqo {

/// A small fixed-size worker pool for read-only fan-out work (parallel
/// alternative profiling). Tasks are plain closures; they must not throw
/// (an escaping exception terminates the worker). Completion tracking is
/// the caller's business — `RunBatch` covers the common blocking pattern.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(size_t threads);

  /// Finishes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Runs all `tasks` on the pool and blocks until every one has finished.
  /// Must not be called from a pool worker (it would deadlock waiting on
  /// itself).
  void RunBatch(std::vector<std::function<void()>> tasks);

  /// Default worker count: hardware concurrency capped at 8, at least 1.
  static size_t DefaultSize();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sqo

#endif  // SQO_COMMON_THREAD_POOL_H_
