#ifndef SQO_COMMON_CMP_H_
#define SQO_COMMON_CMP_H_

#include <string_view>

namespace sqo {

/// Comparison operators shared by the OQL surface syntax and the DATALOG
/// evaluable atoms (`X = Y`, `A θ k`, `A θ B` in the paper's notation).
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// The logical negation of an operator: ¬(a < b) ⇔ a ≥ b, etc.
CmpOp NegateOp(CmpOp op);

/// The operator with operands swapped: a < b ⇔ b > a.
CmpOp FlipOp(CmpOp op);

/// ASCII rendering: "=", "!=", "<", "<=", ">", ">=".
std::string_view CmpOpSymbol(CmpOp op);

/// Applies `op` to a three-way comparison result in {-1, 0, +1}.
bool EvalCmp(CmpOp op, int three_way);

}  // namespace sqo

#endif  // SQO_COMMON_CMP_H_
