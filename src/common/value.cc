#include "common/value.h"

#include <cmath>
#include <cstdio>

namespace sqo {

std::string_view ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kOid:
      return "oid";
  }
  return "unknown";
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (kind() == ValueKind::kInt && other.kind() == ValueKind::kInt) {
      return AsInt() == other.AsInt();
    }
    return AsNumeric() == other.AsNumeric();
  }
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kString:
      return AsString() == other.AsString();
    case ValueKind::kBool:
      return AsBool() == other.AsBool();
    case ValueKind::kOid:
      return AsOid() == other.AsOid();
    default:
      return false;  // numeric handled above
  }
}

std::optional<int> Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (kind() == ValueKind::kInt && other.kind() == ValueKind::kInt) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsNumeric(), b = other.AsNumeric();
    if (std::isnan(a) || std::isnan(b)) return std::nullopt;
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (kind() == ValueKind::kString && other.kind() == ValueKind::kString) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return std::nullopt;
}

bool Value::TotalOrder(const Value& a, const Value& b) {
  // Numeric kinds collapse into one bucket so that TotalOrder is consistent
  // with Equals (1 == 1.0 must not be both < and >).
  auto bucket = [](ValueKind k) {
    return k == ValueKind::kDouble ? ValueKind::kInt : k;
  };
  if (bucket(a.kind()) != bucket(b.kind())) {
    return static_cast<int>(bucket(a.kind())) < static_cast<int>(bucket(b.kind()));
  }
  switch (bucket(a.kind())) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kInt:
      return a.AsNumeric() < b.AsNumeric();
    case ValueKind::kString:
      return a.AsString() < b.AsString();
    case ValueKind::kBool:
      return a.AsBool() < b.AsBool();
    case ValueKind::kOid:
      return a.AsOid() < b.AsOid();
    default:
      return false;
  }
}

size_t Value::Hash() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ValueKind::kInt:
      // Hash via the double representation so 1 and 1.0 collide, matching
      // Equals. Integers beyond 2^53 lose precision identically on both
      // sides, preserving consistency.
      return std::hash<double>()(static_cast<double>(AsInt()));
    case ValueKind::kDouble:
      return std::hash<double>()(AsDoubleExact());
    case ValueKind::kString:
      return std::hash<std::string>()(AsString());
    case ValueKind::kBool:
      return std::hash<bool>()(AsBool()) ^ 0x5bd1e995u;
    case ValueKind::kOid:
      return std::hash<uint64_t>()(AsOid().raw()) ^ 0x2545f4914f6cdd1dull;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      char buf[48];
      double d = AsDoubleExact();
      if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.1f", d);
      } else {
        std::snprintf(buf, sizeof(buf), "%g", d);
      }
      return buf;
    }
    case ValueKind::kString:
      return "\"" + AsString() + "\"";
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kOid:
      return "@" + std::to_string(AsOid().raw());
  }
  return "?";
}

}  // namespace sqo
