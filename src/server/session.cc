#include "server/session.h"

#include <utility>

#include "server/server.h"

namespace sqo::server {

const QueryResponse& PendingReply::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return response_;
}

bool PendingReply::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void PendingReply::Complete(QueryResponse response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    response_ = std::move(response);
    done_ = true;
  }
  cv_.notify_all();
}

Session::Session(Server* server, std::string name, int64_t slow_threshold_ns)
    : server_(server),
      name_(std::move(name)),
      journal_(obs::JournalOptions{/*capacity=*/256, slow_threshold_ns}) {}

ReplyRef Session::SubmitQuery(std::string oql, uint64_t deadline_ms) {
  Request request;
  request.kind = Request::Kind::kQuery;
  request.oql = std::move(oql);
  return server_->Enqueue(shared_from_this(), std::move(request), deadline_ms);
}

QueryResponse Session::Query(const std::string& oql, uint64_t deadline_ms) {
  return SubmitQuery(oql, deadline_ms)->Wait();
}

ReplyRef Session::SubmitMutation(
    std::function<sqo::Status(engine::Database*)> op, uint64_t deadline_ms) {
  Request request;
  request.kind = Request::Kind::kMutation;
  request.op = std::move(op);
  return server_->Enqueue(shared_from_this(), std::move(request), deadline_ms);
}

sqo::Status Session::Mutate(std::function<sqo::Status(engine::Database*)> op,
                            uint64_t deadline_ms) {
  return SubmitMutation(std::move(op), deadline_ms)->Wait().status;
}

void Session::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Request& request : queue_) request.reply->Cancel();
  if (in_flight_reply_ != nullptr) in_flight_reply_->Cancel();
}

std::vector<obs::QueryEvent> Session::JournalSnapshot() const {
  return journal_.Snapshot();
}

obs::MetricsRegistry Session::MetricsSnapshot() const {
  std::lock_guard<std::mutex> lock(obs_mu_);
  obs::MetricsRegistry copy;
  copy.MergeFrom(metrics_);
  return copy;
}

obs::QpsMeter::Snapshot Session::Latency() const { return qps_.Summarize(); }

}  // namespace sqo::server
