#ifndef SQO_SERVER_SESSION_H_
#define SQO_SERVER_SESSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "common/value.h"
#include "engine/database.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "server/epoch.h"

namespace sqo::server {

class Server;

/// Tuning for one Server. Every knob has a serving-safe default; the
/// SQO-A020 lint (analysis::AnalyzeServerConfig) flags the combinations
/// that defeat the overload posture (zero queue bound, a shed threshold
/// tighter than the deadline budget, gross worker oversubscription).
struct ServerConfig {
  /// Worker threads executing requests (0 = ThreadPool::DefaultSize()).
  size_t workers = 0;

  /// Epoch replica pool size (see EpochStore::Options::replicas).
  size_t replicas = 2;

  /// Admission bound: total admitted-but-unfinished requests across all
  /// sessions. At this depth new requests are shed with
  /// kResourceExhausted and `retry_after_ms` instead of queueing.
  size_t max_queue_depth = 128;

  /// Overload threshold: above this depth queries skip Step-3
  /// optimization and serve the original translated query with the
  /// `degraded` flag — the server degrades reads before refusing them.
  size_t degrade_queue_depth = 32;

  /// Load shedding by estimated wait (0 = off): once the server has seen
  /// >= 32 queries, shed when queue depth x observed p99 exceeds this.
  uint64_t shed_wait_ms = 0;

  /// Hint returned with every shed response.
  uint64_t retry_after_ms = 50;

  /// Deadline for requests that do not carry one (0 = none). The clock
  /// starts at admission, so time spent queued counts against it.
  uint64_t default_deadline_ms = 0;

  /// Work budgets copied into every request's ExecutionContext.
  WorkBudgets budgets;

  /// Per-session journal slow-query threshold (0 = never slow).
  int64_t slow_threshold_ns = 0;

  /// Runtime setup for epoch replicas (method implementations, key
  /// indexes) — see EpochStore::ReplicaSetup.
  EpochStore::ReplicaSetup replica_setup;
};

/// What one request produced. `status` is the only field meaningful on
/// failure; `retry_after_ms` is set (nonzero) when admission control shed
/// the request and it is worth retrying.
struct QueryResponse {
  sqo::Status status = sqo::Status::Ok();
  std::vector<std::vector<sqo::Value>> rows;

  bool contradiction = false;  // proven empty under the ICs; not evaluated
  bool degraded = false;       // served without Step-3 optimization
  std::string degradation_reason;
  int chosen_alternative = 0;
  uint64_t n_alternatives = 0;

  uint64_t epoch = 0;           // snapshot epoch read / published
  uint64_t retry_after_ms = 0;  // nonzero when shed by admission control
};

/// Completion handle for one submitted request. The request's
/// ExecutionContext lives here, so `Cancel` can reach in-flight work from
/// any thread (cooperative: the worker observes it at its next governance
/// check and latches kCancelled).
class PendingReply {
 public:
  /// Blocks until the request completes (served, shed, or cancelled).
  const QueryResponse& Wait();
  bool done() const;

  /// Requests cooperative cancellation; safe from any thread, idempotent.
  void Cancel() { context_.RequestCancellation(); }

 private:
  friend class Server;
  friend class Session;

  void Complete(QueryResponse response);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  QueryResponse response_;
  ExecutionContext context_;
};
using ReplyRef = std::shared_ptr<PendingReply>;

/// One client connection. Requests submitted on a session execute in
/// submission order (per-session FIFO) on the server's shared worker
/// pool; different sessions interleave freely. A session also owns its
/// observability: a query journal, latency meter and metrics registry
/// fed by whichever worker thread serves its requests.
///
/// Thread-safe. Sessions are created by Server::OpenSession and must not
/// outlive their server.
class Session : public std::enable_shared_from_this<Session> {
 public:
  /// Submits an OQL query against the currently published snapshot epoch.
  /// `deadline_ms` 0 means the server's default deadline.
  ReplyRef SubmitQuery(std::string oql, uint64_t deadline_ms = 0);
  QueryResponse Query(const std::string& oql, uint64_t deadline_ms = 0);

  /// Submits a write. `op` runs serialized against the primary database;
  /// its mutations reach the WAL first and the epoch journal after the
  /// ack, then a new epoch is published (ack-before-publish).
  ReplyRef SubmitMutation(std::function<sqo::Status(engine::Database*)> op,
                          uint64_t deadline_ms = 0);
  sqo::Status Mutate(std::function<sqo::Status(engine::Database*)> op,
                     uint64_t deadline_ms = 0);

  /// Cooperatively cancels every queued and in-flight request of this
  /// session. Requests still complete (with kCancelled) in FIFO order.
  void CancelAll();

  const std::string& name() const { return name_; }

  std::vector<obs::QueryEvent> JournalSnapshot() const;
  obs::MetricsRegistry MetricsSnapshot() const;
  obs::QpsMeter::Snapshot Latency() const;

 private:
  friend class Server;

  struct Request {
    enum class Kind { kQuery, kMutation };
    Kind kind = Kind::kQuery;
    std::string oql;                                    // kQuery
    std::function<sqo::Status(engine::Database*)> op;   // kMutation
    ReplyRef reply;
    std::chrono::steady_clock::time_point admitted;
  };

  Session(Server* server, std::string name, int64_t slow_threshold_ns);

  Server* server_;
  std::string name_;

  std::mutex mu_;  // guards queue_, in_flight_, in_flight_reply_
  std::deque<Request> queue_;
  bool in_flight_ = false;
  ReplyRef in_flight_reply_;

  // Per-session observability (the "SessionObs" seam). journal_/qps_ are
  // internally synchronized; metrics_ merges under obs_mu_.
  mutable std::mutex obs_mu_;
  obs::MetricsRegistry metrics_;
  mutable obs::QueryJournal journal_;
  obs::QpsMeter qps_;
};

}  // namespace sqo::server

#endif  // SQO_SERVER_SESSION_H_
