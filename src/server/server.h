#ifndef SQO_SERVER_SERVER_H_
#define SQO_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/database.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "server/epoch.h"
#include "server/session.h"
#include "sqo/pipeline.h"
#include "storage/manager.h"

namespace sqo::server {

/// Multi-client serving layer over one pipeline + one primary database:
/// snapshot-isolated reads (EpochStore), per-session FIFO execution on a
/// shared worker pool, admission control with load shedding, and
/// fail-open degradation under overload.
///
/// Request lifecycle: admit (failpoint `server.enqueue`; shed at the
/// queue bound or by p99 wait estimate) -> queue per session -> dispatch
/// on a pool worker (failpoint `server.dispatch`; requests whose deadline
/// expired while queued are rejected without work) -> execute (queries
/// pin an epoch; writes serialize on the primary, then publish after the
/// WAL ack) -> reply (failpoint `server.reply`; the reply always
/// completes, a reply fault surfaces as the request's status).
///
/// Overload posture, in order of pressure: degrade reads (skip Step-3
/// optimization above `degrade_queue_depth`), then shed new requests with
/// retry-after (at `max_queue_depth` or the shed-wait estimate), and only
/// then — never implicitly — refuse. Readers are never blocked by
/// writers: a publish that cannot find an unpinned replica skips rather
/// than waits.
///
/// Thread-safe after Start(). Start/Stop themselves must be externally
/// serialized with respect to each other.
class Server {
 public:
  /// `pipeline` and `primary` must outlive the server. `primary` may have
  /// storage attached (Database::Open): the server then tees the store's
  /// mutation listener so every acked batch reaches the WAL first and the
  /// epoch journal second, and restores the plain WAL listener on Stop.
  Server(const core::Pipeline* pipeline, engine::Database* primary,
         ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Lints the config (SQO-A020), bootstraps the epoch replicas from the
  /// primary, installs the listener tee and spins up the worker pool.
  /// The primary must be quiescent until Start returns.
  sqo::Status Start();

  /// Drains: sheds everything still queued (kResourceExhausted), cancels
  /// in-flight work cooperatively, joins the pool, restores the storage
  /// listener. Idempotent.
  void Stop();

  /// Opens a named session. The server retains it; the handle stays
  /// valid until the server is destroyed.
  std::shared_ptr<Session> OpenSession(std::string name);

  /// Admitted-but-unfinished requests across all sessions.
  size_t queue_depth() const { return queued_.load(std::memory_order_relaxed); }

  bool started() const { return started_.load(std::memory_order_acquire); }

  /// SQO-A020 findings from the last Start().
  const analysis::AnalysisReport& lint() const { return lint_; }

  const EpochStore& epochs() const { return *epochs_; }
  const ServerConfig& config() const { return config_; }

  /// Server-wide latency distribution (all sessions, queries only).
  obs::QpsMeter::Snapshot Latency() const;

  /// Server-wide counters (shed/degraded/expired/faults) merged with
  /// every worker-recorded metric.
  obs::MetricsRegistry MetricsSnapshot() const;

 private:
  friend class Session;

  /// Admission control. Completes the reply immediately on shed/fault;
  /// otherwise queues on `session` and kicks its dispatch chain.
  ReplyRef Enqueue(const std::shared_ptr<Session>& session,
                   Session::Request request, uint64_t deadline_ms);

  /// Pops and serves one request of `session` on the calling pool worker,
  /// then chains the next if the session queue is non-empty.
  void RunOne(const std::shared_ptr<Session>& session);

  QueryResponse Execute(Session* session, Session::Request& request);
  QueryResponse ExecuteQuery(Session::Request& request);
  QueryResponse ExecuteMutation(Session::Request& request);

  /// Overload path: parse + translate only (Steps 1-2), original query as
  /// the sole alternative, degraded flag set.
  sqo::Result<core::PipelineResult> TranslateOnly(
      const std::string& oql, const core::CostModel& cost_model) const;

  void CompleteShed(const ReplyRef& reply, sqo::Status status);

  const core::Pipeline* pipeline_;
  engine::Database* primary_;
  storage::StorageManager* storage_ = nullptr;
  ServerConfig config_;
  analysis::AnalysisReport lint_;

  std::unique_ptr<EpochStore> epochs_;
  std::unique_ptr<ThreadPool> pool_;
  std::mutex write_mu_;  // serializes mutations on the primary

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> queued_{0};

  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;

  mutable std::mutex obs_mu_;
  obs::QpsMeter latency_;
  obs::MetricsRegistry metrics_;
};

}  // namespace sqo::server

#endif  // SQO_SERVER_SERVER_H_
