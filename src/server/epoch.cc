#include "server/epoch.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace sqo::server {

EpochStore::EpochStore(const translate::TranslatedSchema* schema,
                       Options options)
    : schema_(schema), options_(std::move(options)) {
  if (options_.replicas == 0) options_.replicas = 1;
}

sqo::Status EpochStore::Initialize(const engine::Database* primary) {
  std::lock_guard<std::mutex> lock(mu_);
  if (primary == nullptr) {
    return sqo::InvalidArgumentError("EpochStore::Initialize: null primary");
  }
  primary_ = primary;
  replicas_.clear();
  replicas_.resize(options_.replicas);
  for (Replica& replica : replicas_) {
    SQO_RETURN_IF_ERROR(BootstrapLocked(&replica));
  }
  epoch_ = 1;
  current_ = 0;
  replicas_[0].handle = std::make_shared<Snapshot>();
  replicas_[0].handle->db_ = replicas_[0].db.get();
  replicas_[0].handle->epoch_ = epoch_;
  return sqo::Status::Ok();
}

sqo::Status EpochStore::BootstrapLocked(Replica* replica) {
  replica->db = std::make_unique<engine::Database>(schema_);
  if (options_.replica_setup) {
    SQO_RETURN_IF_ERROR(options_.replica_setup(replica->db.get()));
  }
  // Encode the primary's contents as one replayable batch: objects first
  // (declared indexes are maintained by replay), then every stored pair —
  // including ASR-derived pairs, inserted verbatim since no ASR state is
  // registered yet, so maintenance cannot double-derive them.
  std::vector<engine::Mutation> batch;
  const engine::ObjectStore& src = primary_->store();
  batch.reserve(src.object_count());
  for (const auto& [oid, record] : src.objects()) {
    engine::Mutation m;
    m.kind = engine::Mutation::Kind::kCreate;
    m.oid = sqo::Oid(oid);
    m.relation = record.exact_relation;
    m.row = record.row;
    batch.push_back(std::move(m));
  }
  for (const std::string& rel : src.RelationNames()) {
    for (const auto& [pair_src, pair_dst] : src.Pairs(rel)) {
      engine::Mutation m;
      m.kind = engine::Mutation::Kind::kInsertPair;
      m.relation = rel;
      m.src = pair_src;
      m.dst = pair_dst;
      batch.push_back(std::move(m));
    }
  }
  engine::ObjectStore& dst = replica->db->store();
  SQO_RETURN_IF_ERROR(dst.ApplyMutations(batch));
  dst.RestoreNextOid(src.next_oid());
  // Register ASR maintenance state last, so future journal replay extends
  // materializations incrementally exactly as the primary does.
  for (engine::ObjectStore::AsrState state : src.AsrStates()) {
    dst.RestoreAsrState(std::move(state));
  }
  dst.RefreshStaleAsrs();
  replica->applied = journal_base_ + journal_.size();
  replica->handle.reset();
  return sqo::Status::Ok();
}

void EpochStore::Append(const std::vector<engine::Mutation>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_.push_back(batch);
  ++appended_;
}

sqo::Status EpochStore::CatchUpLocked(Replica* replica) {
  const uint64_t tip = journal_base_ + journal_.size();
  while (replica->applied < tip) {
    const auto& batch = journal_[replica->applied - journal_base_];
    const sqo::Status applied = replica->db->store().ApplyMutations(batch);
    if (!applied.ok()) {
      // A replica that cannot replay a batch the primary applied is
      // corrupt; rebuild it wholesale from the primary (which reflects
      // every journaled batch already).
      obs::Count("server.epoch_rebootstraps");
      return BootstrapLocked(replica);
    }
    ++replica->applied;
  }
  return sqo::Status::Ok();
}

sqo::Status EpochStore::Publish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ == SIZE_MAX) {
    return sqo::InternalError("EpochStore::Publish before Initialize");
  }
  const uint64_t tip = journal_base_ + journal_.size();
  if (replicas_[current_].applied == tip) {
    TruncateJournalLocked();
    return sqo::Status::Ok();  // nothing new to expose
  }
  const sqo::Status faulted = failpoint::Check("server.epoch_publish");
  if (!faulted.ok()) {
    ++skips_;
    obs::Count("server.epoch_skips");
    return sqo::Status::Ok();  // readers keep the previous epoch
  }
  // A replica is reusable when it is not the published one and no reader
  // pin is outstanding: pins are copies of `handle` handed out under mu_,
  // so use_count() == 1 here cannot race a new pin.
  size_t victim = SIZE_MAX;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (i == current_) continue;
    if (replicas_[i].handle == nullptr ||
        replicas_[i].handle.use_count() == 1) {
      victim = i;
      break;
    }
  }
  if (victim == SIZE_MAX && replicas_[current_].handle.use_count() == 1) {
    victim = current_;  // single-replica pool, no pins: update in place
  }
  if (victim == SIZE_MAX) {
    ++skips_;
    obs::Count("server.epoch_skips");
    obs::Gauge("server.epoch_retained_batches", journal_.size());
    return sqo::Status::Ok();  // every replica pinned: bounded staleness
  }
  Replica& next = replicas_[victim];
  next.handle.reset();
  SQO_RETURN_IF_ERROR(CatchUpLocked(&next));
  // Readers must never trip the in-place lazy ASR rebuild concurrently;
  // heal stale materializations before any reader can pin this replica.
  next.db->store().RefreshStaleAsrs();
  ++epoch_;
  next.handle = std::make_shared<Snapshot>();
  next.handle->db_ = next.db.get();
  next.handle->epoch_ = epoch_;
  current_ = victim;
  obs::Count("server.epoch_publishes");
  TruncateJournalLocked();
  return sqo::Status::Ok();
}

void EpochStore::TruncateJournalLocked() {
  uint64_t min_applied = journal_base_ + journal_.size();
  for (const Replica& replica : replicas_) {
    min_applied = std::min(min_applied, replica.applied);
  }
  while (journal_base_ < min_applied && !journal_.empty()) {
    journal_.pop_front();
    ++journal_base_;
  }
}

EpochStore::SnapshotRef EpochStore::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ == SIZE_MAX) return nullptr;
  return replicas_[current_].handle;
}

uint64_t EpochStore::published_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint64_t EpochStore::appended_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

uint64_t EpochStore::retained_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_.size();
}

uint64_t EpochStore::publish_skips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skips_;
}

}  // namespace sqo::server
