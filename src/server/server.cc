#include "server/server.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/fingerprint.h"
#include "engine/cost_model.h"
#include "obs/eval_stats.h"
#include "oql/parser.h"
#include "translate/query_translator.h"

namespace sqo::server {

namespace {

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

std::string Fingerprint(const std::string& text) {
  sqo::FingerprintBuilder builder;
  for (char c : text) builder.Append(static_cast<unsigned char>(c));
  return builder.fingerprint().ToString();
}

bool IsGovernanceStatus(const sqo::Status& status) {
  return status.code() == sqo::StatusCode::kResourceExhausted ||
         status.code() == sqo::StatusCode::kCancelled;
}

}  // namespace

Server::Server(const core::Pipeline* pipeline, engine::Database* primary,
               ServerConfig config)
    : pipeline_(pipeline), primary_(primary), config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = ThreadPool::DefaultSize();
  if (config_.replicas == 0) config_.replicas = 1;
}

Server::~Server() { Stop(); }

sqo::Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return sqo::InvalidArgumentError("Server::Start: already started");
  }
  if (pipeline_ == nullptr || primary_ == nullptr) {
    return sqo::InvalidArgumentError("Server::Start: null pipeline/database");
  }
  lint_ = analysis::AnalyzeServerConfig(
      config_.workers, std::thread::hardware_concurrency(),
      config_.max_queue_depth, config_.degrade_queue_depth,
      config_.shed_wait_ms, config_.default_deadline_ms);

  EpochStore::Options epoch_options;
  epoch_options.replicas = config_.replicas;
  epoch_options.replica_setup = config_.replica_setup;
  epochs_ = std::make_unique<EpochStore>(&pipeline_->schema(), epoch_options);
  SQO_RETURN_IF_ERROR(epochs_->Initialize(primary_));

  // The ack-before-publish tee: replace the storage layer's listener (or
  // install a fresh one on a storage-less database) so each logical batch
  // is durable *before* it enters the epoch journal readers can see.
  storage_ = primary_->storage();
  storage::StorageManager* storage = storage_;
  EpochStore* epochs = epochs_.get();
  primary_->store().SetMutationListener(
      [storage, epochs](const std::vector<engine::Mutation>& batch) {
        if (storage != nullptr) {
          SQO_RETURN_IF_ERROR(storage->AppendBatch(batch));
        }
        epochs->Append(batch);
        return sqo::Status::Ok();
      });

  pool_ = std::make_unique<ThreadPool>(config_.workers);
  stopping_.store(false, std::memory_order_release);
  started_.store(true, std::memory_order_release);
  obs::Gauge("server.workers", config_.workers);
  return sqo::Status::Ok();
}

void Server::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);

  // Shed everything still queued and cancel in-flight work; workers
  // observe the cancellation at their next governance check.
  {
    std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
    for (const std::shared_ptr<Session>& session : sessions_) {
      std::deque<Session::Request> drained;
      {
        std::lock_guard<std::mutex> lock(session->mu_);
        drained.swap(session->queue_);
        if (session->in_flight_reply_ != nullptr) {
          session->in_flight_reply_->Cancel();
        }
      }
      for (Session::Request& request : drained) {
        queued_.fetch_sub(1, std::memory_order_relaxed);
        QueryResponse response;
        response.status = sqo::ResourceExhaustedError("server stopping");
        request.reply->Complete(std::move(response));
      }
    }
  }
  pool_.reset();  // joins workers; every in-flight request has completed

  if (storage_ != nullptr) {
    storage::StorageManager* storage = storage_;
    primary_->store().SetMutationListener(
        [storage](const std::vector<engine::Mutation>& batch) {
          return storage->AppendBatch(batch);
        });
  } else {
    primary_->store().SetMutationListener(nullptr);
  }
  started_.store(false, std::memory_order_release);
}

std::shared_ptr<Session> Server::OpenSession(std::string name) {
  std::shared_ptr<Session> session(
      new Session(this, std::move(name), config_.slow_threshold_ns));
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.push_back(session);
  return session;
}

obs::QpsMeter::Snapshot Server::Latency() const { return latency_.Summarize(); }

obs::MetricsRegistry Server::MetricsSnapshot() const {
  std::lock_guard<std::mutex> lock(obs_mu_);
  obs::MetricsRegistry copy;
  copy.MergeFrom(metrics_);
  return copy;
}

void Server::CompleteShed(const ReplyRef& reply, sqo::Status status) {
  QueryResponse response;
  response.status = std::move(status);
  response.retry_after_ms = config_.retry_after_ms;
  reply->Complete(std::move(response));
}

ReplyRef Server::Enqueue(const std::shared_ptr<Session>& session,
                         Session::Request request, uint64_t deadline_ms) {
  request.reply = std::make_shared<PendingReply>();
  request.admitted = std::chrono::steady_clock::now();
  ReplyRef reply = request.reply;

  reply->context_.budgets() = config_.budgets;
  const uint64_t budget =
      deadline_ms != 0 ? deadline_ms : config_.default_deadline_ms;
  if (budget != 0) {
    reply->context_.SetDeadlineAfter(std::chrono::milliseconds(budget));
  }

  if (!started_.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    QueryResponse response;
    response.status = sqo::InvalidArgumentError("server is not serving");
    reply->Complete(std::move(response));
    return reply;
  }

  const sqo::Status enqueue_fault = failpoint::Check("server.enqueue");
  if (!enqueue_fault.ok()) {
    std::lock_guard<std::mutex> lock(obs_mu_);
    metrics_.Add("server.enqueue_faults");
    CompleteShed(reply, enqueue_fault);
    return reply;
  }

  // Admission control: a hard bound on admitted-but-unfinished requests,
  // plus (optional) shedding by estimated wait = depth x observed p99.
  const size_t depth = queued_.load(std::memory_order_relaxed);
  bool shed = depth >= config_.max_queue_depth;
  std::string reason = "queue full";
  if (!shed && config_.shed_wait_ms > 0) {
    const obs::QpsMeter::Snapshot seen = latency_.Summarize();
    if (seen.count >= 32) {
      const double estimated_wait_ms =
          static_cast<double>(depth + 1) * static_cast<double>(seen.p99_ns) /
          1e6;
      if (estimated_wait_ms > static_cast<double>(config_.shed_wait_ms)) {
        shed = true;
        reason = "estimated wait exceeds shed threshold";
      }
    }
  }
  if (shed) {
    {
      std::lock_guard<std::mutex> lock(obs_mu_);
      metrics_.Add("server.shed");
    }
    obs::Count("server.shed");
    CompleteShed(reply, sqo::ResourceExhaustedError(
                            "server overloaded (" + reason + "); retry after " +
                            std::to_string(config_.retry_after_ms) + "ms"));
    return reply;
  }

  queued_.fetch_add(1, std::memory_order_relaxed);
  bool rejected = false;
  {
    // Push and kick under the session lock, re-checking stopping_ there:
    // Stop() flips stopping_ before draining each session under this same
    // lock, so no request can slip in after the drain and no Submit can
    // race the pool teardown.
    std::lock_guard<std::mutex> lock(session->mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      rejected = true;
    } else {
      session->queue_.push_back(std::move(request));
      if (!session->in_flight_) {
        session->in_flight_ = true;
        pool_->Submit([this, session] { RunOne(session); });
      }
    }
  }
  if (rejected) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    QueryResponse response;
    response.status = sqo::ResourceExhaustedError("server stopping");
    reply->Complete(std::move(response));
  }
  return reply;
}

void Server::RunOne(const std::shared_ptr<Session>& session) {
  Session::Request request;
  {
    std::lock_guard<std::mutex> lock(session->mu_);
    if (session->queue_.empty()) {  // drained by Stop
      session->in_flight_ = false;
      return;
    }
    request = std::move(session->queue_.front());
    session->queue_.pop_front();
    session->in_flight_reply_ = request.reply;
  }

  // Per-request metrics recorded on this worker land in a local registry
  // and merge into the session's under its lock.
  obs::MetricsRegistry local;
  QueryResponse response;
  {
    obs::ScopedMetrics scoped(&local);
    response = Execute(session.get(), request);
    const sqo::Status reply_fault = failpoint::Check("server.reply");
    if (!reply_fault.ok()) {
      // The reply channel failed after the work ran: the client sees the
      // fault (and must treat the request as unacknowledged), not rows.
      obs::Count("server.reply_faults");
      response = QueryResponse();
      response.status = reply_fault;
    }
  }

  const int64_t duration_ns = ElapsedNs(request.admitted);
  obs::QueryEvent event;
  event.query = request.kind == Session::Request::Kind::kQuery
                    ? request.oql
                    : "<mutation>";
  event.fingerprint = Fingerprint(event.query);
  event.duration_ns = duration_ns;
  event.status = response.status.ok() ? "ok" : response.status.ToString();
  event.degraded = response.degraded;
  event.cancelled = IsGovernanceStatus(response.status);
  event.contradiction = response.contradiction;
  event.chosen_alternative = response.chosen_alternative;
  event.n_alternatives = response.n_alternatives;
  {
    std::lock_guard<std::mutex> lock(session->obs_mu_);
    obs::ScopedMetrics session_scope(&session->metrics_);
    session->journal_.Record(std::move(event));
    session->metrics_.MergeFrom(local);
  }
  if (request.kind == Session::Request::Kind::kQuery) {
    session->qps_.Record(duration_ns);
    latency_.Record(duration_ns);
  }
  {
    std::lock_guard<std::mutex> lock(obs_mu_);
    metrics_.MergeFrom(local);
  }

  request.reply->Complete(std::move(response));

  bool chain = false;
  {
    std::lock_guard<std::mutex> lock(session->mu_);
    session->in_flight_reply_.reset();
    if (!session->queue_.empty() &&
        !stopping_.load(std::memory_order_acquire)) {
      chain = true;  // keep in_flight_: FIFO continues on the next worker
    } else {
      session->in_flight_ = false;
    }
  }
  queued_.fetch_sub(1, std::memory_order_relaxed);
  if (chain) {
    std::shared_ptr<Session> chained = session;
    pool_->Submit([this, chained] { RunOne(chained); });
  }
}

QueryResponse Server::Execute(Session* session, Session::Request& request) {
  (void)session;
  QueryResponse response;

  const sqo::Status dispatch_fault = failpoint::Check("server.dispatch");
  if (!dispatch_fault.ok()) {
    obs::Count("server.dispatch_faults");
    response.status = dispatch_fault;
    return response;
  }
  // Cooperative cancellation / deadline-expired-while-queued: reject
  // before doing any work. The latch makes later checks agree.
  const sqo::Status admitted = request.reply->context_.Check("server.dispatch");
  if (!admitted.ok()) {
    obs::Count("server.expired_in_queue");
    response.status = admitted;
    return response;
  }

  return request.kind == Session::Request::Kind::kQuery
             ? ExecuteQuery(request)
             : ExecuteMutation(request);
}

QueryResponse Server::ExecuteMutation(Session::Request& request) {
  QueryResponse response;
  ScopedContext governed(&request.reply->context_);
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    response.status = request.op(primary_);
    if (response.status.ok()) {
      // The listener tee already journaled the acked batches; expose them.
      response.status = epochs_->Publish();
    }
  }
  response.epoch = epochs_->published_epoch();
  return response;
}

QueryResponse Server::ExecuteQuery(Session::Request& request) {
  QueryResponse response;
  EpochStore::SnapshotRef snapshot = epochs_->Pin();
  if (snapshot == nullptr) {
    response.status = sqo::InternalError("no published epoch");
    return response;
  }
  response.epoch = snapshot->epoch();

  engine::EngineCostModel cost_model(&snapshot->db().store());
  ScopedContext governed(&request.reply->context_);

  // Fail-open degradation: above the overload threshold, skip Step-3
  // optimization entirely and serve the original translated query. Reads
  // degrade before they are ever refused.
  const bool overloaded =
      queued_.load(std::memory_order_relaxed) > config_.degrade_queue_depth;
  sqo::Result<core::PipelineResult> optimized =
      overloaded ? TranslateOnly(request.oql, cost_model)
                 : pipeline_->OptimizeText(request.oql, &cost_model);
  if (overloaded) obs::Count("server.degraded_overload");
  if (!optimized.ok()) {
    response.status = optimized.status();
    return response;
  }

  response.degraded = optimized->degraded;
  response.degradation_reason = optimized->degradation_reason;
  response.n_alternatives = optimized->alternatives.size();
  if (optimized->contradiction) {
    response.contradiction = true;  // proven empty; nothing to evaluate
    return response;
  }
  if (optimized->alternatives.empty()) {
    response.status = sqo::InternalError("pipeline produced no alternatives");
    return response;
  }
  response.chosen_alternative = optimized->best_index;
  const core::Alternative& best =
      optimized->alternatives[optimized->best_index];
  obs::EvalStats stats;
  sqo::Result<std::vector<std::vector<sqo::Value>>> rows =
      snapshot->db().Run(best.datalog, &stats);
  if (!rows.ok()) {
    response.status = rows.status();
    return response;
  }
  response.rows = std::move(*rows);
  return response;
}

sqo::Result<core::PipelineResult> Server::TranslateOnly(
    const std::string& oql, const core::CostModel& cost_model) const {
  SQO_ASSIGN_OR_RETURN(oql::SelectQuery parsed, oql::ParseOql(oql));
  SQO_ASSIGN_OR_RETURN(translate::TranslatedQuery translated,
                       translate::TranslateQuery(pipeline_->schema(), parsed));
  core::PipelineResult result;
  result.original_oql = parsed;
  result.original_datalog = translated.query;
  result.map = std::move(translated.map);
  result.degraded = true;
  result.degradation_reason = "overload: Step-3 optimization bypassed";
  core::Alternative original;
  original.datalog = result.original_datalog;
  original.oql_ok = true;
  original.oql = std::move(parsed);
  original.cost = cost_model.EstimateCost(original.datalog);
  result.alternatives.push_back(std::move(original));
  result.best_index = 0;
  return result;
}

}  // namespace sqo::server
