#ifndef SQO_SERVER_EPOCH_H_
#define SQO_SERVER_EPOCH_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "engine/object_store.h"

/// Epoch-based copy-on-write snapshots over an ObjectStore, so the serving
/// layer's readers never block behind writers and never observe a torn
/// mutation.
///
/// The mechanism: a bounded pool of replica stores plus a journal of the
/// primary's mutation batches (the same batches the WAL logs — the store's
/// mutation-listener seam delivers them). A reader *pins* the currently
/// published replica (a shared_ptr handle; releasing the pin frees it for
/// reuse). After a write is acknowledged durable, the writer *publishes*: an
/// unpinned replica is caught up by replaying the journal suffix it is
/// missing, stale ASRs are refreshed eagerly (so the read path stays
/// structurally immutable), and the replica becomes the new current epoch.
///
/// The ack-before-publish invariant: a batch enters the journal only after
/// the WAL acknowledged it, and readers only ever see journal prefixes — so
/// no reader observes state that could be lost by a crash, and disk is
/// always at or ahead of every published epoch.
///
/// When every replica is pinned, publishing is *skipped* (counted), not
/// blocked: readers serve a bounded-stale epoch and the next publish catches
/// the replica up over the whole accumulated suffix. Writers never wait for
/// readers; readers never wait at all.
namespace sqo::server {

class EpochStore {
 public:
  /// Code-side setup a fresh replica needs before mutations replay into it
  /// (method implementations, declared key indexes) — the same hook a
  /// recovery path runs before Open (e.g. workload::SetupUniversityRuntime).
  using ReplicaSetup = std::function<sqo::Status(engine::Database*)>;

  struct Options {
    /// Replica stores beyond the primary. Two lets one serve reads while
    /// the other absorbs the next publish; more tolerates long-pinned
    /// readers without publish skips.
    size_t replicas = 2;

    ReplicaSetup replica_setup;
  };

  /// One pinned epoch: a read-only view of a replica database. Valid while
  /// the handle is held and the EpochStore is alive; holding it keeps the
  /// replica out of the publisher's reuse pool.
  class Snapshot {
   public:
    const engine::Database& db() const { return *db_; }
    uint64_t epoch() const { return epoch_; }

   private:
    friend class EpochStore;
    engine::Database* db_ = nullptr;
    uint64_t epoch_ = 0;
  };
  using SnapshotRef = std::shared_ptr<const Snapshot>;

  /// `schema` must outlive the store (it backs every replica).
  EpochStore(const translate::TranslatedSchema* schema, Options options);

  EpochStore(const EpochStore&) = delete;
  EpochStore& operator=(const EpochStore&) = delete;

  /// Builds every replica from `primary`'s current contents (encoded as
  /// one replayable mutation batch) and publishes epoch 1. `primary` must
  /// be quiescent for the duration and is retained for replica repair.
  sqo::Status Initialize(const engine::Database* primary);

  /// Journals one acknowledged mutation batch. Call *after* the WAL append
  /// returned OK (the ack-before-publish invariant); never fails — once a
  /// batch is durable it must eventually reach every replica.
  void Append(const std::vector<engine::Mutation>& batch);

  /// Catches an unpinned replica up to the journal tip and makes it the
  /// published epoch. Skips (without error) when every other replica is
  /// pinned, or when the current replica is already at the tip. The
  /// `server.epoch_publish` failpoint turns a publish into a skip — readers
  /// then serve the previous epoch, exactly the overload/fault posture.
  sqo::Status Publish();

  /// Pins the published epoch. Never blocks; nullptr before Initialize.
  SnapshotRef Pin() const;

  uint64_t published_epoch() const;

  /// Journal batches appended / retained (retained > 0 means some replica
  /// still lags the tip; grows while readers hold pins across writes).
  uint64_t appended_batches() const;
  uint64_t retained_batches() const;
  uint64_t publish_skips() const;

 private:
  struct Replica {
    std::unique_ptr<engine::Database> db;
    uint64_t applied = 0;              // journal prefix replayed (absolute)
    std::shared_ptr<Snapshot> handle;  // pool's reference; pins are copies
  };

  /// Rebuilds `replica` from the primary's current state. mu_ held.
  sqo::Status BootstrapLocked(Replica* replica);

  /// Replays the journal suffix `replica` is missing. mu_ held.
  sqo::Status CatchUpLocked(Replica* replica);

  void TruncateJournalLocked();

  const translate::TranslatedSchema* schema_;
  Options options_;
  const engine::Database* primary_ = nullptr;

  mutable std::mutex mu_;
  std::vector<Replica> replicas_;
  std::deque<std::vector<engine::Mutation>> journal_;
  uint64_t journal_base_ = 0;  // absolute index of journal_.front()
  size_t current_ = SIZE_MAX;  // index into replicas_; SIZE_MAX = none
  uint64_t epoch_ = 0;
  uint64_t appended_ = 0;
  uint64_t skips_ = 0;
};

}  // namespace sqo::server

#endif  // SQO_SERVER_EPOCH_H_
