#include "sqo/residue.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "datalog/unify.h"

namespace sqo::core {

using datalog::Atom;
using datalog::Clause;
using datalog::Literal;
using datalog::RelationSignature;
using datalog::Substitution;
using datalog::Term;

std::string Residue::ToString() const {
  std::vector<std::string> rem;
  rem.reserve(remainder.size());
  for (const Literal& lit : remainder) rem.push_back(lit.ToString());
  std::string head_str = head.has_value() ? head->ToString() : "false";
  return template_atom.ToString() + ": {" + head_str + " <- " +
         StrJoin(rem, ", ") + "}";
}

void Residue::FinalizeForMatching(uint32_t residue_id) {
  id = residue_id;
  bindable_symbols.clear();
  for (const std::string& name : variables) {
    bindable_symbols.insert(sqo::Intern(name));
  }
  remainder_predicates.clear();
  for (const Literal& lit : remainder) {
    if (!lit.atom.is_predicate()) continue;
    std::pair<sqo::Symbol, bool> req(lit.atom.predicate_symbol(), lit.positive);
    bool present = false;
    for (const auto& existing : remainder_predicates) {
      if (existing == req) {
        present = true;
        break;
      }
    }
    if (!present) remainder_predicates.push_back(req);
  }
}

namespace {

/// Renames all variables of a residue to a canonical scheme: template
/// positions get "T<i>", other variables "R<n>" in occurrence order. This
/// makes residues deduplicatable and their rendering stable.
Residue Canonicalize(Residue in) {
  std::map<std::string, Term> renaming;
  int r_counter = 0;
  auto canon_term = [&](const Term& t, int template_pos) -> Term {
    if (!t.is_variable()) return t;
    auto it = renaming.find(t.var_name());
    if (it != renaming.end()) return it->second;
    Term named = template_pos >= 0
                     ? Term::Var("T" + std::to_string(template_pos + 1))
                     : Term::Var("R" + std::to_string(++r_counter));
    renaming.emplace(t.var_name(), named);
    return named;
  };
  auto canon_atom = [&](const Atom& a, bool is_template) {
    std::vector<Term> args;
    args.reserve(a.arity());
    for (size_t i = 0; i < a.arity(); ++i) {
      args.push_back(canon_term(a.args()[i], is_template ? static_cast<int>(i) : -1));
    }
    if (a.is_comparison()) {
      return Atom::Comparison(a.op(), std::move(args[0]), std::move(args[1]));
    }
    return Atom::Pred(a.predicate(), std::move(args));
  };

  Residue out;
  out.relation = in.relation;
  out.source = in.source;
  out.template_atom = canon_atom(in.template_atom, /*is_template=*/true);
  for (const Literal& lit : in.remainder) {
    out.remainder.push_back(Literal(lit.positive, canon_atom(lit.atom, false)));
  }
  if (in.head.has_value()) {
    out.head = Literal(in.head->positive, canon_atom(in.head->atom, false));
  }
  return out;
}

}  // namespace

std::vector<Residue> ComputeResidues(const Clause& ic,
                                     const RelationSignature& sig) {
  std::vector<Residue> out;
  std::set<std::string> seen;

  // Rename the IC apart from the template variables.
  datalog::FreshVarGen ic_gen("_C");
  Clause renamed = ic.RenamedApart(&ic_gen);

  // Candidate body literals: positive predicate atoms over `sig`.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < renamed.body.size(); ++i) {
    const Literal& lit = renamed.body[i];
    if (lit.positive && lit.atom.is_predicate() &&
        lit.atom.predicate() == sig.name && lit.atom.arity() == sig.arity()) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty() || candidates.size() > 16) return out;

  // Fresh template p(_T1, ..., _Tk).
  std::vector<Term> template_args;
  template_args.reserve(sig.arity());
  for (size_t i = 0; i < sig.arity(); ++i) {
    template_args.push_back(Term::Var("_T" + std::to_string(i + 1)));
  }
  const Atom template_atom = Atom::Pred(sig.name, template_args);

  // Every non-empty subset of candidates is one leaf of the subsumption
  // tree: the chosen atoms unify (two-way) with the template, the rest form
  // the remainder.
  const size_t n = candidates.size();
  for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
    Substitution subst;
    bool ok = true;
    std::set<size_t> matched;
    for (size_t b = 0; b < n && ok; ++b) {
      if ((mask & (size_t{1} << b)) == 0) continue;
      matched.insert(candidates[b]);
      ok = datalog::UnifyAtoms(renamed.body[candidates[b]].atom, template_atom,
                               &subst);
    }
    if (!ok) continue;

    Residue residue;
    residue.relation = sig.name;
    residue.source = ic.label;
    residue.template_atom = subst.ApplyToAtom(template_atom);
    for (size_t i = 0; i < renamed.body.size(); ++i) {
      if (matched.count(i) > 0) continue;
      residue.remainder.push_back(subst.ApplyToLiteral(renamed.body[i]));
    }
    if (renamed.head.has_value()) {
      residue.head = subst.ApplyToLiteral(*renamed.head);
    }
    residue = Canonicalize(std::move(residue));
    std::string key = residue.ToString();
    if (seen.insert(key).second) out.push_back(std::move(residue));
  }
  return out;
}

}  // namespace sqo::core
