#ifndef SQO_SQO_RESIDUE_H_
#define SQO_SQO_RESIDUE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "datalog/clause.h"
#include "datalog/signature.h"

namespace sqo::core {

/// A residue: the fragment of an integrity constraint left over after
/// partial subsumption against a relation template (paper §2, following
/// Chakravarthy–Grant–Minker). Attached to `relation`; at query time, if a
/// query atom unifies with `template_atom` and every literal of `remainder`
/// matches the rest of the query, then `head` is implied by the query
/// (`head == nullopt` means *false* is implied — the query is
/// contradictory).
struct Residue {
  /// Relation this residue is attached to.
  std::string relation;

  /// The (possibly partially instantiated) relation template. Template
  /// positions bound to constants during compilation restrict
  /// applicability: a residue computed from `taxes_withheld(O, 10%, V)`
  /// applies only to query atoms whose rate argument is 10%.
  datalog::Atom template_atom;

  /// Unmatched IC body literals that must be found in (or implied by) the
  /// query for the residue to fire.
  std::vector<datalog::Literal> remainder;

  /// The implied consequence; nullopt encodes a denial (false).
  std::optional<datalog::Literal> head;

  /// Label of the originating integrity constraint.
  std::string source;

  /// All variable names of the residue (template + remainder + head),
  /// precomputed by the semantic compiler after renaming the residue apart
  /// from any possible query variable (reserved "_R" prefix). This is the
  /// matcher's bindable set at application time.
  std::set<std::string> variables;

  /// `variables`, interned — borrowed by the application-time matcher so no
  /// per-application set copy happens. Filled by FinalizeForMatching.
  sqo::SymbolSet bindable_symbols;

  /// Distinct (predicate, polarity) pairs of the remainder's predicate
  /// literals. Remainder predicate literals only ever match query literals
  /// with the same predicate and polarity, so a query lacking any of these
  /// can never fire the residue — the optimizer's applicability gate skips
  /// the whole match attempt. Filled by FinalizeForMatching.
  std::vector<std::pair<sqo::Symbol, bool>> remainder_predicates;

  /// Dense id, unique within a CompiledSchema; key component of the
  /// optimizer's residue-application memo. Filled by FinalizeForMatching.
  uint32_t id = 0;

  Residue() : template_atom(datalog::Atom::Pred("", {})) {}

  /// Precomputes the application-time acceleration fields above from
  /// `variables` and `remainder`. Called once per residue by the semantic
  /// compiler, after renaming apart.
  void FinalizeForMatching(uint32_t residue_id);

  /// `faculty(T1, T2, T3): {Age > 30 <- }` style rendering.
  std::string ToString() const;
};

/// Computes all residues of `ic` with respect to the relation `sig`, by
/// enumerating the non-empty subsets of the IC's positive body atoms over
/// `sig` and unifying each subset against a fresh template (the subsumption
/// tree of the partial-subsumption algorithm; each leaf with at least one
/// matched atom yields a residue). Unification is two-way: template
/// variables may bind to IC constants, producing instantiated templates.
///
/// Residues whose remainder equals the full body (nothing matched) are not
/// produced; a residue with an empty remainder is a relation-level
/// invariant (Example 1's `Age > 30 ←` on Faculty).
std::vector<Residue> ComputeResidues(const datalog::Clause& ic,
                                     const datalog::RelationSignature& sig);

}  // namespace sqo::core

#endif  // SQO_SQO_RESIDUE_H_
