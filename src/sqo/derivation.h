#ifndef SQO_SQO_DERIVATION_H_
#define SQO_SQO_DERIVATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "datalog/clause.h"
#include "datalog/substitution.h"

namespace sqo::core {

/// Transformation families of the Step-3 optimizer (§5 of the paper plus
/// the ASR extension). Every rewriting the optimizer emits is a chain of
/// these steps; the verifier re-derives each one as a proof obligation.
enum class StepKind {
  kAddRestriction,     // T1: implied comparison appended (§5.1/§5.2)
  kMergeVariables,     // T4: key-implied OID merge, body-wide substitution (§5.3)
  kScopeReduction,     // T2: ¬subclass membership appended (§5.2)
  kIntroduceJoin,      // T5: implied predicate appended (§5.4)
  kRemoveRestriction,  // T3: redundant comparison dropped
  kEliminateJoin,      // T6: implied predicate dropped
  kFoldAsr,            // T7: relationship path replaced by an ASR atom
};

std::string_view StepKindName(StepKind kind);

/// One structured derivation step: the machine-readable record of what a
/// transformation did to the query body, alongside the human-readable log
/// line (`text`) that Rewriting::derivation has always carried. Header-only
/// data layout (like sqo/residue.h) so the analysis layer can consume steps
/// without linking sqo_core.
struct DerivationStep {
  StepKind kind = StepKind::kAddRestriction;

  /// Literals appended to the body (as they appear in the rewritten query,
  /// i.e. after freshening). Empty for pure removals and merges.
  std::vector<datalog::Literal> added;

  /// Literals erased from the body (as they appeared in the pre-step
  /// query). Empty for pure additions and merges.
  std::vector<datalog::Literal> removed;

  /// kMergeVariables only: every occurrence of `merge_drop` was replaced by
  /// `merge_keep`, justified by an implied equality merge_keep = merge_drop.
  std::string merge_keep;
  std::string merge_drop;

  /// Provenance: the IC label / ASR name / implication witness that
  /// justified the step (mirrors the bracketed suffix of `text`).
  std::string source;

  /// Human-readable log line; Rewriting::derivation keeps carrying these.
  std::string text;
};

inline std::string_view StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kAddRestriction:
      return "add_restriction";
    case StepKind::kMergeVariables:
      return "merge_variables";
    case StepKind::kScopeReduction:
      return "scope_reduction";
    case StepKind::kIntroduceJoin:
      return "introduce_join";
    case StepKind::kRemoveRestriction:
      return "remove_restriction";
    case StepKind::kEliminateJoin:
      return "eliminate_join";
    case StepKind::kFoldAsr:
      return "fold_asr";
  }
  return "unknown";
}

/// Replays one step against `query`, reproducing exactly the body cleanup
/// the optimizer applies when it emits a rewriting: merges substitute
/// body-wide and drop comparisons made trivially true (X = X, X <= X,
/// X >= X), removals erase the first occurrence of each recorded literal,
/// additions append, and exact duplicate conjuncts are dropped (idempotent
/// conjunction). The verifier replays every chain from the original query
/// and cross-checks the result against the alternative's canonical
/// fingerprint; any divergence between this function and
/// Optimizer::Neighbors surfaces as an SQO-A015 diagnostic.
inline datalog::Query ApplyDerivationStep(const datalog::Query& query,
                                          const DerivationStep& step) {
  using datalog::CmpOp;
  using datalog::Literal;
  using datalog::Query;

  Query next = query;
  if (step.kind == StepKind::kMergeVariables) {
    datalog::Substitution merge;
    merge.Bind(step.merge_drop, datalog::Term::Var(step.merge_keep));
    next = query.Substituted(merge);
    std::vector<Literal> kept;
    kept.reserve(next.body.size());
    for (Literal& l : next.body) {
      if (l.positive && l.atom.is_comparison() && l.atom.lhs() == l.atom.rhs() &&
          (l.atom.op() == CmpOp::kEq || l.atom.op() == CmpOp::kLe ||
           l.atom.op() == CmpOp::kGe)) {
        continue;
      }
      kept.push_back(std::move(l));
    }
    next.body = std::move(kept);
  }
  for (const Literal& removed : step.removed) {
    for (size_t i = 0; i < next.body.size(); ++i) {
      if (next.body[i] == removed) {
        next.body.erase(next.body.begin() + static_cast<long>(i));
        break;
      }
    }
  }
  for (const Literal& added : step.added) next.body.push_back(added);
  std::vector<Literal> dedup;
  dedup.reserve(next.body.size());
  for (Literal& l : next.body) {
    bool seen = false;
    for (const Literal& d : dedup) seen = seen || d == l;
    if (!seen) dedup.push_back(std::move(l));
  }
  next.body = std::move(dedup);
  return next;
}

}  // namespace sqo::core

#endif  // SQO_SQO_DERIVATION_H_
