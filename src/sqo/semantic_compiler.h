#ifndef SQO_SQO_SEMANTIC_COMPILER_H_
#define SQO_SQO_SEMANTIC_COMPILER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqo/asr.h"
#include "sqo/ic_inference.h"
#include "sqo/residue.h"
#include "translate/schema_translator.h"

namespace sqo::core {

/// The output of the semantic compilation phase (paper §2): every
/// integrity constraint — schema-generated, user-declared and inference-
/// derived — partially subsumed against every relation it mentions, with
/// the resulting residues attached to their relations. Computed once per
/// schema, before any queries are posed.
struct CompiledSchema {
  /// Non-owning; must outlive the compiled schema.
  const translate::TranslatedSchema* schema = nullptr;

  /// All constraints: schema + user + derived (in that order).
  std::vector<datalog::Clause> all_ics;

  /// Residues indexed by the relation they are attached to.
  std::map<std::string, std::vector<Residue>> residues;

  /// Registered access support relations.
  std::vector<AsrDefinition> asrs;

  const std::vector<Residue>* ResiduesFor(const std::string& relation) const {
    auto it = residues.find(relation);
    return it == residues.end() ? nullptr : &it->second;
  }

  size_t total_residues() const;

  /// Multi-line dump of every attached residue, for diagnostics.
  std::string ToString() const;
};

struct CompilerOptions {
  /// Run bounded IC inference before residue computation.
  bool run_inference = true;
  InferenceOptions inference;

  /// Drop residues whose head is trivially true (e.g. `T = T ←`, produced
  /// by degenerate subsumption-tree leaves of FD constraints).
  bool drop_trivial = true;
};

/// Compiles the semantic knowledge: runs IC inference (optional), then
/// computes residues of every constraint against every relation occurring
/// in its body. `user_ics` may contain `monotone`/`point` method facts in
/// their textual form; they are extracted and fed to inference.
sqo::Result<CompiledSchema> CompileSemantics(
    const translate::TranslatedSchema* schema,
    std::vector<datalog::Clause> user_ics, std::vector<AsrDefinition> asrs,
    const CompilerOptions& options = {});

}  // namespace sqo::core

#endif  // SQO_SQO_SEMANTIC_COMPILER_H_
