#ifndef SQO_SQO_PROFILE_ATTRIBUTION_H_
#define SQO_SQO_PROFILE_ATTRIBUTION_H_

#include <cstddef>

#include "obs/profile.h"
#include "sqo/pipeline.h"

namespace sqo::core {

/// Annotates an evaluated alternative's profile tree with semantic
/// provenance: each operator node learns whether its literal came from the
/// user's query ("original") or from a transformation step — in which case
/// the attribution is the optimizer's derivation entry, carrying the
/// integrity constraint that implied it (e.g. "add restriction t.salary >
/// 10000 [IC3]"). Original literals the transformation removed are listed
/// in `profile->eliminated` with the step that removed them, so EXPLAIN
/// ANALYZE shows work the semantic optimizer avoided, not just work done.
///
/// Matching is textual against the derivation log (best-effort): a literal
/// rewritten *again* after its introducing step (e.g. by a later variable
/// merge) may fall back to the generic "derived" tag.
void AnnotateProfile(const PipelineResult& result, size_t alt_index,
                     obs::QueryProfile* profile);

}  // namespace sqo::core

#endif  // SQO_SQO_PROFILE_ATTRIBUTION_H_
