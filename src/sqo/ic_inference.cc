#include "sqo/ic_inference.h"

#include <set>

#include "common/strings.h"
#include "datalog/signature.h"
#include "datalog/unify.h"
#include "solver/constraint_set.h"

namespace sqo::core {

using datalog::Atom;
using datalog::Clause;
using datalog::CmpOp;
using datalog::Literal;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

sqo::Status ExtractMethodFacts(std::vector<Clause>* clauses,
                               InferenceInput* input) {
  std::vector<Clause> kept;
  for (Clause& clause : *clauses) {
    const bool is_fact = clause.body.empty() && clause.head.has_value() &&
                         clause.head->positive &&
                         clause.head->atom.is_predicate();
    const std::string pred = is_fact ? clause.head->atom.predicate() : "";
    if (pred == "monotone") {
      const auto& args = clause.head->atom.args();
      if (args.size() != 3 || !args[0].is_constant() || !args[1].is_constant() ||
          !args[2].is_constant()) {
        return sqo::InvalidArgumentError(
            "monotone/3 expects (method, attribute, increasing|nondecreasing)");
      }
      MethodMonotonicity m;
      m.method = args[0].constant().AsString();
      m.attribute = args[1].constant().AsString();
      const std::string mode = args[2].constant().AsString();
      if (mode == "increasing" || mode == "strict") {
        m.strict = true;
      } else if (mode == "nondecreasing") {
        m.strict = false;
      } else {
        return sqo::InvalidArgumentError("monotone/3: unknown mode '" + mode +
                                         "'");
      }
      input->monotonicities.push_back(std::move(m));
      continue;
    }
    if (pred == "point") {
      const auto& args = clause.head->atom.args();
      if (args.size() < 3) {
        return sqo::InvalidArgumentError(
            "point expects (method, attr_value, args..., result)");
      }
      for (const Term& t : args) {
        if (!t.is_constant()) {
          return sqo::InvalidArgumentError("point arguments must be constants");
        }
      }
      MethodPointFact p;
      p.method = args[0].constant().AsString();
      p.attr_value = args[1].constant();
      for (size_t i = 2; i + 1 < args.size(); ++i) {
        p.args.push_back(args[i].constant());
      }
      p.result = args.back().constant();
      input->point_facts.push_back(std::move(p));
      continue;
    }
    kept.push_back(std::move(clause));
  }
  *clauses = std::move(kept);
  return sqo::Status::Ok();
}

namespace {

/// Matches an IC of the "range constraint" shape: comparison head
/// `Var θ const` (or flipped) and a body that is a single positive class /
/// structure atom containing Var. Returns the atom, the bound, and the
/// variable's attribute position.
struct RangeIc {
  const Clause* ic = nullptr;
  const Atom* class_atom = nullptr;
  std::string attr;          // attribute name at the variable's position
  CmpOp op = CmpOp::kEq;     // normalized: Var op bound
  sqo::Value bound;
};

std::vector<RangeIc> FindRangeIcs(const std::vector<Clause>& ics,
                                  const datalog::RelationCatalog& catalog) {
  std::vector<RangeIc> out;
  for (const Clause& ic : ics) {
    if (!ic.head.has_value() || !ic.head->positive ||
        !ic.head->atom.is_comparison()) {
      continue;
    }
    if (ic.body.size() != 1 || !ic.body[0].positive ||
        !ic.body[0].atom.is_predicate()) {
      continue;
    }
    const Atom& body_atom = ic.body[0].atom;
    const RelationSignature* sig = catalog.Find(body_atom.predicate());
    if (sig == nullptr || (sig->kind != RelationKind::kClass &&
                           sig->kind != RelationKind::kStructure)) {
      continue;
    }
    const Atom& head = ic.head->atom;
    Term var = head.lhs();
    Term bound = head.rhs();
    CmpOp op = head.op();
    if (var.is_constant() && bound.is_variable()) {
      std::swap(var, bound);
      op = datalog::FlipOp(op);
    }
    if (!var.is_variable() || !bound.is_constant()) continue;
    for (size_t pos = 1; pos < body_atom.arity(); ++pos) {
      const Term& arg = body_atom.args()[pos];
      if (arg.is_variable() && arg.var_name() == var.var_name()) {
        RangeIc r;
        r.ic = &ic;
        r.class_atom = &body_atom;
        r.attr = sig->attributes[pos];
        r.op = op;
        r.bound = bound.constant();
        out.push_back(r);
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Clause> InferConstraints(const InferenceInput& input,
                                     const translate::TranslatedSchema& schema,
                                     const InferenceOptions& options) {
  std::vector<Clause> derived;
  std::set<std::string> seen;
  for (const Clause& ic : input.ics) seen.insert(ic.ToString());
  auto emit = [&](Clause c) {
    if (derived.size() >= options.max_derived) return;
    if (seen.insert(c.ToString()).second) derived.push_back(std::move(c));
  };
  const datalog::RelationCatalog& catalog = schema.catalog;

  // ---- Pass A: method result bounds (IC1 + IC2 + fact ⊢ IC3). ----
  if (options.method_bounds) {
    std::vector<RangeIc> ranges = FindRangeIcs(input.ics, catalog);
    for (const MethodMonotonicity& mono : input.monotonicities) {
      const RelationSignature* m_sig = catalog.Find(sqo::ToLower(mono.method));
      if (m_sig == nullptr || m_sig->kind != RelationKind::kMethod) continue;
      for (const MethodPointFact& point : input.point_facts) {
        if (sqo::ToLower(point.method) != m_sig->name) continue;
        if (point.args.size() + 2 != m_sig->arity()) continue;
        for (const RangeIc& range : ranges) {
          if (range.attr != mono.attribute) continue;
          // The receiver class must support the method.
          const RelationSignature* c_sig =
              catalog.Find(range.class_atom->predicate());
          if (!schema.schema.IsSubclassOf(c_sig->owner, m_sig->owner)) continue;

          // Classify the range against the point: strictly above, at-or-
          // above, strictly below, at-or-below.
          solver::ConstraintSet cs;
          Term attr_var = Term::Var("A");
          cs.AddConstraint(range.op, attr_var, Term::Const(range.bound));
          CmpOp result_op;
          if (cs.Implies(Atom::Comparison(CmpOp::kGt, attr_var,
                                          Term::Const(point.attr_value)))) {
            result_op = mono.strict ? CmpOp::kGt : CmpOp::kGe;
          } else if (cs.Implies(Atom::Comparison(CmpOp::kGe, attr_var,
                                                 Term::Const(point.attr_value)))) {
            result_op = CmpOp::kGe;
          } else if (cs.Implies(Atom::Comparison(CmpOp::kLt, attr_var,
                                                 Term::Const(point.attr_value)))) {
            result_op = mono.strict ? CmpOp::kLt : CmpOp::kLe;
          } else if (cs.Implies(Atom::Comparison(CmpOp::kLe, attr_var,
                                                 Term::Const(point.attr_value)))) {
            result_op = CmpOp::kLe;
          } else {
            continue;  // range does not bound the point from either side
          }

          // Derived: Value op result ← m(Oid, point args..., Value),
          //                            class(Oid, _...).
          datalog::FreshVarGen anon("_E");
          std::vector<Term> m_args;
          m_args.push_back(Term::Var("Oid"));
          for (const sqo::Value& v : point.args) m_args.push_back(Term::Const(v));
          m_args.push_back(Term::Var("Value"));
          std::vector<Term> c_args;
          c_args.push_back(Term::Var("Oid"));
          for (size_t i = 1; i < c_sig->arity(); ++i) {
            c_args.push_back(anon.NextVar());
          }
          Clause out;
          out.label = "derived:method_bound:" + m_sig->name + ":" +
                      (range.ic->label.empty() ? c_sig->name : range.ic->label);
          out.head = Literal::Pos(Atom::Comparison(
              result_op, Term::Var("Value"), Term::Const(point.result)));
          out.body = {
              Literal::Pos(Atom::Pred(m_sig->name, std::move(m_args))),
              Literal::Pos(Atom::Pred(c_sig->name, std::move(c_args)))};
          emit(std::move(out));
        }
      }
    }
  }

  // ---- Pass B: superclass body augmentation (IC4 + IC5 ⊢ IC6). ----
  if (options.superclass_augmentation) {
    std::vector<Clause> sources(input.ics);
    sources.insert(sources.end(), derived.begin(), derived.end());
    for (const Clause& source : sources) {
      const Clause* ic = &source;
      if (!ic->head.has_value() || !ic->head->atom.is_comparison()) continue;
      // Augment range constraints only (a single class atom in the body):
      // composing the hierarchy with multi-atom ICs (FDs, keys) adds noise
      // without enabling new optimizations.
      size_t positive_atoms = 0;
      for (const Literal& lit : ic->body) {
        if (lit.positive && lit.atom.is_predicate()) ++positive_atoms;
      }
      if (positive_atoms != 1) continue;
      for (size_t i = 0; i < ic->body.size(); ++i) {
        const Literal& lit = ic->body[i];
        if (!lit.positive || !lit.atom.is_predicate()) continue;
        const RelationSignature* sig = catalog.Find(lit.atom.predicate());
        if (sig == nullptr || sig->kind != RelationKind::kClass) continue;
        const odl::ClassInfo* cls = schema.schema.FindClass(sig->owner);
        if (cls == nullptr) continue;
        // Walk proper ancestors; each superclass relation shares the
        // subclass atom's positional prefix.
        const odl::ClassInfo* anc =
            cls->super.empty() ? nullptr : schema.schema.FindClass(cls->super);
        while (anc != nullptr) {
          const std::string anc_rel = schema.RelationFor(anc->name);
          const RelationSignature* anc_sig = catalog.Find(anc_rel);
          std::vector<Term> args(lit.atom.args().begin(),
                                 lit.atom.args().begin() +
                                     static_cast<long>(anc_sig->arity()));
          Atom anc_atom = Atom::Pred(anc_rel, std::move(args));
          bool present = false;
          for (const Literal& other : ic->body) {
            if (other.positive && other.atom == anc_atom) {
              present = true;
              break;
            }
          }
          if (!present) {
            Clause out = *ic;
            out.label = "derived:super:" +
                        (ic->label.empty() ? sig->name : ic->label) + ":" +
                        anc_rel;
            out.body.push_back(Literal::Pos(std::move(anc_atom)));
            emit(std::move(out));
          }
          anc = anc->super.empty() ? nullptr : schema.schema.FindClass(anc->super);
        }
      }
    }
  }

  // ---- Pass C: contrapositives (IC6 ⊢ IC6'). ----
  if (options.contrapositives) {
    std::vector<Clause> sources(input.ics);
    sources.insert(sources.end(), derived.begin(), derived.end());
    for (const Clause& source : sources) {
      const Clause* ic = &source;
      if (!ic->head.has_value() || !ic->head->positive ||
          !ic->head->atom.is_comparison()) {
        continue;
      }
      if (ic->body.size() < 2 || ic->body.size() > 4) continue;
      for (size_t i = 0; i < ic->body.size(); ++i) {
        const Literal& pivot = ic->body[i];
        if (!pivot.positive || !pivot.atom.is_predicate()) continue;
        // The remaining body must still anchor on some positive predicate
        // atom for residues to attach to.
        bool anchored = false;
        for (size_t j = 0; j < ic->body.size(); ++j) {
          if (j != i && ic->body[j].positive && ic->body[j].atom.is_predicate()) {
            anchored = true;
            break;
          }
        }
        if (!anchored) continue;
        Clause out;
        out.label = "derived:contra:" +
                    (ic->label.empty() ? pivot.atom.predicate() : ic->label);
        out.head = Literal::Neg(pivot.atom);
        for (size_t j = 0; j < ic->body.size(); ++j) {
          if (j != i) out.body.push_back(ic->body[j]);
        }
        out.body.push_back(ic->head->Complement());
        // Range restriction: every variable of the body's evaluable atoms
        // must occur in a positive predicate atom of the body, or the
        // derived clause is unevaluable (the pivot's private variables end
        // up free in the negated head's complement — e.g. contrapositives
        // of key constraints).
        std::set<std::string> positive_vars;
        std::vector<std::string> cmp_vars;
        for (const Literal& lit : out.body) {
          if (lit.positive && lit.atom.is_predicate()) {
            std::vector<std::string> vars;
            lit.atom.CollectVariables(&vars);
            positive_vars.insert(vars.begin(), vars.end());
          } else if (lit.atom.is_comparison()) {
            lit.atom.CollectVariables(&cmp_vars);
          }
        }
        bool range_restricted = true;
        for (const std::string& v : cmp_vars) {
          if (positive_vars.count(v) == 0) range_restricted = false;
        }
        if (!range_restricted) continue;
        emit(std::move(out));
      }
    }
  }

  return derived;
}

}  // namespace sqo::core
