#ifndef SQO_SQO_ASR_H_
#define SQO_SQO_ASR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/clause.h"
#include "translate/schema_translator.h"

namespace sqo::core {

/// An access support relation (Kemper–Moerkotte [9], paper §5.4): a
/// materialized binary view relating the first and last objects of a
/// relationship path. The canonical extension is modeled: `asr(X0, Xk) ←
/// r1(X0,X1), ..., rk(X(k-1),Xk)`.
struct AsrDefinition {
  /// DATALOG relation name (lower-case), e.g. "asr_takes_ta".
  std::string name;

  /// OQL-visible virtual relationship name used when Step 4 renders a
  /// range over the ASR (an OQL extension; see DESIGN.md).
  std::string display_name;

  /// The path: relationship relation names, in traversal order (each
  /// element's target class must be compatible with the next element's
  /// source class).
  std::vector<std::string> path;

  /// The materialized-view definition clause (filled by RegisterAsr).
  datalog::Clause view;

  /// Path variables X0..Xk as used in `view` (filled by RegisterAsr).
  std::vector<std::string> path_vars;
};

/// Validates `def` against the schema (path elements exist, are
/// relationships, and chain type-correctly), fills in its view clause,
/// registers an `asr` relation signature in the schema's catalog (with
/// functionality flags derived from the path), and appends the definition
/// to `registry`.
sqo::Status RegisterAsr(AsrDefinition def, translate::TranslatedSchema* schema,
                        std::vector<AsrDefinition>* registry);

}  // namespace sqo::core

#endif  // SQO_SQO_ASR_H_
