#ifndef SQO_SQO_IC_INFERENCE_H_
#define SQO_SQO_IC_INFERENCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "datalog/clause.h"
#include "translate/schema_translator.h"

namespace sqo::core {

/// A declared monotonicity property of a method with respect to one
/// receiver attribute (the paper's IC2, abstracted): with all user
/// arguments fixed, the method's result is nondecreasing (or strictly
/// increasing) in the attribute.
struct MethodMonotonicity {
  std::string method;     // DATALOG relation name of the method
  std::string attribute;  // receiver attribute name (lower-case)
  bool strict = false;    // strictly increasing vs nondecreasing
};

/// A known point of a method's behaviour (the paper's employee fact): with
/// the receiver attribute at `attr_value` and the user arguments at `args`,
/// the method evaluates to `result`.
struct MethodPointFact {
  std::string method;
  sqo::Value attr_value;
  std::vector<sqo::Value> args;
  sqo::Value result;
};

/// Inputs to bounded IC inference.
struct InferenceInput {
  /// Base constraints: schema-generated plus user-declared.
  std::vector<datalog::Clause> ics;
  std::vector<MethodMonotonicity> monotonicities;
  std::vector<MethodPointFact> point_facts;
};

struct InferenceOptions {
  /// Derive method result bounds from monotonicity + point facts + class
  /// attribute ranges (IC1 + IC2 + fact ⊢ IC3, §5.1).
  bool method_bounds = true;
  /// Add superclass atoms to IC bodies via the subclass hierarchy
  /// (IC4 + IC5 ⊢ IC6, §5.2).
  bool superclass_augmentation = true;
  /// Generate predicate-headed contrapositives of evaluable-headed ICs
  /// (IC6 ⊢ IC6', §5.2).
  bool contrapositives = true;
  /// Cap on the number of derived constraints.
  size_t max_derived = 512;
};

/// Extracts `monotone(m, attr, increasing|nondecreasing).` and
/// `point(m, attr_value, arg1, ..., result).` facts from a parsed clause
/// stream (the textual declaration form), removing them from `clauses`.
sqo::Status ExtractMethodFacts(std::vector<datalog::Clause>* clauses,
                               InferenceInput* input);

/// Bounded forward inference: derives new integrity constraints from the
/// input per the enabled options. Returns only the *derived* clauses (with
/// "derived:" label prefixes); callers append them to the base set before
/// semantic compilation. Deterministic; complexity is quadratic in the
/// number of ICs per pass with a hard cap.
std::vector<datalog::Clause> InferConstraints(
    const InferenceInput& input, const translate::TranslatedSchema& schema,
    const InferenceOptions& options = {});

}  // namespace sqo::core

#endif  // SQO_SQO_IC_INFERENCE_H_
