#ifndef SQO_SQO_OPTIMIZER_H_
#define SQO_SQO_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fingerprint.h"
#include "common/status.h"
#include "datalog/clause.h"
#include "solver/constraint_set.h"
#include "sqo/derivation.h"
#include "sqo/semantic_compiler.h"

namespace sqo::core {

/// Knobs for Step 3. Each transformation family can be toggled; depth
/// bounds the chaining of transformations (e.g. §5.4's join introduction
/// followed by ASR folding needs depth ≥ 2).
struct OptimizerOptions {
  int max_depth = 3;
  size_t max_alternatives = 64;

  bool detect_contradictions = true;  // §5.1
  bool add_restrictions = true;       // restriction introduction
  bool remove_restrictions = true;    // redundant-restriction elimination
  bool scope_reduction = true;        // §5.2: ¬subclass literals
  bool merge_equal_variables = true;  // §5.3: key-implied OID merging
  bool join_introduction = true;      // §5.4: implied predicate addition
  bool join_elimination = true;       // implied predicate removal
  bool asr_rewriting = true;          // §5.4: path folding into ASRs

  /// Also introduce implied class/structure/method atoms (upcasts, struct
  /// lookups). Sound but rarely profitable; off by default to keep the
  /// search space focused on relationship/ASR introductions.
  bool introduce_class_atoms = false;

  /// After the bounded search, reduce every alternative to a fixpoint of
  /// the removal transformations (redundant restrictions, implied joins),
  /// bypassing the depth bound for monotonically shrinking chains.
  bool reduce_to_fixpoint = true;
};

/// One semantically equivalent rewriting of the input query, with a
/// human-readable log of the transformations that produced it and the
/// structured step records the verifier replays (`steps[i].text ==
/// derivation[i]`; both are empty for the unmodified original).
struct Rewriting {
  datalog::Query query;
  std::vector<std::string> derivation;
  std::vector<DerivationStep> steps;
};

/// The result of Step 3. If `contradiction` is set the query is
/// unsatisfiable under the integrity constraints: it need not be evaluated
/// at all, and `contradiction_witness` is the augmented query exhibiting
/// the conflict (the paper's Q' with both V < 1000 and V > 3000).
struct OptimizationOutcome {
  bool contradiction = false;
  std::string contradiction_reason;
  datalog::Query contradiction_witness;

  /// Equivalent queries; index 0 is always the (unmodified) input.
  std::vector<Rewriting> equivalents;
};

/// A consequence implied by the query under the compiled residues: the
/// instantiated residue head. Variables that remained unbound after
/// matching (existentials of the IC head) keep their canonical `_R`-prefix
/// names; transformations rename them apart from the query when adding.
struct Consequence {
  datalog::Literal literal;
  std::string source;      // originating IC label
  bool is_denial = false;  // residue head was `false`

  std::string ToString() const;
};

/// The Step-3 semantic optimizer: applies compiled residues to a query,
/// derives implied consequences, and searches the (bounded) space of
/// equivalent rewritings.
class Optimizer {
 public:
  explicit Optimizer(const CompiledSchema* compiled, OptimizerOptions options = {})
      : compiled_(compiled), options_(options) {}

  /// Runs the full Step-3 search on `query`.
  sqo::Result<OptimizationOutcome> Optimize(const datalog::Query& query) const;

  /// Applies every attached residue to `query` and returns the implied
  /// consequences. Exposed for tests and diagnostics.
  std::vector<Consequence> ImpliedConsequences(const datalog::Query& query) const;

 private:
  /// Single-step rewritings of `base`. `additions` enables the growing
  /// transformations (restriction/join/scope additions, merges, ASR folds);
  /// `reductions` the shrinking ones (restriction removal, join
  /// elimination).
  std::vector<Rewriting> Neighbors(const Rewriting& base, bool additions,
                                   bool reductions) const;

  /// Applies reductions greedily until none applies.
  Rewriting ReduceToFixpoint(Rewriting base) const;

  /// True if the query's own comparisons plus its implied evaluable
  /// consequences are jointly unsatisfiable; fills reason/witness.
  bool CheckContradiction(const datalog::Query& query,
                          const std::vector<Consequence>& consequences,
                          std::string* reason,
                          datalog::Query* witness) const;

  const CompiledSchema* compiled_;
  OptimizerOptions options_;

  /// Memo for ImpliedConsequences, keyed by the 128-bit hash of the
  /// canonical query form (CanonicalFingerprint — no key string is ever
  /// materialized). The optimizer is not thread-safe; use one instance per
  /// thread.
  mutable std::unordered_map<sqo::Fingerprint128, std::vector<Consequence>,
                             sqo::FingerprintHash>
      consequence_cache_;

  /// Memo for individual residue applications. The consequence set of one
  /// (residue, anchor) attempt depends only on the anchor atom, the query's
  /// comparison literals, and the query literals whose predicate/polarity
  /// the residue's remainder can match (see DESIGN.md for the soundness
  /// argument), so restriction-removal probes that drop an *irrelevant*
  /// literal hit this memo instead of re-running the backtracking matcher.
  struct ResidueMemoKey {
    uint32_t residue_id;
    sqo::Fingerprint128 relevant;  // multiset hash of relevant literals
    datalog::Atom anchor;          // compared exactly, not by hash

    bool operator==(const ResidueMemoKey& o) const {
      return residue_id == o.residue_id && relevant == o.relevant &&
             anchor == o.anchor;
    }
  };
  struct ResidueMemoKeyHash {
    size_t operator()(const ResidueMemoKey& k) const {
      return sqo::FingerprintHash()(k.relevant) * 1099511628211ull +
             k.residue_id * 0x9e3779b9u + k.anchor.Hash();
    }
  };
  struct ResidueMemoEntry {
    bool hit = false;
    std::vector<Consequence> consequences;  // deduped within this entry
  };
  mutable std::unordered_map<ResidueMemoKey, ResidueMemoEntry,
                             ResidueMemoKeyHash>
      residue_memo_;
};

}  // namespace sqo::core

#endif  // SQO_SQO_OPTIMIZER_H_
