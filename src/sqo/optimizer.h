#ifndef SQO_SQO_OPTIMIZER_H_
#define SQO_SQO_OPTIMIZER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/clause.h"
#include "solver/constraint_set.h"
#include "sqo/semantic_compiler.h"

namespace sqo::core {

/// Knobs for Step 3. Each transformation family can be toggled; depth
/// bounds the chaining of transformations (e.g. §5.4's join introduction
/// followed by ASR folding needs depth ≥ 2).
struct OptimizerOptions {
  int max_depth = 3;
  size_t max_alternatives = 64;

  bool detect_contradictions = true;  // §5.1
  bool add_restrictions = true;       // restriction introduction
  bool remove_restrictions = true;    // redundant-restriction elimination
  bool scope_reduction = true;        // §5.2: ¬subclass literals
  bool merge_equal_variables = true;  // §5.3: key-implied OID merging
  bool join_introduction = true;      // §5.4: implied predicate addition
  bool join_elimination = true;       // implied predicate removal
  bool asr_rewriting = true;          // §5.4: path folding into ASRs

  /// Also introduce implied class/structure/method atoms (upcasts, struct
  /// lookups). Sound but rarely profitable; off by default to keep the
  /// search space focused on relationship/ASR introductions.
  bool introduce_class_atoms = false;

  /// After the bounded search, reduce every alternative to a fixpoint of
  /// the removal transformations (redundant restrictions, implied joins),
  /// bypassing the depth bound for monotonically shrinking chains.
  bool reduce_to_fixpoint = true;
};

/// One semantically equivalent rewriting of the input query, with a
/// human-readable log of the transformations that produced it.
struct Rewriting {
  datalog::Query query;
  std::vector<std::string> derivation;
};

/// The result of Step 3. If `contradiction` is set the query is
/// unsatisfiable under the integrity constraints: it need not be evaluated
/// at all, and `contradiction_witness` is the augmented query exhibiting
/// the conflict (the paper's Q' with both V < 1000 and V > 3000).
struct OptimizationOutcome {
  bool contradiction = false;
  std::string contradiction_reason;
  datalog::Query contradiction_witness;

  /// Equivalent queries; index 0 is always the (unmodified) input.
  std::vector<Rewriting> equivalents;
};

/// A consequence implied by the query under the compiled residues: the
/// instantiated residue head. Variables that remained unbound after
/// matching (existentials of the IC head) keep their canonical `_R`-prefix
/// names; transformations rename them apart from the query when adding.
struct Consequence {
  datalog::Literal literal;
  std::string source;      // originating IC label
  bool is_denial = false;  // residue head was `false`

  std::string ToString() const;
};

/// The Step-3 semantic optimizer: applies compiled residues to a query,
/// derives implied consequences, and searches the (bounded) space of
/// equivalent rewritings.
class Optimizer {
 public:
  explicit Optimizer(const CompiledSchema* compiled, OptimizerOptions options = {})
      : compiled_(compiled), options_(options) {}

  /// Runs the full Step-3 search on `query`.
  sqo::Result<OptimizationOutcome> Optimize(const datalog::Query& query) const;

  /// Applies every attached residue to `query` and returns the implied
  /// consequences. Exposed for tests and diagnostics.
  std::vector<Consequence> ImpliedConsequences(const datalog::Query& query) const;

 private:
  /// Single-step rewritings of `base`. `additions` enables the growing
  /// transformations (restriction/join/scope additions, merges, ASR folds);
  /// `reductions` the shrinking ones (restriction removal, join
  /// elimination).
  std::vector<Rewriting> Neighbors(const Rewriting& base, bool additions,
                                   bool reductions) const;

  /// Applies reductions greedily until none applies.
  Rewriting ReduceToFixpoint(Rewriting base) const;

  /// True if the query's own comparisons plus its implied evaluable
  /// consequences are jointly unsatisfiable; fills reason/witness.
  bool CheckContradiction(const datalog::Query& query,
                          const std::vector<Consequence>& consequences,
                          std::string* reason,
                          datalog::Query* witness) const;

  const CompiledSchema* compiled_;
  OptimizerOptions options_;

  /// Memo for ImpliedConsequences, keyed by canonical query form. The
  /// optimizer is not thread-safe; use one instance per thread.
  mutable std::map<std::string, std::vector<Consequence>> consequence_cache_;
};

}  // namespace sqo::core

#endif  // SQO_SQO_OPTIMIZER_H_
