#include "sqo/optimizer.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/context.h"
#include "common/fingerprint.h"
#include "common/interner.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "datalog/unify.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqo::core {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Matcher;
using datalog::Query;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Substitution;
using datalog::Term;

std::string Consequence::ToString() const {
  std::string out = is_denial ? "false" : literal.ToString();
  if (!source.empty()) out += " [" + source + "]";
  return out;
}

namespace {

/// Collects the distinct variable names of a literal.
std::set<std::string> LiteralVars(const Literal& lit) {
  std::vector<std::string> v;
  lit.atom.CollectVariables(&v);
  return std::set<std::string>(v.begin(), v.end());
}

/// Returns the solver view of a query: its positive comparison atoms.
solver::ConstraintSet QueryConstraints(const Query& query) {
  solver::ConstraintSet cs;
  cs.AddComparisons(query.body);
  return cs;
}

/// Recursive backtracking match of residue remainder literals against the
/// query. Calls `on_match` for every complete solution.
void MatchRemainder(const std::vector<Literal>& remainder, size_t k,
                    Matcher* matcher, const Query& query,
                    const solver::ConstraintSet::EqualityView& qcs,
                    const sqo::SymbolSet& bindable,
                    const std::function<void()>& on_match) {
  if (k == remainder.size()) {
    on_match();
    return;
  }
  const Literal& lit = remainder[k];
  if (lit.atom.is_comparison()) {
    // Syntactic candidates: query comparison atoms with the same (or the
    // flipped) operator.
    for (const Literal& ql : query.body) {
      if (!ql.positive || !ql.atom.is_comparison()) continue;
      size_t mark = matcher->Mark();
      if (matcher->MatchAtom(lit.atom, ql.atom)) {
        MatchRemainder(remainder, k + 1, matcher, query, qcs, bindable, on_match);
      }
      matcher->RollbackTo(mark);
      Atom flipped = Atom::Comparison(datalog::FlipOp(lit.atom.op()),
                                      lit.atom.rhs(), lit.atom.lhs());
      if (flipped.op() != lit.atom.op() || flipped.lhs() != lit.atom.lhs()) {
        mark = matcher->Mark();
        if (matcher->MatchAtom(flipped, ql.atom)) {
          MatchRemainder(remainder, k + 1, matcher, query, qcs, bindable,
                         on_match);
        }
        matcher->RollbackTo(mark);
      }
    }
    // Semantic candidate: if the comparison is fully instantiated over
    // query terms, ask the solver whether the query implies it.
    Atom inst = matcher->subst().ApplyToAtom(lit.atom);
    std::vector<sqo::Symbol> vars;
    inst.CollectVariables(&vars);
    bool fully_bound = true;
    for (sqo::Symbol v : vars) {
      if (bindable.count(v) > 0) {
        fully_bound = false;
        break;
      }
    }
    if (fully_bound && qcs.Implies(inst)) {
      MatchRemainder(remainder, k + 1, matcher, query, qcs, bindable, on_match);
    }
    return;
  }
  // Predicate literal: match against query literals of the same polarity.
  for (const Literal& ql : query.body) {
    if (ql.positive != lit.positive || !ql.atom.is_predicate()) continue;
    size_t mark = matcher->Mark();
    if (matcher->MatchLiteral(lit, ql)) {
      MatchRemainder(remainder, k + 1, matcher, query, qcs, bindable, on_match);
    }
    matcher->RollbackTo(mark);
  }
}

/// Renames the variables of `lit` that are not bound to query terms (i.e.
/// still carry the residue prefix and are absent from `query_vars`) to
/// fresh names unused in the query.
Literal FreshenUnbound(const Literal& lit, const std::set<std::string>& query_vars,
                       int* counter) {
  Substitution renaming;
  std::vector<std::string> vars;
  lit.atom.CollectVariables(&vars);
  for (const std::string& v : vars) {
    if (query_vars.count(v) == 0) {
      std::string fresh;
      do {
        fresh = "_N" + std::to_string(++*counter);
      } while (query_vars.count(fresh) > 0);
      renaming.Bind(v, Term::Var(fresh));
    }
  }
  return renaming.ApplyToLiteral(lit);
}

/// Variables occurring in object (OID) positions of the query: position 0
/// of class/structure/method atoms, either position of relationship/ASR
/// atoms. Equality reasoning between such variables enables join work to
/// be saved (§5.3); equalities between attribute placeholders do not.
std::set<std::string> ObjectPositionVars(const Query& q,
                                         const datalog::RelationCatalog& catalog) {
  std::set<std::string> out;
  for (const Literal& lit : q.body) {
    if (!lit.positive || !lit.atom.is_predicate()) continue;
    const RelationSignature* sig = catalog.Find(lit.atom.predicate());
    if (sig == nullptr) continue;
    auto add = [&](size_t i) {
      if (i < lit.atom.arity() && lit.atom.args()[i].is_variable()) {
        out.insert(lit.atom.args()[i].var_name());
      }
    };
    if (sig->kind == RelationKind::kRelationship ||
        sig->kind == RelationKind::kAsr) {
      add(0);
      add(1);
    } else {
      add(0);
    }
  }
  return out;
}

/// True if `lit` has any variable outside `query_vars` (an unbound /
/// quantified residue variable).
bool HasUnboundVars(const Literal& lit, const sqo::SymbolSet& query_vars) {
  std::vector<sqo::Symbol> vars;
  lit.atom.CollectVariables(&vars);
  for (sqo::Symbol v : vars) {
    if (query_vars.count(v) == 0) return true;
  }
  return false;
}

}  // namespace

std::vector<Consequence> Optimizer::ImpliedConsequences(
    const Query& query) const {
  // Memoized: the transformation search re-derives consequences for many
  // closely related queries (restriction-removal probes each literal).
  const sqo::Fingerprint128 cache_key = query.CanonicalFingerprint();
  {
    auto it = consequence_cache_.find(cache_key);
    if (it != consequence_cache_.end()) {
      obs::Count("optimizer.consequence_cache_hits");
      return it->second;
    }
  }
  std::vector<Consequence> out;
  // Cross-residue dedup by structural literal identity (denials all carry
  // the same canonical `false` literal, so a flag suffices for them).
  std::unordered_set<Literal, datalog::LiteralHash> seen;
  bool denial_seen = false;
  auto merge = [&](const Consequence& c) {
    if (c.is_denial) {
      if (denial_seen) return;
      denial_seen = true;
      out.push_back(c);
    } else if (seen.insert(c.literal).second) {
      out.push_back(c);
    }
  };
  ExecutionContext* governance = CurrentContext();
  const solver::ConstraintSet qcs_set = QueryConstraints(query);
  const solver::ConstraintSet::EqualityView qcs(qcs_set);
  const auto& equalities = qcs;
  sqo::SymbolSet query_vars;
  {
    std::vector<sqo::Symbol> vars;
    for (const Term& t : query.head_args) {
      if (t.is_variable()) query_vars.insert(t.var_symbol());
    }
    for (const Literal& lit : query.body) lit.atom.CollectVariables(&vars);
    query_vars.insert(vars.begin(), vars.end());
  }

  // One pass over the body groups predicate literals by (predicate,
  // polarity) with a multiset fingerprint per group, and fingerprints the
  // comparison literals (all of them — comparisons feed both remainder
  // matching and the solver's equality/implication view). This feeds the
  // applicability gate and the residue-application memo keys below.
  sqo::FingerprintBuilder cmp_fb;
  std::unordered_map<uint64_t, sqo::Fingerprint128> pred_groups;
  auto group_of = [](sqo::Symbol pred, bool positive) {
    return static_cast<uint64_t>(pred.id()) * 2 + (positive ? 1 : 0);
  };
  for (const Literal& lit : query.body) {
    if (lit.atom.is_comparison()) {
      cmp_fb.AppendUnordered(lit.Hash());
      continue;
    }
    sqo::FingerprintBuilder b;
    b.AppendUnordered(lit.Hash());
    auto [it, fresh] = pred_groups.emplace(
        group_of(lit.atom.predicate_symbol(), lit.positive), b.fingerprint());
    if (!fresh) it->second = sqo::CombineUnordered(it->second, b.fingerprint());
  }

  for (const Literal& anchor : query.body) {
    if (!anchor.positive || !anchor.atom.is_predicate()) continue;
    const std::vector<Residue>* residues =
        compiled_->ResiduesFor(anchor.atom.predicate());
    if (residues == nullptr) continue;
    for (const Residue& residue : *residues) {
      // Applicability gate: every remainder predicate literal needs at
      // least one query literal with the same predicate and polarity —
      // matching requires exact predicate agreement — so a query lacking
      // one can never fire this residue. Skipped attempts do no matcher
      // work and incur no governance charge (no application is attempted).
      bool applicable = true;
      for (const auto& [pred, positive] : residue.remainder_predicates) {
        if (pred_groups.find(group_of(pred, positive)) == pred_groups.end()) {
          applicable = false;
          break;
        }
      }
      if (!applicable) {
        obs::Count("optimizer.applicability_skips");
        continue;
      }
      // This function returns a plain vector, so governance violations and
      // injected failures latch into the context; the Optimize boundary
      // turns the latched Status into the caller-visible error. Bail
      // without caching — a truncated consequence set must not be memoized
      // as if it were complete.
      if (governance != nullptr) {
        governance->LatchError(failpoint::Check("optimizer.apply_residue"));
        governance->ChargeResidueApplications();
        if (!governance->ok()) return out;
      }
      // One span per residue tried, tagged hit/miss — the per-
      // transformation cost accounting the Figure-2 trace reports.
      obs::Span residue_span("residue.apply");
      if (residue_span.active()) {
        residue_span.Tag("relation", anchor.atom.predicate());
        residue_span.Tag("source", residue.source);
      }
      obs::Count("optimizer.residues_tried");

      // Residue-application memo: the consequence set of one (residue,
      // anchor) attempt is a function of the anchor atom and the relevant
      // query literals only (comparisons + literals the remainder can
      // match; residue variables carry the reserved "_R" prefix, so no
      // other query state leaks in). The restriction-removal and join-
      // elimination probes re-run most attempts verbatim minus one
      // irrelevant literal — those hit here.
      sqo::Fingerprint128 relevant = cmp_fb.fingerprint();
      for (const auto& [pred, positive] : residue.remainder_predicates) {
        relevant = sqo::CombineUnordered(relevant,
                                         pred_groups[group_of(pred, positive)]);
      }
      ResidueMemoKey memo_key{residue.id, relevant, anchor.atom};
      if (auto mit = residue_memo_.find(memo_key); mit != residue_memo_.end()) {
        obs::Count("optimizer.match_memo_hits");
        residue_span.Tag("result", mit->second.hit ? "hit" : "miss");
        if (mit->second.hit) obs::Count("optimizer.residue_hits");
        for (const Consequence& c : mit->second.consequences) merge(c);
        continue;
      }

      ResidueMemoEntry entry;
      std::unordered_set<Literal, datalog::LiteralHash> entry_seen;
      bool entry_denial = false;
      // Residues were renamed apart at compile time (reserved "_R" prefix);
      // their variable sets are precomputed and interned, so the matcher
      // borrows the set instead of copying it per application.
      const Atom& template_atom = residue.template_atom;
      const std::vector<Literal>& remainder = residue.remainder;
      Matcher matcher = Matcher::Borrowing(&residue.bindable_symbols);
      // Match modulo the query's own equality theory, so a key residue can
      // align Name with Name2 when the query asserts Name = Name2 (§5.3).
      matcher.set_frozen_equiv([&equalities](const Term& a, const Term& b) {
        return equalities.Equal(a, b);
      });
      if (!matcher.MatchAtom(template_atom, anchor.atom)) {
        residue_span.Tag("result", "miss");
        if (residue_memo_.size() > 8192) residue_memo_.clear();
        residue_memo_.emplace(std::move(memo_key), std::move(entry));
        continue;
      }

      MatchRemainder(remainder, 0, &matcher, query, qcs,
                     residue.bindable_symbols, [&]() {
        entry.hit = true;
        Consequence c;
        c.source = residue.source;
        if (!residue.head.has_value()) {
          if (entry_denial) return;
          entry_denial = true;
          c.is_denial = true;
          c.literal = Literal::Pos(Atom::Comparison(
              CmpOp::kNe, Term::Int(0), Term::Int(0)));  // canonical "false"
        } else {
          Literal inst = matcher.subst().ApplyToLiteral(*residue.head);
          // Evaluable consequences must be fully instantiated, and
          // reflexive ones (X = X from an FD residue matching one atom
          // twice) carry no information.
          if (inst.atom.is_comparison()) {
            if (HasUnboundVars(inst, query_vars)) return;
            if (inst.atom.lhs() == inst.atom.rhs() &&
                (inst.atom.op() == CmpOp::kEq || inst.atom.op() == CmpOp::kLe ||
                 inst.atom.op() == CmpOp::kGe)) {
              return;
            }
          }
          if (!entry_seen.insert(inst).second) return;
          c.literal = std::move(inst);
        }
        entry.consequences.push_back(std::move(c));
      });
      residue_span.Tag("result", entry.hit ? "hit" : "miss");
      if (entry.hit) obs::Count("optimizer.residue_hits");
      for (const Consequence& c : entry.consequences) merge(c);
      if (residue_memo_.size() > 8192) residue_memo_.clear();
      residue_memo_.emplace(std::move(memo_key), std::move(entry));
    }
  }
  if (consequence_cache_.size() > 4096) consequence_cache_.clear();
  consequence_cache_.emplace(cache_key, out);
  return out;
}

bool Optimizer::CheckContradiction(const Query& query,
                                   const std::vector<Consequence>& consequences,
                                   std::string* reason, Query* witness) const {
  solver::ConstraintSet cs = QueryConstraints(query);
  *witness = query;
  if (!cs.Satisfiable()) {
    *reason = "the query's own restrictions are unsatisfiable";
    return true;
  }
  for (const Consequence& c : consequences) {
    if (c.is_denial) {
      *reason = "integrity constraint denial applies [" + c.source + "]";
      return true;
    }
    if (!c.literal.positive || !c.literal.atom.is_comparison()) continue;
    cs.Add(c.literal.atom);
    witness->body.push_back(c.literal);
    if (!cs.Satisfiable()) {
      *reason = "restriction " + c.literal.atom.ToString() +
                " implied by [" + c.source +
                "] contradicts the query's restrictions";
      return true;
    }
  }
  return false;
}

std::vector<Rewriting> Optimizer::Neighbors(const Rewriting& base, bool additions,
                                            bool reductions) const {
  std::vector<Rewriting> out;
  // A latched governance violation makes further neighbor generation
  // pointless; an empty frontier lets the search drain fast and the
  // boundary check report the original cause.
  if (ExecutionContext* governance = CurrentContext();
      governance != nullptr && !governance->ok()) {
    return out;
  }
  const Query& q = base.query;
  const std::set<std::string> query_vars = q.VariableSet();
  const std::set<std::string> object_vars =
      ObjectPositionVars(q, compiled_->schema->catalog);
  const solver::ConstraintSet qcs = QueryConstraints(q);
  const std::vector<Consequence> consequences = ImpliedConsequences(q);
  int counter = 0;

  // `kind` labels the transformation family for the metrics registry
  // (optimizer.applied.<kind>), mirroring the paper's taxonomy. The
  // structured step must describe `next` exactly — the verifier replays it
  // through ApplyDerivationStep and rejects any divergence (SQO-A015).
  auto emit = [&](Query next, DerivationStep step, const char* kind) {
    // Identical conjuncts are idempotent; drop exact duplicates.
    std::vector<Literal> dedup;
    for (Literal& l : next.body) {
      if (std::find(dedup.begin(), dedup.end(), l) == dedup.end()) {
        dedup.push_back(std::move(l));
      }
    }
    next.body = std::move(dedup);
    Rewriting r;
    r.query = std::move(next);
    r.derivation = base.derivation;
    r.derivation.push_back(step.text);
    r.steps = base.steps;
    r.steps.push_back(std::move(step));
    obs::Count(std::string("optimizer.applied.") + kind);
    out.push_back(std::move(r));
  };

  // Builds the common fields of a step record.
  auto make_step = [](StepKind kind, std::string text, std::string source) {
    DerivationStep step;
    step.kind = kind;
    step.text = std::move(text);
    step.source = std::move(source);
    return step;
  };

  // T1: restriction addition; T2: scope reduction; T4: merges; T5: join
  // introduction.
  for (const Consequence& c : additions ? consequences
                                        : std::vector<Consequence>{}) {
    if (c.is_denial) continue;
    const Literal& lit = c.literal;

    if (lit.positive && lit.atom.is_comparison()) {
      // Heuristic (§4.1 calls for transformation-search heuristics): an
      // implied restriction is only promising if it interacts with the
      // rest of the query — its variable already occurs in a comparison or
      // in the projection. A bound on an otherwise-unused attribute can
      // never prune anything (it is implied) but misleads cost models.
      bool interacts = false;
      {
        std::vector<std::string> vars;
        lit.atom.CollectVariables(&vars);
        std::set<std::string> cmp_vars;
        for (const Literal& ql : q.body) {
          if (!ql.positive || !ql.atom.is_comparison()) continue;
          std::vector<std::string> cv;
          ql.atom.CollectVariables(&cv);
          cmp_vars.insert(cv.begin(), cv.end());
        }
        for (const Term& t : q.head_args) {
          if (t.is_variable()) cmp_vars.insert(t.var_name());
        }
        for (const std::string& v : vars) {
          if (cmp_vars.count(v) > 0) interacts = true;
        }
        // Equalities between two object variables always interact: they
        // enable OID-comparison plans and downstream removals (§5.3 Q').
        if (lit.atom.op() == CmpOp::kEq && lit.atom.lhs().is_variable() &&
            lit.atom.rhs().is_variable() &&
            object_vars.count(lit.atom.lhs().var_name()) > 0 &&
            object_vars.count(lit.atom.rhs().var_name()) > 0) {
          interacts = true;
        }
      }
      if (options_.add_restrictions && interacts && !qcs.Implies(lit.atom)) {
        Query next = q;
        next.body.push_back(lit);
        DerivationStep step = make_step(
            StepKind::kAddRestriction,
            "add restriction " + lit.atom.ToString() + " [" + c.source + "]",
            c.source);
        step.added.push_back(lit);
        emit(std::move(next), std::move(step), "restriction");
      }
      // T4: key-implied variable merging (§5.3), for object variables.
      if (options_.merge_equal_variables && lit.atom.op() == CmpOp::kEq &&
          lit.atom.lhs().is_variable() && lit.atom.rhs().is_variable() &&
          object_vars.count(lit.atom.lhs().var_name()) > 0 &&
          object_vars.count(lit.atom.rhs().var_name()) > 0 &&
          lit.atom.lhs() != lit.atom.rhs()) {
        // Replace the variable that does not appear in the head, if
        // possible, so projected attributes keep their names.
        std::set<std::string> head_vars;
        for (const Term& t : q.head_args) {
          if (t.is_variable()) head_vars.insert(t.var_name());
        }
        std::string keep = lit.atom.lhs().var_name();
        std::string drop = lit.atom.rhs().var_name();
        if (head_vars.count(drop) > 0 && head_vars.count(keep) == 0) {
          std::swap(keep, drop);
        }
        Substitution merge;
        merge.Bind(drop, Term::Var(keep));
        Query next = q.Substituted(merge);
        // Drop duplicates and trivially-true comparisons produced by the
        // merge (Z = W becomes Z = Z).
        std::vector<Literal> dedup;
        for (Literal& l : next.body) {
          if (l.positive && l.atom.is_comparison() &&
              l.atom.lhs() == l.atom.rhs() &&
              (l.atom.op() == CmpOp::kEq || l.atom.op() == CmpOp::kLe ||
               l.atom.op() == CmpOp::kGe)) {
            continue;
          }
          if (std::find(dedup.begin(), dedup.end(), l) == dedup.end()) {
            dedup.push_back(std::move(l));
          }
        }
        next.body = std::move(dedup);
        DerivationStep step = make_step(
            StepKind::kMergeVariables,
            "merge " + drop + " into " + keep + " (implied " +
                lit.atom.ToString() + ") [" + c.source + "]",
            c.source);
        step.merge_keep = keep;
        step.merge_drop = drop;
        emit(std::move(next), std::move(step), "merge");
      }
      continue;
    }

    if (!lit.positive && lit.atom.is_predicate()) {
      if (!options_.scope_reduction) continue;
      // The excluded object must be named by the query.
      if (lit.atom.args().empty() ||
          !(lit.atom.args()[0].is_constant() ||
            (lit.atom.args()[0].is_variable() &&
             query_vars.count(lit.atom.args()[0].var_name()) > 0))) {
        continue;
      }
      // Negative consequences: unbound head variables are universally
      // quantified (contrapositive semantics). Beyond that, we keep only
      // the OID argument and freshen every attribute position: under the
      // attribute FDs a class tuple with this OID would have to agree with
      // the already-matched attribute values, so "no tuple with these
      // attributes" strengthens soundly to "no tuple with this OID at all"
      // — exactly the paper's `x not in C` (§5.2).
      Literal membership = lit;
      if (membership.atom.arity() >= 1) {
        std::vector<Term> args = membership.atom.args();
        datalog::FreshVarGen wipe("_W" + std::to_string(++counter) + "_");
        for (size_t ai = 1; ai < args.size(); ++ai) args[ai] = wipe.NextVar();
        membership =
            Literal(false, Atom::Pred(membership.atom.predicate(), std::move(args)));
      }
      Literal fresh = FreshenUnbound(membership, query_vars, &counter);
      if (std::find(q.body.begin(), q.body.end(), fresh) != q.body.end()) {
        continue;
      }
      // Skip if an equivalent negative literal (same predicate, same bound
      // OID argument) is already present.
      bool present = false;
      for (const Literal& ql : q.body) {
        if (!ql.positive && ql.atom.is_predicate() &&
            ql.atom.predicate() == lit.atom.predicate() &&
            !ql.atom.args().empty() && !lit.atom.args().empty() &&
            ql.atom.args()[0] == lit.atom.args()[0]) {
          present = true;
          break;
        }
      }
      if (present) continue;
      Query next = q;
      next.body.push_back(fresh);
      DerivationStep step = make_step(
          StepKind::kScopeReduction,
          "reduce scope: add " + fresh.ToString() + " [" + c.source + "]",
          c.source);
      step.added.push_back(fresh);
      emit(std::move(next), std::move(step), "scope_reduction");
      continue;
    }

    if (lit.positive && lit.atom.is_predicate()) {
      if (!options_.join_introduction) continue;
      const RelationSignature* sig =
          compiled_->schema->catalog.Find(lit.atom.predicate());
      if (sig == nullptr) continue;
      if (!options_.introduce_class_atoms &&
          sig->kind != RelationKind::kRelationship &&
          sig->kind != RelationKind::kAsr) {
        continue;
      }
      // Skip introducing the inverse of a relationship atom already in the
      // query: the pair carries the same information, and stores maintain
      // both directions of a declared inverse anyway.
      if (sig->kind == RelationKind::kRelationship && lit.atom.arity() == 2) {
        const odl::ResolvedRelationship* decl =
            compiled_->schema->schema.FindRelationship(sig->owner,
                                                       sig->display_name);
        if (decl != nullptr && !decl->inverse.empty()) {
          const std::string inv = sqo::ToLower(decl->inverse);
          bool inverse_present = false;
          for (const Literal& ql : q.body) {
            if (ql.positive && ql.atom.is_predicate() &&
                ql.atom.predicate() == inv && ql.atom.arity() == 2 &&
                ql.atom.args()[0] == lit.atom.args()[1] &&
                ql.atom.args()[1] == lit.atom.args()[0]) {
              inverse_present = true;
              break;
            }
          }
          if (inverse_present) continue;
        }
      }
      // Skip if an existing literal subsumes the consequence (match the
      // consequence's unbound variables against it).
      sqo::SymbolSet unbound;
      {
        std::vector<std::string> vars;
        lit.atom.CollectVariables(&vars);
        for (const std::string& v : vars) {
          if (query_vars.count(v) == 0) unbound.insert(sqo::Intern(v));
        }
      }
      bool present = false;
      for (const Literal& ql : q.body) {
        if (!ql.positive || !ql.atom.is_predicate()) continue;
        Matcher m = Matcher::Borrowing(&unbound);
        if (m.MatchAtom(lit.atom, ql.atom)) {
          present = true;
          break;
        }
      }
      if (present) continue;
      // Multiplicity gate: existential variables are safe only if the
      // relation is functional from its bound arguments.
      bool safe = unbound.empty();
      if (!safe) {
        auto bound_at = [&](size_t i) {
          const Term& t = lit.atom.args()[i];
          return t.is_constant() ||
                 (t.is_variable() && unbound.count(t.var_symbol()) == 0);
        };
        switch (sig->kind) {
          case RelationKind::kClass:
          case RelationKind::kStructure:
            safe = bound_at(0);
            break;
          case RelationKind::kMethod: {
            safe = true;
            for (size_t i = 0; i + 1 < lit.atom.arity(); ++i) {
              safe = safe && bound_at(i);
            }
            break;
          }
          case RelationKind::kRelationship:
          case RelationKind::kAsr:
            safe = (bound_at(0) && sig->functional_src_to_dst) ||
                   (bound_at(1) && sig->functional_dst_to_src);
            break;
        }
      }
      if (!safe) continue;
      Literal fresh = FreshenUnbound(lit, query_vars, &counter);
      Query next = q;
      next.body.push_back(fresh);
      DerivationStep step = make_step(
          StepKind::kIntroduceJoin,
          "introduce join " + fresh.atom.ToString() + " [" + c.source + "]",
          c.source);
      step.added.push_back(fresh);
      emit(std::move(next), std::move(step), "join_introduction");
      continue;
    }
  }

  // T3: restriction removal — a comparison implied by the rest of the query.
  if (reductions && options_.remove_restrictions) {
    for (size_t i = 0; i < q.body.size(); ++i) {
      const Literal& lit = q.body[i];
      if (!lit.positive || !lit.atom.is_comparison()) continue;
      Query rest = q;
      rest.body.erase(rest.body.begin() + static_cast<long>(i));
      solver::ConstraintSet cs = QueryConstraints(rest);
      bool implied = cs.Implies(lit.atom);
      std::string via = "remaining restrictions";
      if (!implied) {
        for (const Consequence& c : ImpliedConsequences(rest)) {
          if (c.is_denial || !c.literal.positive ||
              !c.literal.atom.is_comparison()) {
            continue;
          }
          cs.Add(c.literal.atom);
        }
        implied = cs.Implies(lit.atom);
        via = "remaining restrictions plus implied consequences";
      }
      if (implied) {
        DerivationStep step = make_step(
            StepKind::kRemoveRestriction,
            "remove redundant restriction " + lit.atom.ToString() + " (" + via +
                ")",
            via);
        step.removed.push_back(lit);
        emit(std::move(rest), std::move(step), "restriction_removal");
      }
    }
  }

  // T6: join elimination — a predicate literal implied by the rest.
  if (reductions && options_.join_elimination) {
    for (size_t i = 0; i < q.body.size(); ++i) {
      const Literal& lit = q.body[i];
      if (!lit.positive || !lit.atom.is_predicate()) continue;
      const RelationSignature* sig =
          compiled_->schema->catalog.Find(lit.atom.predicate());
      if (sig == nullptr) continue;

      // Solo variables: occur in this literal only (not in the head, not
      // elsewhere in the body).
      sqo::SymbolSet solo;
      {
        std::vector<sqo::Symbol> vars;
        lit.atom.CollectVariables(&vars);
        solo.insert(vars.begin(), vars.end());
      }
      for (const Term& t : q.head_args) {
        if (t.is_variable()) solo.erase(t.var_symbol());
      }
      for (size_t j = 0; j < q.body.size() && !solo.empty(); ++j) {
        if (j == i) continue;
        std::vector<sqo::Symbol> vars;
        q.body[j].atom.CollectVariables(&vars);
        for (sqo::Symbol v : vars) solo.erase(v);
      }

      // Multiplicity gate, mirroring join introduction.
      bool safe = solo.empty();
      if (!safe) {
        auto bound_at = [&](size_t pos) {
          const Term& t = lit.atom.args()[pos];
          return t.is_constant() ||
                 (t.is_variable() && solo.count(t.var_symbol()) == 0);
        };
        switch (sig->kind) {
          case RelationKind::kClass:
          case RelationKind::kStructure:
            safe = bound_at(0);
            break;
          case RelationKind::kMethod: {
            safe = true;
            for (size_t p = 0; p + 1 < lit.atom.arity(); ++p) {
              safe = safe && bound_at(p);
            }
            break;
          }
          case RelationKind::kRelationship:
          case RelationKind::kAsr:
            safe = (bound_at(0) && sig->functional_src_to_dst) ||
                   (bound_at(1) && sig->functional_dst_to_src);
            break;
        }
      }
      if (!safe) continue;

      Query rest = q;
      rest.body.erase(rest.body.begin() + static_cast<long>(i));
      bool implied = false;
      std::string source;
      // A remaining literal that differs only in this literal's solo
      // variables already implies it (the duplicate-atom case of §5.3
      // after variable merging).
      for (const Literal& other : rest.body) {
        if (!other.positive || !other.atom.is_predicate()) continue;
        Matcher m = Matcher::Borrowing(&solo);
        if (m.MatchAtom(lit.atom, other.atom)) {
          implied = true;
          source = "subsumed by " + other.atom.ToString();
          break;
        }
      }
      if (!implied) {
        for (const Consequence& c : ImpliedConsequences(rest)) {
          if (c.is_denial || !c.literal.positive ||
              !c.literal.atom.is_predicate()) {
            continue;
          }
          Matcher m = Matcher::Borrowing(&solo);
          if (m.MatchAtom(lit.atom, c.literal.atom)) {
            implied = true;
            source = c.source;
            break;
          }
        }
      }
      if (implied) {
        DerivationStep step = make_step(
            StepKind::kEliminateJoin,
            "eliminate join " + lit.atom.ToString() + " [" + source + "]",
            source);
        step.removed.push_back(lit);
        emit(std::move(rest), std::move(step), "join_elimination");
      }
    }
  }

  // T7: ASR folding — replace a matched relationship path by the ASR.
  if (additions && options_.asr_rewriting) {
    for (const AsrDefinition& asr : compiled_->asrs) {
      const size_t k = asr.path.size();
      // Candidate literal indexes per path position.
      std::vector<std::vector<size_t>> cands(k);
      for (size_t p = 0; p < k; ++p) {
        for (size_t i = 0; i < q.body.size(); ++i) {
          const Literal& lit = q.body[i];
          if (lit.positive && lit.atom.is_predicate() &&
              lit.atom.predicate() == asr.path[p] && lit.atom.arity() == 2) {
            cands[p].push_back(i);
          }
        }
        if (cands[p].empty()) break;
      }
      if (!cands.empty() && cands.back().empty()) continue;
      bool any_empty = false;
      for (const auto& c : cands) any_empty = any_empty || c.empty();
      if (any_empty) continue;

      // Backtracking over injective assignments with chained variables.
      std::vector<size_t> chosen(k, 0);
      std::function<void(size_t, Matcher*)> search = [&](size_t p,
                                                         Matcher* matcher) {
        if (p == k) {
          // Emit one fold per valid cut: the path prefix r1..rc is removed
          // and replaced by the ASR; the suffix is retained. cut == k is
          // the full fold (§5.4 Q'); cut < k keeps suffix hops that bind
          // head or shared variables, justified when every retained hop is
          // functional from its target (§5.4 Q1' retains the one-to-one
          // has_ta). Prefix interiors must be local to the removed atoms.
          for (size_t cut = k; cut >= 1; --cut) {
            bool suffix_ok = true;
            for (size_t j = cut; j < k && suffix_ok; ++j) {
              const RelationSignature* hop =
                  compiled_->schema->catalog.Find(asr.path[j]);
              suffix_ok = hop != nullptr && hop->functional_dst_to_src;
            }
            if (!suffix_ok) continue;
            std::set<size_t> removed(chosen.begin(),
                                     chosen.begin() + static_cast<long>(cut));
            bool interiors_local = true;
            for (size_t vi = 1; vi < cut && interiors_local; ++vi) {
              Term bound = matcher->subst().Apply(Term::Var(asr.path_vars[vi]));
              if (!bound.is_variable()) {
                interiors_local = false;
                break;
              }
              const std::string& v = bound.var_name();
              for (const Term& t : q.head_args) {
                if (t.is_variable() && t.var_name() == v) interiors_local = false;
              }
              for (size_t j = 0; j < q.body.size() && interiors_local; ++j) {
                if (removed.count(j) > 0) continue;
                if (LiteralVars(q.body[j]).count(v) > 0) interiors_local = false;
              }
            }
            if (!interiors_local) continue;
            Query next;
            next.name = q.name;
            next.head_args = q.head_args;
            for (size_t j = 0; j < q.body.size(); ++j) {
              if (removed.count(j) == 0) next.body.push_back(q.body[j]);
            }
            Literal asr_lit = Literal::Pos(Atom::Pred(
                asr.name,
                {matcher->subst().Apply(Term::Var(asr.path_vars.front())),
                 matcher->subst().Apply(Term::Var(asr.path_vars.back()))}));
            next.body.push_back(asr_lit);
            DerivationStep step = make_step(
                StepKind::kFoldAsr,
                cut == k
                    ? "fold path into access support relation " + asr.name
                    : "fold path prefix (" + std::to_string(cut) +
                          " hops) into access support relation " + asr.name,
                asr.name);
            for (size_t j : removed) step.removed.push_back(q.body[j]);
            step.added.push_back(std::move(asr_lit));
            emit(std::move(next), std::move(step), "asr");
          }
          return;
        }
        for (size_t idx : cands[p]) {
          bool used = false;
          for (size_t pp = 0; pp < p; ++pp) used = used || chosen[pp] == idx;
          if (used) continue;
          size_t mark = matcher->Mark();
          Atom pattern = Atom::Pred(asr.path[p],
                                    {Term::Var(asr.path_vars[p]),
                                     Term::Var(asr.path_vars[p + 1])});
          if (matcher->MatchAtom(pattern, q.body[idx].atom)) {
            chosen[p] = idx;
            search(p + 1, matcher);
          }
          matcher->RollbackTo(mark);
        }
      };
      std::set<std::string> bindable(asr.path_vars.begin(), asr.path_vars.end());
      Matcher matcher(bindable);
      search(0, &matcher);
    }
  }

  return out;
}

Rewriting Optimizer::ReduceToFixpoint(Rewriting base) const {
  // Reductions strictly shrink the body, so this terminates.
  for (size_t guard = 0; guard < 64; ++guard) {
    std::vector<Rewriting> reduced =
        Neighbors(base, /*additions=*/false, /*reductions=*/true);
    if (reduced.empty()) break;
    base = std::move(reduced.front());
  }
  return base;
}

sqo::Result<OptimizationOutcome> Optimizer::Optimize(const Query& query) const {
  obs::Span span("step3.optimize");
  SQO_FAILPOINT("optimizer.optimize");
  SQO_RETURN_IF_ERROR(CheckGovernance("optimizer.optimize"));
  OptimizationOutcome outcome;
  uint64_t pruned = 0;  // rewritings rediscovered (dedup) or over the cap

  if (options_.detect_contradictions) {
    obs::Span check_span("optimize.contradiction_check");
    std::vector<Consequence> consequences = ImpliedConsequences(query);
    if (CheckContradiction(query, consequences, &outcome.contradiction_reason,
                           &outcome.contradiction_witness)) {
      outcome.contradiction = true;
      check_span.Tag("contradiction", "true");
      obs::Count("optimizer.contradictions");
      Rewriting original;
      original.query = query;
      outcome.equivalents.push_back(std::move(original));
      return outcome;
    }
  }

  // Bounded breadth-first search over rewritings, deduplicated by hashed
  // canonical fingerprint (128-bit; see DESIGN.md on why a hash suffices).
  {
    obs::Span search_span("optimize.search");
    std::unordered_set<sqo::Fingerprint128, sqo::FingerprintHash> seen;
    std::deque<std::pair<Rewriting, int>> frontier;
    Rewriting original;
    original.query = query;
    seen.insert(query.CanonicalFingerprint());
    outcome.equivalents.push_back(original);
    frontier.emplace_back(std::move(original), 0);

    while (!frontier.empty() &&
           outcome.equivalents.size() < options_.max_alternatives) {
      SQO_RETURN_IF_ERROR(CheckGovernance("optimizer.search"));
      auto [current, depth] = std::move(frontier.front());
      frontier.pop_front();
      if (depth >= options_.max_depth) continue;
      for (Rewriting& next : Neighbors(current, /*additions=*/true,
                                       /*reductions=*/true)) {
        sqo::Fingerprint128 key = next.query.CanonicalFingerprint();
        if (!seen.insert(key).second) {
          ++pruned;
          obs::Count("optimizer.dedup_hits");
          continue;
        }
        if (outcome.equivalents.size() >= options_.max_alternatives) {
          ++pruned;
          break;
        }
        if (ExecutionContext* governance = CurrentContext()) {
          governance->ChargeAlternatives();
          if (!governance->ok()) break;
        }
        outcome.equivalents.push_back(next);
        frontier.emplace_back(std::move(next), depth + 1);
      }
    }
    SQO_RETURN_IF_ERROR(CheckGovernance("optimizer.search"));

    // Normalize: reduce every alternative to a removal fixpoint, bypassing
    // the depth bound for monotonically shrinking chains (§5.3's
    // merge → drop attribute join → drop duplicate atom).
    if (options_.reduce_to_fixpoint) {
      obs::Span fixpoint_span("optimize.fixpoint");
      const size_t n = outcome.equivalents.size();
      for (size_t i = 0; i < n; ++i) {
        SQO_RETURN_IF_ERROR(CheckGovernance("optimizer.fixpoint"));
        Rewriting reduced = ReduceToFixpoint(outcome.equivalents[i]);
        sqo::Fingerprint128 key = reduced.query.CanonicalFingerprint();
        if (seen.insert(key).second) {
          outcome.equivalents.push_back(std::move(reduced));
        } else {
          ++pruned;
          obs::Count("optimizer.dedup_hits");
        }
      }
    }
  }
  obs::Count("optimizer.alternatives_generated", outcome.equivalents.size());
  obs::Count("optimizer.alternatives_pruned", pruned);
  // interner.size is a gauge (monotone process-wide table); record it as
  // "current size" by topping the counter up to the latest value.
  if (obs::MetricsRegistry* metrics = obs::CurrentMetrics()) {
    const uint64_t size = sqo::InternerSize();
    const uint64_t recorded = metrics->CounterValue("interner.size");
    if (size > recorded) metrics->Add("interner.size", size - recorded);
  }
  span.Tag("alternatives", static_cast<uint64_t>(outcome.equivalents.size()));
  span.Tag("pruned", pruned);
  return outcome;
}

}  // namespace sqo::core
