#include "sqo/semantic_compiler.h"

#include <set>

#include "common/context.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqo::core {

using datalog::Atom;
using datalog::Clause;
using datalog::Literal;
using datalog::Term;

size_t CompiledSchema::total_residues() const {
  size_t n = 0;
  for (const auto& [rel, rs] : residues) n += rs.size();
  return n;
}

std::string CompiledSchema::ToString() const {
  std::string out;
  for (const auto& [rel, rs] : residues) {
    out += rel + ":\n";
    for (const Residue& r : rs) {
      out += "  " + r.ToString();
      if (!r.source.empty()) out += "   [" + r.source + "]";
      out += "\n";
    }
  }
  return out;
}

namespace {

/// True for residue heads that can never constrain a query: reflexive
/// comparisons such as `T = T` or `R1 <= R1`.
bool TriviallyTrueHead(const Residue& residue) {
  if (!residue.head.has_value()) return false;
  const Atom& atom = residue.head->atom;
  if (!atom.is_comparison()) return false;
  if (atom.lhs() != atom.rhs()) return false;
  switch (atom.op()) {
    case datalog::CmpOp::kEq:
    case datalog::CmpOp::kLe:
    case datalog::CmpOp::kGe:
      return true;
    default:
      return false;
  }
}

}  // namespace

sqo::Result<CompiledSchema> CompileSemantics(
    const translate::TranslatedSchema* schema, std::vector<Clause> user_ics,
    std::vector<AsrDefinition> asrs, const CompilerOptions& options) {
  obs::Span span("semantic.compile");
  SQO_FAILPOINT("compile.semantics");
  SQO_RETURN_IF_ERROR(CheckGovernance("compile.semantics"));
  CompiledSchema out;
  out.schema = schema;
  out.asrs = std::move(asrs);

  InferenceInput inference_input;
  SQO_RETURN_IF_ERROR(ExtractMethodFacts(&user_ics, &inference_input));

  out.all_ics = schema->constraints;
  for (Clause& ic : user_ics) out.all_ics.push_back(std::move(ic));

  if (options.run_inference) {
    obs::Span infer_span("semantic.infer");
    inference_input.ics = out.all_ics;
    std::vector<Clause> derived =
        InferConstraints(inference_input, *schema, options.inference);
    infer_span.Tag("derived_ics", static_cast<uint64_t>(derived.size()));
    obs::Count("compile.derived_ics", derived.size());
    for (Clause& ic : derived) out.all_ics.push_back(std::move(ic));
  }

  // Partial subsumption of every IC against every relation in its body.
  obs::Span residue_span("semantic.residues");
  int residue_counter = 0;
  for (const Clause& ic : out.all_ics) {
    std::set<std::string> body_relations;
    for (const Literal& lit : ic.body) {
      if (lit.positive && lit.atom.is_predicate()) {
        body_relations.insert(lit.atom.predicate());
      }
    }
    for (const std::string& rel : body_relations) {
      const datalog::RelationSignature* sig = schema->catalog.Find(rel);
      if (sig == nullptr) {
        return sqo::SemanticError("integrity constraint '" +
                                  (ic.label.empty() ? ic.ToString() : ic.label) +
                                  "' mentions unknown relation '" + rel + "'");
      }
      for (Residue& residue : ComputeResidues(ic, *sig)) {
        if (options.drop_trivial && TriviallyTrueHead(residue)) continue;
        // Rename apart once, with a per-residue "_R<n>_" prefix no query
        // variable can collide with (the translator never generates that
        // prefix), so the optimizer can skip per-application renaming.
        datalog::FreshVarGen gen("_R" + std::to_string(++residue_counter) + "_");
        Clause as_clause;
        as_clause.head = residue.head;
        as_clause.body.push_back(Literal::Pos(residue.template_atom));
        for (const Literal& lit : residue.remainder) {
          as_clause.body.push_back(lit);
        }
        Clause renamed = as_clause.RenamedApart(&gen);
        residue.head = renamed.head;
        residue.template_atom = renamed.body.front().atom;
        residue.remainder.assign(renamed.body.begin() + 1, renamed.body.end());
        residue.variables = renamed.VariableSet();
        // Precompute the application-time acceleration data (interned
        // bindable set, remainder predicate requirements, memo id) once,
        // here, instead of per application in the optimizer's hot loop.
        residue.FinalizeForMatching(static_cast<uint32_t>(residue_counter));
        out.residues[rel].push_back(std::move(residue));
      }
    }
  }
  residue_span.Tag("ics", static_cast<uint64_t>(out.all_ics.size()));
  residue_span.Tag("residues", static_cast<uint64_t>(out.total_residues()));
  obs::Count("compile.ics", out.all_ics.size());
  return out;
}

}  // namespace sqo::core
