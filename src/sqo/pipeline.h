#ifndef SQO_SQO_PIPELINE_H_
#define SQO_SQO_PIPELINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/verifier.h"
#include "common/context.h"
#include "common/status.h"
#include "obs/eval_stats.h"
#include "oql/ast.h"
#include "sqo/optimizer.h"
#include "sqo/semantic_compiler.h"
#include "translate/change_mapper.h"
#include "translate/query_translator.h"

namespace sqo::core {

/// Interface used to rank semantically equivalent queries. The paper
/// defers the choice to "a cost-based physical optimizer"; the engine
/// module provides an implementation backed by database statistics.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Estimated evaluation cost of `query` (lower is better).
  virtual double EstimateCost(const datalog::Query& query) const = 0;
};

/// Resource governance for each query optimized by the pipeline. Semantic
/// optimization is best-effort by construction — every alternative is
/// *equivalent* to the original — so a bounded Step 3 can always fall back
/// to the unoptimized query without changing any answer.
struct GovernanceOptions {
  /// Wall-clock budget per optimized query (0 = none). Measured on the
  /// steady clock from the start of OptimizeParsed; in the disjunctive
  /// path each disjunct gets its own fresh deadline, so one stuck disjunct
  /// cannot starve the rest of the union.
  uint64_t deadline_ms = 0;

  /// Work budgets for the combinatorial phases (0 = unlimited).
  WorkBudgets budgets;

  /// Fail-open: when Step 3 exceeds its deadline/budgets or fails outright
  /// (including injected failpoints), return the original translated query
  /// as the sole alternative with PipelineResult::degraded set, instead of
  /// propagating the error. Disable to fail closed with
  /// kResourceExhausted / kCancelled / the underlying error.
  bool fail_open = true;
};

struct PipelineOptions {
  CompilerOptions compiler;
  OptimizerOptions optimizer;

  /// Static verification in front of semantic compilation: user ICs are
  /// analyzed (safety, signatures, contradictions, redundancy) before any
  /// residue is computed, compiled residues are checked for dead guards,
  /// and every translated query is linted. Error-severity findings abort
  /// with kSemanticError; warnings are recorded (ic_report / lint).
  analysis::AnalyzerOptions analyzer;
  bool run_analysis = true;

  /// Deadline, work budgets and degradation policy (see GovernanceOptions).
  /// Ignored when the caller has already installed an ExecutionContext —
  /// an outer scope (shell `\deadline`, an embedding server) owns
  /// governance then, but the degradation policy still applies.
  GovernanceOptions governance;
};

/// One semantically equivalent query produced by the pipeline: the DATALOG
/// form, the transformation log, and — when Step 4 succeeded — the
/// corresponding OQL query with constructors preserved.
struct Alternative {
  datalog::Query datalog;
  std::vector<std::string> derivation;

  /// Structured form of `derivation` (parallel vectors; `steps[i].text ==
  /// derivation[i]`). Replayed by the rewrite verifier and consumed by
  /// profile attribution; empty for the original and degraded fallbacks.
  std::vector<DerivationStep> steps;

  bool oql_ok = false;
  oql::SelectQuery oql;   // meaningful iff oql_ok
  std::string oql_error;  // set when Step 4 could not map the changes

  double cost = 0.0;  // filled when a cost model was supplied

  /// Evaluator counters for this alternative, filled by
  /// `engine::Database::ProfileAlternatives` (the pipeline itself never
  /// evaluates). `evaluated` is false until then, or when evaluation of
  /// this alternative failed.
  obs::EvalStats eval_stats;
  bool evaluated = false;
};

/// Full result of optimizing one query through Figure 2.
struct PipelineResult {
  oql::SelectQuery original_oql;
  datalog::Query original_datalog;
  translate::TranslationMap map;

  /// When set, the query is unsatisfiable under the ICs and need not be
  /// evaluated at all (§5.1).
  bool contradiction = false;
  std::string contradiction_reason;
  datalog::Query contradiction_witness;

  /// Query-lint findings from the static analyzer pre-pass (warnings only;
  /// error findings abort the optimization with kSemanticError).
  analysis::AnalysisReport lint;

  /// Equivalent queries; index 0 is the original.
  std::vector<Alternative> alternatives;

  /// Index of the cheapest alternative under the supplied cost model
  /// (0 when no model was given).
  int best_index = 0;

  /// Fail-open degradation: Step 3 hit a governance limit (deadline,
  /// budget, cancellation) or failed outright, and the pipeline fell back
  /// to the original translated query as the sole alternative. The result
  /// is still correct — alternative 0 is always the original — only the
  /// optimization opportunity was lost. `degradation_reason` carries the
  /// suppressed error.
  bool degraded = false;
  std::string degradation_reason;
};

/// Result of optimizing a disjunctive (union-of-conjunctive) query: one
/// PipelineResult per disjunct. A disjunct whose restrictions contradict
/// the integrity constraints contributes nothing to the union and is
/// *eliminated* — the disjunctive analogue of §5.1's contradiction
/// detection. `live` indexes the surviving disjuncts; evaluate those and
/// union (set semantics) for the full answer.
struct DisjunctiveResult {
  std::vector<PipelineResult> disjuncts;
  std::vector<size_t> live;

  /// Fail-open bookkeeping. `degraded_disjuncts` indexes disjuncts that
  /// fell back to their original translated query (they are still live and
  /// still correct). `failed` indexes disjuncts with no usable result at
  /// all (e.g. Step 2 could not translate them under an expired outer
  /// deadline) — their PipelineResult is a degraded placeholder with *no*
  /// alternatives and they are excluded from `live`, so the union is
  /// explicitly partial whenever `failed` is non-empty.
  bool degraded = false;
  std::vector<size_t> degraded_disjuncts;
  std::vector<size_t> failed;
  std::vector<std::string> failure_reasons;  // parallel to `failed`

  /// True only when every disjunct was *proven* contradictory — a partial
  /// failure is not proof of emptiness.
  bool all_eliminated() const { return live.empty() && failed.empty(); }

  /// True when every disjunct produced a usable result.
  bool complete() const { return failed.empty(); }
};


/// The end-to-end optimizer of Figure 2: ODL schema + ICs in, per-query
/// OQL → optimized OQL out.
///
///   Pipeline::Create(odl, ics, asrs)   — Steps 1 + semantic compilation
///   pipeline.OptimizeText(oql, &cost)  — Steps 2, 3, 4 per query
class Pipeline {
 public:
  /// Builds a pipeline from ODL text and integrity-constraint text (the
  /// DATALOG dialect of datalog::Parser, which may include `monotone` /
  /// `point` method facts). ASR definitions need only `name`,
  /// `display_name` and `path`.
  static sqo::Result<Pipeline> Create(std::string_view odl_text,
                                      std::string_view ic_text,
                                      std::vector<AsrDefinition> asrs = {},
                                      PipelineOptions options = {});

  /// Optimizes a single OQL query given as text.
  sqo::Result<PipelineResult> OptimizeText(std::string_view oql_text,
                                           const CostModel* cost_model = nullptr) const;

  /// Optimizes an already-parsed OQL query.
  sqo::Result<PipelineResult> OptimizeParsed(const oql::SelectQuery& query,
                                             const CostModel* cost_model = nullptr) const;

  /// Optimizes a query whose where clause may use `or`: each disjunct is
  /// optimized independently and contradictory disjuncts are eliminated.
  sqo::Result<DisjunctiveResult> OptimizeDisjunctiveText(
      std::string_view oql_text, const CostModel* cost_model = nullptr) const;

  /// Certifies every alternative of `result` against its original: replays
  /// each recorded derivation chain, emits per-step proof obligations and
  /// discharges them with a bounded chase over this pipeline's IC catalog
  /// (analysis::VerifyRewriting). Verdicts land in the returned
  /// VerificationResult; SQO-A015/A016/A017 diagnostics in its report.
  /// Alternative 0 (the original) always verifies trivially. Honors an
  /// installed ExecutionContext deadline between alternatives.
  sqo::Result<analysis::VerificationResult> Verify(
      const PipelineResult& result,
      analysis::VerifierOptions options = {}) const;

  const translate::TranslatedSchema& schema() const { return *schema_; }
  const CompiledSchema& compiled() const { return compiled_; }
  const PipelineOptions& options() const { return options_; }

  /// Warnings surfaced by the IC analyzer and the dead-residue pass during
  /// Create (error findings abort Create instead of landing here).
  const analysis::AnalysisReport& ic_report() const { return ic_report_; }

 private:
  Pipeline() = default;

  // unique_ptr: CompiledSchema holds a pointer into the translated schema,
  // so its address must be stable across moves of the Pipeline.
  std::unique_ptr<translate::TranslatedSchema> schema_;
  CompiledSchema compiled_;
  PipelineOptions options_;
  analysis::AnalysisReport ic_report_;
};

}  // namespace sqo::core

#endif  // SQO_SQO_PIPELINE_H_
