#include "sqo/asr.h"

#include "common/strings.h"

namespace sqo::core {

using datalog::Atom;
using datalog::Clause;
using datalog::Literal;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

sqo::Status RegisterAsr(AsrDefinition def, translate::TranslatedSchema* schema,
                        std::vector<AsrDefinition>* registry) {
  if (def.path.size() < 2) {
    return sqo::InvalidArgumentError(
        "an access support relation needs a path of at least two "
        "relationships");
  }
  if (schema->catalog.Find(def.name) != nullptr) {
    return sqo::InvalidArgumentError("relation name collision: ASR '" +
                                     def.name + "'");
  }

  // Validate the chain and derive functionality.
  bool fwd_functional = true;
  bool bwd_functional = true;
  std::string prev_target;  // class name reached so far
  for (size_t i = 0; i < def.path.size(); ++i) {
    const RelationSignature* sig = schema->catalog.Find(def.path[i]);
    if (sig == nullptr || sig->kind != RelationKind::kRelationship) {
      return sqo::InvalidArgumentError("ASR path element '" + def.path[i] +
                                       "' is not a relationship relation");
    }
    if (i > 0 && !schema->schema.IsSubclassOf(prev_target, sig->owner) &&
        !schema->schema.IsSubclassOf(sig->owner, prev_target)) {
      return sqo::InvalidArgumentError(
          "ASR path does not chain: '" + def.path[i - 1] + "' ends at '" +
          prev_target + "' but '" + def.path[i] + "' starts at '" + sig->owner +
          "'");
    }
    prev_target = sig->target;
    fwd_functional = fwd_functional && sig->functional_src_to_dst;
    bwd_functional = bwd_functional && sig->functional_dst_to_src;
  }

  // Build the view clause asr(X0, Xk) <- r1(X0,X1), ..., rk(X(k-1),Xk).
  def.path_vars.clear();
  for (size_t i = 0; i <= def.path.size(); ++i) {
    def.path_vars.push_back("X" + std::to_string(i));
  }
  Clause view;
  view.label = "asr_def:" + def.name;
  view.head = Literal::Pos(Atom::Pred(
      def.name,
      {Term::Var(def.path_vars.front()), Term::Var(def.path_vars.back())}));
  for (size_t i = 0; i < def.path.size(); ++i) {
    view.body.push_back(Literal::Pos(
        Atom::Pred(def.path[i], {Term::Var(def.path_vars[i]),
                                 Term::Var(def.path_vars[i + 1])})));
  }
  def.view = std::move(view);

  RelationSignature sig;
  sig.name = def.name;
  sig.kind = RelationKind::kAsr;
  sig.display_name = def.display_name.empty() ? def.name : def.display_name;
  sig.owner = schema->catalog.Find(def.path.front())->owner;
  sig.target = prev_target;
  sig.attributes = {"src", "dst"};
  sig.functional_src_to_dst = fwd_functional;
  sig.functional_dst_to_src = bwd_functional;
  SQO_RETURN_IF_ERROR(schema->catalog.Add(std::move(sig)));

  registry->push_back(std::move(def));
  return sqo::Status::Ok();
}

}  // namespace sqo::core
