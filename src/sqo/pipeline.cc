#include "sqo/pipeline.h"

#include <chrono>
#include <optional>

#include "common/failpoint.h"
#include "datalog/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "odl/parser.h"
#include "oql/parser.h"

namespace sqo::core {

namespace {

/// Fail-open fallback: replace whatever Step 3 produced (usually nothing)
/// with the original translated query as the sole alternative. Correctness
/// is untouched — alternative 0 is by definition the query the user wrote —
/// only the optimization opportunity is lost, which the degraded flag,
/// the `optimize.degraded` counter and a trace event all record.
PipelineResult DegradedResult(PipelineResult result,
                              const oql::SelectQuery& query,
                              const sqo::Status& cause,
                              const CostModel* cost_model) {
  obs::Span span("pipeline.degraded");
  span.Tag("reason", cause.ToString());
  obs::Count("optimize.degraded");
  result.degraded = true;
  result.degradation_reason = cause.ToString();
  result.alternatives.clear();
  Alternative original;
  original.datalog = result.original_datalog;
  original.derivation.clear();
  original.oql_ok = true;
  original.oql = query;
  if (cost_model != nullptr) {
    original.cost = cost_model->EstimateCost(original.datalog);
  }
  result.alternatives.push_back(std::move(original));
  result.best_index = 0;
  return result;
}

}  // namespace

sqo::Result<Pipeline> Pipeline::Create(std::string_view odl_text,
                                       std::string_view ic_text,
                                       std::vector<AsrDefinition> asrs,
                                       PipelineOptions options) {
  obs::Span span("pipeline.create");
  Pipeline pipeline;
  pipeline.options_ = options;

  // Step 1: ODL → resolved schema → DATALOG schema + structural ICs.
  {
    obs::Span step1("step1.translate_schema");
    SQO_ASSIGN_OR_RETURN(odl::SchemaAst ast, odl::ParseOdl(odl_text));
    SQO_ASSIGN_OR_RETURN(odl::Schema schema, odl::Schema::Resolve(ast));
    SQO_ASSIGN_OR_RETURN(translate::TranslatedSchema translated,
                         translate::TranslateSchema(schema));
    step1.Tag("classes", static_cast<uint64_t>(schema.classes().size()));
    pipeline.schema_ = std::make_unique<translate::TranslatedSchema>(
        std::move(translated));
  }

  // Access support relations extend the catalog before IC parsing so ICs
  // may mention them.
  std::vector<AsrDefinition> registry;
  {
    obs::Span asr_span("step1.register_asrs");
    for (AsrDefinition& def : asrs) {
      SQO_RETURN_IF_ERROR(
          RegisterAsr(std::move(def), pipeline.schema_.get(), &registry));
    }
    asr_span.Tag("asrs", static_cast<uint64_t>(registry.size()));
  }

  // User ICs in the DATALOG dialect, resolved against the catalog for
  // named-argument atoms.
  std::vector<datalog::Clause> user_ics;
  {
    obs::Span ic_span("step1.parse_ics");
    SQO_ASSIGN_OR_RETURN(user_ics,
                         datalog::ParseProgram(ic_text,
                                               &pipeline.schema_->catalog));
    ic_span.Tag("user_ics", static_cast<uint64_t>(user_ics.size()));
  }

  // Static analysis pre-pass (fail fast): malformed, contradictory or
  // ill-typed user ICs never reach residue compilation — the residue
  // method's soundness assumes the IC set is safe and consistent.
  if (options.run_analysis) {
    obs::Span analyze_span("step1.analyze_ics");
    analysis::AnalysisReport report =
        analysis::AnalyzeIcs(*pipeline.schema_, user_ics, options.analyzer);
    analyze_span.Tag("diagnostics", static_cast<uint64_t>(report.diagnostics.size()));
    obs::Count("analysis.ic_diagnostics", report.diagnostics.size());
    if (report.has_errors()) {
      return sqo::SemanticError(
          "static analysis rejected the integrity constraints (" +
          report.Summary() + "); first error: " +
          report.FirstError()->ToString());
    }
    pipeline.ic_report_ = std::move(report);
  }

  // ASR view definitions participate as ICs in both directions: the view
  // implies its path (for unfold-style reasoning) and the path implies the
  // view (fold). The fold direction is handled structurally by the
  // optimizer's T7; the unfold direction is expressed as an IC so residues
  // can chain through ASRs.
  for (const AsrDefinition& def : registry) {
    user_ics.push_back(def.view);
  }

  SQO_ASSIGN_OR_RETURN(
      CompiledSchema compiled,
      CompileSemantics(pipeline.schema_.get(), std::move(user_ics),
                       std::move(registry), options.compiler));
  pipeline.compiled_ = std::move(compiled);
  // Dead-residue pass: residues whose guard can never hold are compiled
  // dead weight; surfaced as warnings alongside the IC findings.
  if (options.run_analysis) {
    obs::Span dead_span("compile.analyze_residues");
    analysis::AnalysisReport residue_report =
        analysis::AnalyzeResidues(pipeline.compiled_.residues);
    dead_span.Tag("diagnostics",
                  static_cast<uint64_t>(residue_report.diagnostics.size()));
    obs::Count("analysis.dead_residues", residue_report.diagnostics.size());
    pipeline.ic_report_.Append(std::move(residue_report));

    // Governance-configuration lint (SQO-A011): a deadline with fail-open
    // degradation disabled turns every expiry into a hard query failure.
    analysis::AnalysisReport governance_report = analysis::AnalyzeGovernance(
        options.governance.deadline_ms > 0, options.governance.fail_open);
    obs::Count("analysis.governance_diagnostics",
               governance_report.diagnostics.size());
    pipeline.ic_report_.Append(std::move(governance_report));
  }
  obs::Count("compile.residues_attached", pipeline.compiled_.total_residues());
  span.Tag("residues", static_cast<uint64_t>(pipeline.compiled_.total_residues()));
  return pipeline;
}

sqo::Result<PipelineResult> Pipeline::OptimizeText(
    std::string_view oql_text, const CostModel* cost_model) const {
  sqo::Result<oql::SelectQuery> parsed = [&] {
    obs::Span parse_span("parse.oql");
    return oql::ParseOql(oql_text);
  }();
  SQO_RETURN_IF_ERROR(parsed.status());
  return OptimizeParsed(*parsed, cost_model);
}

sqo::Result<DisjunctiveResult> Pipeline::OptimizeDisjunctiveText(
    std::string_view oql_text, const CostModel* cost_model) const {
  SQO_ASSIGN_OR_RETURN(std::vector<oql::SelectQuery> disjuncts,
                       oql::ParseOqlDisjunctive(oql_text));
  DisjunctiveResult result;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    // Degradation is per disjunct: OptimizeParsed installs a fresh context
    // (and deadline) for each disjunct unless an outer one is in place, so
    // one pathological disjunct degrades alone. A hard failure — nothing
    // usable was produced, e.g. Step 2 under an expired outer deadline —
    // is recorded instead of killing the whole union; the union is then
    // explicitly partial (`failed` non-empty).
    sqo::Result<PipelineResult> one = OptimizeParsed(disjuncts[i], cost_model);
    if (!one.ok()) {
      if (!options_.governance.fail_open) return one.status();
      obs::Count("pipeline.disjunct_failures");
      result.degraded = true;
      result.failed.push_back(i);
      result.failure_reasons.push_back(one.status().ToString());
      PipelineResult placeholder;
      placeholder.original_oql = disjuncts[i];
      placeholder.degraded = true;
      placeholder.degradation_reason = one.status().ToString();
      result.disjuncts.push_back(std::move(placeholder));
      continue;
    }
    if (one->degraded) {
      result.degraded = true;
      result.degraded_disjuncts.push_back(i);
    }
    if (!one->contradiction) result.live.push_back(i);
    result.disjuncts.push_back(std::move(one).value());
  }
  obs::Count("pipeline.disjuncts", result.disjuncts.size());
  obs::Count("pipeline.disjuncts_eliminated",
             result.disjuncts.size() - result.live.size() -
                 result.failed.size());
  return result;
}

sqo::Result<PipelineResult> Pipeline::OptimizeParsed(
    const oql::SelectQuery& query, const CostModel* cost_model) const {
  // Install governance for this query unless an outer scope (shell
  // `\deadline`, an embedding server) already owns a context — the
  // outermost owner wins, so nested calls share one deadline. A context is
  // installed even with no deadline/budgets configured: latching is what
  // lets vector-returning internals (residue application) report injected
  // or governance failures to this boundary.
  ExecutionContext local_context;
  std::optional<ScopedContext> installed;
  if (CurrentContext() == nullptr) {
    const GovernanceOptions& governance = options_.governance;
    if (governance.deadline_ms > 0) {
      local_context.SetDeadlineAfter(
          std::chrono::milliseconds(governance.deadline_ms));
    }
    local_context.budgets() = governance.budgets;
    installed.emplace(&local_context);
  }
  ExecutionContext* context = CurrentContext();

  obs::Span span("pipeline.optimize");
  obs::ScopedTimer timer("pipeline.optimize");
  PipelineResult result;
  result.original_oql = query;

  // Step 2.
  {
    obs::Span step2("step2.translate_query");
    SQO_ASSIGN_OR_RETURN(translate::TranslatedQuery translated,
                         translate::TranslateQuery(*schema_, query));
    result.original_datalog = translated.query;
    result.map = translated.map;
  }

  // Query lint pre-pass: unbound variables are errors (the query has no
  // well-defined answer); foldable or trivially false literals are recorded
  // as warnings and left for the optimizer to exploit.
  if (options_.run_analysis) {
    obs::Span lint_span("step2.lint_query");
    result.lint = analysis::AnalyzeQuery(*schema_, result.original_datalog,
                                         options_.analyzer);
    lint_span.Tag("diagnostics",
                  static_cast<uint64_t>(result.lint.diagnostics.size()));
    obs::Count("analysis.query_diagnostics", result.lint.diagnostics.size());
    if (result.lint.has_errors()) {
      return sqo::SemanticError("static analysis rejected the query (" +
                                result.lint.Summary() + "); first error: " +
                                result.lint.FirstError()->ToString());
    }
  }

  // Step 3 (the optimizer opens its own "step3.optimize" span). Any Step-3
  // failure — governance (deadline/budget/cancellation), an injected
  // failpoint, or a genuine optimizer error — is recoverable: every
  // alternative is equivalent to the original, so under fail-open we
  // degrade to the original translated query instead of erroring.
  Optimizer optimizer(&compiled_, options_.optimizer);
  sqo::Result<OptimizationOutcome> step3 =
      optimizer.Optimize(result.original_datalog);
  if (!step3.ok()) {
    if (context != nullptr && context->deadline_exceeded()) {
      obs::Count("optimize.deadline_exceeded");
    }
    span.Tag("degraded", options_.governance.fail_open ? "true" : "false");
    if (!options_.governance.fail_open) return step3.status();
    return DegradedResult(std::move(result), query, step3.status(),
                          cost_model);
  }
  OptimizationOutcome outcome = std::move(step3).value();

  if (outcome.contradiction) {
    result.contradiction = true;
    result.contradiction_reason = outcome.contradiction_reason;
    result.contradiction_witness = outcome.contradiction_witness;
    span.Tag("contradiction", "true");
  }

  // Step 4 per equivalent query.
  {
    obs::Span step4("step4.map_changes");
    translate::ChangeMapper mapper(schema_.get(), &result.map);
    size_t mapped_ok = 0;
    for (const Rewriting& rewriting : outcome.equivalents) {
      Alternative alt;
      alt.datalog = rewriting.query;
      alt.derivation = rewriting.derivation;
      alt.steps = rewriting.steps;
      if (rewriting.derivation.empty()) {
        // The original: Step 4 is the identity.
        alt.oql_ok = true;
        alt.oql = query;
      } else {
        obs::Span map_span("step4.alternative");
        sqo::Result<oql::SelectQuery> mapped =
            mapper.Apply(query, result.original_datalog, rewriting.query);
        if (mapped.ok()) {
          alt.oql_ok = true;
          alt.oql = std::move(mapped).value();
        } else {
          alt.oql_error = mapped.status().ToString();
        }
        map_span.Tag("ok", alt.oql_ok ? "true" : "false");
      }
      if (alt.oql_ok) ++mapped_ok;
      if (cost_model != nullptr) {
        alt.cost = cost_model->EstimateCost(alt.datalog);
      }
      result.alternatives.push_back(std::move(alt));
    }
    step4.Tag("alternatives", static_cast<uint64_t>(result.alternatives.size()));
    step4.Tag("mapped_ok", static_cast<uint64_t>(mapped_ok));
  }

  // Every downstream consumer indexes alternatives[best_index]; guarantee
  // the invariant here (the optimizer always emits the original at index 0)
  // instead of letting a violation surface as an out-of-bounds read.
  if (result.alternatives.empty()) {
    return sqo::InternalError(
        "optimizer returned no alternatives (not even the original) for " +
        result.original_datalog.ToString());
  }
  if (cost_model != nullptr) {
    int best = 0;
    for (size_t i = 1; i < result.alternatives.size(); ++i) {
      if (result.alternatives[i].cost < result.alternatives[best].cost) {
        best = static_cast<int>(i);
      }
    }
    result.best_index = best;
  }
  span.Tag("alternatives", static_cast<uint64_t>(result.alternatives.size()));
  return result;
}

sqo::Result<analysis::VerificationResult> Pipeline::Verify(
    const PipelineResult& result, analysis::VerifierOptions options) const {
  obs::Span span("pipeline.verify");
  SQO_FAILPOINT("pipeline.verify");
  analysis::VerifierCatalog catalog;
  catalog.schema = schema_.get();
  catalog.ics = &compiled_.all_ics;
  catalog.asrs = &compiled_.asrs;

  analysis::VerificationResult verification;
  verification.verdicts.reserve(result.alternatives.size());
  const std::string subject = result.original_datalog.name;
  for (size_t i = 0; i < result.alternatives.size(); ++i) {
    SQO_RETURN_IF_ERROR(CheckGovernance("pipeline.verify"));
    analysis::RewriteCandidate candidate;
    candidate.query = &result.alternatives[i].datalog;
    candidate.steps = &result.alternatives[i].steps;
    analysis::AlternativeVerdict verdict = analysis::VerifyRewriting(
        catalog, result.original_datalog, candidate, i, options);
    analysis::AppendVerdictDiagnostics(verdict, subject, options,
                                       &verification.report);
    verification.verdicts.push_back(std::move(verdict));
  }
  span.Tag("alternatives", static_cast<uint64_t>(verification.verdicts.size()));
  span.Tag("sound", verification.all_sound() ? "true" : "false");
  return verification;
}

}  // namespace sqo::core
