#include "sqo/pipeline.h"

#include "datalog/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "odl/parser.h"
#include "oql/parser.h"

namespace sqo::core {

sqo::Result<Pipeline> Pipeline::Create(std::string_view odl_text,
                                       std::string_view ic_text,
                                       std::vector<AsrDefinition> asrs,
                                       PipelineOptions options) {
  obs::Span span("pipeline.create");
  Pipeline pipeline;
  pipeline.options_ = options;

  // Step 1: ODL → resolved schema → DATALOG schema + structural ICs.
  {
    obs::Span step1("step1.translate_schema");
    SQO_ASSIGN_OR_RETURN(odl::SchemaAst ast, odl::ParseOdl(odl_text));
    SQO_ASSIGN_OR_RETURN(odl::Schema schema, odl::Schema::Resolve(ast));
    SQO_ASSIGN_OR_RETURN(translate::TranslatedSchema translated,
                         translate::TranslateSchema(schema));
    step1.Tag("classes", static_cast<uint64_t>(schema.classes().size()));
    pipeline.schema_ = std::make_unique<translate::TranslatedSchema>(
        std::move(translated));
  }

  // Access support relations extend the catalog before IC parsing so ICs
  // may mention them.
  std::vector<AsrDefinition> registry;
  {
    obs::Span asr_span("step1.register_asrs");
    for (AsrDefinition& def : asrs) {
      SQO_RETURN_IF_ERROR(
          RegisterAsr(std::move(def), pipeline.schema_.get(), &registry));
    }
    asr_span.Tag("asrs", static_cast<uint64_t>(registry.size()));
  }

  // User ICs in the DATALOG dialect, resolved against the catalog for
  // named-argument atoms.
  std::vector<datalog::Clause> user_ics;
  {
    obs::Span ic_span("step1.parse_ics");
    SQO_ASSIGN_OR_RETURN(user_ics,
                         datalog::ParseProgram(ic_text,
                                               &pipeline.schema_->catalog));
    ic_span.Tag("user_ics", static_cast<uint64_t>(user_ics.size()));
  }

  // Static analysis pre-pass (fail fast): malformed, contradictory or
  // ill-typed user ICs never reach residue compilation — the residue
  // method's soundness assumes the IC set is safe and consistent.
  if (options.run_analysis) {
    obs::Span analyze_span("step1.analyze_ics");
    analysis::AnalysisReport report =
        analysis::AnalyzeIcs(*pipeline.schema_, user_ics, options.analyzer);
    analyze_span.Tag("diagnostics", static_cast<uint64_t>(report.diagnostics.size()));
    obs::Count("analysis.ic_diagnostics", report.diagnostics.size());
    if (report.has_errors()) {
      return sqo::SemanticError(
          "static analysis rejected the integrity constraints (" +
          report.Summary() + "); first error: " +
          report.FirstError()->ToString());
    }
    pipeline.ic_report_ = std::move(report);
  }

  // ASR view definitions participate as ICs in both directions: the view
  // implies its path (for unfold-style reasoning) and the path implies the
  // view (fold). The fold direction is handled structurally by the
  // optimizer's T7; the unfold direction is expressed as an IC so residues
  // can chain through ASRs.
  for (const AsrDefinition& def : registry) {
    user_ics.push_back(def.view);
  }

  SQO_ASSIGN_OR_RETURN(
      CompiledSchema compiled,
      CompileSemantics(pipeline.schema_.get(), std::move(user_ics),
                       std::move(registry), options.compiler));
  pipeline.compiled_ = std::move(compiled);
  // Dead-residue pass: residues whose guard can never hold are compiled
  // dead weight; surfaced as warnings alongside the IC findings.
  if (options.run_analysis) {
    obs::Span dead_span("compile.analyze_residues");
    analysis::AnalysisReport residue_report =
        analysis::AnalyzeResidues(pipeline.compiled_.residues);
    dead_span.Tag("diagnostics",
                  static_cast<uint64_t>(residue_report.diagnostics.size()));
    obs::Count("analysis.dead_residues", residue_report.diagnostics.size());
    pipeline.ic_report_.Append(std::move(residue_report));
  }
  obs::Count("compile.residues_attached", pipeline.compiled_.total_residues());
  span.Tag("residues", static_cast<uint64_t>(pipeline.compiled_.total_residues()));
  return pipeline;
}

sqo::Result<PipelineResult> Pipeline::OptimizeText(
    std::string_view oql_text, const CostModel* cost_model) const {
  sqo::Result<oql::SelectQuery> parsed = [&] {
    obs::Span parse_span("parse.oql");
    return oql::ParseOql(oql_text);
  }();
  SQO_RETURN_IF_ERROR(parsed.status());
  return OptimizeParsed(*parsed, cost_model);
}

sqo::Result<DisjunctiveResult> Pipeline::OptimizeDisjunctiveText(
    std::string_view oql_text, const CostModel* cost_model) const {
  SQO_ASSIGN_OR_RETURN(std::vector<oql::SelectQuery> disjuncts,
                       oql::ParseOqlDisjunctive(oql_text));
  DisjunctiveResult result;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    SQO_ASSIGN_OR_RETURN(PipelineResult one,
                         OptimizeParsed(disjuncts[i], cost_model));
    if (!one.contradiction) result.live.push_back(i);
    result.disjuncts.push_back(std::move(one));
  }
  obs::Count("pipeline.disjuncts", result.disjuncts.size());
  obs::Count("pipeline.disjuncts_eliminated",
             result.disjuncts.size() - result.live.size());
  return result;
}

sqo::Result<PipelineResult> Pipeline::OptimizeParsed(
    const oql::SelectQuery& query, const CostModel* cost_model) const {
  obs::Span span("pipeline.optimize");
  obs::ScopedTimer timer("pipeline.optimize");
  PipelineResult result;
  result.original_oql = query;

  // Step 2.
  {
    obs::Span step2("step2.translate_query");
    SQO_ASSIGN_OR_RETURN(translate::TranslatedQuery translated,
                         translate::TranslateQuery(*schema_, query));
    result.original_datalog = translated.query;
    result.map = translated.map;
  }

  // Query lint pre-pass: unbound variables are errors (the query has no
  // well-defined answer); foldable or trivially false literals are recorded
  // as warnings and left for the optimizer to exploit.
  if (options_.run_analysis) {
    obs::Span lint_span("step2.lint_query");
    result.lint = analysis::AnalyzeQuery(*schema_, result.original_datalog,
                                         options_.analyzer);
    lint_span.Tag("diagnostics",
                  static_cast<uint64_t>(result.lint.diagnostics.size()));
    obs::Count("analysis.query_diagnostics", result.lint.diagnostics.size());
    if (result.lint.has_errors()) {
      return sqo::SemanticError("static analysis rejected the query (" +
                                result.lint.Summary() + "); first error: " +
                                result.lint.FirstError()->ToString());
    }
  }

  // Step 3 (the optimizer opens its own "step3.optimize" span).
  Optimizer optimizer(&compiled_, options_.optimizer);
  SQO_ASSIGN_OR_RETURN(OptimizationOutcome outcome,
                       optimizer.Optimize(result.original_datalog));

  if (outcome.contradiction) {
    result.contradiction = true;
    result.contradiction_reason = outcome.contradiction_reason;
    result.contradiction_witness = outcome.contradiction_witness;
    span.Tag("contradiction", "true");
  }

  // Step 4 per equivalent query.
  {
    obs::Span step4("step4.map_changes");
    translate::ChangeMapper mapper(schema_.get(), &result.map);
    size_t mapped_ok = 0;
    for (const Rewriting& rewriting : outcome.equivalents) {
      Alternative alt;
      alt.datalog = rewriting.query;
      alt.derivation = rewriting.derivation;
      if (rewriting.derivation.empty()) {
        // The original: Step 4 is the identity.
        alt.oql_ok = true;
        alt.oql = query;
      } else {
        obs::Span map_span("step4.alternative");
        sqo::Result<oql::SelectQuery> mapped =
            mapper.Apply(query, result.original_datalog, rewriting.query);
        if (mapped.ok()) {
          alt.oql_ok = true;
          alt.oql = std::move(mapped).value();
        } else {
          alt.oql_error = mapped.status().ToString();
        }
        map_span.Tag("ok", alt.oql_ok ? "true" : "false");
      }
      if (alt.oql_ok) ++mapped_ok;
      if (cost_model != nullptr) {
        alt.cost = cost_model->EstimateCost(alt.datalog);
      }
      result.alternatives.push_back(std::move(alt));
    }
    step4.Tag("alternatives", static_cast<uint64_t>(result.alternatives.size()));
    step4.Tag("mapped_ok", static_cast<uint64_t>(mapped_ok));
  }

  // Every downstream consumer indexes alternatives[best_index]; guarantee
  // the invariant here (the optimizer always emits the original at index 0)
  // instead of letting a violation surface as an out-of-bounds read.
  if (result.alternatives.empty()) {
    return sqo::InternalError(
        "optimizer returned no alternatives (not even the original) for " +
        result.original_datalog.ToString());
  }
  if (cost_model != nullptr) {
    int best = 0;
    for (size_t i = 1; i < result.alternatives.size(); ++i) {
      if (result.alternatives[i].cost < result.alternatives[best].cost) {
        best = static_cast<int>(i);
      }
    }
    result.best_index = best;
  }
  span.Tag("alternatives", static_cast<uint64_t>(result.alternatives.size()));
  return result;
}

}  // namespace sqo::core
