#include "sqo/profile_attribution.h"

#include <algorithm>
#include <string>

namespace sqo::core {

using datalog::Literal;

namespace {

/// First derivation step that introduced (or removed) the literal. The
/// structured step record is authoritative — exact literal equality against
/// its added/removed lists; the text-substring fallback covers alternatives
/// recorded before steps were structured (e.g. catalogs round-tripped
/// through older persistence).
const std::string* FindStep(const Alternative& alt, const Literal& lit) {
  for (const DerivationStep& step : alt.steps) {
    const auto& side = step.removed;
    if (std::find(step.added.begin(), step.added.end(), lit) !=
            step.added.end() ||
        std::find(side.begin(), side.end(), lit) != side.end()) {
      return &step.text;
    }
  }
  const std::string text = lit.atom.ToString();
  for (const std::string& step : alt.derivation) {
    if (step.find(text) != std::string::npos) return &step;
  }
  return nullptr;
}

}  // namespace

void AnnotateProfile(const PipelineResult& result, size_t alt_index,
                     obs::QueryProfile* profile) {
  if (profile == nullptr || alt_index >= result.alternatives.size()) return;
  const Alternative& alt = result.alternatives[alt_index];
  const std::vector<Literal>& original = result.original_datalog.body;

  for (obs::ProfileNode& node : profile->nodes) {
    if (node.literal_index < 0 ||
        static_cast<size_t>(node.literal_index) >= alt.datalog.body.size()) {
      continue;
    }
    const Literal& lit = alt.datalog.body[node.literal_index];
    if (std::find(original.begin(), original.end(), lit) != original.end()) {
      node.attribution = "original";
      continue;
    }
    const std::string* step = FindStep(alt, lit);
    node.attribution = step != nullptr ? *step : "derived";
  }

  profile->eliminated.clear();
  for (const Literal& lit : original) {
    if (std::find(alt.datalog.body.begin(), alt.datalog.body.end(), lit) !=
        alt.datalog.body.end()) {
      continue;
    }
    std::string entry = lit.ToString();
    if (const std::string* step = FindStep(alt, lit)) {
      entry += "  <- " + *step;
    }
    profile->eliminated.push_back(std::move(entry));
  }
}

}  // namespace sqo::core
