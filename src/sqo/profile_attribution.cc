#include "sqo/profile_attribution.h"

#include <algorithm>
#include <string>

namespace sqo::core {

using datalog::Literal;

namespace {

/// First derivation step whose text mentions the literal's atom. The
/// optimizer formats every step around the atom's ToString (see
/// Optimizer::Neighbors), so substring match recovers the provenance
/// without a side-channel.
const std::string* FindStep(const std::vector<std::string>& derivation,
                            const Literal& lit) {
  const std::string text = lit.atom.ToString();
  for (const std::string& step : derivation) {
    if (step.find(text) != std::string::npos) return &step;
  }
  return nullptr;
}

}  // namespace

void AnnotateProfile(const PipelineResult& result, size_t alt_index,
                     obs::QueryProfile* profile) {
  if (profile == nullptr || alt_index >= result.alternatives.size()) return;
  const Alternative& alt = result.alternatives[alt_index];
  const std::vector<Literal>& original = result.original_datalog.body;

  for (obs::ProfileNode& node : profile->nodes) {
    if (node.literal_index < 0 ||
        static_cast<size_t>(node.literal_index) >= alt.datalog.body.size()) {
      continue;
    }
    const Literal& lit = alt.datalog.body[node.literal_index];
    if (std::find(original.begin(), original.end(), lit) != original.end()) {
      node.attribution = "original";
      continue;
    }
    const std::string* step = FindStep(alt.derivation, lit);
    node.attribution = step != nullptr ? *step : "derived";
  }

  profile->eliminated.clear();
  for (const Literal& lit : original) {
    if (std::find(alt.datalog.body.begin(), alt.datalog.body.end(), lit) !=
        alt.datalog.body.end()) {
      continue;
    }
    std::string entry = lit.ToString();
    if (const std::string* step = FindStep(alt.derivation, lit)) {
      entry += "  <- " + *step;
    }
    profile->eliminated.push_back(std::move(entry));
  }
}

}  // namespace sqo::core
