#ifndef SQO_OBS_PROFILE_H_
#define SQO_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/eval_stats.h"

namespace sqo::obs {

/// One operator of an evaluated plan: a scan, index probe, traversal,
/// filter, anti-join, method invocation, membership guard, or the final
/// emit/dedup step. Nodes form a tree via `parent` (-1 = root): the
/// left-deep pipeline is a chain (each operator's successor is its child),
/// and membership guards consumed by a scan hang off that scan node.
struct ProfileNode {
  int id = 0;
  int parent = -1;

  /// Operator kind, fixed vocabulary: "oid-lookup", "index-probe",
  /// "lazy-index-probe", "hash-join", "extent-scan", "traverse",
  /// "reverse-traverse", "pair-scan", "filter", "anti-join", "guard",
  /// "invoke", "emit". Empty when the operator was planned but never
  /// executed (an upstream step produced no bindings).
  std::string op;

  /// Relation (or attribute for probes) the operator touches; the literal
  /// text for filters.
  std::string relation;

  /// Planner's step description for this literal ("index probe
  /// faculty.name"), when the plan came from the planner.
  std::string detail;

  /// Which residue/IC introduced this literal, filled by
  /// `core::AnnotateProfile`: "original" for literals of the input query,
  /// otherwise the derivation step (with its `[IC]` label) that added it.
  std::string attribution;

  /// Index of the body literal this operator evaluates; -1 for synthetic
  /// nodes (emit).
  int literal_index = -1;

  /// Bindings that reached this operator / bindings it passed downstream.
  /// For the emit node: tuples emitted / distinct results.
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;

  /// Planner-estimated rows out (cumulative cardinality after this step);
  /// < 0 when no estimate is available. EXPLAIN ANALYZE's est-vs-actual.
  double est_rows = -1.0;

  /// Inclusive wall time (this operator plus everything downstream of it,
  /// summed over invocations) and exclusive self time.
  int64_t total_ns = 0;
  int64_t self_ns = 0;

  bool index_used = false;
};

/// Operator-level profile of one query evaluation (EXPLAIN ANALYZE). Built
/// by the evaluator when a profile sink is supplied; pure data here so the
/// obs layer stays engine-free.
struct QueryProfile {
  std::vector<ProfileNode> nodes;  // parents precede children

  /// End-to-end evaluation time (plan + execute).
  int64_t total_ns = 0;

  /// Planner's whole-plan estimates (when the planner chose the order).
  double planned_cost = -1.0;
  double planned_rows = -1.0;

  /// Evaluator counters of the same run, for cross-checking node totals.
  EvalStats stats;

  /// Original-query literals the chosen rewriting eliminated, with the
  /// derivation step that removed them (filled by core::AnnotateProfile).
  std::vector<std::string> eliminated;

  /// Recomputes every node's `self_ns` as `total_ns` minus the inclusive
  /// time of its children (clamped at 0). Call after the tree is complete.
  void FinalizeSelfTimes();

  /// Indented operator tree with rows/timing per node — the `\profile`
  /// rendering.
  std::string ToText() const;

  /// `{"total_ns":..,"planned_cost":..,"planned_rows":..,"stats":{...},
  ///   "eliminated":[...],"nodes":[{...},...]}`.
  std::string ToJson() const;
};

}  // namespace sqo::obs

#endif  // SQO_OBS_PROFILE_H_
