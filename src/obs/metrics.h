#ifndef SQO_OBS_METRICS_H_
#define SQO_OBS_METRICS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace sqo::obs {

/// Log₂-bucketed duration histogram: O(1) record, 64 buckets (bucket i
/// holds samples whose nanosecond value has bit-width i). Quantiles are
/// approximated by the geometric midpoint of the bucket that crosses the
/// cumulative rank — at most a 2× error, plenty for p50/p95 phase timings.
class DurationHistogram {
 public:
  void Record(int64_t nanos);

  struct Summary {
    uint64_t count = 0;
    int64_t sum_ns = 0;
    int64_t max_ns = 0;
    int64_t p50_ns = 0;
    int64_t p90_ns = 0;
    int64_t p95_ns = 0;
    int64_t p99_ns = 0;
  };
  Summary Summarize() const;

  /// Approximate quantile (same bucket-midpoint scheme as `Summarize`);
  /// exposed so exporters can publish arbitrary quantiles. 0 when empty.
  int64_t QuantileNs(double q) const { return Quantile(q); }

  /// Folds another histogram in (bucket-wise add); quantiles of the merged
  /// histogram are as accurate as of either input.
  void MergeFrom(const DurationHistogram& other);

  uint64_t count() const { return count_; }

 private:
  int64_t Quantile(double q) const;

  std::array<uint64_t, 64> buckets_{};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

/// Named counters and duration histograms for one recording session
/// (a query, a bench run, a shell session). Not thread-safe; install one
/// per thread via `ScopedMetrics`.
class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (created on first use).
  void Add(std::string_view name, uint64_t delta = 1);

  /// Current value of counter `name` (0 when never touched).
  uint64_t CounterValue(std::string_view name) const;

  /// Sets gauge `name` to `value`. Gauges are point-in-time readings
  /// (segment counts, health bits) — unlike counters they overwrite on Set
  /// and on merge (last writer wins), never accumulate.
  void Set(std::string_view name, uint64_t value);

  /// Current value of gauge `name` (0 when never set).
  uint64_t GaugeValue(std::string_view name) const;

  /// Records one duration sample into histogram `name`.
  void Record(std::string_view name, int64_t nanos);

  /// Adds every counter and histogram of `other` into this registry — how
  /// per-thread registries from a parallel fan-out land in the caller's
  /// registry (merge in a fixed order for deterministic totals).
  void MergeFrom(const MetricsRegistry& other);

  const std::map<std::string, uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, uint64_t, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, DurationHistogram, std::less<>>& histograms()
      const {
    return histograms_;
  }

  void Clear();

  /// One line per counter, then one per histogram (count/p50/p95/p99/max).
  std::string ToText() const;

  /// `{"counters":{...},"histograms":{"name":{"count":..,"sum_ns":..,
  /// "p50_ns":..,"p90_ns":..,"p95_ns":..,"p99_ns":..,"max_ns":..},...}}`.
  std::string ToJson() const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, uint64_t, std::less<>> gauges_;
  std::map<std::string, DurationHistogram, std::less<>> histograms_;
};

/// The registry installed for this thread, or nullptr (recording off).
MetricsRegistry* CurrentMetrics();

/// Installs `metrics` as the thread's current registry for the scope.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* metrics);
  ~ScopedMetrics();

  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Adds to a counter of the current registry; no-op when none installed.
void Count(std::string_view name, uint64_t delta = 1);

/// Sets a gauge of the current registry; no-op when none installed.
void Gauge(std::string_view name, uint64_t value);

/// RAII timer recording into a duration histogram of the registry that was
/// current at construction; no-op when none installed.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sqo::obs

#endif  // SQO_OBS_METRICS_H_
