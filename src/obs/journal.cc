#include "obs/journal.h"

#include <utility>

#include "common/context.h"
#include "common/failpoint.h"
#include "common/fileio.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace sqo::obs {

QueryJournal::QueryJournal(JournalOptions options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

uint64_t QueryJournal::Record(QueryEvent event) {
  const bool slow = options_.slow_threshold_ns > 0 &&
                    event.duration_ns >= options_.slow_threshold_ns;
  event.slow = slow;
  if (!slow) {
    // Routine events travel light; only offenders keep the full payload.
    event.profile_json.clear();
    event.trace_json.clear();
  }
  uint64_t sequence;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sequence = next_sequence_++;
    event.sequence = sequence;
    if (ring_.size() >= options_.capacity) {
      ring_.erase(ring_.begin());
      ++counters_.overwritten;
    }
    ring_.push_back(std::move(event));
    ++counters_.recorded;
    if (slow) ++counters_.slow;
  }
  Count("journal.recorded");
  if (slow) Count("journal.slow");
  return sequence;
}

std::vector<QueryEvent> QueryJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

sqo::Status QueryJournal::Flush(const std::string& path) {
  auto fail = [this](sqo::Status status) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.flush_failures;
    }
    Count("journal.flush_failures");
    return status;
  };
  if (auto s = failpoint::Check("journal.flush"); !s.ok()) {
    return fail(std::move(s));
  }
  if (auto s = CheckGovernance("journal.flush"); !s.ok()) {
    return fail(std::move(s));
  }

  // Serialize outside the lock so concurrent Record never blocks on I/O.
  std::string payload;
  uint64_t last_sequence = 0;
  uint64_t n_events = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const QueryEvent& event : ring_) {
      if (event.sequence <= flushed_through_) continue;
      payload += ToJsonl(event);
      payload += '\n';
      last_sequence = event.sequence;
      ++n_events;
    }
  }
  if (n_events == 0) return sqo::Status::Ok();

  auto file = fs::AppendFile::Open(path);
  if (!file.ok()) return fail(file.status());
  if (auto s = file->Append(payload); !s.ok()) return fail(std::move(s));
  if (auto s = file->Sync(); !s.ok()) return fail(std::move(s));

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (last_sequence > flushed_through_) flushed_through_ = last_sequence;
    counters_.flushed += n_events;
  }
  Count("journal.flushed", n_events);
  return sqo::Status::Ok();
}

QueryJournal::Counters QueryJournal::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

int64_t QueryJournal::slow_threshold_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.slow_threshold_ns;
}

void QueryJournal::set_slow_threshold_ns(int64_t threshold_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.slow_threshold_ns = threshold_ns;
}

std::string QueryJournal::ToJsonl(const QueryEvent& event) {
  JsonWriter w;
  w.BeginObject();
  w.Key("seq").UInt(event.sequence);
  w.Key("fingerprint").String(event.fingerprint);
  w.Key("query").String(event.query);
  w.Key("duration_ns").Int(event.duration_ns);
  w.Key("status").String(event.status);
  w.Key("degraded").Bool(event.degraded);
  w.Key("cancelled").Bool(event.cancelled);
  w.Key("contradiction").Bool(event.contradiction);
  w.Key("chosen_alternative").Int(event.chosen_alternative);
  w.Key("n_alternatives").UInt(event.n_alternatives);
  w.Key("stats").BeginObject();
  w.Key("objects_fetched").UInt(event.stats.objects_fetched);
  w.Key("extent_scans").UInt(event.stats.extent_scans);
  w.Key("index_probes").UInt(event.stats.index_probes);
  w.Key("relationship_traversals").UInt(event.stats.relationship_traversals);
  w.Key("method_invocations").UInt(event.stats.method_invocations);
  w.Key("comparisons").UInt(event.stats.comparisons);
  w.Key("negation_checks").UInt(event.stats.negation_checks);
  w.Key("tuples_emitted").UInt(event.stats.tuples_emitted);
  w.Key("results").UInt(event.stats.results);
  w.EndObject();
  w.Key("slow").Bool(event.slow);
  if (!event.profile_json.empty()) {
    // Already-serialized JSON: splice verbatim rather than re-escaping.
    w.Key("profile");
    w.Raw(event.profile_json);
  }
  if (!event.trace_json.empty()) {
    w.Key("trace");
    w.Raw(event.trace_json);
  }
  w.EndObject();
  return w.TakeString();
}

}  // namespace sqo::obs
