#ifndef SQO_OBS_EVAL_STATS_H_
#define SQO_OBS_EVAL_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sqo::obs {

class MetricsRegistry;

/// Instrumentation counters for one query evaluation. These are the
/// quantities the paper's optimizations improve — object fetches, join
/// work, method invocations — and the numbers EXPERIMENTS.md reports.
///
/// Lives in obs (not engine) so the optimizer pipeline can carry per-
/// alternative evaluation counters without depending on the engine;
/// `sqo::engine::EvalStats` remains an alias.
struct EvalStats {
  uint64_t objects_fetched = 0;          // class/struct rows materialized
  uint64_t extent_scans = 0;             // full extent enumerations started
  uint64_t index_probes = 0;             // hash-index lookups
  uint64_t relationship_traversals = 0;  // relationship/ASR edges visited
  uint64_t method_invocations = 0;       // registered method calls
  uint64_t comparisons = 0;              // value comparisons performed
  uint64_t negation_checks = 0;          // anti-join existence probes
  uint64_t tuples_emitted = 0;           // result tuples before dedup
  uint64_t results = 0;                  // distinct result tuples

  void Reset() { *this = EvalStats(); }

  EvalStats& operator+=(const EvalStats& other);

  /// Single-line summary for logs and bench output.
  std::string ToString() const;

  /// Merges every counter into `registry` under `<prefix><field>` (e.g.
  /// `eval.objects_fetched`) — how a MetricsRegistry absorbs evaluator
  /// work alongside the optimizer-side counters.
  void ExportTo(MetricsRegistry* registry, std::string_view prefix = "eval.") const;
};

}  // namespace sqo::obs

#endif  // SQO_OBS_EVAL_STATS_H_
