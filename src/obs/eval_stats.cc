#include "obs/eval_stats.h"

#include "common/strings.h"
#include "obs/metrics.h"

namespace sqo::obs {

EvalStats& EvalStats::operator+=(const EvalStats& other) {
  objects_fetched += other.objects_fetched;
  extent_scans += other.extent_scans;
  index_probes += other.index_probes;
  relationship_traversals += other.relationship_traversals;
  method_invocations += other.method_invocations;
  comparisons += other.comparisons;
  negation_checks += other.negation_checks;
  tuples_emitted += other.tuples_emitted;
  results += other.results;
  return *this;
}

std::string EvalStats::ToString() const {
  return sqo::StrFormat(
      "fetched=%llu scans=%llu probes=%llu traversals=%llu methods=%llu "
      "comparisons=%llu negchecks=%llu emitted=%llu results=%llu",
      static_cast<unsigned long long>(objects_fetched),
      static_cast<unsigned long long>(extent_scans),
      static_cast<unsigned long long>(index_probes),
      static_cast<unsigned long long>(relationship_traversals),
      static_cast<unsigned long long>(method_invocations),
      static_cast<unsigned long long>(comparisons),
      static_cast<unsigned long long>(negation_checks),
      static_cast<unsigned long long>(tuples_emitted),
      static_cast<unsigned long long>(results));
}

void EvalStats::ExportTo(MetricsRegistry* registry,
                         std::string_view prefix) const {
  if (registry == nullptr) return;
  const std::string p(prefix);
  registry->Add(p + "objects_fetched", objects_fetched);
  registry->Add(p + "extent_scans", extent_scans);
  registry->Add(p + "index_probes", index_probes);
  registry->Add(p + "relationship_traversals", relationship_traversals);
  registry->Add(p + "method_invocations", method_invocations);
  registry->Add(p + "comparisons", comparisons);
  registry->Add(p + "negation_checks", negation_checks);
  registry->Add(p + "tuples_emitted", tuples_emitted);
  registry->Add(p + "results", results);
}

}  // namespace sqo::obs
