#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "common/failpoint.h"
#include "common/strings.h"
#include "obs/json.h"

namespace sqo::obs {

namespace {

thread_local MetricsRegistry* g_current_metrics = nullptr;

/// Every failpoint trip lands in the current registry as `failpoint.trips`
/// plus a per-site `failpoint.<site>` counter. Installed once; the observer
/// pointer is atomic and zero-initialized, so ordering is benign.
[[maybe_unused]] const bool g_failpoint_observer_installed = [] {
  failpoint::SetTripObserver([](std::string_view site) {
    Count("failpoint.trips");
    Count("failpoint." + std::string(site));
  });
  return true;
}();

size_t BucketFor(int64_t nanos) {
  if (nanos <= 0) return 0;
  return static_cast<size_t>(std::bit_width(static_cast<uint64_t>(nanos)));
}

/// Geometric midpoint of bucket i's value range [2^(i-1), 2^i - 1].
int64_t BucketMidpoint(size_t i) {
  if (i == 0) return 0;
  const int64_t lo = int64_t{1} << (i - 1);
  const int64_t hi = (i >= 63) ? lo : (int64_t{1} << i) - 1;
  return lo + (hi - lo) / 2;
}

}  // namespace

void DurationHistogram::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  ++buckets_[BucketFor(nanos)];
  ++count_;
  sum_ += nanos;
  if (nanos > max_) max_ = nanos;
}

int64_t DurationHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative > rank) {
      // The top bucket's midpoint can overshoot the true maximum.
      return std::min(BucketMidpoint(i), max_);
    }
  }
  return max_;
}

void DurationHistogram::MergeFrom(const DurationHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

DurationHistogram::Summary DurationHistogram::Summarize() const {
  Summary s;
  s.count = count_;
  s.sum_ns = sum_;
  s.max_ns = max_;
  s.p50_ns = Quantile(0.50);
  s.p90_ns = Quantile(0.90);
  s.p95_ns = Quantile(0.95);
  s.p99_ns = Quantile(0.99);
  return s;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  // Gauges are point-in-time readings: the merged-in registry's reading is
  // newer, so it wins rather than accumulating.
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].MergeFrom(histogram);
  }
}

void MetricsRegistry::Add(std::string_view name, uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Set(std::string_view name, uint64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

uint64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

void MetricsRegistry::Record(std::string_view name, int64_t nanos) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), DurationHistogram()).first;
  }
  it->second.Record(nanos);
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += StrFormat("%-44s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges_) {
    out += StrFormat("%-44s %llu (gauge)\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, hist] : histograms_) {
    const DurationHistogram::Summary s = hist.Summarize();
    out += StrFormat(
        "%-44s count=%llu p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus\n",
        name.c_str(), static_cast<unsigned long long>(s.count),
        static_cast<double>(s.p50_ns) / 1e3, static_cast<double>(s.p95_ns) / 1e3,
        static_cast<double>(s.p99_ns) / 1e3,
        static_cast<double>(s.max_ns) / 1e3);
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters_) {
    w.Key(name).UInt(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges_) {
    w.Key(name).UInt(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : histograms_) {
    const DurationHistogram::Summary s = hist.Summarize();
    w.Key(name).BeginObject();
    w.Key("count").UInt(s.count);
    w.Key("sum_ns").Int(s.sum_ns);
    w.Key("p50_ns").Int(s.p50_ns);
    w.Key("p90_ns").Int(s.p90_ns);
    w.Key("p95_ns").Int(s.p95_ns);
    w.Key("p99_ns").Int(s.p99_ns);
    w.Key("max_ns").Int(s.max_ns);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

MetricsRegistry* CurrentMetrics() { return g_current_metrics; }

ScopedMetrics::ScopedMetrics(MetricsRegistry* metrics)
    : previous_(g_current_metrics) {
  g_current_metrics = metrics;
}

ScopedMetrics::~ScopedMetrics() { g_current_metrics = previous_; }

void Count(std::string_view name, uint64_t delta) {
  if (g_current_metrics != nullptr) g_current_metrics->Add(name, delta);
}

void Gauge(std::string_view name, uint64_t value) {
  if (g_current_metrics != nullptr) g_current_metrics->Set(name, value);
}

ScopedTimer::ScopedTimer(std::string_view name) : registry_(g_current_metrics) {
  if (registry_ != nullptr) {
    name_ = std::string(name);
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedTimer::~ScopedTimer() {
  if (registry_ != nullptr) {
    registry_->Record(name_,
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count());
  }
}

}  // namespace sqo::obs
