#ifndef SQO_OBS_EXPORT_H_
#define SQO_OBS_EXPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"

namespace sqo::obs {

/// Renders a metrics snapshot in the Prometheus text exposition format:
/// counters as `<ns>_<name>` counter samples, histograms as summaries with
/// `quantile` labels (0.5 / 0.9 / 0.99), `_sum` and `_count`. Metric names
/// are sanitized (`.` and other non-[a-zA-Z0-9_:] bytes become `_`);
/// duration quantiles and sums are emitted in seconds per Prometheus
/// convention, under `<name>_seconds`.
std::string ToPrometheusText(const MetricsRegistry& registry,
                             std::string_view metric_namespace = "sqo");

struct ExporterOptions {
  /// Target files; either may be empty to skip that format. Writes are
  /// atomic (temp + rename), so scrapers never observe a torn file.
  std::string json_path;
  std::string prometheus_path;

  /// Period of the background exporter thread started by `Start`.
  std::chrono::milliseconds period{1000};
};

/// On-demand and periodic snapshot exporter for a MetricsRegistry. The
/// registry is not thread-safe, so the exporter pulls copies through a
/// caller-supplied snapshot function (typically: lock your own mutex, copy
/// the registry, return it). Export failures are counted and swallowed by
/// the background loop — metrics exposition must never take the serving
/// path down (fail-open).
class PeriodicExporter {
 public:
  using SnapshotFn = std::function<MetricsRegistry()>;

  PeriodicExporter(ExporterOptions options, SnapshotFn snapshot);
  ~PeriodicExporter();  // stops the background thread if running

  PeriodicExporter(const PeriodicExporter&) = delete;
  PeriodicExporter& operator=(const PeriodicExporter&) = delete;

  /// One snapshot → file(s) export. Checks the `obs.export` failpoint and
  /// the installed ExecutionContext before touching the filesystem.
  sqo::Status ExportOnce();

  /// Starts the periodic background thread (no-op when already running).
  /// The thread exports every `options.period` until `Stop`; a failing
  /// export increments `failures()` and the loop continues.
  void Start();

  /// Stops and joins the background thread (no-op when not running).
  void Stop();

  bool running() const;
  uint64_t exports() const { return exports_.load(); }
  uint64_t failures() const { return failures_.load(); }

 private:
  void Loop();

  ExporterOptions options_;
  SnapshotFn snapshot_;

  std::atomic<uint64_t> exports_{0};
  std::atomic<uint64_t> failures_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;  // joinable iff running
};

/// Thread-safe latency/throughput meter: benches and the future server
/// layer record one sample per completed query and report distributions
/// (p50/p90/p99), not just totals.
class QpsMeter {
 public:
  QpsMeter();

  /// Records one completed query of the given latency.
  void Record(int64_t latency_ns);

  struct Snapshot {
    uint64_t count = 0;
    int64_t elapsed_ns = 0;  // since construction or last Reset
    double qps = 0.0;        // count / elapsed
    int64_t p50_ns = 0;
    int64_t p90_ns = 0;
    int64_t p99_ns = 0;
    int64_t max_ns = 0;
    int64_t mean_ns = 0;
  };
  Snapshot Summarize() const;

  /// Clears samples and restarts the elapsed-time window.
  void Reset();

 private:
  mutable std::mutex mu_;
  DurationHistogram histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sqo::obs

#endif  // SQO_OBS_EXPORT_H_
