#include "obs/export.h"

#include <utility>

#include "common/context.h"
#include "common/failpoint.h"
#include "common/fileio.h"
#include "common/strings.h"

namespace sqo::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// names ("optimize.alternatives") become underscored.
std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

double NsToSeconds(int64_t ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& registry,
                             std::string_view metric_namespace) {
  const std::string ns =
      metric_namespace.empty() ? "" : std::string(metric_namespace) + "_";
  std::string out;
  for (const auto& [name, value] : registry.counters()) {
    const std::string metric = ns + SanitizeMetricName(name);
    out += StrFormat("# TYPE %s counter\n", metric.c_str());
    out += StrFormat("%s %llu\n", metric.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string metric = ns + SanitizeMetricName(name);
    out += StrFormat("# TYPE %s gauge\n", metric.c_str());
    out += StrFormat("%s %llu\n", metric.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, hist] : registry.histograms()) {
    const DurationHistogram::Summary s = hist.Summarize();
    const std::string metric = ns + SanitizeMetricName(name) + "_seconds";
    out += StrFormat("# TYPE %s summary\n", metric.c_str());
    out += StrFormat("%s{quantile=\"0.5\"} %.9g\n", metric.c_str(),
                     NsToSeconds(s.p50_ns));
    out += StrFormat("%s{quantile=\"0.9\"} %.9g\n", metric.c_str(),
                     NsToSeconds(s.p90_ns));
    out += StrFormat("%s{quantile=\"0.99\"} %.9g\n", metric.c_str(),
                     NsToSeconds(s.p99_ns));
    out += StrFormat("%s_sum %.9g\n", metric.c_str(), NsToSeconds(s.sum_ns));
    out += StrFormat("%s_count %llu\n", metric.c_str(),
                     static_cast<unsigned long long>(s.count));
  }
  return out;
}

PeriodicExporter::PeriodicExporter(ExporterOptions options, SnapshotFn snapshot)
    : options_(std::move(options)), snapshot_(std::move(snapshot)) {}

PeriodicExporter::~PeriodicExporter() { Stop(); }

sqo::Status PeriodicExporter::ExportOnce() {
  auto fail = [this](sqo::Status status) {
    failures_.fetch_add(1);
    return status;
  };
  if (auto s = failpoint::Check("obs.export"); !s.ok()) {
    return fail(std::move(s));
  }
  if (auto s = CheckGovernance("obs.export"); !s.ok()) {
    return fail(std::move(s));
  }
  const MetricsRegistry snapshot = snapshot_();
  if (!options_.json_path.empty()) {
    if (auto s = fs::WriteFileAtomic(options_.json_path, snapshot.ToJson());
        !s.ok()) {
      return fail(std::move(s));
    }
  }
  if (!options_.prometheus_path.empty()) {
    if (auto s = fs::WriteFileAtomic(options_.prometheus_path,
                                     ToPrometheusText(snapshot));
        !s.ok()) {
      return fail(std::move(s));
    }
  }
  exports_.fetch_add(1);
  return sqo::Status::Ok();
}

void PeriodicExporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void PeriodicExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();  // join() leaves thread_ non-joinable, so Start can rearm
}

bool PeriodicExporter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_.joinable();
}

void PeriodicExporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.period, [this] { return stop_; })) break;
    // Export without holding the lock: a slow disk must not block Stop.
    lock.unlock();
    // Fail-open by design: the error was already counted in failures().
    (void)ExportOnce();
    lock.lock();
  }
}

QpsMeter::QpsMeter() : start_(std::chrono::steady_clock::now()) {}

void QpsMeter::Record(int64_t latency_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Record(latency_ns);
}

QpsMeter::Snapshot QpsMeter::Summarize() const {
  std::lock_guard<std::mutex> lock(mu_);
  const DurationHistogram::Summary s = histogram_.Summarize();
  Snapshot out;
  out.count = s.count;
  out.elapsed_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  out.qps = out.elapsed_ns > 0
                ? static_cast<double>(s.count) /
                      (static_cast<double>(out.elapsed_ns) / 1e9)
                : 0.0;
  out.p50_ns = s.p50_ns;
  out.p90_ns = s.p90_ns;
  out.p99_ns = s.p99_ns;
  out.max_ns = s.max_ns;
  out.mean_ns =
      s.count > 0 ? s.sum_ns / static_cast<int64_t>(s.count) : 0;
  return out;
}

void QpsMeter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_ = DurationHistogram();
  start_ = std::chrono::steady_clock::now();
}

}  // namespace sqo::obs
