#include "obs/json.h"

#include <cctype>
#include <cmath>

#include "common/strings.h"

namespace sqo::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the comma (if any) was written with the key
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    out_ += StrFormat("%.17g", value);
  } else {
    out_ += "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  sqo::Result<JsonValue> Parse() {
    SQO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return sqo::ParseError("trailing characters after JSON document at " +
                             std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  sqo::Status Expect(char c) {
    if (!Consume(c)) {
      return sqo::ParseError(std::string("expected '") + c + "' at offset " +
                             std::to_string(pos_));
    }
    return sqo::Status::Ok();
  }

  sqo::Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return sqo::ParseError("unexpected end of JSON");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  sqo::Result<JsonValue> ParseObject() {
    SQO_RETURN_IF_ERROR(Expect('{'));
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    if (Consume('}')) return out;
    while (true) {
      SQO_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SQO_RETURN_IF_ERROR(Expect(':'));
      SQO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.members.emplace_back(std::move(key.string_value), std::move(value));
      if (Consume(',')) continue;
      SQO_RETURN_IF_ERROR(Expect('}'));
      return out;
    }
  }

  sqo::Result<JsonValue> ParseArray() {
    SQO_RETURN_IF_ERROR(Expect('['));
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    if (Consume(']')) return out;
    while (true) {
      SQO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.items.push_back(std::move(value));
      if (Consume(',')) continue;
      SQO_RETURN_IF_ERROR(Expect(']'));
      return out;
    }
  }

  sqo::Result<JsonValue> ParseString() {
    SQO_RETURN_IF_ERROR(Expect('"'));
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.string_value += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.string_value += e;
          break;
        case 'b':
          out.string_value += '\b';
          break;
        case 'f':
          out.string_value += '\f';
          break;
        case 'n':
          out.string_value += '\n';
          break;
        case 'r':
          out.string_value += '\r';
          break;
        case 't':
          out.string_value += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return sqo::ParseError("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return sqo::ParseError("invalid \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair handling; the exporters never
          // emit any).
          if (code < 0x80) {
            out.string_value += static_cast<char>(code);
          } else if (code < 0x800) {
            out.string_value += static_cast<char>(0xC0 | (code >> 6));
            out.string_value += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out.string_value += static_cast<char>(0xE0 | (code >> 12));
            out.string_value += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out.string_value += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return sqo::ParseError(std::string("invalid escape \\") + e);
      }
    }
    return sqo::ParseError("unterminated JSON string");
  }

  sqo::Result<JsonValue> ParseBool() {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      out.bool_value = true;
      return out;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      out.bool_value = false;
      return out;
    }
    return sqo::ParseError("invalid literal at offset " + std::to_string(pos_));
  }

  sqo::Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return sqo::ParseError("invalid literal at offset " + std::to_string(pos_));
  }

  sqo::Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    auto accept = [&](auto pred) {
      while (pos_ < text_.size() && pred(text_[pos_])) ++pos_;
    };
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    auto digit = [](char c) { return c >= '0' && c <= '9'; };
    accept(digit);
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      accept(digit);
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      accept(digit);
    }
    if (pos_ == start) {
      return sqo::ParseError("invalid JSON value at offset " +
                             std::to_string(pos_));
    }
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    try {
      out.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return sqo::ParseError("unparseable number at offset " +
                             std::to_string(start));
    }
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

sqo::Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace sqo::obs
