#ifndef SQO_OBS_JOURNAL_H_
#define SQO_OBS_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/eval_stats.h"

namespace sqo::obs {

/// One completed query, as the serving layer sees it: identity, outcome,
/// cost. `profile_json` / `trace_json` carry the full operator profile and
/// optimizer trace but are retained only for slow queries (see
/// `JournalOptions::slow_threshold_ns`) — routine events stay small so the
/// ring can hold thousands of them.
struct QueryEvent {
  uint64_t sequence = 0;  // assigned by the journal, strictly increasing

  std::string fingerprint;  // hex fingerprint of the (translated) query
  std::string query;        // source text (OQL or DATALOG)

  int64_t duration_ns = 0;  // end-to-end (optimize + evaluate)
  std::string status = "ok";

  bool degraded = false;       // pipeline fell back to the original query
  bool cancelled = false;      // governance cancellation/deadline hit
  bool contradiction = false;  // proven empty, never evaluated

  int chosen_alternative = 0;
  uint64_t n_alternatives = 0;
  EvalStats stats;

  bool slow = false;         // duration >= the journal's threshold
  std::string profile_json;  // operator profile tree; slow queries only
  std::string trace_json;    // optimizer span trace; slow queries only
};

struct JournalOptions {
  /// Ring capacity in events; the oldest event is overwritten when full.
  size_t capacity = 256;

  /// Queries at or above this duration are marked slow and keep their full
  /// profile/trace payloads (0 disables slow-query capture: payloads are
  /// always dropped).
  int64_t slow_threshold_ns = 0;
};

/// Thread-safe ring buffer of query-completion events with incremental
/// JSONL flushing — the structured log the roadmap's serving layer tails.
/// Recording never fails and never blocks on I/O; `Flush` is the only
/// syscall path and is fail-open: a failed flush leaves every unflushed
/// event in place for the next attempt.
class QueryJournal {
 public:
  explicit QueryJournal(JournalOptions options = {});

  /// Records one event (assigning its sequence number and slow flag) and
  /// returns the sequence. Counts `journal.recorded` / `journal.slow` /
  /// `journal.overwritten` on the calling thread's metrics registry.
  uint64_t Record(QueryEvent event);

  /// All retained events, oldest first.
  std::vector<QueryEvent> Snapshot() const;

  /// Appends every event not yet flushed to `path`, one JSON object per
  /// line, and fsyncs. On any error (including the `journal.flush`
  /// failpoint and governance checks) no event is marked flushed — the
  /// journal itself stays fully usable (fail-open).
  sqo::Status Flush(const std::string& path);

  struct Counters {
    uint64_t recorded = 0;
    uint64_t overwritten = 0;  // events evicted by ring wrap-around
    uint64_t slow = 0;
    uint64_t flushed = 0;       // events successfully written out
    uint64_t flush_failures = 0;
  };
  Counters counters() const;

  int64_t slow_threshold_ns() const;
  void set_slow_threshold_ns(int64_t threshold_ns);

  size_t capacity() const { return options_.capacity; }

  /// One JSONL line (no trailing newline) for `event`.
  static std::string ToJsonl(const QueryEvent& event);

 private:
  JournalOptions options_;

  mutable std::mutex mu_;
  std::vector<QueryEvent> ring_;  // ordered oldest..newest
  uint64_t next_sequence_ = 1;
  uint64_t flushed_through_ = 0;  // highest sequence written out
  Counters counters_;
};

}  // namespace sqo::obs

#endif  // SQO_OBS_JOURNAL_H_
