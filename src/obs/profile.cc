#include "obs/profile.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/json.h"

namespace sqo::obs {

namespace {

std::string FormatNs(int64_t ns) {
  if (ns < 10'000) return StrFormat("%lldns", static_cast<long long>(ns));
  if (ns < 10'000'000) {
    return StrFormat("%.1fus", static_cast<double>(ns) / 1e3);
  }
  return StrFormat("%.2fms", static_cast<double>(ns) / 1e6);
}

}  // namespace

void QueryProfile::FinalizeSelfTimes() {
  std::vector<int64_t> child_total(nodes.size(), 0);
  for (const ProfileNode& n : nodes) {
    if (n.parent >= 0 && static_cast<size_t>(n.parent) < nodes.size()) {
      child_total[n.parent] += n.total_ns;
    }
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].self_ns = std::max<int64_t>(0, nodes[i].total_ns - child_total[i]);
  }
}

std::string QueryProfile::ToText() const {
  std::string out = StrFormat("profile: %s total", FormatNs(total_ns).c_str());
  if (planned_cost >= 0) {
    out += StrFormat(" (planned cost %.1f, planned rows %.1f)", planned_cost,
                     planned_rows);
  }
  out += "\n";

  // Children of each node, guards first so they read as part of their scan
  // rather than pushing the pipeline successor's subtree away.
  std::vector<std::vector<int>> children(nodes.size());
  std::vector<int> roots;
  for (const ProfileNode& n : nodes) {
    if (n.parent < 0) {
      roots.push_back(n.id);
    } else {
      children[n.parent].push_back(n.id);
    }
  }
  for (std::vector<int>& c : children) {
    std::stable_sort(c.begin(), c.end(), [&](int a, int b) {
      const bool ga = nodes[a].op == "guard";
      const bool gb = nodes[b].op == "guard";
      if (ga != gb) return ga;
      return a < b;
    });
  }

  // Iterative pre-order walk (the pipeline chain is as deep as the plan is
  // long, so recursion depth == literal count; still, avoid it).
  std::vector<std::pair<int, int>> stack;  // (node, depth)
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const ProfileNode& n = nodes[id];
    out += std::string(2 * (depth + 1), ' ');
    if (n.op.empty()) {
      out += StrFormat("(not executed) %s", n.relation.c_str());
      if (!n.detail.empty()) out += StrFormat("  plan: %s", n.detail.c_str());
      out += "\n";
    } else {
      out += StrFormat("%s %s  rows=%llu/%llu", n.op.c_str(),
                       n.relation.c_str(),
                       static_cast<unsigned long long>(n.rows_in),
                       static_cast<unsigned long long>(n.rows_out));
      if (n.est_rows >= 0) out += StrFormat(" est=%.1f", n.est_rows);
      out += StrFormat("  self=%s", FormatNs(n.self_ns).c_str());
      if (n.index_used) out += "  [indexed]";
      if (!n.attribution.empty()) {
        out += StrFormat("  <- %s", n.attribution.c_str());
      }
      out += "\n";
    }
    for (auto it = children[id].rbegin(); it != children[id].rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }

  for (const std::string& e : eliminated) {
    out += StrFormat("  eliminated: %s\n", e.c_str());
  }
  out += StrFormat("  stats: %s\n", stats.ToString().c_str());
  return out;
}

std::string QueryProfile::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("total_ns").Int(total_ns);
  w.Key("planned_cost").Double(planned_cost);
  w.Key("planned_rows").Double(planned_rows);
  w.Key("stats").BeginObject();
  w.Key("objects_fetched").UInt(stats.objects_fetched);
  w.Key("extent_scans").UInt(stats.extent_scans);
  w.Key("index_probes").UInt(stats.index_probes);
  w.Key("relationship_traversals").UInt(stats.relationship_traversals);
  w.Key("method_invocations").UInt(stats.method_invocations);
  w.Key("comparisons").UInt(stats.comparisons);
  w.Key("negation_checks").UInt(stats.negation_checks);
  w.Key("tuples_emitted").UInt(stats.tuples_emitted);
  w.Key("results").UInt(stats.results);
  w.EndObject();
  w.Key("eliminated").BeginArray();
  for (const std::string& e : eliminated) w.String(e);
  w.EndArray();
  w.Key("nodes").BeginArray();
  for (const ProfileNode& n : nodes) {
    w.BeginObject();
    w.Key("id").Int(n.id);
    w.Key("parent").Int(n.parent);
    w.Key("op").String(n.op);
    w.Key("relation").String(n.relation);
    if (!n.detail.empty()) w.Key("detail").String(n.detail);
    if (!n.attribution.empty()) w.Key("attribution").String(n.attribution);
    w.Key("literal_index").Int(n.literal_index);
    w.Key("rows_in").UInt(n.rows_in);
    w.Key("rows_out").UInt(n.rows_out);
    if (n.est_rows >= 0) w.Key("est_rows").Double(n.est_rows);
    w.Key("total_ns").Int(n.total_ns);
    w.Key("self_ns").Int(n.self_ns);
    w.Key("index_used").Bool(n.index_used);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace sqo::obs
