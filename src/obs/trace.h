#ifndef SQO_OBS_TRACE_H_
#define SQO_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sqo::obs {

/// One recorded span. Spans form a tree via `parent` (0 = root); ids are
/// 1-based and assigned in begin order, so a span's parent always precedes
/// it in the tracer's span vector.
struct SpanRecord {
  uint32_t id = 0;
  uint32_t parent = 0;
  std::string name;
  int64_t start_ns = 0;  // offset from the tracer's epoch
  int64_t dur_ns = -1;   // -1 while the span is still open
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Low-overhead trace collector for the Figure-2 pipeline phases. Spans
/// nest per tracer (the library is single-threaded per query; use one
/// tracer per thread). Timing uses `steady_clock`; records accumulate
/// until `Clear()`.
///
/// The tracer is *pull*-installed: instrumentation sites construct `Span`
/// objects, which are no-ops unless a tracer is installed for the current
/// thread via `ScopedTracer`. With none installed the cost per site is one
/// thread-local load and a branch ("null tracer"). Defining
/// `SQO_OBS_DISABLED` at compile time removes even that.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  /// Opens a span as a child of the innermost open span. Returns its id.
  uint32_t BeginSpan(std::string_view name);

  /// Closes span `id` (and any forgotten descendants still open).
  void EndSpan(uint32_t id);

  /// Attaches a key/value tag to span `id`.
  void Tag(uint32_t id, std::string_view key, std::string_view value);

  void Clear();

  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Indented tree with per-span durations and tags, for terminal output.
  std::string ToText() const;

  /// `{"spans":[{"id":..,"parent":..,"name":..,"start_ns":..,"dur_ns":..,
  /// "tags":{..}},...]}`.
  std::string ToJson() const;

 private:
  int64_t Now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecord> spans_;
  std::vector<uint32_t> open_;  // stack of open span ids
};

/// The tracer installed for this thread, or nullptr ("null tracer").
Tracer* CurrentTracer();

/// Installs `tracer` as the current tracer for this thread for the scope's
/// lifetime, restoring the previous one on destruction. Pass nullptr to
/// force-disable tracing within a scope.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();

  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

#ifndef SQO_OBS_DISABLED

/// RAII scoped span against the thread's current tracer. Cheap no-op when
/// no tracer is installed.
class Span {
 public:
  explicit Span(std::string_view name) : tracer_(CurrentTracer()) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(name);
  }
  ~Span() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return tracer_ != nullptr; }

  void Tag(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->Tag(id_, key, value);
  }
  void Tag(std::string_view key, int64_t value) {
    if (tracer_ != nullptr) tracer_->Tag(id_, key, std::to_string(value));
  }
  void Tag(std::string_view key, uint64_t value) {
    if (tracer_ != nullptr) tracer_->Tag(id_, key, std::to_string(value));
  }

 private:
  Tracer* tracer_;
  uint32_t id_ = 0;
};

#else  // SQO_OBS_DISABLED

class Span {
 public:
  explicit Span(std::string_view) {}
  bool active() const { return false; }
  void Tag(std::string_view, std::string_view) {}
  void Tag(std::string_view, int64_t) {}
  void Tag(std::string_view, uint64_t) {}
};

#endif  // SQO_OBS_DISABLED

}  // namespace sqo::obs

#endif  // SQO_OBS_TRACE_H_
