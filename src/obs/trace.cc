#include "obs/trace.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/json.h"

namespace sqo::obs {

namespace {

thread_local Tracer* g_current_tracer = nullptr;

/// Renders a nanosecond duration with a readable unit.
std::string FormatDuration(int64_t ns) {
  if (ns < 0) return "open";
  if (ns < 10'000) return StrFormat("%lldns", static_cast<long long>(ns));
  if (ns < 10'000'000) return StrFormat("%.1fus", static_cast<double>(ns) / 1e3);
  if (ns < 10'000'000'000) {
    return StrFormat("%.1fms", static_cast<double>(ns) / 1e6);
  }
  return StrFormat("%.2fs", static_cast<double>(ns) / 1e9);
}

}  // namespace

Tracer* CurrentTracer() { return g_current_tracer; }

ScopedTracer::ScopedTracer(Tracer* tracer) : previous_(g_current_tracer) {
  g_current_tracer = tracer;
}

ScopedTracer::~ScopedTracer() { g_current_tracer = previous_; }

uint32_t Tracer::BeginSpan(std::string_view name) {
  SpanRecord record;
  record.id = static_cast<uint32_t>(spans_.size() + 1);
  record.parent = open_.empty() ? 0 : open_.back();
  record.name = std::string(name);
  record.start_ns = Now();
  spans_.push_back(std::move(record));
  open_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::EndSpan(uint32_t id) {
  if (id == 0 || id > spans_.size()) return;
  if (std::find(open_.begin(), open_.end(), id) == open_.end()) return;
  const int64_t now = Now();
  // Close any descendants left open (defensive: a span that escaped its
  // scope), then the span itself.
  while (!open_.empty()) {
    const uint32_t top = open_.back();
    open_.pop_back();
    SpanRecord& record = spans_[top - 1];
    if (record.dur_ns < 0) record.dur_ns = now - record.start_ns;
    if (top == id) return;
  }
}

void Tracer::Tag(uint32_t id, std::string_view key, std::string_view value) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].tags.emplace_back(std::string(key), std::string(value));
}

void Tracer::Clear() {
  spans_.clear();
  open_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::string Tracer::ToText() const {
  // Depth via parent links; parents always precede children.
  std::vector<int> depth(spans_.size(), 0);
  size_t widest = 0;
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    if (s.parent != 0) depth[i] = depth[s.parent - 1] + 1;
    widest = std::max(widest, s.name.size() + 2 * static_cast<size_t>(depth[i]));
  }
  std::string out;
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    std::string line(2 * static_cast<size_t>(depth[i]), ' ');
    line += s.name;
    line.append(widest + 2 > line.size() ? widest + 2 - line.size() : 1, ' ');
    line += FormatDuration(s.dur_ns);
    for (const auto& [k, v] : s.tags) {
      line += "  " + k + "=" + v;
    }
    out += line + "\n";
  }
  return out;
}

std::string Tracer::ToJson() const {
  JsonWriter w;
  w.BeginObject().Key("spans").BeginArray();
  for (const SpanRecord& s : spans_) {
    w.BeginObject();
    w.Key("id").UInt(s.id);
    w.Key("parent").UInt(s.parent);
    w.Key("name").String(s.name);
    w.Key("start_ns").Int(s.start_ns);
    w.Key("dur_ns").Int(s.dur_ns);
    if (!s.tags.empty()) {
      w.Key("tags").BeginObject();
      for (const auto& [k, v] : s.tags) w.Key(k).String(v);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray().EndObject();
  return w.TakeString();
}

}  // namespace sqo::obs
