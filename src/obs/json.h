#ifndef SQO_OBS_JSON_H_
#define SQO_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sqo::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

/// Minimal streaming JSON writer: explicit structure calls, automatic comma
/// placement. Misuse (e.g. a value without a pending key inside an object)
/// is not diagnosed — this is a trusted internal serializer, not a codec.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; the next value call is its value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices an already-serialized JSON value verbatim (no re-escaping).
  /// The caller guarantees `json` is one complete, valid JSON value.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true until its first element is written.
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// Parsed JSON document node. Numbers are kept as doubles (sufficient for
/// the duration/counter records this library emits).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> items;                            // kArray

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Strict recursive-descent parse of a complete JSON document (trailing
/// garbage is an error). Exists so tests can round-trip the exporters'
/// output; not a general-purpose codec.
sqo::Result<JsonValue> ParseJson(std::string_view text);

}  // namespace sqo::obs

#endif  // SQO_OBS_JSON_H_
