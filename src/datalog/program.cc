#include "datalog/program.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace sqo::datalog {

sqo::Result<Program> Program::Create(std::vector<Clause> clauses,
                                     const RelationCatalog* catalog,
                                     std::vector<std::string> exempt_predicates) {
  Program program(catalog, std::move(exempt_predicates));
  for (Clause& clause : clauses) {
    SQO_RETURN_IF_ERROR(program.Append(std::move(clause)));
  }
  return program;
}

sqo::Status Program::Validate(const Clause& clause) const {
  auto describe = [&clause]() {
    return clause.label.empty() ? clause.ToString() : clause.label;
  };

  // Predicate atoms must be cataloged with matching arity.
  auto check_atom = [&](const Atom& atom) -> sqo::Status {
    if (!atom.is_predicate()) return sqo::Status::Ok();
    if (std::find(exempt_.begin(), exempt_.end(), atom.predicate()) !=
        exempt_.end()) {
      return sqo::Status::Ok();
    }
    if (catalog_ == nullptr) return sqo::Status::Ok();
    const RelationSignature* sig = catalog_->Find(atom.predicate());
    if (sig == nullptr) {
      return sqo::SemanticError("clause '" + describe() +
                                "' uses unknown relation '" + atom.predicate() +
                                "'");
    }
    if (sig->arity() != atom.arity()) {
      return sqo::SemanticError(
          "clause '" + describe() + "': relation '" + atom.predicate() +
          "' has arity " + std::to_string(sig->arity()) + ", atom has " +
          std::to_string(atom.arity()));
    }
    return sqo::Status::Ok();
  };
  if (clause.head.has_value()) SQO_RETURN_IF_ERROR(check_atom(clause.head->atom));
  for (const Literal& lit : clause.body) {
    SQO_RETURN_IF_ERROR(check_atom(lit.atom));
  }

  // Range restriction over the body.
  std::set<std::string> positive_vars;
  for (const Literal& lit : clause.body) {
    if (lit.positive && lit.atom.is_predicate()) {
      std::vector<std::string> vars;
      lit.atom.CollectVariables(&vars);
      positive_vars.insert(vars.begin(), vars.end());
    }
  }
  for (const Literal& lit : clause.body) {
    if (!lit.atom.is_comparison()) continue;
    std::vector<std::string> vars;
    lit.atom.CollectVariables(&vars);
    for (const std::string& v : vars) {
      if (positive_vars.count(v) == 0) {
        return sqo::SemanticError("clause '" + describe() +
                                  "' is not range-restricted: variable '" + v +
                                  "' occurs only in evaluable atoms");
      }
    }
  }
  return sqo::Status::Ok();
}

sqo::Status Program::Append(Clause clause) {
  SQO_RETURN_IF_ERROR(Validate(clause));
  if (!clause.label.empty() && FindLabel(clause.label) != nullptr) {
    return sqo::SemanticError("duplicate clause label '" + clause.label + "'");
  }
  clauses_.push_back(std::move(clause));
  return sqo::Status::Ok();
}

std::vector<const Clause*> Program::WithLabelPrefix(
    std::string_view prefix) const {
  std::vector<const Clause*> out;
  for (const Clause& clause : clauses_) {
    if (sqo::StartsWith(clause.label, prefix)) out.push_back(&clause);
  }
  return out;
}

const Clause* Program::FindLabel(std::string_view label) const {
  for (const Clause& clause : clauses_) {
    if (clause.label == label) return &clause;
  }
  return nullptr;
}

std::string Program::ToString() const {
  std::string out;
  for (const Clause& clause : clauses_) {
    if (!clause.label.empty()) out += clause.label + ": ";
    out += clause.ToString() + "\n";
  }
  return out;
}

}  // namespace sqo::datalog
