#include "datalog/unify.h"

namespace sqo::datalog {

bool UnifyTerms(const Term& a, const Term& b, Substitution* subst) {
  Term ra = subst->Apply(a);
  Term rb = subst->Apply(b);
  if (ra == rb) return true;
  if (ra.is_variable()) {
    subst->Bind(ra.var_symbol(), rb);
    return true;
  }
  if (rb.is_variable()) {
    subst->Bind(rb.var_symbol(), ra);
    return true;
  }
  return false;  // distinct constants
}

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst) {
  if (!a.is_predicate() || !b.is_predicate()) return false;
  if (a.predicate_symbol() != b.predicate_symbol() || a.arity() != b.arity()) {
    return false;
  }
  for (size_t i = 0; i < a.arity(); ++i) {
    if (!UnifyTerms(a.args()[i], b.args()[i], subst)) return false;
  }
  return true;
}

bool Matcher::MatchTerm(const Term& pattern, const Term& target) {
  Term rp = subst_.Apply(pattern);
  if (rp.is_variable() && bindable_->count(rp.var_symbol()) > 0) {
    if (rp == target) return true;
    subst_.Bind(rp.var_symbol(), target);
    trail_.push_back(rp.var_symbol());
    return true;
  }
  // Frozen variable or constant: must be identical to the target, or
  // equivalent under the caller-supplied background theory.
  if (rp == target) return true;
  return frozen_equiv_ != nullptr && frozen_equiv_(rp, target);
}

bool Matcher::MatchAtom(const Atom& pattern, const Atom& target) {
  if (pattern.is_comparison() != target.is_comparison()) return false;
  if (pattern.is_comparison()) {
    if (pattern.op() != target.op()) return false;
  } else {
    if (pattern.predicate_symbol() != target.predicate_symbol() ||
        pattern.arity() != target.arity()) {
      return false;
    }
  }
  size_t mark = Mark();
  for (size_t i = 0; i < pattern.arity(); ++i) {
    if (!MatchTerm(pattern.args()[i], target.args()[i])) {
      RollbackTo(mark);
      return false;
    }
  }
  return true;
}

bool Matcher::MatchLiteral(const Literal& pattern, const Literal& target) {
  if (pattern.positive != target.positive) return false;
  return MatchAtom(pattern.atom, target.atom);
}

void Matcher::RollbackTo(size_t mark) {
  while (trail_.size() > mark) {
    // Rebind-free trail: each trail entry was unbound before, so erasing
    // restores the prior state exactly (Substitution exposes EraseBinding
    // for the matcher's use).
    subst_.EraseBinding(trail_.back());
    trail_.pop_back();
  }
}

}  // namespace sqo::datalog
