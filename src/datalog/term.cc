#include "datalog/term.h"

namespace sqo::datalog {

bool Term::operator==(const Term& other) const {
  if (is_variable() != other.is_variable()) return false;
  if (is_variable()) return var_symbol() == other.var_symbol();
  return constant().Equals(other.constant());
}

bool Term::operator<(const Term& other) const {
  if (is_variable() != other.is_variable()) return is_variable();
  // Lexicographic on the text (not symbol id) so canonical orders stay
  // deterministic across runs regardless of interning order.
  if (is_variable()) return var_symbol() < other.var_symbol();
  return sqo::Value::TotalOrder(constant(), other.constant());
}

size_t Term::Hash() const {
  if (is_variable()) return var_symbol().hash() * 31 + 1;
  return constant().Hash() * 31 + 2;
}

std::string Term::ToString() const {
  if (is_variable()) return var_name();
  return constant().ToString();
}

}  // namespace sqo::datalog
