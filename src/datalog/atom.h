#ifndef SQO_DATALOG_ATOM_H_
#define SQO_DATALOG_ATOM_H_

#include <string>
#include <vector>

#include "common/cmp.h"
#include "common/interner.h"
#include "datalog/term.h"

namespace sqo::datalog {

/// Comparison operators of evaluable ("built-in") atoms: X = Y, A θ k, A θ B
/// in the paper's notation. Shared with the OQL surface syntax.
using sqo::CmpOp;
using sqo::CmpOpSymbol;
using sqo::EvalCmp;
using sqo::FlipOp;
using sqo::NegateOp;

/// An atom: either a predicate atom `p(t1, ..., tn)` over a database
/// relation, or an evaluable comparison `t1 θ t2`.
class Atom {
 public:
  /// Creates a predicate atom. The predicate name is interned, so
  /// predicate comparisons downstream are pointer compares.
  static Atom Pred(std::string_view predicate, std::vector<Term> args) {
    return Pred(Intern(predicate), std::move(args));
  }
  static Atom Pred(Symbol predicate, std::vector<Term> args) {
    Atom a;
    a.predicate_ = predicate;
    a.args_ = std::move(args);
    a.is_comparison_ = false;
    return a;
  }

  /// Creates an evaluable comparison atom `lhs op rhs`.
  static Atom Comparison(CmpOp op, Term lhs, Term rhs) {
    Atom a;
    a.is_comparison_ = true;
    a.op_ = op;
    a.args_ = {std::move(lhs), std::move(rhs)};
    return a;
  }

  bool is_comparison() const { return is_comparison_; }
  bool is_predicate() const { return !is_comparison_; }

  /// Predicate name. Requires is_predicate().
  const std::string& predicate() const { return predicate_.str(); }

  /// Interned predicate name. Requires is_predicate().
  Symbol predicate_symbol() const { return predicate_; }

  /// Comparison operator. Requires is_comparison().
  CmpOp op() const { return op_; }
  const Term& lhs() const { return args_[0]; }
  const Term& rhs() const { return args_[1]; }

  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>& mutable_args() { return args_; }
  size_t arity() const { return args_.size(); }

  /// Collects the distinct variable names occurring in this atom, in order
  /// of first occurrence, appending to `out` (no duplicates added).
  void CollectVariables(std::vector<std::string>* out) const;

  /// Same, as interned symbols (no string copies — hot-path variant).
  void CollectVariables(std::vector<Symbol>* out) const;

  bool operator==(const Atom& other) const;
  bool operator!=(const Atom& other) const { return !(*this == other); }
  size_t Hash() const;

  /// `p(X, 3)` or `X < 3`.
  std::string ToString() const;

 private:
  Atom() = default;

  bool is_comparison_ = false;
  Symbol predicate_;       // the empty symbol for comparisons
  CmpOp op_ = CmpOp::kEq;  // meaningful for comparisons only
  std::vector<Term> args_;
};

/// A literal: an atom with a polarity. Negative predicate literals
/// (¬c(X,...)) appear in queries via scope reduction (paper §5.2) and in
/// contrapositive integrity constraints (IC6'). Negative comparison literals
/// are normalized away at construction time by flipping the operator, so a
/// well-formed literal is negative only if its atom is a predicate atom.
struct Literal {
  bool positive = true;
  Atom atom;

  Literal() : atom(Atom::Pred("", {})) {}
  Literal(bool pos, Atom a);

  /// Positive literal shorthand.
  static Literal Pos(Atom a) { return Literal(true, std::move(a)); }
  /// Negative literal shorthand (comparisons get normalized to positive).
  static Literal Neg(Atom a) { return Literal(false, std::move(a)); }

  /// The logical complement: ¬L. For comparisons this flips the operator.
  Literal Complement() const;

  bool operator==(const Literal& other) const {
    return positive == other.positive && atom == other.atom;
  }
  bool operator!=(const Literal& other) const { return !(*this == other); }
  size_t Hash() const { return atom.Hash() * 2 + (positive ? 1 : 0); }

  /// `p(X)` or `not p(X)` or `X < 3`.
  std::string ToString() const;
};

struct LiteralHash {
  size_t operator()(const Literal& l) const { return l.Hash(); }
};

}  // namespace sqo::datalog

#endif  // SQO_DATALOG_ATOM_H_
