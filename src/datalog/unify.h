#ifndef SQO_DATALOG_UNIFY_H_
#define SQO_DATALOG_UNIFY_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "datalog/atom.h"
#include "datalog/substitution.h"
#include "datalog/term.h"

namespace sqo::datalog {

/// Two-way unification of terms under an accumulated substitution. On
/// success extends `subst` in place and returns true; on failure `subst` may
/// contain partial bindings (callers snapshot and restore, or work on a
/// copy). With no function symbols, unification is linear and needs no
/// occurs check.
bool UnifyTerms(const Term& a, const Term& b, Substitution* subst);

/// Two-way unification of predicate atoms (same predicate, same arity,
/// argument-wise). Comparison atoms are not unified here — semantic
/// comparison reasoning lives in sqo::solver.
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst);

/// One-way (θ-subsumption) matcher: only variables in the declared
/// `bindable` set may be bound; every other variable is frozen and behaves
/// as a constant. Used for residue computation (IC variables bind against a
/// relation template) and residue application (residue variables bind
/// against query terms).
///
/// Supports chronological backtracking: `Mark()` snapshots the binding
/// trail, `RollbackTo()` undoes bindings made since a mark.
class Matcher {
 public:
  /// Optional equivalence test for frozen-vs-frozen term mismatches:
  /// lets callers match modulo a background theory (the optimizer passes
  /// query-implied equality, so a key residue can match `faculty(Z, Name)`
  /// against `faculty(W, Name2)` when the query asserts Name = Name2).
  using FrozenEquiv = std::function<bool(const Term&, const Term&)>;

  /// `bindable` is the set of variable names that may receive bindings.
  explicit Matcher(const std::set<std::string>& bindable) {
    for (const std::string& name : bindable) owned_bindable_.insert(Intern(name));
    bindable_ = &owned_bindable_;
  }

  /// Non-owning fast path: `bindable` must outlive the matcher. Residue
  /// application constructs one matcher per (residue, anchor) attempt, so
  /// borrowing the residue's precomputed symbol set skips a set copy on the
  /// optimizer's hottest path. A factory (not a constructor) so brace-init
  /// `Matcher({...})` never silently selects a null pointer.
  static Matcher Borrowing(const SymbolSet* bindable) {
    return Matcher(bindable, 0);
  }

  // bindable_ may point at owned_bindable_; copying/moving would leave it
  // dangling, and no caller needs either.
  Matcher(const Matcher&) = delete;
  Matcher& operator=(const Matcher&) = delete;

  void set_frozen_equiv(FrozenEquiv equiv) { frozen_equiv_ = std::move(equiv); }

  /// Matches pattern term against a frozen target term.
  bool MatchTerm(const Term& pattern, const Term& target);

  /// Matches a pattern atom against a frozen target atom: predicates must
  /// agree by name/arity; comparisons must agree by operator. (Semantic
  /// implication between different comparison operators is the solver's
  /// job, not the matcher's.)
  bool MatchAtom(const Atom& pattern, const Atom& target);

  /// Matches literals: polarities must agree.
  bool MatchLiteral(const Literal& pattern, const Literal& target);

  /// Snapshot of the binding trail for backtracking.
  size_t Mark() const { return trail_.size(); }

  /// Undoes all bindings made after `mark`.
  void RollbackTo(size_t mark);

  const Substitution& subst() const { return subst_; }

 private:
  Matcher(const SymbolSet* bindable, int) : bindable_(bindable) {}

  SymbolSet owned_bindable_;
  const SymbolSet* bindable_ = nullptr;
  Substitution subst_;
  std::vector<Symbol> trail_;  // bound variable names, in order
  FrozenEquiv frozen_equiv_;
};

/// Generates globally fresh variable names ("_V1", "_V2", ...). Each
/// generator instance has its own counter; the prefix is configurable so
/// different phases produce recognizably distinct variables.
class FreshVarGen {
 public:
  explicit FreshVarGen(std::string prefix = "_V") : prefix_(std::move(prefix)) {}

  /// Returns a fresh name, e.g. "_V7".
  std::string Next() { return prefix_ + std::to_string(++counter_); }

  /// Returns a fresh variable term.
  Term NextVar() { return Term::Var(Next()); }

 private:
  std::string prefix_;
  uint64_t counter_ = 0;
};

}  // namespace sqo::datalog

#endif  // SQO_DATALOG_UNIFY_H_
