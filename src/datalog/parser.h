#ifndef SQO_DATALOG_PARSER_H_
#define SQO_DATALOG_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "datalog/clause.h"
#include "datalog/signature.h"

namespace sqo::datalog {

/// Parser for the textual DATALOG dialect used for integrity constraints,
/// rules and test fixtures. The dialect mirrors the paper's notation in
/// ASCII:
///
///   IC4: Age >= 30 <- faculty(oid: X, age: Age).
///   IC5: person(X, Name, Age) <- faculty(X, Name, Age).
///   IC7: X1 = X2 <- faculty(oid: X1, name: N), faculty(oid: X2, name: N).
///   <- p(X), q(X).                      -- denial (headless constraint)
///   value = 3000 <- employee(oid: O, salary: 30K),
///                   taxes_withheld(oid: O, rate: 10%, value: Value).
///
/// Lexical conventions (paper §2): identifiers starting with an upper-case
/// letter are variables; `_` is an anonymous variable (each occurrence
/// fresh); lower-case identifiers are predicate names, attribute names, or
/// bare string constants depending on position. Numbers accept the paper's
/// `K`/`M` magnitude suffixes (40K = 40000) and `%` (10% = 0.10). Strings
/// are double-quoted. `<-` and `:-` are interchangeable; a clause may be
/// prefixed with a `label:`.
///
/// Predicate atoms come in two forms:
///   * positional — `faculty(X, N, S, A)`; if a catalog is supplied the
///     arity must equal the relation's full arity;
///   * named — `faculty(oid: X, age: A)`; requires a catalog; unmentioned
///     attributes become fresh anonymous variables. This is how the paper's
///     abbreviated atoms ("we only include those attributes which appear in
///     a query") are written unambiguously.
class Parser {
 public:
  /// `catalog` may be null, in which case only positional atoms are
  /// accepted and arities are unchecked.
  explicit Parser(std::string_view text, const RelationCatalog* catalog = nullptr);

  /// Parses a sequence of clauses (rules, ICs, facts, denials).
  sqo::Result<std::vector<Clause>> ParseProgram();

  /// Parses exactly one clause.
  sqo::Result<Clause> ParseClause();

  /// Parses a query written as a clause with a predicate head, e.g.
  /// `q(Name) :- student(X, Name), Age < 30.`.
  sqo::Result<Query> ParseQuery();

 private:
  struct Token {
    enum Kind {
      kIdent,     // lower-case identifier
      kVariable,  // upper-case identifier or '_'
      kNumber,
      kString,
      kLParen,
      kRParen,
      kComma,
      kDot,
      kColon,
      kArrow,  // "<-" or ":-"
      kCmp,    // = != < <= > >=
      kEnd,
      kError,
    };
    Kind kind = kEnd;
    std::string text;
    sqo::Value value;  // for kNumber / kString
    CmpOp op = CmpOp::kEq;
    size_t line = 1;
  };

  void Lex();
  const Token& Peek(size_t ahead = 0) const;
  Token Consume();
  bool ConsumeIf(Token::Kind kind);
  sqo::Status Expect(Token::Kind kind, std::string_view what);
  sqo::Status ErrorAt(const Token& tok, std::string message) const;

  sqo::Result<Literal> ParseLiteral();
  sqo::Result<Literal> ParseLiteralInner();
  sqo::Result<Atom> ParsePredicateAtom(std::string name);
  sqo::Result<Term> ParseTerm();

  /// Terms and atoms are flat in this dialect (bodies grow by iteration,
  /// not recursion), but the depth guard keeps any future nested term
  /// syntax bounded with a clean kResourceExhausted instead of a stack
  /// overflow.
  static constexpr int kMaxParseDepth = 512;
  int depth_ = 0;

  std::string text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const RelationCatalog* catalog_;
  FreshVarGen anon_gen_{"_A"};
};

/// Convenience: parse a whole program in one call.
sqo::Result<std::vector<Clause>> ParseProgram(
    std::string_view text, const RelationCatalog* catalog = nullptr);

/// Convenience: parse one clause.
sqo::Result<Clause> ParseClauseText(std::string_view text,
                                    const RelationCatalog* catalog = nullptr);

/// Convenience: parse one query.
sqo::Result<Query> ParseQueryText(std::string_view text,
                                  const RelationCatalog* catalog = nullptr);

}  // namespace sqo::datalog

#endif  // SQO_DATALOG_PARSER_H_
