#ifndef SQO_DATALOG_SUBSTITUTION_H_
#define SQO_DATALOG_SUBSTITUTION_H_

#include <string>
#include <unordered_map>

#include "common/interner.h"
#include "datalog/atom.h"
#include "datalog/term.h"

namespace sqo::datalog {

/// A substitution: a finite mapping from variable names to terms.
///
/// Bindings are applied with path compression semantics: `Apply` follows
/// chains (X ↦ Y, Y ↦ 3 gives Apply(X) = 3) so composition never needs an
/// explicit pass. Keys are interned symbols, so every probe is a pointer
/// hash/compare; `ToString` sorts for deterministic output.
class Substitution {
 public:
  Substitution() = default;

  bool empty() const { return bindings_.empty(); }
  size_t size() const { return bindings_.size(); }

  /// True if `var` has a binding (possibly to another variable).
  bool Contains(const std::string& var) const { return Contains(Intern(var)); }
  bool Contains(Symbol var) const { return bindings_.count(var) > 0; }

  /// Binds `var` to `term`. Overwrites an existing binding; callers that
  /// need unification semantics should use `Unify`/`Match` instead of
  /// binding directly.
  void Bind(const std::string& var, Term term) {
    Bind(Intern(var), std::move(term));
  }
  void Bind(Symbol var, Term term) {
    bindings_.insert_or_assign(var, std::move(term));
  }

  /// Resolves `term` through the substitution, following variable chains.
  /// An unbound variable resolves to itself.
  Term Apply(const Term& term) const;

  /// Applies to every argument of `atom`.
  Atom ApplyToAtom(const Atom& atom) const;

  /// Applies to the literal's atom, preserving polarity.
  Literal ApplyToLiteral(const Literal& literal) const;

  /// Removes the binding for `var` if present. Used by the matcher's
  /// backtracking trail.
  void EraseBinding(const std::string& var) { EraseBinding(Intern(var)); }
  void EraseBinding(Symbol var) { bindings_.erase(var); }

  /// Raw binding (unresolved), or nullptr if unbound.
  const Term* Lookup(const std::string& var) const {
    return Lookup(Intern(var));
  }
  const Term* Lookup(Symbol var) const;

  /// `{X -> 3, Y -> Z}`, sorted by variable name.
  std::string ToString() const;

 private:
  std::unordered_map<Symbol, Term, SymbolHash> bindings_;
};

}  // namespace sqo::datalog

#endif  // SQO_DATALOG_SUBSTITUTION_H_
