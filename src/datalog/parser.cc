#include "datalog/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace sqo::datalog {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Parser::Parser(std::string_view text, const RelationCatalog* catalog)
    : text_(text), catalog_(catalog) {
  Lex();
}

void Parser::Lex() {
  size_t i = 0, line = 1;
  const std::string& s = text_;
  auto push = [&](Token t) {
    t.line = line;
    tokens_.push_back(std::move(t));
  };
  while (i < s.size()) {
    char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: "--" or "%" at start of token position... '%' is a numeric
    // suffix, so comments are "--" and "//" only.
    if ((c == '-' && i + 1 < s.size() && s[i + 1] == '-') ||
        (c == '/' && i + 1 < s.size() && s[i + 1] == '/')) {
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < s.size() && IsIdentChar(s[i])) ++i;
      std::string word = s.substr(start, i - start);
      Token t;
      t.text = word;
      t.kind = (std::isupper(static_cast<unsigned char>(word[0])) || word[0] == '_')
                   ? Token::kVariable
                   : Token::kIdent;
      push(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                              (s[i] == '.' && i + 1 < s.size() &&
                               std::isdigit(static_cast<unsigned char>(s[i + 1]))))) {
        if (s[i] == '.') is_float = true;
        ++i;
      }
      std::string num = s.substr(start, i - start);
      double scale = 1.0;
      bool force_double = false;
      if (i < s.size() && (s[i] == 'K' || s[i] == 'k')) {
        scale = 1000.0;
        ++i;
      } else if (i < s.size() && s[i] == 'M') {
        scale = 1000000.0;
        ++i;
      } else if (i < s.size() && s[i] == '%') {
        scale = 0.01;
        force_double = true;
        ++i;
      }
      Token t;
      t.kind = Token::kNumber;
      t.text = num;
      if (is_float || force_double) {
        t.value = sqo::Value::Double(std::strtod(num.c_str(), nullptr) * scale);
      } else {
        t.value = sqo::Value::Int(static_cast<int64_t>(
            std::strtoll(num.c_str(), nullptr, 10) * static_cast<int64_t>(scale)));
      }
      push(std::move(t));
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      std::string contents;
      bool closed = false;
      while (i < s.size()) {
        if (s[i] == '\\' && i + 1 < s.size()) {
          contents += s[i + 1];
          i += 2;
          continue;
        }
        if (s[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        contents += s[i++];
      }
      Token t;
      if (!closed) {
        t.kind = Token::kError;
        t.text = "unterminated string starting at offset " + std::to_string(start);
      } else {
        t.kind = Token::kString;
        t.text = contents;
        t.value = sqo::Value::String(contents);
      }
      push(std::move(t));
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < s.size() && s[i + 1] == b;
    };
    Token t;
    if (two('<', '-') || two(':', '-')) {
      t.kind = Token::kArrow;
      i += 2;
    } else if (two('<', '=')) {
      t.kind = Token::kCmp;
      t.op = CmpOp::kLe;
      i += 2;
    } else if (two('>', '=')) {
      t.kind = Token::kCmp;
      t.op = CmpOp::kGe;
      i += 2;
    } else if (two('!', '=') || two('<', '>')) {
      t.kind = Token::kCmp;
      t.op = CmpOp::kNe;
      i += 2;
    } else if (two('=', '=')) {
      t.kind = Token::kCmp;
      t.op = CmpOp::kEq;
      i += 2;
    } else {
      switch (c) {
        case '(':
          t.kind = Token::kLParen;
          break;
        case ')':
          t.kind = Token::kRParen;
          break;
        case ',':
          t.kind = Token::kComma;
          break;
        case '.':
          t.kind = Token::kDot;
          break;
        case ':':
          t.kind = Token::kColon;
          break;
        case '=':
          t.kind = Token::kCmp;
          t.op = CmpOp::kEq;
          break;
        case '<':
          t.kind = Token::kCmp;
          t.op = CmpOp::kLt;
          break;
        case '>':
          t.kind = Token::kCmp;
          t.op = CmpOp::kGt;
          break;
        default:
          t.kind = Token::kError;
          t.text = std::string("unexpected character '") + c + "'";
          break;
      }
      ++i;
    }
    push(std::move(t));
  }
  Token end;
  end.kind = Token::kEnd;
  end.line = line;
  tokens_.push_back(std::move(end));
}

const Parser::Token& Parser::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

Parser::Token Parser::Consume() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::ConsumeIf(Token::Kind kind) {
  if (Peek().kind == kind) {
    Consume();
    return true;
  }
  return false;
}

sqo::Status Parser::Expect(Token::Kind kind, std::string_view what) {
  if (Peek().kind != kind) {
    return ErrorAt(Peek(), "expected " + std::string(what));
  }
  Consume();
  return sqo::Status::Ok();
}

sqo::Status Parser::ErrorAt(const Token& tok, std::string message) const {
  std::string detail = message + " at line " + std::to_string(tok.line);
  if (!tok.text.empty()) detail += " near '" + tok.text + "'";
  if (tok.kind == Token::kError) detail += " (" + tok.text + ")";
  return sqo::ParseError(std::move(detail));
}

sqo::Result<Term> Parser::ParseTerm() {
  const Token& tok = Peek();
  switch (tok.kind) {
    case Token::kVariable: {
      Token t = Consume();
      if (t.text == "_") return anon_gen_.NextVar();
      return Term::Var(t.text);
    }
    case Token::kNumber:
    case Token::kString: {
      Token t = Consume();
      return Term::Const(t.value);
    }
    case Token::kIdent: {
      Token t = Consume();
      if (t.text == "true") return Term::Bool(true);
      if (t.text == "false") return Term::Bool(false);
      // Bare lower-case identifier in term position: a symbolic string
      // constant, DATALOG-style.
      return Term::String(t.text);
    }
    default:
      return ErrorAt(tok, "expected a term");
  }
}

sqo::Result<Atom> Parser::ParsePredicateAtom(std::string name) {
  SQO_RETURN_IF_ERROR(Expect(Token::kLParen, "'('"));
  // Detect named-argument form: IDENT ':' ...
  bool named = Peek().kind == Token::kIdent && Peek(1).kind == Token::kColon;
  if (named) {
    if (catalog_ == nullptr) {
      return ErrorAt(Peek(),
                     "named arguments for '" + name + "' require a relation catalog");
    }
    const RelationSignature* sig = catalog_->Find(name);
    if (sig == nullptr) {
      return ErrorAt(Peek(), "unknown relation '" + name + "'");
    }
    std::vector<std::optional<Term>> slots(sig->arity());
    while (true) {
      if (Peek().kind != Token::kIdent) {
        return ErrorAt(Peek(), "expected attribute name");
      }
      Token attr = Consume();
      SQO_RETURN_IF_ERROR(Expect(Token::kColon, "':'"));
      SQO_ASSIGN_OR_RETURN(Term term, ParseTerm());
      auto idx = sig->AttributeIndex(attr.text);
      if (!idx.has_value()) {
        return ErrorAt(attr, "relation '" + name + "' has no attribute '" +
                                 attr.text + "'");
      }
      if (slots[*idx].has_value()) {
        return ErrorAt(attr, "attribute '" + attr.text + "' given twice");
      }
      slots[*idx] = std::move(term);
      if (!ConsumeIf(Token::kComma)) break;
    }
    SQO_RETURN_IF_ERROR(Expect(Token::kRParen, "')'"));
    std::vector<Term> args;
    args.reserve(slots.size());
    for (auto& slot : slots) {
      args.push_back(slot.has_value() ? *std::move(slot) : anon_gen_.NextVar());
    }
    return Atom::Pred(std::move(name), std::move(args));
  }

  std::vector<Term> args;
  if (Peek().kind != Token::kRParen) {
    while (true) {
      SQO_ASSIGN_OR_RETURN(Term term, ParseTerm());
      args.push_back(std::move(term));
      if (!ConsumeIf(Token::kComma)) break;
    }
  }
  SQO_RETURN_IF_ERROR(Expect(Token::kRParen, "')'"));
  if (catalog_ != nullptr) {
    const RelationSignature* sig = catalog_->Find(name);
    if (sig != nullptr && sig->arity() != args.size()) {
      return sqo::ParseError(sqo::StrFormat(
          "relation '%s' has arity %zu but %zu positional arguments given "
          "(use named arguments for partial atoms)",
          name.c_str(), sig->arity(), args.size()));
    }
  }
  return Atom::Pred(std::move(name), std::move(args));
}

sqo::Result<Literal> Parser::ParseLiteral() {
  if (depth_ >= kMaxParseDepth) {
    return sqo::ResourceExhaustedError(
        "DATALOG: literal nesting exceeds the parser depth limit (" +
        std::to_string(kMaxParseDepth) + ")");
  }
  ++depth_;
  sqo::Result<Literal> result = ParseLiteralInner();
  --depth_;
  return result;
}

sqo::Result<Literal> Parser::ParseLiteralInner() {
  bool negated = false;
  if (Peek().kind == Token::kIdent && Peek().text == "not") {
    negated = true;
    Consume();
  }
  // Predicate atom: IDENT '('.
  if (Peek().kind == Token::kIdent && Peek(1).kind == Token::kLParen) {
    Token name = Consume();
    SQO_ASSIGN_OR_RETURN(Atom atom, ParsePredicateAtom(name.text));
    return Literal(!negated, std::move(atom));
  }
  // Otherwise: comparison `term op term`.
  SQO_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
  if (Peek().kind != Token::kCmp) {
    return ErrorAt(Peek(), "expected comparison operator");
  }
  Token op = Consume();
  SQO_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
  Atom cmp = Atom::Comparison(op.op, std::move(lhs), std::move(rhs));
  return Literal(!negated, std::move(cmp));
}

sqo::Result<Clause> Parser::ParseClause() {
  Clause clause;
  // Optional label: IDENT ':' not followed by '-' (":-" lexes as kArrow).
  if ((Peek().kind == Token::kIdent || Peek().kind == Token::kVariable) &&
      Peek(1).kind == Token::kColon) {
    clause.label = Consume().text;
    Consume();  // ':'
  }
  // Headless denial: starts with arrow.
  if (ConsumeIf(Token::kArrow)) {
    clause.head = std::nullopt;
  } else if (Peek().kind == Token::kIdent && Peek().text == "false" &&
             Peek(1).kind == Token::kArrow) {
    Consume();
    Consume();
    clause.head = std::nullopt;
  } else {
    SQO_ASSIGN_OR_RETURN(Literal head, ParseLiteral());
    clause.head = std::move(head);
    if (ConsumeIf(Token::kDot)) return clause;  // fact
    SQO_RETURN_IF_ERROR(Expect(Token::kArrow, "'<-' or '.'"));
  }
  while (true) {
    SQO_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    clause.body.push_back(std::move(lit));
    if (!ConsumeIf(Token::kComma)) break;
  }
  SQO_RETURN_IF_ERROR(Expect(Token::kDot, "'.'"));
  return clause;
}

sqo::Result<std::vector<Clause>> Parser::ParseProgram() {
  std::vector<Clause> clauses;
  while (Peek().kind != Token::kEnd) {
    SQO_ASSIGN_OR_RETURN(Clause clause, ParseClause());
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

sqo::Result<Query> Parser::ParseQuery() {
  SQO_ASSIGN_OR_RETURN(Clause clause, ParseClause());
  if (!clause.head.has_value() || !clause.head->positive ||
      clause.head->atom.is_comparison()) {
    return sqo::ParseError("a query must have a positive predicate head");
  }
  Query q;
  q.name = clause.head->atom.predicate();
  q.head_args = clause.head->atom.args();
  q.body = std::move(clause.body);
  return q;
}

sqo::Result<std::vector<Clause>> ParseProgram(std::string_view text,
                                              const RelationCatalog* catalog) {
  return Parser(text, catalog).ParseProgram();
}

sqo::Result<Clause> ParseClauseText(std::string_view text,
                                    const RelationCatalog* catalog) {
  return Parser(text, catalog).ParseClause();
}

sqo::Result<Query> ParseQueryText(std::string_view text,
                                  const RelationCatalog* catalog) {
  return Parser(text, catalog).ParseQuery();
}

}  // namespace sqo::datalog
