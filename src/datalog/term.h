#ifndef SQO_DATALOG_TERM_H_
#define SQO_DATALOG_TERM_H_

#include <string>
#include <variant>

#include "common/interner.h"
#include "common/value.h"

namespace sqo::datalog {

/// A DATALOG term: either a variable or a constant.
///
/// Following the paper's conventions (§2), variables are written starting
/// with an upper-case letter and constants are typed `Value`s. There are no
/// function symbols — the object model's structures are flattened into
/// relations by the schema translation, so first-order terms never nest.
///
/// Variable names are interned (`sqo::Symbol`), so variable equality is a
/// pointer compare and `Hash()` never rehashes the characters.
class Term {
 public:
  /// Creates a variable term. `name` should start with an upper-case letter
  /// or '_' by convention; this is not enforced here (the parser enforces it
  /// for textual input).
  static Term Var(std::string_view name) { return Term(VarRep{Intern(name)}); }
  static Term Var(Symbol name) { return Term(VarRep{name}); }

  /// Creates a constant term holding `value`.
  static Term Const(sqo::Value value) { return Term(std::move(value)); }

  /// Convenience constant factories.
  static Term Int(int64_t v) { return Const(sqo::Value::Int(v)); }
  static Term Double(double v) { return Const(sqo::Value::Double(v)); }
  static Term String(std::string v) { return Const(sqo::Value::String(std::move(v))); }
  static Term Bool(bool v) { return Const(sqo::Value::Bool(v)); }
  static Term FromOid(sqo::Oid v) { return Const(sqo::Value::FromOid(v)); }

  bool is_variable() const { return std::holds_alternative<VarRep>(rep_); }
  bool is_constant() const { return !is_variable(); }

  /// Name of a variable term. Requires is_variable().
  const std::string& var_name() const {
    return std::get<VarRep>(rep_).name.str();
  }

  /// Interned name of a variable term. Requires is_variable().
  Symbol var_symbol() const { return std::get<VarRep>(rep_).name; }

  /// Value of a constant term. Requires is_constant().
  const sqo::Value& constant() const { return std::get<sqo::Value>(rep_); }

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Stable total order (variables before constants; by name / TotalOrder).
  bool operator<(const Term& other) const;

  size_t Hash() const;

  /// Variable name as-is, or the constant's diagnostic rendering.
  std::string ToString() const;

 private:
  struct VarRep {
    Symbol name;
    bool operator==(const VarRep& o) const { return name == o.name; }
  };
  using Rep = std::variant<VarRep, sqo::Value>;

  explicit Term(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace sqo::datalog

#endif  // SQO_DATALOG_TERM_H_
