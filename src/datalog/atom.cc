#include "datalog/atom.h"

#include <algorithm>

namespace sqo::datalog {





void Atom::CollectVariables(std::vector<std::string>* out) const {
  for (const Term& t : args_) {
    if (t.is_variable() &&
        std::find(out->begin(), out->end(), t.var_name()) == out->end()) {
      out->push_back(t.var_name());
    }
  }
}

void Atom::CollectVariables(std::vector<Symbol>* out) const {
  for (const Term& t : args_) {
    if (t.is_variable() &&
        std::find(out->begin(), out->end(), t.var_symbol()) == out->end()) {
      out->push_back(t.var_symbol());
    }
  }
}

bool Atom::operator==(const Atom& other) const {
  if (is_comparison_ != other.is_comparison_) return false;
  if (is_comparison_) {
    if (op_ != other.op_) return false;
  } else {
    if (predicate_ != other.predicate_) return false;
  }
  return args_ == other.args_;
}

size_t Atom::Hash() const {
  size_t h = is_comparison_ ? static_cast<size_t>(op_) * 0x9e3779b9u + 7
                            : predicate_.hash();
  for (const Term& t : args_) h = h * 1099511628211ull + t.Hash();
  return h;
}

std::string Atom::ToString() const {
  if (is_comparison_) {
    return lhs().ToString() + " " + std::string(CmpOpSymbol(op_)) + " " +
           rhs().ToString();
  }
  std::string out = predicate_.str() + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

Literal::Literal(bool pos, Atom a) : positive(pos), atom(std::move(a)) {
  if (!positive && atom.is_comparison()) {
    // Normalize ¬(a θ b) to a ¬θ b so comparison literals are always
    // positive; downstream reasoning (the solver) only sees positive
    // comparison atoms.
    atom = Atom::Comparison(NegateOp(atom.op()), atom.lhs(), atom.rhs());
    positive = true;
  }
}

Literal Literal::Complement() const {
  if (atom.is_comparison()) {
    return Literal::Pos(Atom::Comparison(NegateOp(atom.op()), atom.lhs(), atom.rhs()));
  }
  return Literal(!positive, atom);
}

std::string Literal::ToString() const {
  if (positive) return atom.ToString();
  return "not " + atom.ToString();
}

}  // namespace sqo::datalog
