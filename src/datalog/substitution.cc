#include "datalog/substitution.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace sqo::datalog {

Term Substitution::Apply(const Term& term) const {
  const Term* current = &term;
  // Follow variable chains; bounded by the number of bindings, so cycles
  // (which Bind callers must not create) would terminate via the guard.
  size_t steps = 0;
  while (current->is_variable() && steps <= bindings_.size()) {
    auto it = bindings_.find(current->var_symbol());
    if (it == bindings_.end()) break;
    current = &it->second;
    ++steps;
  }
  return *current;
}

Atom Substitution::ApplyToAtom(const Atom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.arity());
  for (const Term& t : atom.args()) args.push_back(Apply(t));
  if (atom.is_comparison()) {
    return Atom::Comparison(atom.op(), std::move(args[0]), std::move(args[1]));
  }
  return Atom::Pred(atom.predicate_symbol(), std::move(args));
}

Literal Substitution::ApplyToLiteral(const Literal& literal) const {
  return Literal(literal.positive, ApplyToAtom(literal.atom));
}

const Term* Substitution::Lookup(Symbol var) const {
  auto it = bindings_.find(var);
  return it == bindings_.end() ? nullptr : &it->second;
}

std::string Substitution::ToString() const {
  std::vector<std::pair<Symbol, const Term*>> sorted;
  sorted.reserve(bindings_.size());
  for (const auto& [var, term] : bindings_) sorted.emplace_back(var, &term);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : sorted) {
    if (!first) out += ", ";
    first = false;
    out += var.str() + " -> " + term->ToString();
  }
  out += "}";
  return out;
}

}  // namespace sqo::datalog
