#ifndef SQO_DATALOG_CLAUSE_H_
#define SQO_DATALOG_CLAUSE_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "datalog/atom.h"
#include "datalog/substitution.h"
#include "datalog/unify.h"

namespace sqo::datalog {

/// An implication clause `Head ← Body`, the common shape of the paper's
/// rules and integrity constraints:
///
///   * comparison head:        Age > 30 ← faculty(X, Age)          (IC1, IC4)
///   * equality head:          X1 = X2 ← faculty(X1,N), faculty(X2,N)  (IC7)
///   * predicate head:         person(X,...) ← faculty(X,...)      (IC5)
///   * negated-predicate head: ¬faculty(X) ← person(X,A), A < 30   (IC6')
///   * no head (denial):       ← p(X), q(X)
///
/// Variables appearing only in the head are existentially quantified (paper
/// §4.2 footnote 1); variables in the body are universally quantified.
struct Clause {
  /// Optional label for diagnostics ("IC4", "asr_def", ...).
  std::string label;

  std::optional<Literal> head;
  std::vector<Literal> body;

  Clause() = default;
  Clause(std::optional<Literal> h, std::vector<Literal> b)
      : head(std::move(h)), body(std::move(b)) {}

  bool is_denial() const { return !head.has_value(); }

  /// Distinct variable names, head first then body, in occurrence order.
  std::vector<std::string> Variables() const;

  /// The same set, as a std::set (for Matcher construction).
  std::set<std::string> VariableSet() const;

  /// Returns a copy with every variable renamed through `gen` (consistent
  /// within the clause). Used to rename ICs apart from query variables.
  Clause RenamedApart(FreshVarGen* gen) const;

  /// Returns a copy with `subst` applied to head and body.
  Clause Substituted(const Substitution& subst) const;

  bool operator==(const Clause& other) const {
    return head == other.head && body == other.body;
  }

  /// `Age > 30 <- faculty(X, Age).` / `<- p(X).` (label not included).
  std::string ToString() const;
};

/// A conjunctive DATALOG query `name(head_args) ← body`, the Step-2 output:
/// `Q(Name1, City) ← student(X, Name2), takes(X, Y), ...`.
struct Query {
  std::string name = "q";
  std::vector<Term> head_args;
  std::vector<Literal> body;

  /// Distinct variable names across head and body, in occurrence order.
  std::vector<std::string> Variables() const;
  std::set<std::string> VariableSet() const;

  /// Positive body comparison atoms (the query's restriction set).
  std::vector<Atom> Comparisons() const;

  /// Returns a copy with `subst` applied to head args and body.
  Query Substituted(const Substitution& subst) const;

  bool operator==(const Query& other) const {
    return name == other.name && head_args == other.head_args && body == other.body;
  }

  /// `q(Name) :- student(X, Name), Age < 30.`
  std::string ToString() const;

  /// A canonical key for duplicate detection among equivalent rewritings:
  /// body literals are sorted under a canonical variable numbering that is
  /// insensitive to variable names and body order. Two queries with equal
  /// keys are syntactically identical up to renaming and reordering (the
  /// converse need not hold for pathological self-similar bodies).
  std::string CanonicalKey() const;

  /// 128-bit hash of the canonical form, computed without materializing the
  /// key string. Same invariance as CanonicalKey — insensitive to variable
  /// names and body order — so it serves as the BFS dedup key and the
  /// consequence-cache key on the optimizer's hot path (see DESIGN.md for
  /// the soundness argument).
  sqo::Fingerprint128 CanonicalFingerprint() const;

  /// Structural hash consistent with operator== (name, head args, body in
  /// order). NOT renaming-invariant; use CanonicalFingerprint for that.
  size_t Hash() const;
};

}  // namespace sqo::datalog

#endif  // SQO_DATALOG_CLAUSE_H_
