#ifndef SQO_DATALOG_PROGRAM_H_
#define SQO_DATALOG_PROGRAM_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/clause.h"
#include "datalog/signature.h"

namespace sqo::datalog {

/// A validated bundle of DATALOG clauses over a relation catalog: the unit
/// in which integrity-constraint sets travel through the library (loaded
/// from text, extended by inference, handed to the semantic compiler).
///
/// Validation enforces:
///   * every predicate atom refers to a cataloged relation with matching
///     arity (special method-fact predicates like `monotone`/`point` are
///     exempted via `exempt_predicates`);
///   * range restriction: every variable of an evaluable body atom occurs
///     in some positive predicate body atom (denials and rules alike), so
///     clause bodies are evaluable bottom-up;
///   * labels are unique when present (duplicates get suffixed reports).
class Program {
 public:
  /// Builds a validated program. `exempt_predicates` lists predicates that
  /// bypass catalog lookup (defaults to the method-fact predicates).
  static sqo::Result<Program> Create(
      std::vector<Clause> clauses, const RelationCatalog* catalog,
      std::vector<std::string> exempt_predicates = {"monotone", "point"});

  const std::vector<Clause>& clauses() const { return clauses_; }
  size_t size() const { return clauses_.size(); }

  /// Clauses whose label starts with `prefix`.
  std::vector<const Clause*> WithLabelPrefix(std::string_view prefix) const;

  /// First clause with exactly this label, or nullptr.
  const Clause* FindLabel(std::string_view label) const;

  /// Appends another clause, re-running validation for it.
  sqo::Status Append(Clause clause);

  /// One clause per line, labels included.
  std::string ToString() const;

 private:
  Program(const RelationCatalog* catalog, std::vector<std::string> exempt)
      : catalog_(catalog), exempt_(std::move(exempt)) {}

  sqo::Status Validate(const Clause& clause) const;

  const RelationCatalog* catalog_;
  std::vector<std::string> exempt_;
  std::vector<Clause> clauses_;
};

}  // namespace sqo::datalog

#endif  // SQO_DATALOG_PROGRAM_H_
