#include "datalog/signature.h"

#include "common/strings.h"

namespace sqo::datalog {

std::string_view RelationKindName(RelationKind kind) {
  switch (kind) {
    case RelationKind::kClass:
      return "class";
    case RelationKind::kStructure:
      return "structure";
    case RelationKind::kRelationship:
      return "relationship";
    case RelationKind::kMethod:
      return "method";
    case RelationKind::kAsr:
      return "asr";
  }
  return "unknown";
}

std::optional<size_t> RelationSignature::AttributeIndex(
    std::string_view attr) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i] == attr) return i;
  }
  return std::nullopt;
}

std::string RelationSignature::ToString() const {
  return name + "(" + StrJoin(attributes, ", ") + ")";
}

sqo::Status RelationCatalog::Add(RelationSignature signature) {
  auto [it, inserted] = relations_.emplace(signature.name, std::move(signature));
  if (!inserted) {
    return sqo::InvalidArgumentError("duplicate relation name: " + it->first);
  }
  return sqo::Status::Ok();
}

const RelationSignature* RelationCatalog::Find(std::string_view name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

sqo::Result<const RelationSignature*> RelationCatalog::Get(
    std::string_view name) const {
  const RelationSignature* sig = Find(name);
  if (sig == nullptr) {
    return sqo::NotFoundError("unknown relation: " + std::string(name));
  }
  return sig;
}

}  // namespace sqo::datalog
