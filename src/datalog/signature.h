#ifndef SQO_DATALOG_SIGNATURE_H_
#define SQO_DATALOG_SIGNATURE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqo::datalog {

/// What object-model construct a DATALOG relation was generated from
/// (paper §4.2 RELATIONS rules 1–4, plus access support relations of §5.4).
enum class RelationKind {
  kClass,         // c(OID, A1..An, OID_S1..OID_Sm)
  kStructure,     // s(OID, A1..An, ...)
  kRelationship,  // r(OID_C1, OID_C2)
  kMethod,        // m(OID_C, A1..An, V)
  kAsr,           // asr(OID_first, OID_last) — materialized path view
};

std::string_view RelationKindName(RelationKind kind);

/// The positional signature of one DATALOG relation: its name, provenance
/// kind, and ordered attribute names. For class/structure relations
/// `attributes[0]` is "oid"; for relationships the two endpoint roles; for
/// methods "oid", the user-argument names, then "value".
struct RelationSignature {
  std::string name;
  RelationKind kind = RelationKind::kClass;
  std::vector<std::string> attributes;

  /// The original ODL spelling of the construct ("Student", "Takes",
  /// "taxes_withheld") — relation names are lower-cased, but Step 4 must
  /// render OQL edits with the ODL names.
  std::string display_name;

  /// For kClass/kStructure: the ODL type name this relation represents.
  /// For kRelationship: the source class name. Empty otherwise.
  std::string owner;

  /// For kRelationship: the target class relation name (for OID
  /// identification ICs and query translation range resolution).
  std::string target;

  /// For kRelationship / kAsr: whether the relation is functional left to
  /// right (each src has at most one dst — a to-one relationship) and right
  /// to left (one-to-one, or a to-many whose inverse is to-one). The
  /// optimizer's join introduction/elimination uses these to preserve
  /// multiplicities. Meaningless for other kinds (class, structure and
  /// method relations are always functional in their OID/receiver).
  bool functional_src_to_dst = false;
  bool functional_dst_to_src = false;

  size_t arity() const { return attributes.size(); }

  /// Position of attribute `attr`, or nullopt.
  std::optional<size_t> AttributeIndex(std::string_view attr) const;

  /// `faculty(oid, name, salary, age)`.
  std::string ToString() const;
};

/// Name → signature map for every relation produced by schema translation.
/// Owned by the translated schema; consulted by the IC parser (named-argument
/// expansion), the query translator and the optimizer.
class RelationCatalog {
 public:
  /// Registers a signature. Fails on duplicate names.
  sqo::Status Add(RelationSignature signature);

  /// Looks up by relation name; nullptr if absent.
  const RelationSignature* Find(std::string_view name) const;

  /// Lookup that errors with kNotFound instead of returning nullptr.
  sqo::Result<const RelationSignature*> Get(std::string_view name) const;

  const std::map<std::string, RelationSignature, std::less<>>& relations() const {
    return relations_;
  }

  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, RelationSignature, std::less<>> relations_;
};

}  // namespace sqo::datalog

#endif  // SQO_DATALOG_SIGNATURE_H_
