#include "datalog/clause.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/strings.h"

namespace sqo::datalog {

namespace {

void CollectLiteralVars(const Literal& lit, std::vector<std::string>* out) {
  lit.atom.CollectVariables(out);
}

Term RenameTerm(const Term& t, std::map<std::string, Term>* renaming,
                FreshVarGen* gen) {
  if (!t.is_variable()) return t;
  auto it = renaming->find(t.var_name());
  if (it == renaming->end()) {
    it = renaming->emplace(t.var_name(), gen->NextVar()).first;
  }
  return it->second;
}

Atom RenameAtom(const Atom& a, std::map<std::string, Term>* renaming,
                FreshVarGen* gen) {
  std::vector<Term> args;
  args.reserve(a.arity());
  for (const Term& t : a.args()) args.push_back(RenameTerm(t, renaming, gen));
  if (a.is_comparison()) {
    return Atom::Comparison(a.op(), std::move(args[0]), std::move(args[1]));
  }
  return Atom::Pred(a.predicate_symbol(), std::move(args));
}

}  // namespace

std::vector<std::string> Clause::Variables() const {
  std::vector<std::string> out;
  if (head.has_value()) CollectLiteralVars(*head, &out);
  for (const Literal& lit : body) CollectLiteralVars(lit, &out);
  return out;
}

std::set<std::string> Clause::VariableSet() const {
  auto vars = Variables();
  return std::set<std::string>(vars.begin(), vars.end());
}

Clause Clause::RenamedApart(FreshVarGen* gen) const {
  std::map<std::string, Term> renaming;
  Clause out;
  out.label = label;
  if (head.has_value()) {
    out.head = Literal(head->positive, RenameAtom(head->atom, &renaming, gen));
  }
  out.body.reserve(body.size());
  for (const Literal& lit : body) {
    out.body.push_back(Literal(lit.positive, RenameAtom(lit.atom, &renaming, gen)));
  }
  return out;
}

Clause Clause::Substituted(const Substitution& subst) const {
  Clause out;
  out.label = label;
  if (head.has_value()) out.head = subst.ApplyToLiteral(*head);
  out.body.reserve(body.size());
  for (const Literal& lit : body) out.body.push_back(subst.ApplyToLiteral(lit));
  return out;
}

std::string Clause::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(body.size());
  for (const Literal& lit : body) parts.push_back(lit.ToString());
  std::string head_str = head.has_value() ? head->ToString() : "false";
  if (body.empty()) return head_str + ".";
  return head_str + " <- " + StrJoin(parts, ", ") + ".";
}

std::vector<std::string> Query::Variables() const {
  std::vector<std::string> out;
  for (const Term& t : head_args) {
    if (t.is_variable() &&
        std::find(out.begin(), out.end(), t.var_name()) == out.end()) {
      out.push_back(t.var_name());
    }
  }
  for (const Literal& lit : body) CollectLiteralVars(lit, &out);
  return out;
}

std::set<std::string> Query::VariableSet() const {
  auto vars = Variables();
  return std::set<std::string>(vars.begin(), vars.end());
}

std::vector<Atom> Query::Comparisons() const {
  std::vector<Atom> out;
  for (const Literal& lit : body) {
    if (lit.positive && lit.atom.is_comparison()) out.push_back(lit.atom);
  }
  return out;
}

Query Query::Substituted(const Substitution& subst) const {
  Query out;
  out.name = name;
  out.head_args.reserve(head_args.size());
  for (const Term& t : head_args) out.head_args.push_back(subst.Apply(t));
  out.body.reserve(body.size());
  for (const Literal& lit : body) out.body.push_back(subst.ApplyToLiteral(lit));
  return out;
}

std::string Query::ToString() const {
  std::vector<std::string> args;
  args.reserve(head_args.size());
  for (const Term& t : head_args) args.push_back(t.ToString());
  std::vector<std::string> lits;
  lits.reserve(body.size());
  for (const Literal& lit : body) lits.push_back(lit.ToString());
  return name + "(" + StrJoin(args, ", ") + ") :- " + StrJoin(lits, ", ") + ".";
}

std::string Query::CanonicalKey() const {
  // Pass 1: order body literals by a name-blind shape.
  auto shape = [](const Literal& lit) {
    std::string s = lit.positive ? "+" : "-";
    if (lit.atom.is_comparison()) {
      s += "cmp";
      s += CmpOpSymbol(lit.atom.op());
    } else {
      s += lit.atom.predicate();
      s += "/" + std::to_string(lit.atom.arity());
    }
    for (const Term& t : lit.atom.args()) {
      s += t.is_variable() ? "|V" : "|" + t.ToString();
    }
    return s;
  };
  std::vector<size_t> order(body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::string> shapes;
  shapes.reserve(body.size());
  for (const Literal& lit : body) shapes.push_back(shape(lit));
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return shapes[a] < shapes[b]; });

  // Pass 2: canonical numbering by first occurrence over head, then ordered
  // body.
  std::map<std::string, std::string> canon;
  auto canon_name = [&](const std::string& v) -> const std::string& {
    auto it = canon.find(v);
    if (it == canon.end()) {
      it = canon.emplace(v, "$" + std::to_string(canon.size())).first;
    }
    return it->second;
  };
  auto render_term = [&](const Term& t) {
    return t.is_variable() ? canon_name(t.var_name()) : t.ToString();
  };
  auto render_literal = [&](const Literal& lit) {
    std::string s = lit.positive ? "" : "not ";
    if (lit.atom.is_comparison()) {
      s += render_term(lit.atom.lhs()) + std::string(CmpOpSymbol(lit.atom.op())) +
           render_term(lit.atom.rhs());
    } else {
      s += lit.atom.predicate() + "(";
      for (size_t i = 0; i < lit.atom.arity(); ++i) {
        if (i > 0) s += ",";
        s += render_term(lit.atom.args()[i]);
      }
      s += ")";
    }
    return s;
  };

  std::string key = "(";
  for (size_t i = 0; i < head_args.size(); ++i) {
    if (i > 0) key += ",";
    key += render_term(head_args[i]);
  }
  key += ")<-";
  std::vector<std::string> rendered;
  rendered.reserve(body.size());
  for (size_t idx : order) rendered.push_back(render_literal(body[idx]));
  // Re-sort after numbering for stability when shapes tie.
  std::sort(rendered.begin(), rendered.end());
  key += StrJoin(rendered, ";");
  return key;
}

sqo::Fingerprint128 Query::CanonicalFingerprint() const {
  constexpr uint64_t kFnv = 1099511628211ull;
  constexpr uint64_t kVarShapeTag = 0x5611aa17ull;
  constexpr uint64_t kCmpTag = 0xc011aa50ull;

  // Pass 1: order body literals by a name-blind shape hash — the hashed
  // analogue of CanonicalKey's shape string. Literals with equal shapes
  // keep their relative body order (stable sort), exactly as the string
  // version does.
  auto shape_hash = [&](const Literal& lit) {
    uint64_t h = lit.positive ? 0x2b : 0x2d;
    if (lit.atom.is_comparison()) {
      h = h * kFnv + kCmpTag;
      h = h * kFnv + static_cast<uint64_t>(lit.atom.op());
    } else {
      h = h * kFnv + lit.atom.predicate_symbol().hash();
      h = h * kFnv + lit.atom.arity();
    }
    for (const Term& t : lit.atom.args()) {
      h = h * kFnv +
          (t.is_variable() ? kVarShapeTag : sqo::Mix64(t.constant().Hash()));
    }
    return h;
  };
  std::vector<size_t> order(body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<uint64_t> shapes;
  shapes.reserve(body.size());
  for (const Literal& lit : body) shapes.push_back(shape_hash(lit));
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return shapes[a] < shapes[b]; });

  // Pass 2: canonical numbering by first occurrence over head, then ordered
  // body; each variable renders as its dense canonical index.
  std::unordered_map<Symbol, uint64_t, SymbolHash> canon;
  auto render_term = [&](const Term& t) -> uint64_t {
    if (!t.is_variable()) return sqo::Mix64(t.constant().Hash()) | 1;
    auto it = canon.find(t.var_symbol());
    if (it == canon.end()) {
      it = canon.emplace(t.var_symbol(), canon.size()).first;
    }
    return it->second << 1;  // even = variable index, odd = constant
  };
  // Per-literal fingerprints are themselves 128-bit so that the final
  // sorted fold never funnels two distinct literals through one 64-bit
  // value (which would defeat the two independent lanes).
  auto render_literal = [&](const Literal& lit) {
    FingerprintBuilder b;
    b.Append(lit.positive ? 0x2b : 0x2d);
    if (lit.atom.is_comparison()) {
      b.Append(kCmpTag + static_cast<uint64_t>(lit.atom.op()));
    } else {
      b.Append(lit.atom.predicate_symbol().hash());
    }
    for (const Term& t : lit.atom.args()) b.Append(render_term(t));
    return b.fingerprint();
  };

  FingerprintBuilder fb;
  fb.Append(head_args.size());
  for (const Term& t : head_args) fb.Append(render_term(t));
  std::vector<sqo::Fingerprint128> rendered;
  rendered.reserve(body.size());
  for (size_t idx : order) rendered.push_back(render_literal(body[idx]));
  // Re-sort after numbering for stability when shapes tie (mirrors the
  // rendered-string sort in CanonicalKey).
  std::sort(rendered.begin(), rendered.end());
  for (const sqo::Fingerprint128& f : rendered) {
    fb.Append(f.lo);
    fb.Append(f.hi);
  }
  return fb.fingerprint();
}

size_t Query::Hash() const {
  size_t h = std::hash<std::string>()(name);
  for (const Term& t : head_args) h = h * 1099511628211ull + t.Hash();
  h = h * 1099511628211ull + 0x5eb;  // separator: head args vs body
  for (const Literal& lit : body) h = h * 1099511628211ull + lit.Hash();
  return h;
}

}  // namespace sqo::datalog
