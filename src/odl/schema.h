#ifndef SQO_ODL_SCHEMA_H_
#define SQO_ODL_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "odl/ast.h"

namespace sqo::odl {

/// A resolved attribute: simple (base-typed) or structure-valued.
struct ResolvedAttribute {
  std::string name;
  BaseType base = BaseType::kLong;
  std::string struct_name;  // set iff base == kNamed (a struct type)
  std::string declared_in;  // class or struct that declared it

  bool is_struct() const { return base == BaseType::kNamed; }
};

/// A resolved relationship with verified inverse and cardinality.
struct ResolvedRelationship {
  std::string name;
  std::string source;  // owning class
  std::string target;  // target class
  bool to_many = false;
  /// Name of the inverse relationship on the target class, or "" if the
  /// relationship is unidirectional.
  std::string inverse;

  /// True if this relationship and its inverse are both to-one (the
  /// one-to-one case whose ICs §4.2 rule 4 generates). Meaningful only when
  /// an inverse exists; the flag is resolved by Schema::Resolve.
  bool one_to_one = false;
};

/// A resolved method signature. Parameters are base-typed user inputs; the
/// return is a base value or a struct (returned by OID in the DATALOG
/// representation, per §4.2 rule 4).
struct ResolvedMethod {
  std::string name;
  std::string owner;  // declaring class
  std::vector<ParamDecl> params;
  BaseType return_base = BaseType::kLong;
  std::string return_struct;  // set iff return_base == kNamed
};

/// A resolved class: its place in the hierarchy, full inherited attribute
/// list (superclass attributes form a prefix, which is what makes the
/// subclass-hierarchy ICs of §4.2 rule 2 positional), and own members.
struct ClassInfo {
  std::string name;
  std::string super;  // "" for a root class
  std::optional<std::string> extent;
  std::vector<std::string> keys;
  /// Own attributes, ordered simple-first then struct (paper §4.2 rule 1).
  std::vector<ResolvedAttribute> own_attributes;
  /// Inherited prefix + own attributes.
  std::vector<ResolvedAttribute> all_attributes;
  std::vector<ResolvedRelationship> relationships;  // own only
  std::vector<ResolvedMethod> methods;              // own only
};

/// A resolved struct type.
struct StructInfo {
  std::string name;
  /// Fields ordered simple-first then struct.
  std::vector<ResolvedAttribute> fields;
};

/// A fully resolved object schema. Construction validates the AST:
/// hierarchy acyclicity, type resolution, inverse-relationship consistency,
/// cardinality agreement, key attribute existence, member-name uniqueness.
class Schema {
 public:
  /// An empty schema (no classes). Useful as a default member; populate via
  /// Resolve.
  Schema() = default;

  /// Resolves and validates a parsed schema document.
  static sqo::Result<Schema> Resolve(const SchemaAst& ast);

  const ClassInfo* FindClass(std::string_view name) const;
  const StructInfo* FindStruct(std::string_view name) const;

  /// Classes in declaration order (supertypes are not necessarily first;
  /// use IsSubclassOf for hierarchy queries).
  const std::vector<ClassInfo>& classes() const { return classes_; }
  const std::vector<StructInfo>& structs() const { return structs_; }

  /// Reflexive subclass test: IsSubclassOf(X, X) is true.
  bool IsSubclassOf(std::string_view sub, std::string_view super) const;

  /// Direct subclasses of `name`, in declaration order.
  std::vector<const ClassInfo*> DirectSubclasses(std::string_view name) const;

  /// All proper descendants of `name`.
  std::vector<const ClassInfo*> TransitiveSubclasses(std::string_view name) const;

  /// Finds a relationship visible on `class_name` (own or inherited).
  const ResolvedRelationship* FindRelationship(std::string_view class_name,
                                               std::string_view rel_name) const;

  /// Finds a method visible on `class_name` (own or inherited).
  const ResolvedMethod* FindMethod(std::string_view class_name,
                                   std::string_view method_name) const;

  /// Finds an attribute visible on `class_name` (inherited included).
  const ResolvedAttribute* FindAttribute(std::string_view class_name,
                                         std::string_view attr_name) const;

  /// Finds a field of struct `struct_name`.
  const ResolvedAttribute* FindStructField(std::string_view struct_name,
                                           std::string_view field_name) const;

 private:
  std::vector<ClassInfo> classes_;
  std::vector<StructInfo> structs_;
  std::map<std::string, size_t, std::less<>> class_index_;
  std::map<std::string, size_t, std::less<>> struct_index_;
};

}  // namespace sqo::odl

#endif  // SQO_ODL_SCHEMA_H_
