#include "odl/parser.h"

#include <cctype>

#include "common/strings.h"

namespace sqo::odl {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool KeywordEq(std::string_view a, std::string_view b) {
  return sqo::ToLower(a) == sqo::ToLower(b);
}
}  // namespace

std::string TypeRef::ToString() const {
  switch (base) {
    case BaseType::kLong:
      return "long";
    case BaseType::kFloat:
      return "float";
    case BaseType::kString:
      return "string";
    case BaseType::kBoolean:
      return "boolean";
    case BaseType::kVoid:
      return "void";
    case BaseType::kNamed:
      return name;
  }
  return "?";
}

OdlParser::OdlParser(std::string_view text) : text_(text) { Lex(); }

void OdlParser::Lex() {
  size_t i = 0, line = 1;
  const std::string& s = text_;
  auto push = [&](Token t) {
    t.line = line;
    tokens_.push_back(std::move(t));
  };
  while (i < s.size()) {
    char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      i += 2;
      while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) {
        if (s[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < s.size()) ? i + 2 : s.size();
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < s.size() && IsIdentChar(s[i])) ++i;
      Token t;
      t.kind = Token::kIdent;
      t.text = s.substr(start, i - start);
      push(std::move(t));
      continue;
    }
    Token t;
    if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
      t.kind = Token::kScope;
      i += 2;
    } else {
      switch (c) {
        case '{':
          t.kind = Token::kLBrace;
          break;
        case '}':
          t.kind = Token::kRBrace;
          break;
        case '(':
          t.kind = Token::kLParen;
          break;
        case ')':
          t.kind = Token::kRParen;
          break;
        case '<':
          t.kind = Token::kLAngle;
          break;
        case '>':
          t.kind = Token::kRAngle;
          break;
        case ';':
          t.kind = Token::kSemicolon;
          break;
        case ',':
          t.kind = Token::kComma;
          break;
        case ':':
          t.kind = Token::kColon;
          break;
        default:
          t.kind = Token::kError;
          t.text = std::string("unexpected character '") + c + "'";
          break;
      }
      ++i;
    }
    push(std::move(t));
  }
  Token end;
  end.kind = Token::kEnd;
  end.line = line;
  tokens_.push_back(std::move(end));
}

const OdlParser::Token& OdlParser::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

OdlParser::Token OdlParser::Consume() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool OdlParser::ConsumeIf(Token::Kind kind) {
  if (Peek().kind == kind) {
    Consume();
    return true;
  }
  return false;
}

bool OdlParser::ConsumeKeyword(std::string_view keyword) {
  if (PeekKeyword(keyword)) {
    Consume();
    return true;
  }
  return false;
}

bool OdlParser::PeekKeyword(std::string_view keyword) const {
  return Peek().kind == Token::kIdent && KeywordEq(Peek().text, keyword);
}

sqo::Status OdlParser::Expect(Token::Kind kind, std::string_view what) {
  if (Peek().kind != kind) return ErrorAt(Peek(), "expected " + std::string(what));
  Consume();
  return sqo::Status::Ok();
}

sqo::Result<std::string> OdlParser::ExpectIdent(std::string_view what) {
  if (Peek().kind != Token::kIdent) {
    return ErrorAt(Peek(), "expected " + std::string(what));
  }
  return Consume().text;
}

sqo::Status OdlParser::ErrorAt(const Token& tok, std::string message) const {
  std::string detail = "ODL: " + message + " at line " + std::to_string(tok.line);
  if (!tok.text.empty()) detail += " near '" + tok.text + "'";
  return sqo::ParseError(std::move(detail));
}

sqo::Result<TypeRef> OdlParser::ParseType() {
  if (depth_ >= kMaxParseDepth) {
    return sqo::ResourceExhaustedError(
        "ODL: type nesting exceeds the parser depth limit (" +
        std::to_string(kMaxParseDepth) + ")");
  }
  ++depth_;
  sqo::Result<TypeRef> result = ParseTypeInner();
  --depth_;
  return result;
}

sqo::Result<TypeRef> OdlParser::ParseTypeInner() {
  SQO_ASSIGN_OR_RETURN(std::string name, ExpectIdent("a type name"));
  std::string lower = sqo::ToLower(name);
  TypeRef t;
  if (lower == "long" || lower == "short" || lower == "octet" || lower == "int") {
    t.base = BaseType::kLong;
  } else if (lower == "float" || lower == "double" || lower == "real") {
    t.base = BaseType::kFloat;
  } else if (lower == "string") {
    t.base = BaseType::kString;
  } else if (lower == "boolean" || lower == "bool") {
    t.base = BaseType::kBoolean;
  } else if (lower == "void") {
    t.base = BaseType::kVoid;
  } else {
    t.base = BaseType::kNamed;
    t.name = name;
  }
  return t;
}

sqo::Result<StructDecl> OdlParser::ParseStruct() {
  StructDecl decl;
  decl.line = Peek().line;
  Consume();  // "struct"
  SQO_ASSIGN_OR_RETURN(decl.name, ExpectIdent("struct name"));
  SQO_RETURN_IF_ERROR(Expect(Token::kLBrace, "'{'"));
  while (!ConsumeIf(Token::kRBrace)) {
    AttributeDecl field;
    field.line = Peek().line;
    SQO_ASSIGN_OR_RETURN(field.type, ParseType());
    SQO_ASSIGN_OR_RETURN(field.name, ExpectIdent("field name"));
    SQO_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
    decl.fields.push_back(std::move(field));
  }
  ConsumeIf(Token::kSemicolon);
  return decl;
}

sqo::Result<InterfaceDecl> OdlParser::ParseInterface() {
  InterfaceDecl decl;
  decl.line = Peek().line;
  Consume();  // "interface" or "class"
  SQO_ASSIGN_OR_RETURN(decl.name, ExpectIdent("interface name"));
  if (ConsumeIf(Token::kColon) || ConsumeKeyword("extends")) {
    SQO_ASSIGN_OR_RETURN(std::string super, ExpectIdent("superclass name"));
    decl.super = std::move(super);
  }
  SQO_RETURN_IF_ERROR(Expect(Token::kLBrace, "'{'"));
  while (!ConsumeIf(Token::kRBrace)) {
    size_t line = Peek().line;
    if (PeekKeyword("extent")) {
      Consume();
      SQO_ASSIGN_OR_RETURN(std::string extent, ExpectIdent("extent name"));
      decl.extent = std::move(extent);
      SQO_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
      continue;
    }
    if (PeekKeyword("key") || PeekKeyword("keys")) {
      Consume();
      while (true) {
        SQO_ASSIGN_OR_RETURN(std::string key, ExpectIdent("key attribute"));
        decl.keys.push_back(std::move(key));
        if (!ConsumeIf(Token::kComma)) break;
      }
      SQO_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
      continue;
    }
    if (PeekKeyword("attribute")) {
      Consume();
      AttributeDecl attr;
      attr.line = line;
      SQO_ASSIGN_OR_RETURN(attr.type, ParseType());
      SQO_ASSIGN_OR_RETURN(attr.name, ExpectIdent("attribute name"));
      SQO_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
      decl.attributes.push_back(std::move(attr));
      continue;
    }
    if (PeekKeyword("relationship")) {
      Consume();
      RelationshipDecl rel;
      rel.line = line;
      if (PeekKeyword("set") || PeekKeyword("list") || PeekKeyword("bag")) {
        std::string coll = sqo::ToLower(Consume().text);
        rel.collection = coll == "set"    ? CollectionKind::kSet
                         : coll == "list" ? CollectionKind::kList
                                          : CollectionKind::kBag;
        SQO_RETURN_IF_ERROR(Expect(Token::kLAngle, "'<'"));
        SQO_ASSIGN_OR_RETURN(rel.target, ExpectIdent("target class"));
        SQO_RETURN_IF_ERROR(Expect(Token::kRAngle, "'>'"));
      } else {
        SQO_ASSIGN_OR_RETURN(rel.target, ExpectIdent("target class"));
      }
      SQO_ASSIGN_OR_RETURN(rel.name, ExpectIdent("relationship name"));
      if (ConsumeKeyword("inverse")) {
        SQO_ASSIGN_OR_RETURN(std::string cls, ExpectIdent("inverse class"));
        SQO_RETURN_IF_ERROR(Expect(Token::kScope, "'::'"));
        SQO_ASSIGN_OR_RETURN(std::string relname, ExpectIdent("inverse relationship"));
        rel.inverse = std::make_pair(std::move(cls), std::move(relname));
      }
      SQO_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
      decl.relationships.push_back(std::move(rel));
      continue;
    }
    // Otherwise: a method declaration `type name ( params ) ;`.
    MethodDecl method;
    method.line = line;
    SQO_ASSIGN_OR_RETURN(method.return_type, ParseType());
    SQO_ASSIGN_OR_RETURN(method.name, ExpectIdent("method name"));
    SQO_RETURN_IF_ERROR(Expect(Token::kLParen, "'('"));
    if (Peek().kind != Token::kRParen) {
      while (true) {
        ParamDecl param;
        ConsumeKeyword("in");  // parameter mode, optional; only `in` supported
        SQO_ASSIGN_OR_RETURN(param.type, ParseType());
        SQO_ASSIGN_OR_RETURN(param.name, ExpectIdent("parameter name"));
        method.params.push_back(std::move(param));
        if (!ConsumeIf(Token::kComma)) break;
      }
    }
    SQO_RETURN_IF_ERROR(Expect(Token::kRParen, "')'"));
    SQO_RETURN_IF_ERROR(Expect(Token::kSemicolon, "';'"));
    decl.methods.push_back(std::move(method));
  }
  ConsumeIf(Token::kSemicolon);
  return decl;
}

sqo::Result<SchemaAst> OdlParser::ParseSchema() {
  SchemaAst ast;
  while (Peek().kind != Token::kEnd) {
    if (PeekKeyword("struct")) {
      SQO_ASSIGN_OR_RETURN(StructDecl s, ParseStruct());
      ast.structs.push_back(std::move(s));
    } else if (PeekKeyword("interface") || PeekKeyword("class")) {
      SQO_ASSIGN_OR_RETURN(InterfaceDecl i, ParseInterface());
      ast.interfaces.push_back(std::move(i));
    } else {
      return ErrorAt(Peek(), "expected 'struct' or 'interface'");
    }
  }
  return ast;
}

sqo::Result<SchemaAst> ParseOdl(std::string_view text) {
  return OdlParser(text).ParseSchema();
}

}  // namespace sqo::odl
