#ifndef SQO_ODL_AST_H_
#define SQO_ODL_AST_H_

#include <optional>
#include <string>
#include <vector>

namespace sqo::odl {

/// Base/primitive types of the ODMG-93 subset, plus named references to
/// structs and interfaces.
enum class BaseType {
  kLong,     // 64-bit integer (covers ODMG long/short/octet)
  kFloat,    // double precision (covers ODMG float/double/real)
  kString,
  kBoolean,
  kVoid,     // method return only
  kNamed,    // struct or interface, by name
};

/// A (possibly named) type reference in the AST, before resolution.
struct TypeRef {
  BaseType base = BaseType::kLong;
  std::string name;  // for kNamed

  bool is_named() const { return base == BaseType::kNamed; }
  std::string ToString() const;
};

/// Collection wrapper on relationship target types: `Set<Section>` etc.
/// The distinction between set/list/bag does not affect SQO (paper §4.3);
/// all three translate to a binary relation with a to-many cardinality.
enum class CollectionKind { kNone, kSet, kList, kBag };

/// `attribute string name;` or `attribute Address address;`
struct AttributeDecl {
  TypeRef type;
  std::string name;
  size_t line = 0;
};

/// `relationship Set<Section> takes inverse Section::is_taken_by;`
struct RelationshipDecl {
  CollectionKind collection = CollectionKind::kNone;  // kNone => to-one
  std::string target;  // target interface name
  std::string name;
  /// inverse: (class, relationship) pair, if declared.
  std::optional<std::pair<std::string, std::string>> inverse;
  size_t line = 0;

  bool to_many() const { return collection != CollectionKind::kNone; }
};

/// One method parameter: `in float rate`.
struct ParamDecl {
  TypeRef type;
  std::string name;
};

/// `float taxes_withheld(in float rate);`
struct MethodDecl {
  TypeRef return_type;
  std::string name;
  std::vector<ParamDecl> params;
  size_t line = 0;
};

/// `interface Employee : Person { extent employees; ... };`
struct InterfaceDecl {
  std::string name;
  std::optional<std::string> super;   // single inheritance (see DESIGN.md)
  std::optional<std::string> extent;  // extent name, if maintained
  std::vector<std::string> keys;      // key attribute names
  std::vector<AttributeDecl> attributes;
  std::vector<RelationshipDecl> relationships;
  std::vector<MethodDecl> methods;
  size_t line = 0;
};

/// Top-level `struct Address { string street; string city; };`
struct StructDecl {
  std::string name;
  std::vector<AttributeDecl> fields;
  size_t line = 0;
};

/// A parsed ODL schema document.
struct SchemaAst {
  std::vector<StructDecl> structs;
  std::vector<InterfaceDecl> interfaces;
};

}  // namespace sqo::odl

#endif  // SQO_ODL_AST_H_
