#ifndef SQO_ODL_PARSER_H_
#define SQO_ODL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "odl/ast.h"

namespace sqo::odl {

/// Recursive-descent parser for the ODMG-93 ODL subset. Accepted grammar
/// (keywords case-insensitive, names case-sensitive):
///
///   schema      := (struct_decl | interface_decl)*
///   struct_decl := "struct" Name "{" (type name ";")* "}" ";"?
///   interface_decl :=
///       "interface" Name [(":" | "extends") Name] "{" member* "}" ";"?
///   member      := "extent" name ";"
///                | ("key" | "keys") name ("," name)* ";"
///                | "attribute" type name ";"
///                | "relationship" rel_type name
///                      ["inverse" Name "::" name] ";"
///                | type name "(" [param ("," param)*] ")" ";"
///   param       := ["in"] type name
///   rel_type    := Name | ("set"|"list"|"bag") "<" Name ">"
///   type        := "long"|"short"|"float"|"double"|"real"|"string"
///                | "boolean"|"void"|Name
class OdlParser {
 public:
  explicit OdlParser(std::string_view text);

  /// Parses a complete schema document.
  sqo::Result<SchemaAst> ParseSchema();

 private:
  struct Token {
    enum Kind {
      kIdent,
      kLBrace,
      kRBrace,
      kLParen,
      kRParen,
      kLAngle,
      kRAngle,
      kSemicolon,
      kComma,
      kColon,
      kScope,  // "::"
      kEnd,
      kError,
    };
    Kind kind = kEnd;
    std::string text;
    size_t line = 1;
  };

  void Lex();
  const Token& Peek(size_t ahead = 0) const;
  Token Consume();
  bool ConsumeIf(Token::Kind kind);
  /// Consumes an identifier equal (case-insensitively) to `keyword`.
  bool ConsumeKeyword(std::string_view keyword);
  bool PeekKeyword(std::string_view keyword) const;
  sqo::Status Expect(Token::Kind kind, std::string_view what);
  sqo::Result<std::string> ExpectIdent(std::string_view what);
  sqo::Status ErrorAt(const Token& tok, std::string message) const;

  sqo::Result<StructDecl> ParseStruct();
  sqo::Result<InterfaceDecl> ParseInterface();
  sqo::Result<TypeRef> ParseType();
  sqo::Result<TypeRef> ParseTypeInner();

  /// The current grammar's types are flat, but the depth guard keeps any
  /// future nested type syntax (e.g. set<set<T>>) bounded with a clean
  /// kResourceExhausted instead of a stack overflow.
  static constexpr int kMaxParseDepth = 512;
  int depth_ = 0;

  std::string text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Convenience wrapper.
sqo::Result<SchemaAst> ParseOdl(std::string_view text);

}  // namespace sqo::odl

#endif  // SQO_ODL_PARSER_H_
