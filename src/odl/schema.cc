#include "odl/schema.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace sqo::odl {

namespace {

/// Orders a declaration's attributes simple-first then struct-typed,
/// preserving relative order within each group (paper §4.2 rule 1).
std::vector<AttributeDecl> OrderSimpleFirst(const std::vector<AttributeDecl>& in) {
  std::vector<AttributeDecl> out;
  out.reserve(in.size());
  for (const AttributeDecl& a : in) {
    if (!a.type.is_named()) out.push_back(a);
  }
  for (const AttributeDecl& a : in) {
    if (a.type.is_named()) out.push_back(a);
  }
  return out;
}

}  // namespace

sqo::Result<Schema> Schema::Resolve(const SchemaAst& ast) {
  Schema schema;

  // Index declarations and reject duplicates.
  std::map<std::string, const StructDecl*> struct_decls;
  std::map<std::string, const InterfaceDecl*> iface_decls;
  for (const StructDecl& s : ast.structs) {
    if (!struct_decls.emplace(s.name, &s).second) {
      return sqo::SemanticError("duplicate struct '" + s.name + "'");
    }
  }
  for (const InterfaceDecl& i : ast.interfaces) {
    if (struct_decls.count(i.name) > 0 ||
        !iface_decls.emplace(i.name, &i).second) {
      return sqo::SemanticError("duplicate type name '" + i.name + "'");
    }
  }

  // Resolve structs; fields may reference other structs but not classes,
  // and struct nesting must be acyclic.
  for (const StructDecl& s : ast.structs) {
    StructInfo info;
    info.name = s.name;
    for (const AttributeDecl& f : OrderSimpleFirst(s.fields)) {
      ResolvedAttribute field;
      field.name = f.name;
      field.base = f.type.base;
      field.declared_in = s.name;
      if (f.type.is_named()) {
        if (struct_decls.count(f.type.name) == 0) {
          return sqo::SemanticError("struct '" + s.name + "' field '" + f.name +
                                    "' has unknown struct type '" + f.type.name +
                                    "'");
        }
        field.struct_name = f.type.name;
      } else if (f.type.base == BaseType::kVoid) {
        return sqo::SemanticError("struct field '" + f.name + "' cannot be void");
      }
      if (std::any_of(info.fields.begin(), info.fields.end(),
                      [&](const ResolvedAttribute& x) { return x.name == field.name; })) {
        return sqo::SemanticError("struct '" + s.name + "' has duplicate field '" +
                                  field.name + "'");
      }
      info.fields.push_back(std::move(field));
    }
    schema.struct_index_[info.name] = schema.structs_.size();
    schema.structs_.push_back(std::move(info));
  }

  // Struct nesting acyclicity (DFS with colors).
  {
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::pair<std::string, bool>> stack;
    for (const StructInfo& s : schema.structs_) {
      if (color[s.name] != 0) continue;
      stack.push_back({s.name, false});
      while (!stack.empty()) {
        auto [name, done] = stack.back();
        stack.pop_back();
        if (done) {
          color[name] = 2;
          continue;
        }
        if (color[name] == 1) continue;
        color[name] = 1;
        stack.push_back({name, true});
        const StructInfo* info = schema.FindStruct(name);
        for (const ResolvedAttribute& f : info->fields) {
          if (!f.is_struct()) continue;
          if (color[f.struct_name] == 1) {
            return sqo::SemanticError("cyclic struct nesting involving '" +
                                      f.struct_name + "'");
          }
          if (color[f.struct_name] == 0) stack.push_back({f.struct_name, false});
        }
      }
    }
  }

  // Hierarchy validation: supers exist, no cycles.
  for (const InterfaceDecl& i : ast.interfaces) {
    if (i.super.has_value() && iface_decls.count(*i.super) == 0) {
      return sqo::SemanticError("class '" + i.name + "' extends unknown class '" +
                                *i.super + "'");
    }
  }
  for (const InterfaceDecl& i : ast.interfaces) {
    std::set<std::string> seen{i.name};
    const InterfaceDecl* cur = &i;
    while (cur->super.has_value()) {
      if (!seen.insert(*cur->super).second) {
        return sqo::SemanticError("inheritance cycle involving '" + *cur->super +
                                  "'");
      }
      cur = iface_decls.at(*cur->super);
    }
  }

  // Resolve classes bottom-up the hierarchy (supers before subs) so that
  // all_attributes can be copied from the resolved super.
  std::vector<const InterfaceDecl*> order;
  {
    std::set<std::string> resolved;
    while (order.size() < ast.interfaces.size()) {
      bool progressed = false;
      for (const InterfaceDecl& i : ast.interfaces) {
        if (resolved.count(i.name) > 0) continue;
        if (!i.super.has_value() || resolved.count(*i.super) > 0) {
          order.push_back(&i);
          resolved.insert(i.name);
          progressed = true;
        }
      }
      if (!progressed) {
        return sqo::InternalError("hierarchy ordering failed");
      }
    }
  }

  std::map<std::string, ClassInfo> resolved_classes;
  for (const InterfaceDecl* decl : order) {
    ClassInfo info;
    info.name = decl->name;
    info.super = decl->super.value_or("");
    info.extent = decl->extent;
    info.keys = decl->keys;

    std::set<std::string> member_names;
    if (!info.super.empty()) {
      const ClassInfo& super_info = resolved_classes.at(info.super);
      info.all_attributes = super_info.all_attributes;
      for (const ResolvedAttribute& a : info.all_attributes) {
        member_names.insert(a.name);
      }
    }

    for (const AttributeDecl& a : OrderSimpleFirst(decl->attributes)) {
      ResolvedAttribute attr;
      attr.name = a.name;
      attr.base = a.type.base;
      attr.declared_in = decl->name;
      if (a.type.is_named()) {
        if (struct_decls.count(a.type.name) == 0) {
          if (iface_decls.count(a.type.name) > 0) {
            return sqo::SemanticError(
                "attribute '" + decl->name + "." + a.name + "' has class type '" +
                a.type.name + "'; object-valued properties must be relationships");
          }
          return sqo::SemanticError("attribute '" + decl->name + "." + a.name +
                                    "' has unknown type '" + a.type.name + "'");
        }
        attr.struct_name = a.type.name;
      } else if (a.type.base == BaseType::kVoid) {
        return sqo::SemanticError("attribute '" + a.name + "' cannot be void");
      }
      if (!member_names.insert(attr.name).second) {
        return sqo::SemanticError("class '" + decl->name +
                                  "' redeclares member '" + attr.name + "'");
      }
      info.own_attributes.push_back(attr);
      info.all_attributes.push_back(std::move(attr));
    }

    for (const RelationshipDecl& r : decl->relationships) {
      if (iface_decls.count(r.target) == 0) {
        return sqo::SemanticError("relationship '" + decl->name + "." + r.name +
                                  "' targets unknown class '" + r.target + "'");
      }
      if (!member_names.insert(r.name).second) {
        return sqo::SemanticError("class '" + decl->name +
                                  "' redeclares member '" + r.name + "'");
      }
      ResolvedRelationship rel;
      rel.name = r.name;
      rel.source = decl->name;
      rel.target = r.target;
      rel.to_many = r.to_many();
      info.relationships.push_back(std::move(rel));
    }

    for (const MethodDecl& m : decl->methods) {
      if (!member_names.insert(m.name).second) {
        return sqo::SemanticError("class '" + decl->name +
                                  "' redeclares member '" + m.name + "'");
      }
      ResolvedMethod method;
      method.name = m.name;
      method.owner = decl->name;
      method.return_base = m.return_type.base;
      if (m.return_type.is_named()) {
        if (struct_decls.count(m.return_type.name) == 0) {
          return sqo::SemanticError("method '" + decl->name + "." + m.name +
                                    "' returns unknown type '" +
                                    m.return_type.name + "'");
        }
        method.return_struct = m.return_type.name;
      }
      for (const ParamDecl& p : m.params) {
        if (p.type.is_named() || p.type.base == BaseType::kVoid) {
          return sqo::SemanticError(
              "method '" + decl->name + "." + m.name + "' parameter '" + p.name +
              "' must have a base type (user-provided arguments, §4.2 rule 4)");
        }
        method.params.push_back(p);
      }
      info.methods.push_back(std::move(method));
    }

    // Keys must name visible attributes.
    for (const std::string& key : info.keys) {
      bool found = std::any_of(
          info.all_attributes.begin(), info.all_attributes.end(),
          [&](const ResolvedAttribute& a) { return a.name == key; });
      if (!found) {
        return sqo::SemanticError("class '" + decl->name + "' key '" + key +
                                  "' is not an attribute");
      }
    }

    resolved_classes.emplace(info.name, std::move(info));
  }

  // Emit classes in declaration order.
  for (const InterfaceDecl& i : ast.interfaces) {
    schema.class_index_[i.name] = schema.classes_.size();
    schema.classes_.push_back(std::move(resolved_classes.at(i.name)));
  }

  // Verify inverse relationships (needs all classes resolved) and set
  // one_to_one flags.
  for (const InterfaceDecl& i : ast.interfaces) {
    ClassInfo& cls = schema.classes_[schema.class_index_.at(i.name)];
    for (const RelationshipDecl& r : i.relationships) {
      if (!r.inverse.has_value()) continue;
      const auto& [inv_class, inv_name] = *r.inverse;
      if (inv_class != r.target) {
        return sqo::SemanticError(
            "relationship '" + i.name + "." + r.name + "': inverse must be on "
            "the target class '" + r.target + "', got '" + inv_class + "'");
      }
      const ClassInfo* target = schema.FindClass(r.target);
      const ResolvedRelationship* inv = nullptr;
      for (const ResolvedRelationship& cand : target->relationships) {
        if (cand.name == inv_name) {
          inv = &cand;
          break;
        }
      }
      if (inv == nullptr) {
        return sqo::SemanticError("relationship '" + i.name + "." + r.name +
                                  "': inverse '" + inv_class + "::" + inv_name +
                                  "' does not exist");
      }
      if (!schema.IsSubclassOf(i.name, inv->target)) {
        return sqo::SemanticError(
            "relationship '" + i.name + "." + r.name + "': inverse '" + inv_name +
            "' targets '" + inv->target + "', which is not a supertype of '" +
            i.name + "'");
      }
      ResolvedRelationship* mine = nullptr;
      for (ResolvedRelationship& cand : cls.relationships) {
        if (cand.name == r.name) {
          mine = &cand;
          break;
        }
      }
      mine->inverse = inv_name;
      mine->one_to_one = !mine->to_many && !inv->to_many;
    }
  }

  return schema;
}

const ClassInfo* Schema::FindClass(std::string_view name) const {
  auto it = class_index_.find(name);
  return it == class_index_.end() ? nullptr : &classes_[it->second];
}

const StructInfo* Schema::FindStruct(std::string_view name) const {
  auto it = struct_index_.find(name);
  return it == struct_index_.end() ? nullptr : &structs_[it->second];
}

bool Schema::IsSubclassOf(std::string_view sub, std::string_view super) const {
  const ClassInfo* cur = FindClass(sub);
  while (cur != nullptr) {
    if (cur->name == super) return true;
    cur = cur->super.empty() ? nullptr : FindClass(cur->super);
  }
  return false;
}

std::vector<const ClassInfo*> Schema::DirectSubclasses(
    std::string_view name) const {
  std::vector<const ClassInfo*> out;
  for (const ClassInfo& c : classes_) {
    if (c.super == name) out.push_back(&c);
  }
  return out;
}

std::vector<const ClassInfo*> Schema::TransitiveSubclasses(
    std::string_view name) const {
  std::vector<const ClassInfo*> out;
  for (const ClassInfo& c : classes_) {
    if (c.name != name && IsSubclassOf(c.name, name)) out.push_back(&c);
  }
  return out;
}

const ResolvedRelationship* Schema::FindRelationship(
    std::string_view class_name, std::string_view rel_name) const {
  const ClassInfo* cur = FindClass(class_name);
  while (cur != nullptr) {
    for (const ResolvedRelationship& r : cur->relationships) {
      if (r.name == rel_name) return &r;
    }
    cur = cur->super.empty() ? nullptr : FindClass(cur->super);
  }
  return nullptr;
}

const ResolvedMethod* Schema::FindMethod(std::string_view class_name,
                                         std::string_view method_name) const {
  const ClassInfo* cur = FindClass(class_name);
  while (cur != nullptr) {
    for (const ResolvedMethod& m : cur->methods) {
      if (m.name == method_name) return &m;
    }
    cur = cur->super.empty() ? nullptr : FindClass(cur->super);
  }
  return nullptr;
}

const ResolvedAttribute* Schema::FindAttribute(std::string_view class_name,
                                               std::string_view attr_name) const {
  const ClassInfo* cls = FindClass(class_name);
  if (cls == nullptr) return nullptr;
  for (const ResolvedAttribute& a : cls->all_attributes) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

const ResolvedAttribute* Schema::FindStructField(
    std::string_view struct_name, std::string_view field_name) const {
  const StructInfo* s = FindStruct(struct_name);
  if (s == nullptr) return nullptr;
  for (const ResolvedAttribute& f : s->fields) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

}  // namespace sqo::odl
